// Declarative experiment pipeline: an INI file describes a sweep (which
// graph groups, deadlines, granularity, strategies), the pipeline builds
// the suite, runs it across the thread pool and writes the per-instance
// CSV plus the aggregated relative-energy report.
//
//   [suite]
//   sizes            = 50, 100, 500
//   graphs_per_group = 12
//   include_apps     = true        ; fpppp / robot / sparse
//   seed             = 0x57a6 is NOT supported — decimal only
//   stg_files        =             ; extra .stg files, comma-separated
//
//   [experiment]
//   deadline_factors = 1.5, 2, 4, 8
//   granularity      = coarse      ; coarse | fine | both
//   strategies       = S&S, LAMPS, S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF
//   threads          = 0
//   cell_timeout_seconds  = 0      ; watchdog per cell, 0 = unlimited
//   validate              = true   ; check every schedule post-hoc
//   max_retries           = 2      ; extra attempts for retryable failures
//   retry_backoff_seconds = 0.05
//
//   [output]
//   csv_prefix       = results/my_experiment
//
// Fault tolerance (docs/robustness.md): every sweep cell is isolated — a
// malformed input file, a validation violation or a watchdog timeout
// becomes a typed FAIL/TIMEOUT row instead of aborting the run.  With a
// csv_prefix set, completed cells are journaled to
// `<csv_prefix>.journal.jsonl` (fsync'd per record) and a later run with
// `resume = true` replays the journaled OK cells bit-exactly, re-running
// only failed/timed-out/missing ones.  All CSVs are written atomically
// (temp file + rename).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "exp/ini.hpp"

namespace lamps::exp {

struct ExperimentSpec {
  std::vector<std::size_t> sizes{50, 100, 500};
  std::size_t graphs_per_group{12};
  bool include_apps{true};
  std::uint64_t seed{0x57a6};
  /// Extra .stg files added to the suite (group "stg").  A file that fails
  /// to load does not abort the experiment: its cells are recorded as FAIL
  /// rows carrying the parse error.
  std::vector<std::string> stg_files;

  std::vector<double> deadline_factors{1.5, 2.0, 4.0, 8.0};
  std::vector<Cycles> granularities{3'100'000};  // cycles per weight unit
  std::vector<core::StrategyKind> strategies{core::kAllStrategies.begin(),
                                             core::kAllStrategies.end()};
  std::size_t threads{0};

  /// Per-cell watchdog budget in wall-clock seconds (0 = unlimited); an
  /// expired cell is recorded as TIMEOUT, the sweep continues.
  double cell_timeout_seconds{0.0};
  /// Post-validate every produced schedule (sched::validate_schedule); a
  /// violation becomes a typed FAIL cell.
  bool validate{true};
  /// Retry policy for retryable cell failures (see core::SweepConfig).
  std::size_t max_retries{2};
  double retry_backoff_seconds{0.05};

  /// Prefix for CSV outputs ("" = no files, report to stream only).
  std::string csv_prefix;
  /// Resume from `<csv_prefix>.journal.jsonl`: journaled OK cells are
  /// replayed bit-exactly instead of re-executed.  Requires csv_prefix.
  /// Set by lamps_exp --resume.
  bool resume{false};

  /// Parses an INI document; throws lamps::InputError on unknown strategy
  /// or granularity names.
  static ExperimentSpec from_ini(const Ini& ini);
};

/// Parses a strategy display name ("LAMPS+PS", case-sensitive as printed by
/// core::to_string).  Throws lamps::InputError on unknown names.
[[nodiscard]] core::StrategyKind strategy_from_name(const std::string& name);

/// One phase's cost on all three clocks.  Process CPU exceeding wall clock
/// means the phase ran in parallel; thread CPU well below wall clock means
/// the coordinating thread mostly waited (I/O or pool workers).
struct PhaseClock {
  double wall_seconds{0.0};
  double cpu_process_seconds{0.0};  ///< all threads of the process
  double cpu_thread_seconds{0.0};   ///< the coordinating thread alone
};

/// Cost of one granularity pass, by pipeline phase.
struct PhaseTiming {
  std::string tag;    ///< granularity tag ("coarse"/"fine")
  PhaseClock suite;   ///< graph generation + weight scaling
  PhaseClock sweep;   ///< run_sweep (all threads)
  PhaseClock aggregate;
  PhaseClock write;   ///< report + CSV emission
};

/// Cell dispositions over the whole experiment (all granularity passes).
struct CellStats {
  std::size_t ok{0};
  std::size_t failed{0};    ///< FAIL cells (input, validation, internal)
  std::size_t timeout{0};   ///< watchdog expirations
  std::size_t replayed{0};  ///< ok cells restored from the resume journal
  [[nodiscard]] std::size_t bad() const { return failed + timeout; }
};

struct ExperimentOutput {
  std::vector<core::InstanceResult> instances;
  std::vector<core::GroupRelative> aggregated;
  std::vector<std::string> csv_files_written;
  std::vector<PhaseTiming> timings;  ///< one entry per granularity pass
  CellStats cells;
  std::string journal_path;  ///< "" when no journal was written
  /// Journal lines dropped on resume (truncated/corrupt); those cells re-ran.
  std::size_t journal_lines_dropped{0};
};

/// Runs the experiment, printing a human-readable report to `os` and
/// writing CSVs when csv_prefix is set.  Cell failures are isolated (see
/// CellStats); the call itself throws only on setup errors (bad spec,
/// unwritable output).
ExperimentOutput run_experiment(const ExperimentSpec& spec, std::ostream& os);

}  // namespace lamps::exp
