// Declarative experiment pipeline: an INI file describes a sweep (which
// graph groups, deadlines, granularity, strategies), the pipeline builds
// the suite, runs it across the thread pool and writes the per-instance
// CSV plus the aggregated relative-energy report.
//
//   [suite]
//   sizes            = 50, 100, 500
//   graphs_per_group = 12
//   include_apps     = true        ; fpppp / robot / sparse
//   seed             = 0x57a6 is NOT supported — decimal only
//
//   [experiment]
//   deadline_factors = 1.5, 2, 4, 8
//   granularity      = coarse      ; coarse | fine | both
//   strategies       = S&S, LAMPS, S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF
//   threads          = 0
//
//   [output]
//   csv_prefix       = results/my_experiment
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "exp/ini.hpp"

namespace lamps::exp {

struct ExperimentSpec {
  std::vector<std::size_t> sizes{50, 100, 500};
  std::size_t graphs_per_group{12};
  bool include_apps{true};
  std::uint64_t seed{0x57a6};

  std::vector<double> deadline_factors{1.5, 2.0, 4.0, 8.0};
  std::vector<Cycles> granularities{3'100'000};  // cycles per weight unit
  std::vector<core::StrategyKind> strategies{core::kAllStrategies.begin(),
                                             core::kAllStrategies.end()};
  std::size_t threads{0};

  /// Prefix for CSV outputs ("" = no files, report to stream only).
  std::string csv_prefix;

  /// Parses an INI document; throws std::runtime_error on unknown strategy
  /// or granularity names.
  static ExperimentSpec from_ini(const Ini& ini);
};

/// Parses a strategy display name ("LAMPS+PS", case-sensitive as printed by
/// core::to_string).  Throws on unknown names.
[[nodiscard]] core::StrategyKind strategy_from_name(const std::string& name);

/// One phase's cost on all three clocks.  Process CPU exceeding wall clock
/// means the phase ran in parallel; thread CPU well below wall clock means
/// the coordinating thread mostly waited (I/O or pool workers).
struct PhaseClock {
  double wall_seconds{0.0};
  double cpu_process_seconds{0.0};  ///< all threads of the process
  double cpu_thread_seconds{0.0};   ///< the coordinating thread alone
};

/// Cost of one granularity pass, by pipeline phase.
struct PhaseTiming {
  std::string tag;    ///< granularity tag ("coarse"/"fine")
  PhaseClock suite;   ///< graph generation + weight scaling
  PhaseClock sweep;   ///< run_sweep (all threads)
  PhaseClock aggregate;
  PhaseClock write;   ///< report + CSV emission
};

struct ExperimentOutput {
  std::vector<core::InstanceResult> instances;
  std::vector<core::GroupRelative> aggregated;
  std::vector<std::string> csv_files_written;
  std::vector<PhaseTiming> timings;  ///< one entry per granularity pass
};

/// Runs the experiment, printing a human-readable report to `os` and
/// writing CSVs when csv_prefix is set.
ExperimentOutput run_experiment(const ExperimentSpec& spec, std::ostream& os);

}  // namespace lamps::exp
