// Crash-safe experiment journal: one JSONL record per completed sweep cell.
//
// The journal is the experiment pipeline's write-ahead log.  Every executed
// cell appends one self-contained line — key fields, outcome, the full
// result payload and an FNV-1a digest of the serialized payload — and the
// line is fsync'd before the append returns, so a record either exists
// completely or not at all, even across SIGKILL.  `lamps_exp --resume`
// loads the journal, replays cells whose recorded outcome is OK
// (bit-exactly: the payload stores doubles at %.17g, which round-trips),
// and re-runs failed / timed-out / missing cells.
//
// Load is tolerant by construction: a truncated trailing line, a corrupted
// line or a digest mismatch drops that record (counted, reported) and the
// cell simply re-runs.  Later records win on duplicate keys, so appending
// a re-run's outcome supersedes the earlier failure.
#pragma once

#include <cstddef>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "core/runner.hpp"

namespace lamps::exp {

/// One journal line.  `tag` is the granularity pass ("coarse"/"fine") the
/// cell belongs to; together with group/graph/factor/strategy it forms the
/// resume key.
struct JournalRecord {
  std::string tag;
  std::string group;
  std::string graph;
  double deadline_factor{0.0};
  std::string strategy;  ///< display name, core::to_string(StrategyKind)

  core::CellOutcome outcome{core::CellOutcome::kOk};
  ErrorCode error{ErrorCode::kNone};
  std::string message;
  std::uint32_t retries{0};

  bool feasible{false};
  double energy_j{0.0};
  std::size_t num_procs{0};
  std::size_t level_index{0};
  std::size_t schedules_computed{0};
  double parallelism{0.0};
  std::uint64_t total_work{0};
  double seconds{0.0};
};

/// Canonical resume key of a cell.
[[nodiscard]] std::string journal_key(const std::string& tag, const std::string& group,
                                      const std::string& graph, double deadline_factor,
                                      const std::string& strategy);
[[nodiscard]] std::string journal_key(const std::string& tag, const core::InstanceResult& r);

[[nodiscard]] JournalRecord make_journal_record(const std::string& tag,
                                                const core::InstanceResult& r);

/// Rebuilds the InstanceResult a record was made from (`from_journal` set).
/// Throws InputError on an unknown strategy name.
[[nodiscard]] core::InstanceResult restore_instance(const JournalRecord& rec);

/// Serializes one record as a single JSON line (no trailing newline).
[[nodiscard]] std::string journal_line(const JournalRecord& rec);
/// Parses one line; nullopt when malformed or the digest does not match.
[[nodiscard]] std::optional<JournalRecord> parse_journal_line(const std::string& line);

/// Outcome of Journal::load.
struct JournalContents {
  std::map<std::string, JournalRecord> records;  ///< by journal_key, later lines win
  std::size_t lines_total{0};
  std::size_t lines_dropped{0};  ///< malformed / truncated / digest mismatch
};

/// Append-only writer with per-record fsync.  Thread-safe.
class Journal {
 public:
  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  /// Opens `path` for appending (`truncate` starts fresh — used when not
  /// resuming, so stale records cannot shadow a reconfigured sweep).
  /// Throws InternalError(kIo) on failure.
  void open(const std::string& path, bool truncate);
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Appends one record and fsyncs.  Throws InternalError(kIo) on failure.
  void append(const JournalRecord& rec);

  void close();

  /// Loads a journal; a missing file yields empty contents.
  [[nodiscard]] static JournalContents load(const std::string& path);

 private:
  std::mutex mutex_;
  std::string path_;
  int fd_{-1};
};

}  // namespace lamps::exp
