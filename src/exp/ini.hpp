// Minimal INI-style configuration reader for the experiment pipeline.
//
//   [section]
//   key = value        ; or # start comments (full-line or trailing)
//   list = 1.5, 2, 4   ; comma-separated lists
//
// Keys are unique per section — a duplicate assignment is rejected (the
// error names both lines), so a typo can never silently shadow an earlier
// setting.  Sections are case-sensitive, whitespace around tokens is
// trimmed.  All parse/value errors are lamps::InputError carrying the
// source name ("experiment.ini:12") and an error code (kIniParse for
// malformed documents, kIniValue for unparsable values).
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lamps::exp {

class Ini {
 public:
  /// Parses the stream; throws lamps::InputError(kIniParse) with
  /// "<source>:<line>" context on malformed input (text outside any
  /// section, missing '=', duplicate key).  `source` is the file name used
  /// in error messages.
  static Ini parse(std::istream& is, const std::string& source = "<ini>");
  static Ini parse_string(const std::string& text, const std::string& source = "<string>");
  /// Opens and parses `path`; throws lamps::InputError(kIo... ) when the
  /// file cannot be read, parse errors as above with the file name.
  static Ini parse_file(const std::string& path);

  [[nodiscard]] bool has_section(const std::string& section) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Typed getters returning `fallback` when the key is absent and
  /// throwing lamps::InputError(kIniValue) when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& section, const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& section, const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& section, const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section, const std::string& key,
                              bool fallback) const;
  [[nodiscard]] std::vector<double> get_double_list(const std::string& section,
                                                    const std::string& key,
                                                    std::vector<double> fallback) const;
  [[nodiscard]] std::vector<std::size_t> get_size_list(
      const std::string& section, const std::string& key,
      std::vector<std::size_t> fallback) const;
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& section, const std::string& key,
      std::vector<std::string> fallback) const;

  [[nodiscard]] std::vector<std::string> sections() const;
  /// The name errors are reported under (file name or "<string>").
  [[nodiscard]] const std::string& source() const { return source_; }

 private:
  std::map<std::string, std::map<std::string, std::string>> data_;
  std::string source_{"<ini>"};
};

}  // namespace lamps::exp
