// Minimal INI-style configuration reader for the experiment pipeline.
//
//   [section]
//   key = value        ; or # start comments (full-line or trailing)
//   list = 1.5, 2, 4   ; comma-separated lists
//
// Keys are unique per section (later assignments override), sections are
// case-sensitive, whitespace around tokens is trimmed.
#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace lamps::exp {

class Ini {
 public:
  /// Parses the stream; throws std::runtime_error with a line number on
  /// malformed input (text outside any section, missing '=').
  static Ini parse(std::istream& is);
  static Ini parse_string(const std::string& text);

  [[nodiscard]] bool has_section(const std::string& section) const;
  [[nodiscard]] std::optional<std::string> get(const std::string& section,
                                               const std::string& key) const;

  /// Typed getters returning `fallback` when the key is absent and
  /// throwing std::runtime_error when present but unparsable.
  [[nodiscard]] std::string get_string(const std::string& section, const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] double get_double(const std::string& section, const std::string& key,
                                  double fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& section, const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& section, const std::string& key,
                              bool fallback) const;
  [[nodiscard]] std::vector<double> get_double_list(const std::string& section,
                                                    const std::string& key,
                                                    std::vector<double> fallback) const;
  [[nodiscard]] std::vector<std::size_t> get_size_list(
      const std::string& section, const std::string& key,
      std::vector<std::size_t> fallback) const;
  [[nodiscard]] std::vector<std::string> get_string_list(
      const std::string& section, const std::string& key,
      std::vector<std::string> fallback) const;

  [[nodiscard]] std::vector<std::string> sections() const;

 private:
  std::map<std::string, std::map<std::string, std::string>> data_;
};

}  // namespace lamps::exp
