#include "exp/journal.hpp"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

#include "exp/experiment.hpp"
#include "util/errors.hpp"

namespace lamps::exp {

namespace {

/// %.17g round-trips every finite double: parsing the text yields the same
/// bit pattern, and re-printing the parsed value yields the same text, so a
/// journaled payload is stable across write -> load -> re-serialize.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

void json_escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = kFnvOffset;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

/// The digest-covered part of a journal line: everything between the braces
/// except the trailing digest field, in a fixed field order.
std::string payload(const JournalRecord& r) {
  std::string p = "\"v\":1,\"tag\":\"";
  json_escape_into(p, r.tag);
  p += "\",\"group\":\"";
  json_escape_into(p, r.group);
  p += "\",\"graph\":\"";
  json_escape_into(p, r.graph);
  p += "\",\"factor\":";
  p += fmt_double(r.deadline_factor);
  p += ",\"strategy\":\"";
  json_escape_into(p, r.strategy);
  p += "\",\"outcome\":\"";
  p += std::string(core::to_string(r.outcome));
  p += "\",\"error\":\"";
  p += std::string(to_string(r.error));
  p += "\",\"message\":\"";
  json_escape_into(p, r.message);
  p += "\",\"retries\":";
  p += std::to_string(r.retries);
  p += ",\"feasible\":";
  p += r.feasible ? '1' : '0';
  p += ",\"energy_j\":";
  p += fmt_double(r.energy_j);
  p += ",\"procs\":";
  p += std::to_string(r.num_procs);
  p += ",\"level\":";
  p += std::to_string(r.level_index);
  p += ",\"schedules\":";
  p += std::to_string(r.schedules_computed);
  p += ",\"parallelism\":";
  p += fmt_double(r.parallelism);
  p += ",\"total_work\":";
  p += std::to_string(r.total_work);
  p += ",\"seconds\":";
  p += fmt_double(r.seconds);
  return p;
}

// ---- minimal flat-object JSON scanning -----------------------------------

struct Scanner {
  const std::string& s;
  std::size_t i{0};

  bool at(char c) const { return i < s.size() && s[i] == c; }
  bool eat(char c) {
    if (!at(c)) return false;
    ++i;
    return true;
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }

  /// Parses a JSON string literal (opening quote already expected at i).
  bool string_lit(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (i < s.size()) {
      const char c = s[i++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (i >= s.size()) return false;
      const char esc = s[i++];
      switch (esc) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          if (i + 4 > s.size()) return false;
          unsigned code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = s[i++];
            code <<= 4;
            if (h >= '0' && h <= '9')
              code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f')
              code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F')
              code |= static_cast<unsigned>(h - 'A' + 10);
            else
              return false;
          }
          if (code > 0xff) return false;  // journal only escapes control bytes
          out += static_cast<char>(code);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  /// Parses a bare JSON number into its raw text.
  bool number_lit(std::string& out) {
    const std::size_t start = i;
    while (i < s.size() && (std::isdigit(static_cast<unsigned char>(s[i])) != 0 ||
                            s[i] == '-' || s[i] == '+' || s[i] == '.' || s[i] == 'e' ||
                            s[i] == 'E'))
      ++i;
    if (i == start) return false;
    out = s.substr(start, i - start);
    return true;
  }
};

struct Field {
  std::string value;
  bool is_string{false};
};

/// Scans one flat JSON object into key -> field.  Rejects nesting.
bool scan_flat_object(const std::string& line, std::map<std::string, Field>& out) {
  Scanner sc{line};
  sc.skip_ws();
  if (!sc.eat('{')) return false;
  sc.skip_ws();
  if (sc.eat('}')) return true;
  for (;;) {
    sc.skip_ws();
    std::string key;
    if (!sc.string_lit(key)) return false;
    sc.skip_ws();
    if (!sc.eat(':')) return false;
    sc.skip_ws();
    Field f;
    if (sc.at('"')) {
      f.is_string = true;
      if (!sc.string_lit(f.value)) return false;
    } else {
      if (!sc.number_lit(f.value)) return false;
    }
    out[key] = std::move(f);
    sc.skip_ws();
    if (sc.eat(',')) continue;
    if (sc.eat('}')) break;
    return false;
  }
  sc.skip_ws();
  return sc.i == line.size();
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

bool parse_double(const std::string& text, double& out) {
  if (text.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (errno != 0 || end != text.c_str() + text.size()) return false;
  out = v;
  return true;
}

void throw_io(const std::string& what, const std::string& path) {
  throw InternalError(ErrorCode::kIo, what + ": " + std::strerror(errno), path,
                      "check free space and directory permissions", /*retryable=*/true);
}

}  // namespace

std::string journal_key(const std::string& tag, const std::string& group,
                        const std::string& graph, double deadline_factor,
                        const std::string& strategy) {
  std::string key = tag;
  key += '|';
  key += group;
  key += '|';
  key += graph;
  key += '|';
  key += fmt_double(deadline_factor);
  key += '|';
  key += strategy;
  return key;
}

std::string journal_key(const std::string& tag, const core::InstanceResult& r) {
  return journal_key(tag, r.group, r.graph_name, r.deadline_factor,
                     std::string(core::to_string(r.strategy)));
}

JournalRecord make_journal_record(const std::string& tag, const core::InstanceResult& r) {
  JournalRecord rec;
  rec.tag = tag;
  rec.group = r.group;
  rec.graph = r.graph_name;
  rec.deadline_factor = r.deadline_factor;
  rec.strategy = std::string(core::to_string(r.strategy));
  rec.outcome = r.outcome;
  rec.error = r.error;
  rec.message = r.error_message;
  rec.retries = r.retries;
  rec.feasible = r.feasible;
  rec.energy_j = r.energy.value();
  rec.num_procs = r.num_procs;
  rec.level_index = r.level_index;
  rec.schedules_computed = r.schedules_computed;
  rec.parallelism = r.parallelism;
  rec.total_work = r.total_work;
  rec.seconds = r.seconds;
  return rec;
}

core::InstanceResult restore_instance(const JournalRecord& rec) {
  core::InstanceResult r;
  r.group = rec.group;
  r.graph_name = rec.graph;
  r.deadline_factor = rec.deadline_factor;
  r.strategy = strategy_from_name(rec.strategy);
  r.outcome = rec.outcome;
  r.error = rec.error;
  r.error_message = rec.message;
  r.retries = rec.retries;
  r.feasible = rec.feasible;
  r.energy = Joules{rec.energy_j};
  r.num_procs = rec.num_procs;
  r.level_index = rec.level_index;
  r.schedules_computed = rec.schedules_computed;
  r.parallelism = rec.parallelism;
  r.total_work = rec.total_work;
  r.seconds = rec.seconds;
  r.from_journal = true;
  return r;
}

std::string journal_line(const JournalRecord& rec) {
  const std::string p = payload(rec);
  char digest[32];
  std::snprintf(digest, sizeof digest, "%016llx",
                static_cast<unsigned long long>(fnv1a(p)));
  std::string line = "{";
  line += p;
  line += ",\"digest\":\"";
  line += digest;
  line += "\"}";
  return line;
}

std::optional<JournalRecord> parse_journal_line(const std::string& line) {
  std::map<std::string, Field> fields;
  if (!scan_flat_object(line, fields)) return std::nullopt;

  const auto str = [&](const char* key, std::string& out) {
    const auto it = fields.find(key);
    if (it == fields.end() || !it->second.is_string) return false;
    out = it->second.value;
    return true;
  };
  const auto num = [&](const char* key, std::string& out) {
    const auto it = fields.find(key);
    if (it == fields.end() || it->second.is_string) return false;
    out = it->second.value;
    return true;
  };

  std::string text;
  std::uint64_t u = 0;
  JournalRecord rec;

  if (!num("v", text) || !parse_u64(text, u) || u != 1) return std::nullopt;
  if (!str("tag", rec.tag)) return std::nullopt;
  if (!str("group", rec.group)) return std::nullopt;
  if (!str("graph", rec.graph)) return std::nullopt;
  if (!num("factor", text) || !parse_double(text, rec.deadline_factor)) return std::nullopt;
  if (!str("strategy", rec.strategy)) return std::nullopt;

  if (!str("outcome", text)) return std::nullopt;
  rec.outcome = core::cell_outcome_from_string(text);
  if (text != core::to_string(rec.outcome)) return std::nullopt;
  if (!str("error", text)) return std::nullopt;
  rec.error = error_code_from_string(text);
  if (text != to_string(rec.error)) return std::nullopt;
  if (!str("message", rec.message)) return std::nullopt;
  if (!num("retries", text) || !parse_u64(text, u)) return std::nullopt;
  rec.retries = static_cast<std::uint32_t>(u);

  if (!num("feasible", text) || !parse_u64(text, u) || u > 1) return std::nullopt;
  rec.feasible = u == 1;
  if (!num("energy_j", text) || !parse_double(text, rec.energy_j)) return std::nullopt;
  if (!num("procs", text) || !parse_u64(text, u)) return std::nullopt;
  rec.num_procs = u;
  if (!num("level", text) || !parse_u64(text, u)) return std::nullopt;
  rec.level_index = u;
  if (!num("schedules", text) || !parse_u64(text, u)) return std::nullopt;
  rec.schedules_computed = u;
  if (!num("parallelism", text) || !parse_double(text, rec.parallelism)) return std::nullopt;
  if (!num("total_work", text) || !parse_u64(text, u)) return std::nullopt;
  rec.total_work = u;
  if (!num("seconds", text) || !parse_double(text, rec.seconds)) return std::nullopt;

  // The digest seals the payload: re-serialize what we parsed and compare.
  // A corrupted byte anywhere in the line fails here even when the line is
  // still syntactically valid JSON.
  std::string digest;
  if (!str("digest", digest)) return std::nullopt;
  char expected[32];
  std::snprintf(expected, sizeof expected, "%016llx",
                static_cast<unsigned long long>(fnv1a(payload(rec))));
  if (digest != expected) return std::nullopt;
  return rec;
}

Journal::~Journal() { close(); }

void Journal::open(const std::string& path, bool truncate) {
  close();
  int flags = O_RDWR | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) throw_io("cannot open journal", path);
  if (!truncate) {
    // Repair a torn tail (SIGKILL mid-append leaves a half-line without a
    // newline): terminate it so new records never glue onto it — the torn
    // line then simply fails its digest on the next load.
    const off_t size = ::lseek(fd, 0, SEEK_END);
    char last = '\n';
    if (size > 0 && ::pread(fd, &last, 1, size - 1) == 1 && last != '\n')
      (void)::write(fd, "\n", 1);
  }
  path_ = path;
  fd_ = fd;
}

void Journal::append(const JournalRecord& rec) {
  std::string line = journal_line(rec);
  line += '\n';
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0)
    throw InternalError(ErrorCode::kIo, "journal append on closed journal", path_);
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t n = ::write(fd_, line.data() + off, line.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_io("journal write failed", path_);
    }
    off += static_cast<std::size_t>(n);
  }
  // The fsync is the crash-safety contract: once append returns, the record
  // survives SIGKILL / power loss.
  if (::fsync(fd_) != 0) throw_io("journal fsync failed", path_);
}

void Journal::close() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

JournalContents Journal::load(const std::string& path) {
  JournalContents out;
  std::ifstream is(path);
  if (!is) return out;  // no journal yet: nothing to resume
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    ++out.lines_total;
    const std::optional<JournalRecord> rec = parse_journal_line(line);
    if (!rec.has_value()) {
      // Truncated trailing line after a crash, or corruption: drop the
      // record, the cell simply re-runs.
      ++out.lines_dropped;
      continue;
    }
    out.records[journal_key(rec->tag, rec->group, rec->graph, rec->deadline_factor,
                            rec->strategy)] = *rec;
  }
  return out;
}

}  // namespace lamps::exp
