#include "exp/experiment.hpp"

#include <map>
#include <ostream>

#include "exp/journal.hpp"
#include "graph/transform.hpp"
#include "obs/trace.hpp"
#include "stg/format.hpp"
#include "stg/suite.hpp"
#include "util/csv.hpp"
#include "util/errors.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace lamps::exp {

core::StrategyKind strategy_from_name(const std::string& name) {
  for (const core::StrategyKind k : core::kAllStrategies)
    if (name == core::to_string(k)) return k;
  throw InputError(ErrorCode::kConfig, "unknown strategy name: '" + name + "'", {},
                   "valid names: S&S, LAMPS, S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF");
}

ExperimentSpec ExperimentSpec::from_ini(const Ini& ini) {
  ExperimentSpec spec;
  spec.sizes = ini.get_size_list("suite", "sizes", spec.sizes);
  spec.graphs_per_group = ini.get_size("suite", "graphs_per_group", spec.graphs_per_group);
  spec.include_apps = ini.get_bool("suite", "include_apps", spec.include_apps);
  spec.seed = ini.get_size("suite", "seed", spec.seed);
  spec.stg_files = ini.get_string_list("suite", "stg_files", spec.stg_files);

  spec.deadline_factors =
      ini.get_double_list("experiment", "deadline_factors", spec.deadline_factors);
  spec.threads = ini.get_size("experiment", "threads", spec.threads);
  spec.cell_timeout_seconds =
      ini.get_double("experiment", "cell_timeout_seconds", spec.cell_timeout_seconds);
  spec.validate = ini.get_bool("experiment", "validate", spec.validate);
  spec.max_retries = ini.get_size("experiment", "max_retries", spec.max_retries);
  spec.retry_backoff_seconds =
      ini.get_double("experiment", "retry_backoff_seconds", spec.retry_backoff_seconds);
  if (spec.cell_timeout_seconds < 0.0)
    throw InputError(ErrorCode::kIniValue, "cell_timeout_seconds must be >= 0",
                     ini.source(), "use 0 for no watchdog");

  const std::string gran = ini.get_string("experiment", "granularity", "coarse");
  if (gran == "coarse")
    spec.granularities = {stg::kCoarseGrainCyclesPerUnit};
  else if (gran == "fine")
    spec.granularities = {stg::kFineGrainCyclesPerUnit};
  else if (gran == "both")
    spec.granularities = {stg::kCoarseGrainCyclesPerUnit, stg::kFineGrainCyclesPerUnit};
  else
    throw InputError(ErrorCode::kIniValue,
                     "unknown granularity: '" + gran + "' (coarse|fine|both)",
                     ini.source());

  if (const auto names = ini.get_string_list("experiment", "strategies", {}); !names.empty()) {
    spec.strategies.clear();
    for (const std::string& n : names) spec.strategies.push_back(strategy_from_name(n));
  }

  spec.csv_prefix = ini.get_string("output", "csv_prefix", spec.csv_prefix);
  return spec;
}

namespace {

std::string granularity_tag(Cycles unit) {
  if (unit == stg::kCoarseGrainCyclesPerUnit) return "coarse";
  if (unit == stg::kFineGrainCyclesPerUnit) return "fine";
  return std::to_string(unit);
}

void write_instances_rows(CsvWriter& csv, const std::vector<core::InstanceResult>& results,
                          const std::string& tag) {
  csv.row("granularity", "group", "graph", "deadline_factor", "strategy", "outcome",
          "error", "feasible", "energy_j", "procs", "level", "parallelism", "schedules",
          "retries", "seconds", "error_message");
  for (const auto& r : results)
    csv.row(tag, r.group, r.graph_name, r.deadline_factor, core::to_string(r.strategy),
            core::to_string(r.outcome), to_string(r.error), r.feasible ? 1 : 0,
            r.energy.value(), r.num_procs, r.level_index, fmt_fixed(r.parallelism, 4),
            r.schedules_computed, r.retries, r.seconds, r.error_message);
}

void write_instances_csv(const std::vector<core::InstanceResult>& results,
                         const std::string& path, const std::string& tag) {
  AtomicFile file(path);
  CsvWriter csv(file.stream());
  write_instances_rows(csv, results, tag);
  file.commit();
}

void write_aggregate_csv(const std::vector<core::GroupRelative>& agg,
                         const std::string& path, const std::string& tag) {
  AtomicFile file(path);
  CsvWriter csv(file.stream());
  csv.row("granularity", "group", "deadline_factor", "strategy", "mean_rel", "stddev",
          "min", "max", "graphs", "skipped");
  for (const auto& g : agg)
    csv.row(tag, g.group, g.deadline_factor, core::to_string(g.strategy),
            fmt_fixed(g.mean_relative_energy, 6), fmt_fixed(g.stddev_relative_energy, 6),
            fmt_fixed(g.min_relative_energy, 6), fmt_fixed(g.max_relative_energy, 6),
            g.num_graphs, g.num_skipped);
  file.commit();
}

/// Reads all three stopwatch clocks at the end of a phase.
PhaseClock read_clocks(const Stopwatch& watch) {
  PhaseClock c;
  c.wall_seconds = watch.elapsed_seconds();
  c.cpu_process_seconds = watch.elapsed_cpu_process_seconds();
  c.cpu_thread_seconds = watch.elapsed_cpu_thread_seconds();
  return c;
}

/// Phase clocks (wall, process-CPU, coordinating-thread-CPU) plus
/// per-strategy scheduling totals (summed over the pass's instances; CPU
/// seconds, so the sum can exceed the sweep's wall clock when run on
/// multiple threads — strategy rows leave the CPU columns blank).
void write_timing_csv(const std::vector<core::InstanceResult>& results,
                      const PhaseTiming& timing, const std::string& path,
                      const std::string& tag) {
  AtomicFile file(path);
  CsvWriter csv(file.stream());
  csv.row("granularity", "kind", "name", "wall_seconds", "cpu_process_seconds",
          "cpu_thread_seconds");
  const auto phase_row = [&](const char* name, const PhaseClock& c) {
    csv.row(tag, "phase", name, c.wall_seconds, c.cpu_process_seconds, c.cpu_thread_seconds);
  };
  phase_row("suite", timing.suite);
  phase_row("sweep", timing.sweep);
  phase_row("aggregate", timing.aggregate);
  phase_row("write", timing.write);
  std::map<core::StrategyKind, double> per_strategy;
  for (const auto& r : results) per_strategy[r.strategy] += r.seconds;
  for (const auto& [k, s] : per_strategy) csv.row(tag, "strategy", core::to_string(k), s, "", "");
  file.commit();
}

/// An stg_files entry that failed to load this pass; its sweep cells are
/// synthesized as FAIL rows so the failure is visible in every output.
struct FailedFile {
  std::string path;
  ErrorCode error{ErrorCode::kStgParse};
  std::string message;
};

/// One FAIL row per (deadline factor, strategy) for a file that could not
/// be loaded: the cells the file would have contributed, made explicit.
void synthesize_failed_cells(const FailedFile& f, const ExperimentSpec& spec,
                             std::vector<core::InstanceResult>& results) {
  for (const double factor : spec.deadline_factors)
    for (const core::StrategyKind s : spec.strategies) {
      core::InstanceResult r;
      r.group = "stg";
      r.graph_name = f.path;
      r.deadline_factor = factor;
      r.strategy = s;
      r.outcome = core::CellOutcome::kFailed;
      r.error = f.error;
      r.error_message = f.message;
      results.push_back(std::move(r));
    }
}

}  // namespace

ExperimentOutput run_experiment(const ExperimentSpec& spec, std::ostream& os) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  ExperimentOutput out;

  if (spec.resume && spec.csv_prefix.empty())
    throw InputError(ErrorCode::kConfig, "resume requires an output csv_prefix", {},
                     "set [output] csv_prefix so the journal has a location");

  // One journal for all granularity passes (records carry the pass tag).
  // Resuming keeps the existing records and appends; a fresh run truncates
  // so stale records can never shadow a reconfigured sweep.
  Journal journal;
  JournalContents previous;
  if (!spec.csv_prefix.empty()) {
    out.journal_path = spec.csv_prefix + ".journal.jsonl";
    if (spec.resume) {
      previous = Journal::load(out.journal_path);
      out.journal_lines_dropped = previous.lines_dropped;
    }
    journal.open(out.journal_path, /*truncate=*/!spec.resume);
  }

  for (const Cycles unit : spec.granularities) {
    const std::string tag = granularity_tag(unit);
    PhaseTiming timing;
    timing.tag = tag;
    Stopwatch watch;
    std::vector<core::SuiteEntry> entries;
    std::vector<FailedFile> failed_files;
    {
      obs::Span span("exp/suite");
      for (const std::size_t size : spec.sizes)
        for (auto& g : stg::make_random_group(size, spec.graphs_per_group, spec.seed))
          entries.push_back(
              core::SuiteEntry{std::to_string(size), graph::scale_weights(g, unit)});
      if (spec.include_apps)
        for (auto& g : stg::application_graphs()) {
          const std::string group = g.name();
          entries.push_back(core::SuiteEntry{group, graph::scale_weights(g, unit)});
        }
      // Extra .stg files, isolated per file: one malformed file costs its
      // own cells (synthesized FAIL rows below), never the experiment.
      for (const std::string& path : spec.stg_files) {
        try {
          entries.push_back(
              core::SuiteEntry{"stg", graph::scale_weights(stg::read_stg_file(path), unit)});
        } catch (const Error& e) {
          failed_files.push_back(FailedFile{path, e.code(), e.message()});
          os << "warning: skipping " << path << ": " << e.what() << "\n";
        }
      }
    }
    timing.suite = read_clocks(watch);

    core::SweepConfig cfg;
    cfg.deadline_factors = spec.deadline_factors;
    cfg.strategies = spec.strategies;
    cfg.threads = spec.threads;
    cfg.cell_timeout_seconds = spec.cell_timeout_seconds;
    cfg.validate = spec.validate;
    cfg.max_retries = spec.max_retries;
    cfg.retry_backoff_seconds = spec.retry_backoff_seconds;
    if (spec.resume && !previous.records.empty()) {
      // Cells whose journaled outcome is OK are skipped by the sweep and
      // replayed below; failed/timed-out/missing cells re-run.
      const auto* records = &previous.records;
      cfg.skip_cell = [records, tag](const core::InstanceResult& r) {
        const auto it = records->find(journal_key(tag, r));
        return it != records->end() && it->second.outcome == core::CellOutcome::kOk;
      };
    }
    if (journal.is_open())
      cfg.on_cell_done = [&journal, tag](const core::InstanceResult& r) {
        journal.append(make_journal_record(tag, r));
      };

    watch.reset();
    std::vector<core::InstanceResult> results;
    {
      obs::Span span("exp/sweep");
      results = core::run_sweep(entries, model, ladder, cfg);
    }
    // Replay journaled results into the skipped slots — the record stores
    // doubles at %.17g, so the restored row is bit-identical to the one the
    // interrupted run produced.
    std::size_t replayed = 0;
    if (spec.resume && !previous.records.empty())
      for (core::InstanceResult& r : results)
        if (r.outcome == core::CellOutcome::kSkipped) {
          const auto it = previous.records.find(journal_key(tag, r));
          if (it != previous.records.end()) {
            r = restore_instance(it->second);
            ++replayed;
          }
        }
    out.cells.replayed += replayed;
    // Cells lost to unloadable stg_files, appended in deterministic order
    // (file, then factor, then strategy) and journaled like executed cells.
    for (const FailedFile& f : failed_files) synthesize_failed_cells(f, spec, results);
    if (journal.is_open())
      for (std::size_t i = results.size() -
                           failed_files.size() * spec.deadline_factors.size() *
                               spec.strategies.size();
           i < results.size(); ++i)
        journal.append(make_journal_record(tag, results[i]));
    for (const core::InstanceResult& r : results) {
      switch (r.outcome) {
        case core::CellOutcome::kOk:
          ++out.cells.ok;
          break;
        case core::CellOutcome::kFailed:
          ++out.cells.failed;
          break;
        case core::CellOutcome::kTimeout:
          ++out.cells.timeout;
          break;
        case core::CellOutcome::kSkipped:
          break;  // resume slot with no journaled record (counted nowhere)
      }
    }
    timing.sweep = read_clocks(watch);
    watch.reset();
    std::vector<core::GroupRelative> agg;
    {
      obs::Span span("exp/aggregate");
      agg = core::aggregate_relative(results);
    }
    timing.aggregate = read_clocks(watch);

    watch.reset();
    obs::Span write_span("exp/write");
    os << "== " << tag << " grain: " << entries.size() << " graphs x "
       << spec.deadline_factors.size() << " deadlines x " << spec.strategies.size()
       << " strategies ==\n";
    TextTable table({"group", "deadline", "strategy", "mean vs S&S", "stddev", "graphs"});
    for (const auto& g : agg)
      table.row(g.group, g.deadline_factor, core::to_string(g.strategy),
                fmt_percent(g.mean_relative_energy),
                fmt_fixed(g.stddev_relative_energy, 3), g.num_graphs);
    table.print(os);

    // Failed cells are first-class output: list every one with its code so
    // a bad run can never masquerade as a clean table.
    for (const auto& r : results)
      if (r.outcome == core::CellOutcome::kFailed ||
          r.outcome == core::CellOutcome::kTimeout)
        os << core::to_string(r.outcome) << " cell: " << r.graph_name << " / "
           << core::to_string(r.strategy) << " / d=" << r.deadline_factor << ": "
           << to_string(r.error) << " " << r.error_message << "\n";
    if (replayed > 0) os << "replayed " << replayed << " cells from " << out.journal_path
                         << "\n";

    if (!spec.csv_prefix.empty()) {
      const std::string inst_path = spec.csv_prefix + "_" + tag + "_instances.csv";
      const std::string agg_path = spec.csv_prefix + "_" + tag + "_groups.csv";
      write_instances_csv(results, inst_path, tag);
      write_aggregate_csv(agg, agg_path, tag);
      out.csv_files_written.push_back(inst_path);
      out.csv_files_written.push_back(agg_path);
      os << "wrote " << inst_path << " and " << agg_path << "\n";
    }
    timing.write = read_clocks(watch);

    os << "timing: suite " << fmt_fixed(timing.suite.wall_seconds, 3) << " s, sweep "
       << fmt_fixed(timing.sweep.wall_seconds, 3) << " s (cpu "
       << fmt_fixed(timing.sweep.cpu_process_seconds, 3) << " s), aggregate "
       << fmt_fixed(timing.aggregate.wall_seconds, 3) << " s, write "
       << fmt_fixed(timing.write.wall_seconds, 3) << " s\n";
    if (!spec.csv_prefix.empty()) {
      const std::string timing_path = spec.csv_prefix + "_" + tag + "_timing.csv";
      write_timing_csv(results, timing, timing_path, tag);
      out.csv_files_written.push_back(timing_path);
      os << "wrote " << timing_path << "\n";
    }

    out.instances.insert(out.instances.end(), results.begin(), results.end());
    out.aggregated.insert(out.aggregated.end(), agg.begin(), agg.end());
    out.timings.push_back(timing);
  }

  os << "cells: " << out.cells.ok << " ok, " << out.cells.failed << " failed, "
     << out.cells.timeout << " timeout, " << out.cells.replayed << " replayed\n";
  if (out.journal_lines_dropped > 0)
    os << "journal: dropped " << out.journal_lines_dropped
       << " corrupt/truncated record(s); those cells re-ran\n";
  return out;
}

}  // namespace lamps::exp
