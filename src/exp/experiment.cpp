#include "exp/experiment.hpp"

#include <ostream>
#include <stdexcept>

#include <map>

#include "graph/transform.hpp"
#include "obs/trace.hpp"
#include "stg/suite.hpp"
#include "util/csv.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace lamps::exp {

core::StrategyKind strategy_from_name(const std::string& name) {
  for (const core::StrategyKind k : core::kAllStrategies)
    if (name == core::to_string(k)) return k;
  throw std::runtime_error("unknown strategy name: '" + name + "'");
}

ExperimentSpec ExperimentSpec::from_ini(const Ini& ini) {
  ExperimentSpec spec;
  spec.sizes = ini.get_size_list("suite", "sizes", spec.sizes);
  spec.graphs_per_group = ini.get_size("suite", "graphs_per_group", spec.graphs_per_group);
  spec.include_apps = ini.get_bool("suite", "include_apps", spec.include_apps);
  spec.seed = ini.get_size("suite", "seed", spec.seed);

  spec.deadline_factors =
      ini.get_double_list("experiment", "deadline_factors", spec.deadline_factors);
  spec.threads = ini.get_size("experiment", "threads", spec.threads);

  const std::string gran = ini.get_string("experiment", "granularity", "coarse");
  if (gran == "coarse")
    spec.granularities = {stg::kCoarseGrainCyclesPerUnit};
  else if (gran == "fine")
    spec.granularities = {stg::kFineGrainCyclesPerUnit};
  else if (gran == "both")
    spec.granularities = {stg::kCoarseGrainCyclesPerUnit, stg::kFineGrainCyclesPerUnit};
  else
    throw std::runtime_error("unknown granularity: '" + gran + "' (coarse|fine|both)");

  if (const auto names = ini.get_string_list("experiment", "strategies", {}); !names.empty()) {
    spec.strategies.clear();
    for (const std::string& n : names) spec.strategies.push_back(strategy_from_name(n));
  }

  spec.csv_prefix = ini.get_string("output", "csv_prefix", spec.csv_prefix);
  return spec;
}

namespace {

std::string granularity_tag(Cycles unit) {
  if (unit == stg::kCoarseGrainCyclesPerUnit) return "coarse";
  if (unit == stg::kFineGrainCyclesPerUnit) return "fine";
  return std::to_string(unit);
}

void write_instances_csv(const std::vector<core::InstanceResult>& results,
                         const std::string& path, const std::string& tag) {
  std::ofstream os = open_csv(path);
  CsvWriter csv(os);
  csv.row("granularity", "group", "graph", "deadline_factor", "strategy", "feasible",
          "energy_j", "procs", "level", "parallelism", "schedules", "seconds");
  for (const auto& r : results)
    csv.row(tag, r.group, r.graph_name, r.deadline_factor, core::to_string(r.strategy),
            r.feasible ? 1 : 0, r.energy.value(), r.num_procs, r.level_index,
            fmt_fixed(r.parallelism, 4), r.schedules_computed, r.seconds);
}

void write_aggregate_csv(const std::vector<core::GroupRelative>& agg,
                         const std::string& path, const std::string& tag) {
  std::ofstream os = open_csv(path);
  CsvWriter csv(os);
  csv.row("granularity", "group", "deadline_factor", "strategy", "mean_rel", "stddev",
          "min", "max", "graphs", "skipped");
  for (const auto& g : agg)
    csv.row(tag, g.group, g.deadline_factor, core::to_string(g.strategy),
            fmt_fixed(g.mean_relative_energy, 6), fmt_fixed(g.stddev_relative_energy, 6),
            fmt_fixed(g.min_relative_energy, 6), fmt_fixed(g.max_relative_energy, 6),
            g.num_graphs, g.num_skipped);
}

/// Reads all three stopwatch clocks at the end of a phase.
PhaseClock read_clocks(const Stopwatch& watch) {
  PhaseClock c;
  c.wall_seconds = watch.elapsed_seconds();
  c.cpu_process_seconds = watch.elapsed_cpu_process_seconds();
  c.cpu_thread_seconds = watch.elapsed_cpu_thread_seconds();
  return c;
}

/// Phase clocks (wall, process-CPU, coordinating-thread-CPU) plus
/// per-strategy scheduling totals (summed over the pass's instances; CPU
/// seconds, so the sum can exceed the sweep's wall clock when run on
/// multiple threads — strategy rows leave the CPU columns blank).
void write_timing_csv(const std::vector<core::InstanceResult>& results,
                      const PhaseTiming& timing, const std::string& path,
                      const std::string& tag) {
  std::ofstream os = open_csv(path);
  CsvWriter csv(os);
  csv.row("granularity", "kind", "name", "wall_seconds", "cpu_process_seconds",
          "cpu_thread_seconds");
  const auto phase_row = [&](const char* name, const PhaseClock& c) {
    csv.row(tag, "phase", name, c.wall_seconds, c.cpu_process_seconds, c.cpu_thread_seconds);
  };
  phase_row("suite", timing.suite);
  phase_row("sweep", timing.sweep);
  phase_row("aggregate", timing.aggregate);
  phase_row("write", timing.write);
  std::map<core::StrategyKind, double> per_strategy;
  for (const auto& r : results) per_strategy[r.strategy] += r.seconds;
  for (const auto& [k, s] : per_strategy) csv.row(tag, "strategy", core::to_string(k), s, "", "");
}

}  // namespace

ExperimentOutput run_experiment(const ExperimentSpec& spec, std::ostream& os) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  ExperimentOutput out;

  for (const Cycles unit : spec.granularities) {
    const std::string tag = granularity_tag(unit);
    PhaseTiming timing;
    timing.tag = tag;
    Stopwatch watch;
    std::vector<core::SuiteEntry> entries;
    {
      obs::Span span("exp/suite");
      for (const std::size_t size : spec.sizes)
        for (auto& g : stg::make_random_group(size, spec.graphs_per_group, spec.seed))
          entries.push_back(
              core::SuiteEntry{std::to_string(size), graph::scale_weights(g, unit)});
      if (spec.include_apps)
        for (auto& g : stg::application_graphs()) {
          const std::string group = g.name();
          entries.push_back(core::SuiteEntry{group, graph::scale_weights(g, unit)});
        }
    }
    timing.suite = read_clocks(watch);

    core::SweepConfig cfg;
    cfg.deadline_factors = spec.deadline_factors;
    cfg.strategies = spec.strategies;
    cfg.threads = spec.threads;
    watch.reset();
    std::vector<core::InstanceResult> results;
    {
      obs::Span span("exp/sweep");
      results = core::run_sweep(entries, model, ladder, cfg);
    }
    timing.sweep = read_clocks(watch);
    watch.reset();
    std::vector<core::GroupRelative> agg;
    {
      obs::Span span("exp/aggregate");
      agg = core::aggregate_relative(results);
    }
    timing.aggregate = read_clocks(watch);

    watch.reset();
    obs::Span write_span("exp/write");
    os << "== " << tag << " grain: " << entries.size() << " graphs x "
       << spec.deadline_factors.size() << " deadlines x " << spec.strategies.size()
       << " strategies ==\n";
    TextTable table({"group", "deadline", "strategy", "mean vs S&S", "stddev", "graphs"});
    for (const auto& g : agg)
      table.row(g.group, g.deadline_factor, core::to_string(g.strategy),
                fmt_percent(g.mean_relative_energy),
                fmt_fixed(g.stddev_relative_energy, 3), g.num_graphs);
    table.print(os);

    if (!spec.csv_prefix.empty()) {
      const std::string inst_path = spec.csv_prefix + "_" + tag + "_instances.csv";
      const std::string agg_path = spec.csv_prefix + "_" + tag + "_groups.csv";
      write_instances_csv(results, inst_path, tag);
      write_aggregate_csv(agg, agg_path, tag);
      out.csv_files_written.push_back(inst_path);
      out.csv_files_written.push_back(agg_path);
      os << "wrote " << inst_path << " and " << agg_path << "\n";
    }
    timing.write = read_clocks(watch);

    os << "timing: suite " << fmt_fixed(timing.suite.wall_seconds, 3) << " s, sweep "
       << fmt_fixed(timing.sweep.wall_seconds, 3) << " s (cpu "
       << fmt_fixed(timing.sweep.cpu_process_seconds, 3) << " s), aggregate "
       << fmt_fixed(timing.aggregate.wall_seconds, 3) << " s, write "
       << fmt_fixed(timing.write.wall_seconds, 3) << " s\n";
    if (!spec.csv_prefix.empty()) {
      const std::string timing_path = spec.csv_prefix + "_" + tag + "_timing.csv";
      write_timing_csv(results, timing, timing_path, tag);
      out.csv_files_written.push_back(timing_path);
      os << "wrote " << timing_path << "\n";
    }

    out.instances.insert(out.instances.end(), results.begin(), results.end());
    out.aggregated.insert(out.aggregated.end(), agg.begin(), agg.end());
    out.timings.push_back(timing);
  }
  return out;
}

}  // namespace lamps::exp
