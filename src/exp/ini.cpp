#include "exp/ini.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/errors.hpp"

namespace lamps::exp {

namespace {

std::string trim(std::string_view sv) {
  const auto is_space = [](char c) { return std::isspace(static_cast<unsigned char>(c)) != 0; };
  while (!sv.empty() && is_space(sv.front())) sv.remove_prefix(1);
  while (!sv.empty() && is_space(sv.back())) sv.remove_suffix(1);
  return std::string(sv);
}

std::string strip_comment(const std::string& line) {
  const auto pos = line.find_first_of(";#");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

[[noreturn]] void fail(const std::string& source, std::size_t line_no,
                       const std::string& what, const std::string& hint = {}) {
  throw InputError(ErrorCode::kIniParse, what, source + ":" + std::to_string(line_no),
                   hint);
}

[[noreturn]] void fail_value(const std::string& source, const std::string& section,
                             const std::string& key, const std::string& what) {
  throw InputError(ErrorCode::kIniValue, "[" + section + "] " + key + " " + what, source);
}

std::vector<std::string> split_list(const std::string& value) {
  std::vector<std::string> out;
  std::stringstream ss(value);
  std::string item;
  while (std::getline(ss, item, ',')) {
    item = trim(item);
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

double parse_double(const std::string& source, const std::string& section,
                    const std::string& key, const std::string& value) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (value.empty() || end != value.c_str() + value.size())
    fail_value(source, section, key, "is not a number: '" + value + "'");
  return v;
}

std::size_t parse_size(const std::string& source, const std::string& section,
                       const std::string& key, const std::string& value) {
  std::size_t v = 0;
  const auto [ptr, ec] = std::from_chars(value.data(), value.data() + value.size(), v);
  if (ec != std::errc{} || ptr != value.data() + value.size())
    fail_value(source, section, key, "is not a non-negative integer: '" + value + "'");
  return v;
}

}  // namespace

Ini Ini::parse(std::istream& is, const std::string& source) {
  Ini ini;
  ini.source_ = source;
  std::string raw;
  std::string section;
  std::size_t line_no = 0;
  // First-definition line of every key, to report both sides of a duplicate.
  std::map<std::string, std::map<std::string, std::size_t>> defined_at;
  while (std::getline(is, raw)) {
    ++line_no;
    const std::string line = trim(strip_comment(raw));
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']') fail(source, line_no, "unterminated section header");
      section = trim(std::string_view(line).substr(1, line.size() - 2));
      if (section.empty()) fail(source, line_no, "empty section name");
      ini.data_[section];  // register even if empty
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) fail(source, line_no, "expected key = value");
    if (section.empty()) fail(source, line_no, "key outside any [section]");
    const std::string key = trim(std::string_view(line).substr(0, eq));
    const std::string value = trim(std::string_view(line).substr(eq + 1));
    if (key.empty()) fail(source, line_no, "empty key");
    const auto [it, inserted] = defined_at[section].emplace(key, line_no);
    if (!inserted)
      fail(source, line_no,
           "duplicate key '" + key + "' in [" + section + "] (first defined on line " +
               std::to_string(it->second) + ")",
           "remove one of the assignments; later values no longer override earlier ones");
    ini.data_[section][key] = value;
  }
  return ini;
}

Ini Ini::parse_string(const std::string& text, const std::string& source) {
  std::istringstream is(text);
  return parse(is, source);
}

Ini Ini::parse_file(const std::string& path) {
  std::ifstream is(path);
  if (!is)
    throw InputError(ErrorCode::kConfig, "cannot open config file", path,
                     "check the path passed to --config / the tool argument");
  return parse(is, path);
}

bool Ini::has_section(const std::string& section) const {
  return data_.find(section) != data_.end();
}

std::optional<std::string> Ini::get(const std::string& section, const std::string& key) const {
  const auto s = data_.find(section);
  if (s == data_.end()) return std::nullopt;
  const auto k = s->second.find(key);
  if (k == s->second.end()) return std::nullopt;
  return k->second;
}

std::string Ini::get_string(const std::string& section, const std::string& key,
                            const std::string& fallback) const {
  return get(section, key).value_or(fallback);
}

double Ini::get_double(const std::string& section, const std::string& key,
                       double fallback) const {
  const auto v = get(section, key);
  return v ? parse_double(source_, section, key, *v) : fallback;
}

std::size_t Ini::get_size(const std::string& section, const std::string& key,
                          std::size_t fallback) const {
  const auto v = get(section, key);
  return v ? parse_size(source_, section, key, *v) : fallback;
}

bool Ini::get_bool(const std::string& section, const std::string& key, bool fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "true" || lower == "1" || lower == "yes" || lower == "on") return true;
  if (lower == "false" || lower == "0" || lower == "no" || lower == "off") return false;
  fail_value(source_, section, key, "is not a boolean: '" + *v + "'");
}

std::vector<double> Ini::get_double_list(const std::string& section, const std::string& key,
                                         std::vector<double> fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  std::vector<double> out;
  for (const std::string& item : split_list(*v))
    out.push_back(parse_double(source_, section, key, item));
  return out;
}

std::vector<std::size_t> Ini::get_size_list(const std::string& section,
                                            const std::string& key,
                                            std::vector<std::size_t> fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  std::vector<std::size_t> out;
  for (const std::string& item : split_list(*v))
    out.push_back(parse_size(source_, section, key, item));
  return out;
}

std::vector<std::string> Ini::get_string_list(const std::string& section,
                                              const std::string& key,
                                              std::vector<std::string> fallback) const {
  const auto v = get(section, key);
  if (!v) return fallback;
  return split_list(*v);
}

std::vector<std::string> Ini::sections() const {
  std::vector<std::string> out;
  out.reserve(data_.size());
  for (const auto& [name, _] : data_) out.push_back(name);
  return out;
}

}  // namespace lamps::exp
