// Standard Task Graph Set file format (Kasahara Lab, Waseda University).
//
// An .stg file lists n + 2 tasks: task 0 is a zero-weight dummy entry node,
// task n+1 a zero-weight dummy exit node.  Each line reads
//
//     <task-id> <processing-time> <num-predecessors> <pred-id> ...
//
// preceded by a first line holding n (the number of real tasks).  Lines
// starting with '#' are comments.  We read and write this format exactly so
// graphs interchange with the original STG distribution; parsing can
// optionally strip the dummy entry/exit nodes (they carry no work and the
// schedulers handle multi-source/multi-sink graphs natively).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/task_graph.hpp"

namespace lamps::stg {

struct ParseOptions {
  /// Remove the zero-weight dummy entry/exit tasks while preserving the
  /// precedence relation they encode.
  bool strip_dummies{true};
  /// Name given to the resulting graph.
  std::string name{"stg"};
};

/// Parses one .stg stream with strict validation: whole-token numbers,
/// consecutive task ids, declared predecessor counts, no duplicate or
/// dangling predecessors, no self-loops/cycles.  Throws
/// lamps::InputError(kStgParse) with "<name>:<line>" context on malformed
/// input and lamps::InputError(kGraphStructure) when the file parses but
/// is not a valid task DAG.
[[nodiscard]] graph::TaskGraph read_stg(std::istream& is, const ParseOptions& opts = {});

/// Parses an .stg file from disk.  Throws lamps::InputError when the file
/// cannot be opened or read_stg rejects it.
[[nodiscard]] graph::TaskGraph read_stg_file(const std::string& path,
                                             const ParseOptions& opts = {});

/// Writes `g` in STG syntax, adding the dummy entry/exit tasks expected by
/// the format (task ids are shifted by one accordingly).
void write_stg(const graph::TaskGraph& g, std::ostream& os);

}  // namespace lamps::stg
