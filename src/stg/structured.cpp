#include "stg/structured.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace lamps::stg {

namespace {

void require(bool cond, const char* what) {
  if (!cond) throw std::invalid_argument(what);
}

}  // namespace

graph::TaskGraph gaussian_elimination(std::size_t n, Cycles pivot_weight,
                                      Cycles update_weight) {
  require(n >= 2, "gaussian_elimination: need n >= 2");
  graph::TaskGraphBuilder b("gauss" + std::to_string(n));
  // Step k (k = 0..n-2): pivot task P_k, then updates U_{k,j} for the
  // remaining n-1-k rows.  P_k depends on U_{k-1,*}; U_{k,j} depends on P_k
  // and on U_{k-1,j'} of the same row (simplified to: all previous-step
  // updates feed the pivot, the pivot feeds all current-step updates, and
  // each update feeds the corresponding next-step update).
  std::vector<graph::TaskId> prev_updates;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const graph::TaskId pivot =
        b.add_task(pivot_weight, "P" + std::to_string(k));
    for (const graph::TaskId u : prev_updates) b.add_edge(u, pivot);
    std::vector<graph::TaskId> updates;
    const std::size_t rows = n - 1 - k;
    updates.reserve(rows);
    for (std::size_t j = 0; j < rows; ++j) {
      const graph::TaskId u =
          b.add_task(update_weight, "U" + std::to_string(k) + "_" + std::to_string(j));
      b.add_edge(pivot, u);
      // Row j of step k corresponds to row j+1's update of step k-1 (row 0
      // of the previous step became this step's pivot row); the previous
      // step had exactly rows+1 updates, so the index is always in range.
      if (!prev_updates.empty()) b.add_edge(prev_updates[j + 1], u);
      updates.push_back(u);
    }
    prev_updates = std::move(updates);
  }
  return b.build();
}

graph::TaskGraph fft_butterfly(std::size_t stages, Cycles weight) {
  require(stages >= 1 && stages < 20, "fft_butterfly: stages in [1, 20)");
  const std::size_t n = std::size_t{1} << stages;
  graph::TaskGraphBuilder b("fft" + std::to_string(n));
  std::vector<graph::TaskId> prev(n), cur(n);
  for (std::size_t i = 0; i < n; ++i)
    prev[i] = b.add_task(weight, "in" + std::to_string(i));
  for (std::size_t r = 1; r <= stages; ++r) {
    const std::size_t stride = std::size_t{1} << (r - 1);
    for (std::size_t i = 0; i < n; ++i) {
      cur[i] = b.add_task(weight, "b" + std::to_string(r) + "_" + std::to_string(i));
      b.add_edge(prev[i], cur[i]);
      b.add_edge(prev[i ^ stride], cur[i]);
    }
    prev = cur;
  }
  return b.build();
}

graph::TaskGraph out_tree(std::size_t depth, Cycles weight) {
  require(depth >= 1 && depth < 24, "out_tree: depth in [1, 24)");
  graph::TaskGraphBuilder b("outtree" + std::to_string(depth));
  const std::size_t n = (std::size_t{1} << depth) - 1;
  for (std::size_t i = 0; i < n; ++i) (void)b.add_task(weight);
  for (std::size_t i = 0; 2 * i + 2 < n; ++i) {
    b.add_edge(static_cast<graph::TaskId>(i), static_cast<graph::TaskId>(2 * i + 1));
    b.add_edge(static_cast<graph::TaskId>(i), static_cast<graph::TaskId>(2 * i + 2));
  }
  return b.build();
}

graph::TaskGraph in_tree(std::size_t depth, Cycles weight) {
  require(depth >= 1 && depth < 24, "in_tree: depth in [1, 24)");
  graph::TaskGraphBuilder b("intree" + std::to_string(depth));
  const std::size_t n = (std::size_t{1} << depth) - 1;
  for (std::size_t i = 0; i < n; ++i) (void)b.add_task(weight);
  for (std::size_t i = 0; 2 * i + 2 < n; ++i) {
    b.add_edge(static_cast<graph::TaskId>(2 * i + 1), static_cast<graph::TaskId>(i));
    b.add_edge(static_cast<graph::TaskId>(2 * i + 2), static_cast<graph::TaskId>(i));
  }
  return b.build();
}

graph::TaskGraph divide_and_conquer(std::size_t depth, Cycles node_weight,
                                    Cycles leaf_weight) {
  require(depth >= 1 && depth < 22, "divide_and_conquer: depth in [1, 22)");
  graph::TaskGraphBuilder b("dnc" + std::to_string(depth));
  // Split tree: ids 0 .. 2^depth - 2 in heap order; leaves of the split
  // tree carry the leaf work; then a mirrored merge tree.
  const std::size_t tree = (std::size_t{1} << depth) - 1;
  const std::size_t first_leaf = (std::size_t{1} << (depth - 1)) - 1;
  std::vector<graph::TaskId> split(tree), merge(tree);
  for (std::size_t i = 0; i < tree; ++i)
    split[i] = b.add_task(i >= first_leaf ? leaf_weight : node_weight,
                          "s" + std::to_string(i));
  for (std::size_t i = 0; i < tree; ++i)
    merge[i] = b.add_task(i >= first_leaf ? 0 : node_weight, "m" + std::to_string(i));
  for (std::size_t i = 0; 2 * i + 2 < tree; ++i) {
    b.add_edge(split[i], split[2 * i + 1]);
    b.add_edge(split[i], split[2 * i + 2]);
    b.add_edge(merge[2 * i + 1], merge[i]);
    b.add_edge(merge[2 * i + 2], merge[i]);
  }
  // Each split leaf hands its result to the corresponding merge leaf.
  for (std::size_t i = first_leaf; i < tree; ++i) b.add_edge(split[i], merge[i]);
  return b.build();
}

graph::TaskGraph wavefront(std::size_t width, std::size_t height, Cycles weight) {
  require(width >= 1 && height >= 1 && width * height <= (1u << 22),
          "wavefront: grid too large or empty");
  graph::TaskGraphBuilder b("wave" + std::to_string(width) + "x" + std::to_string(height));
  const auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<graph::TaskId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x) (void)b.add_task(weight);
  for (std::size_t y = 0; y < height; ++y)
    for (std::size_t x = 0; x < width; ++x) {
      if (x > 0) b.add_edge(id(x - 1, y), id(x, y));
      if (y > 0) b.add_edge(id(x, y - 1), id(x, y));
    }
  return b.build();
}

}  // namespace lamps::stg
