// Synthetic stand-ins for the STG application graphs (fpppp, robot,
// sparse).
//
// The original files are not redistributable here (DESIGN.md section 6);
// instead we synthesize graphs that match the four statistics the paper's
// Table 2 reports — node count, edge count, critical path length, total
// work — *exactly*.  The paper's analysis attributes all behavioural
// differences between these benchmarks to exactly these statistics (in
// particular the average parallelism W/CPL), so matching them preserves
// the experiments.
//
// Construction ("spine and rungs"): a critical chain of K spine tasks whose
// weights sum to the CPL; the remaining nodes hang as rungs between two
// spine tasks chosen so that the detour through the rung is never longer
// than the spine segment it bypasses (hence the CPL is exact); any
// remaining edge budget becomes forward "skip" edges along the spine, which
// can only shorten paths.  See synthesize_app_graph for the K selection
// rules.
#pragma once

#include <cstdint>
#include <string>

#include "graph/task_graph.hpp"

namespace lamps::stg {

struct AppGraphSpec {
  std::string name;
  std::size_t nodes{0};
  std::size_t edges{0};
  Cycles cpl{0};   ///< critical path length (STG weight units)
  Cycles work{0};  ///< total work (STG weight units)
  std::uint64_t seed{0};
};

/// Table 2 specs for the three STG application graphs.
[[nodiscard]] AppGraphSpec fpppp_spec();
[[nodiscard]] AppGraphSpec robot_spec();
[[nodiscard]] AppGraphSpec sparse_spec();

/// Synthesizes a graph matching the spec exactly (node count, edge count,
/// CPL and total work are all reproduced bit-exactly; unit tests pin this).
/// Throws std::invalid_argument if the four statistics are mutually
/// unsatisfiable under the spine-and-rungs construction.
[[nodiscard]] graph::TaskGraph synthesize_app_graph(const AppGraphSpec& spec);

}  // namespace lamps::stg
