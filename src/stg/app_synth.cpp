#include "stg/app_synth.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace lamps::stg {

namespace {

/// Splits `total` into `parts` positive integers as evenly as possible.
std::vector<Cycles> even_split(Cycles total, std::size_t parts) {
  std::vector<Cycles> out(parts, total / parts);
  const auto rem = static_cast<std::size_t>(total % parts);
  for (std::size_t i = 0; i < rem; ++i) ++out[i];
  return out;
}

}  // namespace

AppGraphSpec fpppp_spec() { return {"fpppp", 334, 1196, 1062, 7113, 0xf999u}; }
AppGraphSpec robot_spec() { return {"robot", 88, 130, 545, 2459, 0x0b07u}; }
AppGraphSpec sparse_spec() { return {"sparse", 96, 128, 122, 1920, 0x59a5u}; }

graph::TaskGraph synthesize_app_graph(const AppGraphSpec& spec) {
  const std::size_t n = spec.nodes;
  const std::size_t e_target = spec.edges;
  if (n < 2 || spec.cpl == 0 || spec.work < spec.cpl)
    throw std::invalid_argument("synthesize_app_graph: degenerate spec");

  // ---- Choose the spine length K.
  //   edges(K) = (K-1) chain + 2*(n-K) rungs + extra skip edges, so the
  //   zero-skip baseline is 2n-K-1; K must satisfy:
  //     (a) K >= 2n-1-E            (never need negative skip edges)
  //     (b) K >= n-(W-C)           (every rung weight >= 1)
  //     (c) K <= C                 (every spine weight >= 1)
  //     (d) skip budget E-(2n-K-1) fits in (K-1)(K-2)/2 available pairs
  //     (e) the heaviest rung fits between two spine points.
  const auto work_extra = spec.work - spec.cpl;
  std::size_t k_min = 2;
  if (2 * n >= e_target + 1) k_min = std::max(k_min, 2 * n - 1 - e_target);
  if (n > static_cast<std::size_t>(work_extra))
    k_min = std::max(k_min, n - static_cast<std::size_t>(work_extra));
  const std::size_t k_max = std::min<std::size_t>(n, static_cast<std::size_t>(spec.cpl));

  std::size_t k = 0;
  for (std::size_t cand = k_min; cand <= k_max; ++cand) {
    const std::size_t baseline = 2 * n - cand - 1;
    if (e_target < baseline) continue;  // unreachable given (a), but keep the guard
    const std::size_t skip_needed = e_target - baseline;
    const std::size_t skip_capacity = (cand - 1) * (cand - 2) / 2;
    if (skip_needed > skip_capacity) continue;
    const std::size_t m = n - cand;
    if (m == 0 && work_extra != 0) continue;  // nowhere to put the off-spine work
    if (m > 0) {
      const Cycles w_max_rung = (work_extra + m - 1) / m;  // ceil
      const Cycles spine_max = (spec.cpl + cand - 1) / cand;
      // Largest interior span available between the first and last spine task.
      if (spec.cpl < 2 * spine_max || spec.cpl - 2 * spine_max < w_max_rung) continue;
    }
    k = cand;
    break;
  }
  if (k == 0)
    throw std::invalid_argument("synthesize_app_graph: statistics unsatisfiable (" + spec.name +
                                ")");

  const std::size_t m = n - k;
  const std::vector<Cycles> spine_w = even_split(spec.cpl, k);
  const std::vector<Cycles> rung_w = m > 0 ? even_split(work_extra, m) : std::vector<Cycles>{};

  // prefix[i] = sum of spine weights 0..i (inclusive): the longest-path
  // distance from the source through spine task i.
  std::vector<Cycles> prefix(k);
  Cycles acc = 0;
  for (std::size_t i = 0; i < k; ++i) {
    acc += spine_w[i];
    prefix[i] = acc;
  }

  graph::TaskGraphBuilder b(spec.name);
  std::vector<graph::TaskId> spine(k);
  for (std::size_t i = 0; i < k; ++i)
    spine[i] = b.add_task(spine_w[i], "s" + std::to_string(i));
  std::vector<graph::TaskId> rung(m);
  for (std::size_t t = 0; t < m; ++t)
    rung[t] = b.add_task(rung_w[t], "r" + std::to_string(t));

  for (std::size_t i = 0; i + 1 < k; ++i) b.add_edge(spine[i], spine[i + 1]);

  // ---- Rungs: spread attachment points along the spine; for a rung of
  // weight w hanging between spine[i] and spine[j], the detour length is
  // prefix[i] + w + (CPL - prefix[j-1]); requiring
  // prefix[j-1] - prefix[i] >= w keeps the CPL exact.
  Rng rng(spec.seed);
  for (std::size_t t = 0; t < m; ++t) {
    const Cycles w = rung_w[t];
    // Preferred start: spread evenly, with a +-1 seeded jitter for variety.
    std::size_t i = m > 1 ? (t * (k - 2)) / (m - 1) : 0;
    if (i > 0 && i < k - 3 && rng.bernoulli(0.5)) ++i;
    auto fits = [&](std::size_t a) {
      // Smallest j with prefix[j-1] - prefix[a] >= w must satisfy j <= k-1.
      return prefix[k - 2] - prefix[a] >= w;
    };
    while (i > 0 && !fits(i)) --i;
    if (!fits(i))
      throw std::logic_error("synthesize_app_graph: internal rung placement failure");
    std::size_t j = i + 2;  // j-1 >= i+1: at least one spine task in between
    while (prefix[j - 1] - prefix[i] < w) ++j;
    b.add_edge(spine[i], rung[t]);
    b.add_edge(rung[t], spine[j]);
  }

  // ---- Skip edges along the spine to land exactly on the edge budget.
  std::size_t remaining = e_target - (k - 1) - 2 * m;
  for (std::size_t gap = 2; gap < k && remaining > 0; ++gap)
    for (std::size_t i = 0; i + gap < k && remaining > 0; ++i) {
      b.add_edge(spine[i], spine[i + gap]);
      --remaining;
    }
  if (remaining != 0)
    throw std::logic_error("synthesize_app_graph: internal skip-edge budget failure");

  return b.build();
}

}  // namespace lamps::stg
