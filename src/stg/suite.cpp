#include "stg/suite.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace lamps::stg {

std::vector<std::size_t> figure_group_sizes() {
  return {50, 100, 500, 1000, 2000, 2500, 5000};
}

std::vector<RandomGraphSpec> random_group_specs(std::size_t size, std::size_t count,
                                                std::uint64_t master_seed) {
  std::vector<RandomGraphSpec> specs;
  specs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    // Stable per-graph seed stream: independent of `count`.
    SplitMix64 sm(master_seed ^ (0x9e3779b97f4a7c15ULL * (size + 1)) ^ (i * 0x100000001b3ULL));
    Rng rng(sm.next());

    RandomGraphSpec s;
    s.name = "rand" + std::to_string(size) + "_" + std::to_string(i);
    s.num_tasks = size;
    s.seed = sm.next();

    switch (i % 4) {
      case 0:
        s.method = GenMethod::kSameProb;
        break;
      case 1:
        s.method = GenMethod::kSamePred;
        break;
      case 2:
        s.method = GenMethod::kLayrProb;
        break;
      default:
        s.method = GenMethod::kLayrPred;
        break;
    }

    // Parallelism target, log-uniform in [1.3, 55] (Figs 12/13 span ~1-50).
    const double par = std::exp(rng.uniform_real(std::log(1.3), std::log(55.0)));
    if (s.method == GenMethod::kLayrProb || s.method == GenMethod::kLayrPred) {
      s.num_layers = std::clamp<std::size_t>(
          static_cast<std::size_t>(std::lround(static_cast<double>(size) / par)), 2, size);
      s.avg_degree = rng.uniform_real(1.0, 3.0);
    } else {
      // Denser pair-wise DAGs have longer critical paths (lower
      // parallelism); sweep the density log-uniformly instead.
      s.avg_degree = std::exp(rng.uniform_real(std::log(1.0), std::log(8.0)));
    }

    switch (i % 3) {
      case 0:
        s.weight_dist = WeightDist::kUniform;
        break;
      case 1:
        s.weight_dist = WeightDist::kBimodal;
        break;
      default:
        s.weight_dist = WeightDist::kGeometric;
        break;
    }
    s.min_weight = 1;
    switch ((i / 3) % 3) {
      case 0:
        s.max_weight = 10;
        break;
      case 1:
        s.max_weight = 50;
        break;
      default:
        s.max_weight = 300;  // the paper: "integers in the range from 1 to 300"
        break;
    }
    specs.push_back(std::move(s));
  }
  return specs;
}

std::vector<graph::TaskGraph> make_random_group(std::size_t size, std::size_t count,
                                                std::uint64_t master_seed) {
  std::vector<graph::TaskGraph> out;
  out.reserve(count);
  for (const RandomGraphSpec& s : random_group_specs(size, count, master_seed))
    out.push_back(generate_random(s));
  return out;
}

std::vector<graph::TaskGraph> application_graphs() {
  std::vector<graph::TaskGraph> out;
  out.push_back(synthesize_app_graph(fpppp_spec()));
  out.push_back(synthesize_app_graph(robot_spec()));
  out.push_back(synthesize_app_graph(sparse_spec()));
  return out;
}

}  // namespace lamps::stg
