#include "stg/format.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/errors.hpp"

namespace lamps::stg {

namespace {

struct RawTask {
  Cycles weight{0};
  std::vector<std::size_t> preds;
  std::size_t line_no{0};  ///< source line, for edge-stage diagnostics
};

[[noreturn]] void fail(const std::string& source, std::size_t line_no,
                       const std::string& what, const std::string& hint = {}) {
  std::string ctx = source;
  if (line_no != 0) {
    ctx += ':';
    ctx += std::to_string(line_no);
  }
  throw InputError(ErrorCode::kStgParse, what, ctx, hint);
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) tokens.push_back(std::move(tok));
  return tokens;
}

/// Strict whole-token unsigned parse: "12xyz", "-3", "" and overflow are all
/// rejected (std::stoull would accept the first silently and parse a prefix).
bool parse_u64_token(const std::string& tok, std::uint64_t& out) {
  if (tok.empty()) return false;
  const auto [ptr, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), out);
  return ec == std::errc{} && ptr == tok.data() + tok.size();
}

std::uint64_t require_u64(const std::string& source, std::size_t line_no,
                          const std::string& tok, const char* what) {
  std::uint64_t v = 0;
  if (!parse_u64_token(tok, v)) {
    if (!tok.empty() && tok[0] == '-')
      fail(source, line_no, std::string(what) + " is negative: '" + tok + "'");
    fail(source, line_no,
         std::string(what) + " is not a non-negative integer: '" + tok + "'");
  }
  return v;
}

}  // namespace

graph::TaskGraph read_stg(std::istream& is, const ParseOptions& opts) {
  const std::string& source = opts.name;
  std::string line;
  std::size_t line_no = 0;
  std::size_t n = 0;
  bool have_count = false;
  std::vector<RawTask> tasks;

  while (std::getline(is, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty()) continue;         // blank line
    if (tokens[0][0] == '#') continue;    // comment
    if (!have_count) {
      if (tokens.size() != 1)
        fail(source, line_no, "header line must hold exactly the task count");
      n = require_u64(source, line_no, tokens[0], "task count");
      have_count = true;
      tasks.reserve(n + 2);
      continue;
    }
    if (tasks.size() >= n + 2)
      fail(source, line_no,
           "more task lines than declared (header says " + std::to_string(n) +
               " real tasks)");
    const std::size_t id = require_u64(source, line_no, tokens[0], "task id");
    if (id != tasks.size())
      fail(source, line_no,
           "task ids must be consecutive from 0 (expected " +
               std::to_string(tasks.size()) + ", got " + std::to_string(id) + ")",
           id < tasks.size() ? "duplicate task id" : "missing task line");
    if (tokens.size() < 3)
      fail(source, line_no, "task line missing weight/pred-count");
    RawTask t;
    t.line_no = line_no;
    t.weight =
        static_cast<Cycles>(require_u64(source, line_no, tokens[1], "processing time"));
    const std::size_t num_preds =
        require_u64(source, line_no, tokens[2], "predecessor count");
    if (tokens.size() != 3 + num_preds)
      fail(source, line_no,
           "expected " + std::to_string(num_preds) + " predecessor ids, found " +
               std::to_string(tokens.size() - 3));
    t.preds.resize(num_preds);
    for (std::size_t k = 0; k < num_preds; ++k) {
      const std::size_t p =
          require_u64(source, line_no, tokens[3 + k], "predecessor id");
      for (std::size_t j = 0; j < k; ++j)
        if (t.preds[j] == p)
          fail(source, line_no,
               "duplicate predecessor " + std::to_string(p) + " for task " +
                   std::to_string(id));
      if (p == id)
        fail(source, line_no, "task " + std::to_string(id) + " lists itself as predecessor");
      t.preds[k] = p;
    }
    tasks.push_back(std::move(t));
  }
  if (!have_count) fail(source, 0, "empty input");
  if (tasks.size() != n + 2)
    fail(source, line_no,
         "expected " + std::to_string(n + 2) + " task lines (including dummy entry/exit), "
         "found " + std::to_string(tasks.size()));

  // Dangling-edge check before building: every predecessor id must name a
  // declared task.  Done here (with the referencing line) rather than
  // letting the builder hit an out-of-range TaskId.
  for (std::size_t i = 0; i < tasks.size(); ++i)
    for (const std::size_t p : tasks[i].preds)
      if (p >= tasks.size())
        fail(source, tasks[i].line_no,
             "dangling edge: predecessor " + std::to_string(p) + " of task " +
                 std::to_string(i) + " is not a declared task (ids are 0.." +
                 std::to_string(tasks.size() - 1) + ")");

  graph::TaskGraphBuilder b(opts.name);
  try {
    if (opts.strip_dummies) {
      // Real tasks are 1..n; dummy 0 (entry) and n+1 (exit) are dropped along
      // with their incident edges.
      for (std::size_t i = 1; i <= n; ++i) (void)b.add_task(tasks[i].weight);
      for (std::size_t i = 1; i <= n; ++i)
        for (const std::size_t p : tasks[i].preds) {
          if (p == 0) continue;
          if (p > n)
            fail(source, tasks[i].line_no,
                 "edge from dummy exit: task " + std::to_string(i) + " lists " +
                     std::to_string(p) + " as predecessor");
          b.add_edge(static_cast<graph::TaskId>(p - 1), static_cast<graph::TaskId>(i - 1));
        }
      // Edges into the dummy exit carry no information once it is removed.
    } else {
      for (const RawTask& t : tasks) (void)b.add_task(t.weight);
      for (std::size_t i = 0; i < tasks.size(); ++i)
        for (const std::size_t p : tasks[i].preds)
          b.add_edge(static_cast<graph::TaskId>(p), static_cast<graph::TaskId>(i));
    }
    return b.build();
  } catch (const Error&) {
    throw;  // already typed (the fail() calls above)
  } catch (const std::exception& e) {
    // The builder rejects structural problems (cycles, self-loops) with
    // untyped exceptions; re-raise them as part of the taxonomy.
    throw InputError(ErrorCode::kGraphStructure, e.what(), source,
                     "the file parsed but does not describe a valid task DAG");
  }
}

graph::TaskGraph read_stg_file(const std::string& path, const ParseOptions& opts) {
  std::ifstream is(path);
  if (!is)
    throw InputError(ErrorCode::kConfig, "cannot open STG file", path,
                     "check the path (suite stg_files entries are relative to the "
                     "working directory)");
  ParseOptions o = opts;
  if (o.name == "stg") o.name = path;
  return read_stg(is, o);
}

void write_stg(const graph::TaskGraph& g, std::ostream& os) {
  const std::size_t n = g.num_tasks();
  os << n << '\n';
  // Dummy entry: id 0, weight 0, no preds.
  os << 0 << ' ' << 0 << ' ' << 0 << '\n';
  for (graph::TaskId v = 0; v < n; ++v) {
    const auto preds = g.predecessors(v);
    os << (v + 1) << ' ' << g.weight(v) << ' ';
    if (preds.empty()) {
      os << 1 << ' ' << 0;  // hang sources off the dummy entry
    } else {
      os << preds.size();
      for (const graph::TaskId p : preds) os << ' ' << (p + 1);
    }
    os << '\n';
  }
  // Dummy exit: preds are all sinks.
  const auto sinks = g.sinks();
  os << (n + 1) << ' ' << 0 << ' ' << sinks.size();
  for (const graph::TaskId s : sinks) os << ' ' << (s + 1);
  os << '\n';
}

}  // namespace lamps::stg
