#include "stg/format.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lamps::stg {

namespace {

struct RawTask {
  Cycles weight{0};
  std::vector<std::size_t> preds;
};

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("STG parse error: " + what);
}

}  // namespace

graph::TaskGraph read_stg(std::istream& is, const ParseOptions& opts) {
  std::string line;
  std::size_t n = 0;
  bool have_count = false;
  std::vector<RawTask> tasks;

  while (std::getline(is, line)) {
    std::istringstream ss(line);
    std::string first;
    if (!(ss >> first)) continue;        // blank line
    if (first[0] == '#') continue;       // comment
    if (!have_count) {
      n = std::stoull(first);
      have_count = true;
      tasks.reserve(n + 2);
      continue;
    }
    if (tasks.size() >= n + 2) fail("more task lines than declared");
    RawTask t;
    const std::size_t id = std::stoull(first);
    if (id != tasks.size()) fail("task ids must be consecutive from 0");
    long long weight = 0;
    std::size_t num_preds = 0;
    if (!(ss >> weight >> num_preds)) fail("task line missing weight/pred-count");
    if (weight < 0) fail("negative processing time");
    t.weight = static_cast<Cycles>(weight);
    t.preds.resize(num_preds);
    for (auto& p : t.preds)
      if (!(ss >> p)) fail("task line missing predecessor id");
    tasks.push_back(std::move(t));
  }
  if (!have_count) fail("empty input");
  if (tasks.size() != n + 2) fail("expected " + std::to_string(n + 2) + " task lines");

  graph::TaskGraphBuilder b(opts.name);
  if (opts.strip_dummies) {
    // Real tasks are 1..n; dummy 0 (entry) and n+1 (exit) are dropped along
    // with their incident edges.
    for (std::size_t i = 1; i <= n; ++i) (void)b.add_task(tasks[i].weight);
    for (std::size_t i = 1; i <= n; ++i)
      for (const std::size_t p : tasks[i].preds) {
        if (p == 0) continue;
        if (p > n) fail("edge from dummy exit");
        b.add_edge(static_cast<graph::TaskId>(p - 1), static_cast<graph::TaskId>(i - 1));
      }
    // Edges into the dummy exit carry no information once it is removed.
  } else {
    for (const RawTask& t : tasks) (void)b.add_task(t.weight);
    for (std::size_t i = 0; i < tasks.size(); ++i)
      for (const std::size_t p : tasks[i].preds) {
        if (p >= tasks.size()) fail("predecessor id out of range");
        b.add_edge(static_cast<graph::TaskId>(p), static_cast<graph::TaskId>(i));
      }
  }
  return b.build();
}

graph::TaskGraph read_stg_file(const std::string& path, const ParseOptions& opts) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot open STG file: " + path);
  ParseOptions o = opts;
  if (o.name == "stg") o.name = path;
  return read_stg(is, o);
}

void write_stg(const graph::TaskGraph& g, std::ostream& os) {
  const std::size_t n = g.num_tasks();
  os << n << '\n';
  // Dummy entry: id 0, weight 0, no preds.
  os << 0 << ' ' << 0 << ' ' << 0 << '\n';
  for (graph::TaskId v = 0; v < n; ++v) {
    const auto preds = g.predecessors(v);
    os << (v + 1) << ' ' << g.weight(v) << ' ';
    if (preds.empty()) {
      os << 1 << ' ' << 0;  // hang sources off the dummy entry
    } else {
      os << preds.size();
      for (const graph::TaskId p : preds) os << ' ' << (p + 1);
    }
    os << '\n';
  }
  // Dummy exit: preds are all sinks.
  const auto sinks = g.sinks();
  os << (n + 1) << ' ' << 0 << ' ' << sinks.size();
  for (const graph::TaskId s : sinks) os << ' ' << (s + 1);
  os << '\n';
}

}  // namespace lamps::stg
