// Parametric structured task-graph families.
//
// Besides random DAGs, the multiprocessor-scheduling literature (and the
// broader STG ecosystem) evaluates on structured graphs whose shape follows
// a computation: elimination fronts, butterflies, trees.  These generators
// produce the classic families with controllable size and weights; they
// feed the examples, the optimality-gap bench (small exact instances) and
// tests that need known-shape inputs.
//
// All generators take weights in abstract units (scale with
// graph::scale_weights) and are fully deterministic.
#pragma once

#include <cstddef>

#include "graph/task_graph.hpp"

namespace lamps::stg {

/// Gaussian-elimination DAG on an n x n matrix: one pivot task per step k
/// followed by a front of n-1-k update tasks; updates of step k feed the
/// pivot and updates of step k+1.  Tasks: n-1 pivots + sum of fronts.
/// Parallelism shrinks as elimination proceeds (a classic "narrowing"
/// workload).
[[nodiscard]] graph::TaskGraph gaussian_elimination(std::size_t n, Cycles pivot_weight = 2,
                                                    Cycles update_weight = 1);

/// FFT butterfly DAG: n = 2^stages inputs, `stages` ranks of n butterflies
/// each; butterfly (r, i) depends on the two rank r-1 nodes whose indices
/// differ in bit r-1.  Uniform width n throughout — maximal, constant
/// parallelism.
[[nodiscard]] graph::TaskGraph fft_butterfly(std::size_t stages, Cycles weight = 1);

/// Complete binary out-tree (fork tree) of the given depth: 2^depth - 1
/// tasks, root is the single source.
[[nodiscard]] graph::TaskGraph out_tree(std::size_t depth, Cycles weight = 1);

/// Complete binary in-tree (join/reduction tree): mirror of out_tree with
/// the leaves as sources.
[[nodiscard]] graph::TaskGraph in_tree(std::size_t depth, Cycles weight = 1);

/// Divide-and-conquer DAG: an out_tree of `depth` splits, leaf work of
/// `leaf_weight`, then the mirrored in_tree of merges — the fork/join
/// diamond of recursive algorithms.  Splits/merges cost `node_weight`.
[[nodiscard]] graph::TaskGraph divide_and_conquer(std::size_t depth, Cycles node_weight = 1,
                                                  Cycles leaf_weight = 4);

/// 2-D pipelined stencil (wavefront) DAG on a width x height grid:
/// task (x, y) depends on (x-1, y) and (x, y-1).  Parallelism follows the
/// anti-diagonal wavefront, peaking at min(width, height).
[[nodiscard]] graph::TaskGraph wavefront(std::size_t width, std::size_t height,
                                         Cycles weight = 1);

}  // namespace lamps::stg
