// Random task-graph generation in the style of the Standard Task Graph Set.
//
// The original STG distribution (offline here; see DESIGN.md section 6)
// generated its 2700 random graphs with four methods — "sameprob",
// "samepred", "layrprob", "layrpred" — which we re-implement:
//
//   sameprob:  edge (i, j), i < j, exists with one fixed probability
//              (classic Erdos-Renyi DAG on a topological order),
//   samepred:  every task draws a fixed average number of predecessors
//              uniformly among earlier tasks,
//   layrprob:  tasks are placed in layers; each adjacent-layer pair is
//              connected with a fixed probability,
//   layrpred:  layers, with a fixed average number of predecessors drawn
//              from the previous layer.
//
// All generation is deterministic in the spec's seed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "graph/task_graph.hpp"

namespace lamps::stg {

enum class GenMethod { kSameProb, kSamePred, kLayrProb, kLayrPred };
enum class WeightDist { kUniform, kBimodal, kGeometric };

[[nodiscard]] std::string_view to_string(GenMethod m);

struct RandomGraphSpec {
  std::string name{"random"};
  std::size_t num_tasks{100};
  GenMethod method{GenMethod::kSameProb};

  /// Target average in/out-degree: translated into the per-pair probability
  /// (sameprob/layrprob) or the predecessor count draw (samepred/layrpred).
  double avg_degree{2.0};

  /// Layered methods: number of layers (0 selects round(sqrt(num_tasks))).
  std::size_t num_layers{0};

  /// Task weight distribution over [min_weight, max_weight] (weights are in
  /// abstract STG units; scale with graph::scale_weights for granularity).
  WeightDist weight_dist{WeightDist::kUniform};
  Cycles min_weight{1};
  Cycles max_weight{10};

  std::uint64_t seed{1};
};

/// Generates one graph.  Throws std::invalid_argument on degenerate specs
/// (zero tasks, min_weight > max_weight, ...).
[[nodiscard]] graph::TaskGraph generate_random(const RandomGraphSpec& spec);

}  // namespace lamps::stg
