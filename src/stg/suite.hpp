// Benchmark-suite registry: reproduces the structure of the paper's
// experimental setup (section 5.1).
//
//   * random groups of 50/100/500/1000/2000/2500/5000 tasks (plus 300 and
//     3000 used by Table 2 and Figs 12/13), 180 graphs per group in the
//     full configuration, generated with the four STG methods and a spread
//     of parallelism/edge-density/weight parameters,
//   * the three application graphs fpppp / robot / sparse (synthesized to
//     Table 2's statistics; see app_synth.hpp),
//   * granularity scaling constants: the paper maps one STG weight unit to
//     3.1e6 cycles (coarse grain, 1 ms at 3.1 GHz) or 3.1e4 cycles (fine
//     grain, 10 us).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "stg/app_synth.hpp"
#include "stg/random_gen.hpp"

namespace lamps::stg {

/// Cycles per STG weight unit in the paper's two granularity scenarios.
inline constexpr Cycles kCoarseGrainCyclesPerUnit = 3'100'000;
inline constexpr Cycles kFineGrainCyclesPerUnit = 31'000;

/// The random group sizes shown in the paper's Figs 10/11.
[[nodiscard]] std::vector<std::size_t> figure_group_sizes();

/// Specs for one random group.  Deterministic in (size, count, master_seed):
/// element i is generated with the i-th parameter combination, cycling the
/// four STG generation methods and sweeping parallelism targets
/// (log-uniform in ~[1.3, 55], matching the spread visible in the paper's
/// Figs 12/13), edge densities and weight distributions.
[[nodiscard]] std::vector<RandomGraphSpec> random_group_specs(std::size_t size,
                                                              std::size_t count,
                                                              std::uint64_t master_seed = 0x57a6);

/// Generates the group (convenience over generate_random on each spec).
[[nodiscard]] std::vector<graph::TaskGraph> make_random_group(
    std::size_t size, std::size_t count, std::uint64_t master_seed = 0x57a6);

/// The three synthesized application graphs, in Table 2 order.
[[nodiscard]] std::vector<graph::TaskGraph> application_graphs();

}  // namespace lamps::stg
