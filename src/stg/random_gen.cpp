#include "stg/random_gen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <unordered_set>
#include <vector>

#include "util/rng.hpp"

namespace lamps::stg {

namespace {

Cycles draw_weight(Rng& rng, const RandomGraphSpec& spec) {
  const Cycles lo = spec.min_weight, hi = spec.max_weight;
  switch (spec.weight_dist) {
    case WeightDist::kUniform:
      return rng.uniform(lo, hi);
    case WeightDist::kBimodal: {
      // Half the tasks are cheap, half expensive: quarter-width bands at
      // the ends of the range (degenerates to uniform for narrow ranges).
      const Cycles quarter = std::max<Cycles>(1, (hi - lo) / 4);
      return rng.bernoulli(0.5) ? rng.uniform(lo, std::min(hi, lo + quarter))
                                : rng.uniform(hi - std::min(hi - lo, quarter), hi);
    }
    case WeightDist::kGeometric: {
      // Geometric decay from min_weight, truncated at max_weight; mean
      // roughly (lo + hi) / 3 — models many small tasks, few large ones.
      const double mean_extra = static_cast<double>(hi - lo) / 3.0;
      if (mean_extra <= 0.0) return lo;
      const double x = -mean_extra * std::log(1.0 - rng.uniform01());
      return std::min(hi, lo + static_cast<Cycles>(x));
    }
  }
  return lo;
}

/// Number of predecessors for a "pred"-style method: floor/ceil of the
/// average, chosen with the right probability so the mean matches.
std::size_t draw_pred_count(Rng& rng, double avg) {
  const double fl = std::floor(avg);
  const double frac = avg - fl;
  const auto base = static_cast<std::size_t>(fl);
  return base + (rng.bernoulli(frac) ? 1 : 0);
}

/// Draws `count` distinct values from [0, limit) (count <= limit), by
/// partial Fisher-Yates on a scratch index vector.
std::vector<std::size_t> sample_distinct(Rng& rng, std::size_t limit, std::size_t count,
                                         std::vector<std::size_t>& scratch) {
  scratch.resize(limit);
  std::iota(scratch.begin(), scratch.end(), std::size_t{0});
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t j = static_cast<std::size_t>(rng.uniform(k, limit - 1));
    std::swap(scratch[k], scratch[j]);
    out.push_back(scratch[k]);
  }
  return out;
}

/// Assigns each task to one of `layers` layers (requires n >= layers) such
/// that no layer is empty: every layer is seeded with one task, the
/// remaining n - layers tasks land uniformly at random.  Task ids are
/// handed out in layer order, so edges between consecutive layers always go
/// from a lower to a higher id (acyclic by construction).
std::vector<std::size_t> assign_layers(Rng& rng, std::size_t n, std::size_t layers) {
  std::vector<std::size_t> count(layers, 1);
  for (std::size_t i = layers; i < n; ++i)
    ++count[rng.uniform(0, layers - 1)];
  std::vector<std::size_t> layer_of;
  layer_of.reserve(n);
  for (std::size_t l = 0; l < layers; ++l)
    layer_of.insert(layer_of.end(), count[l], l);
  return layer_of;
}

void generate_sameprob(Rng& rng, const RandomGraphSpec& spec, graph::TaskGraphBuilder& b) {
  const std::size_t n = spec.num_tasks;
  // avg out-degree d over pairs (i, j), i < j: p * (n - 1) / 2 = d.
  const double p =
      std::clamp(2.0 * spec.avg_degree / static_cast<double>(n - 1), 0.0, 1.0);
  if (p <= 0.0) return;
  if (p >= 1.0) {
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        b.add_edge(static_cast<graph::TaskId>(i), static_cast<graph::TaskId>(j));
    return;
  }
  // Geometric skip-sampling over the linearized upper-triangular pair index
  // avoids O(n^2) work for sparse graphs.
  const double log1mp = std::log1p(-p);
  const auto total_pairs = static_cast<std::uint64_t>(n) * (n - 1) / 2;
  std::uint64_t idx = 0;
  // Row lookup: pair index -> (i, j).  Maintain the running row start.
  std::size_t i = 0;
  std::uint64_t row_start = 0;
  std::uint64_t row_len = n - 1;
  while (true) {
    const double u = rng.uniform01();
    const auto skip = static_cast<std::uint64_t>(std::floor(std::log(1.0 - u) / log1mp));
    idx += skip;
    if (idx >= total_pairs) break;
    while (idx >= row_start + row_len) {
      row_start += row_len;
      ++i;
      --row_len;
    }
    const std::size_t j = i + 1 + static_cast<std::size_t>(idx - row_start);
    b.add_edge(static_cast<graph::TaskId>(i), static_cast<graph::TaskId>(j));
    ++idx;
  }
}

void generate_samepred(Rng& rng, const RandomGraphSpec& spec, graph::TaskGraphBuilder& b) {
  std::vector<std::size_t> scratch;
  for (std::size_t j = 1; j < spec.num_tasks; ++j) {
    const std::size_t want = std::min(j, draw_pred_count(rng, spec.avg_degree));
    for (const std::size_t p : sample_distinct(rng, j, want, scratch))
      b.add_edge(static_cast<graph::TaskId>(p), static_cast<graph::TaskId>(j));
  }
}

void generate_layered(Rng& rng, const RandomGraphSpec& spec, graph::TaskGraphBuilder& b,
                      bool prob_variant) {
  const std::size_t n = spec.num_tasks;
  std::size_t layers = spec.num_layers != 0
                           ? spec.num_layers
                           : static_cast<std::size_t>(std::lround(std::sqrt(n)));
  layers = std::clamp<std::size_t>(layers, 1, n);
  const std::vector<std::size_t> layer_of = assign_layers(rng, n, layers);

  // Tasks are already sorted by layer; collect layer extents.
  std::vector<std::pair<std::size_t, std::size_t>> extent(layers, {n, 0});  // [begin, end)
  for (std::size_t i = 0; i < n; ++i) {
    auto& [begin, end] = extent[layer_of[i]];
    begin = std::min(begin, i);
    end = std::max(end, i + 1);
  }

  std::vector<std::size_t> scratch;
  for (std::size_t l = 1; l < layers; ++l) {
    const auto [pb, pe] = extent[l - 1];
    const auto [cb, ce] = extent[l];
    const std::size_t prev_size = pe - pb;
    if (prob_variant) {
      const double p = std::clamp(spec.avg_degree / static_cast<double>(prev_size), 0.0, 1.0);
      for (std::size_t j = cb; j < ce; ++j)
        for (std::size_t i = pb; i < pe; ++i)
          if (rng.bernoulli(p))
            b.add_edge(static_cast<graph::TaskId>(i), static_cast<graph::TaskId>(j));
    } else {
      for (std::size_t j = cb; j < ce; ++j) {
        const std::size_t want =
            std::max<std::size_t>(1, std::min(prev_size, draw_pred_count(rng, spec.avg_degree)));
        for (const std::size_t k : sample_distinct(rng, prev_size, want, scratch))
          b.add_edge(static_cast<graph::TaskId>(pb + k), static_cast<graph::TaskId>(j));
      }
    }
  }
}

}  // namespace

std::string_view to_string(GenMethod m) {
  switch (m) {
    case GenMethod::kSameProb:
      return "sameprob";
    case GenMethod::kSamePred:
      return "samepred";
    case GenMethod::kLayrProb:
      return "layrprob";
    case GenMethod::kLayrPred:
      return "layrpred";
  }
  return "?";
}

graph::TaskGraph generate_random(const RandomGraphSpec& spec) {
  if (spec.num_tasks == 0) throw std::invalid_argument("generate_random: zero tasks");
  if (spec.min_weight > spec.max_weight || spec.min_weight == 0)
    throw std::invalid_argument("generate_random: bad weight range");
  if (spec.avg_degree < 0.0) throw std::invalid_argument("generate_random: negative degree");

  Rng rng(spec.seed);
  graph::TaskGraphBuilder b(spec.name);
  for (std::size_t i = 0; i < spec.num_tasks; ++i) (void)b.add_task(draw_weight(rng, spec));

  if (spec.num_tasks > 1) {
    switch (spec.method) {
      case GenMethod::kSameProb:
        generate_sameprob(rng, spec, b);
        break;
      case GenMethod::kSamePred:
        generate_samepred(rng, spec, b);
        break;
      case GenMethod::kLayrProb:
        generate_layered(rng, spec, b, /*prob_variant=*/true);
        break;
      case GenMethod::kLayrPred:
        generate_layered(rng, spec, b, /*prob_variant=*/false);
        break;
    }
  }
  return b.build();
}

}  // namespace lamps::stg
