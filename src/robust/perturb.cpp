#include "robust/perturb.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace lamps::robust {

namespace {

// Stream ids for the per-component forks of the trial RNG.  Fixed so that
// enabling one component never changes another component's draws.
constexpr std::uint64_t kJitterStream = 0x11;
constexpr std::uint64_t kLeakStream = 0x22;
constexpr std::uint64_t kStallStream = 0x33;
constexpr std::uint64_t kWakeStreamBase = 0x1000;

/// Scale factors below this are clamped: a task can speed up, but not
/// finish in (nearly) zero time, and leakage cannot go negative.
constexpr double kScaleFloor = 0.05;

double jitter_factor(Rng& rng, const PerturbSpec& spec) {
  switch (spec.jitter_kind) {
    case JitterKind::kUniform:
      return 1.0 + spec.jitter * rng.uniform_real(-1.0, 1.0);
    case JitterKind::kNormal:
      return 1.0 + spec.jitter * rng.normal01();
    case JitterKind::kHeavyTail:
      return std::exp(spec.jitter * rng.normal01());
  }
  return 1.0;
}

}  // namespace

const char* to_string(JitterKind k) {
  switch (k) {
    case JitterKind::kUniform:
      return "uniform";
    case JitterKind::kNormal:
      return "normal";
    case JitterKind::kHeavyTail:
      return "heavytail";
  }
  return "?";
}

JitterKind jitter_kind_from_name(const std::string& name) {
  if (name == "uniform") return JitterKind::kUniform;
  if (name == "normal") return JitterKind::kNormal;
  if (name == "heavytail") return JitterKind::kHeavyTail;
  throw std::invalid_argument("unknown jitter kind: '" + name +
                              "' (uniform|normal|heavytail)");
}

bool PerturbSpec::is_zero() const {
  return jitter == 0.0 && leak_spread == 0.0 && wake_fault_prob == 0.0 &&
         stall_prob == 0.0;
}

bool PerturbSpec::wake_delays_possible() const {
  return wake_fault_prob > 0.0 && wake_latency.value() > 0.0 && wake_fault_scale > 1.0;
}

void PerturbSpec::validate() const {
  if (jitter < 0.0) throw std::invalid_argument("PerturbSpec: jitter must be >= 0");
  if (leak_spread < 0.0)
    throw std::invalid_argument("PerturbSpec: leak_spread must be >= 0");
  if (wake_fault_prob < 0.0 || wake_fault_prob > 1.0)
    throw std::invalid_argument("PerturbSpec: wake_fault_prob must be in [0, 1]");
  if (wake_fault_scale < 1.0)
    throw std::invalid_argument("PerturbSpec: wake_fault_scale must be >= 1");
  if (wake_latency.value() < 0.0)
    throw std::invalid_argument("PerturbSpec: wake_latency must be >= 0");
  if (stall_prob < 0.0 || stall_prob > 1.0)
    throw std::invalid_argument("PerturbSpec: stall_prob must be in [0, 1]");
  if (stall_scale < 0.0)
    throw std::invalid_argument("PerturbSpec: stall_scale must be >= 0");
}

PerturbSample draw_sample(const PerturbSpec& spec, const graph::TaskGraph& g,
                          std::size_t num_procs, const Rng& trial_rng) {
  spec.validate();
  PerturbSample sample;
  const std::size_t n = g.num_tasks();

  sample.actual_cycles.resize(n);
  Rng jitter_rng = trial_rng.fork(kJitterStream);
  Rng stall_rng = trial_rng.fork(kStallStream);
  for (graph::TaskId v = 0; v < n; ++v) {
    const Cycles wcet = g.weight(v);
    if (spec.jitter == 0.0 && spec.stall_prob == 0.0) {
      sample.actual_cycles[v] = wcet;
      continue;
    }
    double scale = spec.jitter > 0.0 ? jitter_factor(jitter_rng, spec) : 1.0;
    if (spec.stall_prob > 0.0 && stall_rng.bernoulli(spec.stall_prob)) {
      scale += spec.stall_scale;
      ++sample.stalled_tasks;
    }
    scale = std::max(scale, kScaleFloor);
    const auto cycles =
        static_cast<Cycles>(std::llround(static_cast<double>(wcet) * scale));
    sample.actual_cycles[v] = wcet == 0 ? 0 : std::max<Cycles>(1, cycles);
  }

  sample.leak_scale.assign(num_procs, 1.0);
  if (spec.leak_spread > 0.0) {
    Rng leak_rng = trial_rng.fork(kLeakStream);
    for (double& s : sample.leak_scale)
      s = std::max(kScaleFloor, 1.0 + spec.leak_spread * leak_rng.normal01());
  }

  sample.wake_streams.reserve(num_procs);
  for (std::size_t p = 0; p < num_procs; ++p)
    sample.wake_streams.push_back(trial_rng.fork(kWakeStreamBase + p));
  return sample;
}

double draw_wake_scale(Rng& stream, const PerturbSpec& spec) {
  if (spec.wake_fault_prob <= 0.0) return 1.0;
  return stream.bernoulli(spec.wake_fault_prob) ? spec.wake_fault_scale : 1.0;
}

}  // namespace lamps::robust
