// Robustness comparison across scheduling strategies.
//
// Runs each strategy once on the nominal problem, then Monte-Carlo-replays
// its winning schedule under a PerturbSpec, producing the comparison the
// paper cannot: which strategy's energy advantage survives execution-time
// jitter, leakage spread and wake faults, and at what deadline-miss risk.
// The LIMIT bounds have no schedule to replay and appear nominal-only.
#pragma once

#include <iosfwd>
#include <span>
#include <vector>

#include "core/strategy.hpp"
#include "robust/montecarlo.hpp"

namespace lamps::robust {

struct StrategyRobustness {
  core::StrategyKind kind{};
  bool feasible{false};
  /// True when the strategy produced a schedule to replay (false for the
  /// LIMIT bounds and infeasible results — stats are then all zero).
  bool replayable{false};
  Joules nominal{0.0};
  std::size_t num_procs{0};
  std::size_t level_index{0};
  RobustnessStats stats{};
};

/// Runs each strategy on `prob` and Monte-Carlo-evaluates its schedule
/// under `cfg`.  Entries come back in the order of `kinds`.
[[nodiscard]] std::vector<StrategyRobustness> evaluate_robustness(
    const core::Problem& prob, std::span<const core::StrategyKind> kinds,
    const McConfig& cfg);

/// Human-readable comparison table (nominal mJ, mean/p95/p99 mJ, miss rate,
/// shutdowns, wake faults).
void print_robustness_report(std::ostream& os, std::span<const StrategyRobustness> rows,
                             const McConfig& cfg);

/// One CSV row per strategy: strategy,feasible,replayable,nominal_j,
/// trials,miss_rate,mean_j,p50_j,p95_j,p99_j,stddev_j,mean_tardiness_s,
/// max_tardiness_s,mean_shutdowns,mean_wake_faults.
void write_robustness_csv(const std::string& path, std::span<const StrategyRobustness> rows);

}  // namespace lamps::robust
