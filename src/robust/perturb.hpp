// Composable perturbation models for variation-aware schedule evaluation.
//
// The paper evaluates every strategy assuming WCET-exact execution and the
// nominal 70 nm technology.  Its own conclusions push schedules towards the
// regimes where that assumption is most fragile: near-critical-frequency
// operation leaves little timing margin, and aggressive shutdown bets on
// the 483 uJ wakeup always costing its nominal price.  This module draws
// randomized deviations from the nominal model — per-task execution-time
// jitter, per-processor leakage spread (process variation), sleep
// wake-latency/energy faults and transient stalls — which robust/replay
// then injects into a fixed static schedule.
//
// Every component is optional and zero by default: a default PerturbSpec
// draws the identity sample, under which replay reproduces the static
// evaluator bit for bit (test-enforced).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace lamps::robust {

/// Distribution family of the per-task execution-time scale factor.
enum class JitterKind {
  kUniform,    ///< s = 1 + j * U[-1, 1]      (bounded, symmetric)
  kNormal,     ///< s = 1 + j * N(0, 1)       (unbounded, symmetric)
  kHeavyTail,  ///< s = exp(j * N(0, 1))      (lognormal: median 1, heavy right tail)
};

[[nodiscard]] const char* to_string(JitterKind k);

/// Parses "uniform" | "normal" | "heavytail"; throws std::invalid_argument.
[[nodiscard]] JitterKind jitter_kind_from_name(const std::string& name);

struct PerturbSpec {
  // --- Execution-time jitter (per task) --------------------------------
  JitterKind jitter_kind{JitterKind::kUniform};
  /// Relative magnitude j of the scale-factor distribution; 0 = exact WCET.
  double jitter{0.0};

  // --- Leakage spread (per processor) ----------------------------------
  /// Sigma of the per-processor leakage multiplier 1 + sigma * N(0, 1)
  /// (clamped to >= 0.1), modeling die-to-die process variation of the
  /// sub-threshold currents (Technology K3 / Ij scale linearly into P_DC,
  /// so one multiplier on the leakage power term captures both).
  double leak_spread{0.0};

  // --- Sleep wake faults (per shutdown event) --------------------------
  /// Probability that one wakeup misbehaves (cold caches, PLL relock, ...).
  double wake_fault_prob{0.0};
  /// A faulted wakeup costs wake_fault_scale x the nominal E_wake and
  /// takes wake_fault_scale x the nominal wake latency.
  double wake_fault_scale{4.0};
  /// Nominal wake latency.  The runtime is assumed to initiate wakeups
  /// early enough that a nominal wakeup completes exactly on time, so only
  /// the *excess* latency of a faulted wakeup, (scale - 1) * wake_latency,
  /// delays the next task.  The paper's model is latency-free (0).
  Seconds wake_latency{0.0};

  // --- Transient processor stalls (per task) ---------------------------
  /// Probability that a task suffers a transient stall (memory contention,
  /// thermal throttling burst, ...).
  double stall_prob{0.0};
  /// A stalled task executes for an extra stall_scale x WCET cycles.
  double stall_scale{1.0};

  /// True when every component is inactive (the identity perturbation).
  [[nodiscard]] bool is_zero() const;
  /// True when wake faults can delay task starts (prob > 0 and latency > 0).
  [[nodiscard]] bool wake_delays_possible() const;

  /// Throws std::invalid_argument on out-of-range parameters.
  void validate() const;
};

/// One concrete draw from a PerturbSpec, for one (graph, processor count).
/// Task-indexed and processor-indexed so replay outcomes are independent of
/// event interleaving.
struct PerturbSample {
  /// Actual execution cycles per task (jitter + stall applied to WCET).
  std::vector<Cycles> actual_cycles;
  /// Per-processor leakage power multiplier (1.0 = nominal).
  std::vector<double> leak_scale;
  /// Per-processor wake-fault streams, consumed once per slept gap in
  /// per-processor time order (leading/internal gaps first, trailing last).
  std::vector<Rng> wake_streams;
  /// Number of tasks that drew a transient stall.
  std::size_t stalled_tasks{0};
};

/// Draws one sample.  All randomness derives from `trial_rng` through
/// per-component forks, so enabling one component never shifts the draws of
/// another.  With a zero spec the sample is exactly the identity: actual
/// cycles equal the WCET weights and every leak_scale is 1.0.
[[nodiscard]] PerturbSample draw_sample(const PerturbSpec& spec, const graph::TaskGraph& g,
                                        std::size_t num_procs, const Rng& trial_rng);

/// Draws the energy/latency scale of the next wakeup on `stream`: 1.0 with
/// probability 1 - wake_fault_prob, else wake_fault_scale.  Does not touch
/// the stream when wake_fault_prob <= 0 (keeps the zero case bit-exact).
[[nodiscard]] double draw_wake_scale(Rng& stream, const PerturbSpec& spec);

}  // namespace lamps::robust
