#include "robust/montecarlo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace lamps::robust {

namespace {

// Monte-Carlo replay volume (docs/observability.md).
obs::Counter& c_mc_replays = obs::counter("robust.mc_replays");

}  // namespace

RobustnessStats aggregate(std::span<const TrialOutcome> trials) {
  RobustnessStats stats;
  stats.trials = trials.size();
  if (trials.empty()) return stats;

  std::vector<double> energy;
  std::vector<double> tard;
  energy.reserve(trials.size());
  tard.reserve(trials.size());
  std::size_t misses = 0;
  double shutdowns = 0.0;
  double faults = 0.0;
  for (const TrialOutcome& t : trials) {
    energy.push_back(t.energy_j);
    tard.push_back(t.tardiness_s);
    if (!t.met_deadline) ++misses;
    shutdowns += static_cast<double>(t.shutdowns);
    faults += static_cast<double>(t.wake_faults);
  }
  const auto count = static_cast<double>(trials.size());
  stats.miss_rate = static_cast<double>(misses) / count;
  stats.energy = summarize(energy);
  stats.energy_p95 = quantile(energy, 0.95);
  stats.energy_p99 = quantile(energy, 0.99);
  stats.tardiness = summarize(tard);
  stats.mean_shutdowns = shutdowns / count;
  stats.mean_wake_faults = faults / count;
  return stats;
}

std::vector<TrialOutcome> run_trials(ThreadPool& pool, const sched::Schedule& plan,
                                     const graph::TaskGraph& g, const power::DvsLevel& lvl,
                                     Seconds deadline, const power::SleepModel& sleep,
                                     const energy::PsOptions& ps, const McConfig& cfg) {
  cfg.perturb.validate();
  obs::Span span("robust/mc_trials");
  // Pre-sized, written by trial index: the result never depends on which
  // worker ran which trial.
  std::vector<TrialOutcome> out(cfg.trials);
  parallel_for_index(pool, cfg.trials, [&](std::size_t t) {
    c_mc_replays.inc();
    const Rng trial_rng = child_rng(cfg.seed, t);
    const PerturbSample sample = draw_sample(cfg.perturb, g, plan.num_procs(), trial_rng);
    const ReplayResult r =
        replay_schedule(plan, g, lvl, deadline, sleep, ps, cfg.perturb, sample);
    out[t] = TrialOutcome{r.breakdown.total().value(), r.met_deadline,
                          r.tardiness.value(), r.breakdown.shutdowns, r.wake_faults};
  });
  return out;
}

RobustnessStats run_montecarlo(const sched::Schedule& plan, const graph::TaskGraph& g,
                               const power::DvsLevel& lvl, Seconds deadline,
                               const power::SleepModel& sleep, const energy::PsOptions& ps,
                               const McConfig& cfg) {
  ThreadPool pool(cfg.threads);
  const std::vector<TrialOutcome> trials =
      run_trials(pool, plan, g, lvl, deadline, sleep, ps, cfg);
  return aggregate(trials);
}

}  // namespace lamps::robust
