#include "robust/replay.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <stdexcept>

namespace lamps::robust {

namespace {

/// Augmented successors (graph edges + next-task-on-same-processor edges)
/// and a deterministic topological order over them — the same construction
/// core/multifreq and sim/online use to re-time a fixed (mapping, order).
struct AugmentedDag {
  std::vector<std::vector<graph::TaskId>> succs;
  std::vector<graph::TaskId> topo;

  AugmentedDag(const sched::Schedule& s, const graph::TaskGraph& g) : succs(g.num_tasks()) {
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const auto gs = g.successors(v);
      succs[v].assign(gs.begin(), gs.end());
    }
    for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
      const auto row = s.on_proc(p);
      for (std::size_t i = 0; i + 1 < row.size(); ++i)
        succs[row[i].task].push_back(row[i + 1].task);
    }
    std::vector<std::size_t> in_deg(g.num_tasks(), 0);
    for (const auto& ss : succs)
      for (const graph::TaskId t : ss) ++in_deg[t];
    std::priority_queue<graph::TaskId, std::vector<graph::TaskId>, std::greater<>> ready;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      if (in_deg[v] == 0) ready.push(v);
    topo.reserve(g.num_tasks());
    while (!ready.empty()) {
      const graph::TaskId v = ready.top();
      ready.pop();
      topo.push_back(v);
      for (const graph::TaskId t : succs[v])
        if (--in_deg[t] == 0) ready.push(t);
    }
  }
};

}  // namespace

ReplayResult replay_schedule(const sched::Schedule& plan, const graph::TaskGraph& g,
                             const power::DvsLevel& lvl, Seconds deadline,
                             const power::SleepModel& sleep, const energy::PsOptions& ps,
                             const PerturbSpec& spec, const PerturbSample& sample) {
  const std::size_t n = g.num_tasks();
  const std::size_t procs = plan.num_procs();
  if (plan.num_tasks() != n)
    throw std::invalid_argument("replay_schedule: plan/graph task count mismatch");
  if (sample.actual_cycles.size() != n)
    throw std::invalid_argument("replay_schedule: sample sized for a different graph");
  if (sample.leak_scale.size() != procs || sample.wake_streams.size() != procs)
    throw std::invalid_argument("replay_schedule: sample sized for a different machine");
  if (!plan.complete())
    throw std::invalid_argument("replay_schedule: plan is incomplete");

  const Hertz f = lvl.f;
  // Per-processor leakage power under the sample's process-variation
  // multiplier.  The identity multiplier keeps the nominal doubles
  // bit-exact (x * 1.0 == x; idle taken straight from the ladder).
  std::vector<Watts> leak_w(procs);
  std::vector<Watts> idle_w(procs);
  for (std::size_t p = 0; p < procs; ++p) {
    leak_w[p] = lvl.active.leakage * sample.leak_scale[p];
    idle_w[p] = sample.leak_scale[p] == 1.0 ? lvl.idle : leak_w[p] + lvl.active.intrinsic;
  }

  // --- Phase A: re-time the plan under the sample ------------------------
  // Time-triggered dispatch: start = max(planned start, latest graph
  // predecessor finish, processor free time), plus the excess latency of a
  // faulted wakeup when the preceding gap is slept.  Sleep decisions here
  // mirror phase B's (the delay only lengthens the gap, and the breakeven
  // rule is monotone in gap length, so both phases agree on every gap).
  const AugmentedDag dag(plan, g);
  const bool delays = spec.wake_delays_possible();
  std::vector<Rng> streams_a = sample.wake_streams;
  std::vector<Cycles> ready_at(n, 0);
  std::vector<Cycles> cursor(procs, 0);
  ReplayResult result{sched::Schedule(procs, n)};
  for (const graph::TaskId v : dag.topo) {
    const sched::Placement& planned = plan.placement(v);
    const sched::ProcId p = planned.proc;
    const Cycles tentative = std::max({planned.start, ready_at[v], cursor[p]});
    Cycles start = tentative;
    if (delays) {
      const Cycles gap = tentative - cursor[p];
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || cursor[p] != 0);
      if (gap > 0 && may_sleep &&
          sleep.decide(cycles_to_time(gap, f), idle_w[p]).shutdown) {
        const double k = draw_wake_scale(streams_a[p], spec);
        if (k > 1.0)
          start += static_cast<Cycles>(
              std::ceil((k - 1.0) * spec.wake_latency.value() * f.value()));
      }
    }
    const Cycles finish = start + sample.actual_cycles[v];
    result.schedule.place(v, p, start, finish);
    cursor[p] = finish;
    for (const graph::TaskId t : dag.succs[v])
      ready_at[t] = std::max(ready_at[t], finish);
  }

  // --- Deadlines ---------------------------------------------------------
  result.completion = cycles_to_time(result.schedule.makespan(), f);
  result.met_deadline = result.completion.value() <= deadline.value() * (1.0 + 1e-9);
  double tard = result.completion.value() - deadline.value();
  if (g.has_explicit_deadlines()) {
    for (graph::TaskId v = 0; v < n; ++v) {
      if (const auto own = g.explicit_deadline(v)) {
        const Seconds fin = cycles_to_time(result.schedule.placement(v).finish, f);
        if (fin.value() > own->value() * (1.0 + 1e-9)) result.met_deadline = false;
        tard = std::max(tard, fin.value() - own->value());
      }
    }
  }
  result.tardiness = Seconds{std::max(0.0, tard)};

  // --- Phase B: energy accounting ----------------------------------------
  // Mirrors energy::evaluate_energy's canonical composition exactly (active
  // energy per processor first, then per-processor ProcIdleTotals charged
  // in one step — see energy/evaluator.hpp), with the nominal power rails
  // replaced by the sample's per-processor leakage.  The identity sample
  // therefore reproduces the analytic evaluator bit for bit.  Faulted
  // wakeups add a separate surcharge term of E_wake * sum(k - 1), which is
  // exactly 0.0 under the identity sample and is skipped then.
  // An overrunning schedule stays powered to its own completion.
  const Seconds horizon = result.completion > deadline ? result.completion : deadline;
  energy::EnergyBreakdown& e = result.breakdown;
  for (sched::ProcId p = 0; p < procs; ++p) {
    const Seconds busy = cycles_to_time(result.schedule.busy_cycles(p), f);
    e.dynamic += lvl.active.dynamic * busy;
    e.leakage += leak_w[p] * busy;
    e.intrinsic += lvl.active.intrinsic * busy;
  }
  std::vector<Rng> streams_b = sample.wake_streams;
  for (sched::ProcId p = 0; p < procs; ++p) {
    energy::ProcIdleTotals t;
    double wake_extra = 0.0;  // sum of (k - 1) over faulted wakeups
    // Decisions and RNG draws happen in per-processor row order so the
    // wake streams advance exactly as phase A's.
    const auto classify_gap = [&](Seconds gap, bool leading, Cycles cyc) {
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || !leading);
      if (may_sleep && sleep.decide(gap, idle_w[p]).shutdown) {
        const double k = draw_wake_scale(streams_b[p], spec);
        if (cyc != 0)
          t.slept_idle += cyc;
        else
          t.tail_slept = gap;
        ++t.shutdowns;
        wake_extra += k - 1.0;
        if (k > 1.0) ++result.wake_faults;
      } else {
        if (cyc != 0)
          t.powered_idle += cyc;
        else
          t.tail_powered = gap;
      }
    };
    Cycles cur = 0;
    for (const sched::Placement& pl : result.schedule.on_proc(p)) {
      if (pl.start > cur)
        classify_gap(cycles_to_time(pl.start - cur, f), cur == 0, pl.start - cur);
      cur = pl.finish;
    }
    const Seconds tail = horizon - cycles_to_time(cur, f);
    if (tail.value() > 0.0) classify_gap(tail, cur == 0, Cycles{0});

    // Same composition order as energy::detail::charge_idle, with leak_w[p]
    // standing in for the nominal leakage rail.
    const Seconds powered = cycles_to_time(t.powered_idle, f) + t.tail_powered;
    const Seconds slept = cycles_to_time(t.slept_idle, f) + t.tail_slept;
    e.leakage += leak_w[p] * powered;
    e.intrinsic += lvl.active.intrinsic * powered;
    e.sleep += sleep.sleep_power() * slept;
    e.wakeup += sleep.wakeup_energy() * static_cast<double>(t.shutdowns);
    e.shutdowns += t.shutdowns;
    if (wake_extra != 0.0) e.wakeup += sleep.wakeup_energy() * wake_extra;
  }
  return result;
}

sim::PowerTrace replay_trace(const ReplayResult& r, const graph::TaskGraph& g,
                             const power::DvsLevel& lvl, Seconds deadline,
                             const power::SleepModel& sleep, const energy::PsOptions& ps) {
  const Seconds horizon = r.completion > deadline ? r.completion : deadline;
  return sim::simulate(r.schedule, g, lvl, horizon, sleep, ps);
}

}  // namespace lamps::robust
