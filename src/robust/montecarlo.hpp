// Parallel Monte-Carlo driver over robust/replay.
//
// Runs N independent trials of one (schedule, level, deadline) under a
// PerturbSpec and aggregates them into distributional statistics: deadline
// miss rate, energy mean/p50/p95/p99, tardiness.  Trial t draws all of its
// randomness from child_rng(seed, t), so results are a pure function of
// (problem, spec, trials, seed) — byte-identical at any thread count
// (test-enforced).
#pragma once

#include <cstdint>
#include <vector>

#include "robust/replay.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

namespace lamps::robust {

struct McConfig {
  std::size_t trials{1000};
  std::uint64_t seed{1};
  /// Worker threads; 0 selects hardware concurrency.
  std::size_t threads{0};
  PerturbSpec perturb{};
};

/// One trial's outcome, indexed by trial id.
struct TrialOutcome {
  double energy_j{0.0};
  bool met_deadline{false};
  double tardiness_s{0.0};
  std::size_t shutdowns{0};
  std::size_t wake_faults{0};
};

struct RobustnessStats {
  std::size_t trials{0};
  /// Fraction of trials that missed the deadline.
  double miss_rate{0.0};
  Summary energy{};       ///< total energy per trial [J]
  double energy_p95{0.0};
  double energy_p99{0.0};
  Summary tardiness{};    ///< per-trial tardiness [s] (0 when met)
  double mean_shutdowns{0.0};
  double mean_wake_faults{0.0};
};

[[nodiscard]] RobustnessStats aggregate(std::span<const TrialOutcome> trials);

/// Runs cfg.trials replays of `plan` on `pool` and returns the per-trial
/// outcomes in trial order (deterministic: trial t uses child_rng(cfg.seed,
/// t) regardless of which worker executes it).
[[nodiscard]] std::vector<TrialOutcome> run_trials(
    ThreadPool& pool, const sched::Schedule& plan, const graph::TaskGraph& g,
    const power::DvsLevel& lvl, Seconds deadline, const power::SleepModel& sleep,
    const energy::PsOptions& ps, const McConfig& cfg);

/// run_trials + aggregate with an internally-owned pool of cfg.threads.
[[nodiscard]] RobustnessStats run_montecarlo(const sched::Schedule& plan,
                                             const graph::TaskGraph& g,
                                             const power::DvsLevel& lvl, Seconds deadline,
                                             const power::SleepModel& sleep,
                                             const energy::PsOptions& ps,
                                             const McConfig& cfg);

}  // namespace lamps::robust
