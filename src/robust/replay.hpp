// Event-driven replay of a fixed static schedule under one perturbation
// sample.
//
// The static plan fixes the task-to-processor mapping, the per-processor
// order and the single DVS level; replay re-executes it with the sample's
// actual cycle counts and faults, recomputing start/finish times, idle
// gaps, sleep decisions and the full energy breakdown.  Dispatch is
// time-triggered: a task never starts before its planned slot (a static
// schedule table is dispatched at planned times), and starts late when its
// predecessors overrun, its processor is still busy, or a faulted wakeup
// delays it.  Precedence and assignment are always preserved.
//
// With the identity sample the replayed schedule equals the plan and the
// energy accounting reproduces energy::evaluate_energy bit for bit — the
// per-gap walk mirrors the evaluator's loop structure exactly, and every
// perturbation multiplier degenerates to an exact * 1.0 (test-enforced).
// The replayed schedule is an ordinary cycle-domain sched::Schedule, so
// sim/power_trace can integrate it numerically (replay_trace below) for
// cross-validation and plotting.
#pragma once

#include "energy/evaluator.hpp"
#include "power/dvs_ladder.hpp"
#include "power/sleep_model.hpp"
#include "robust/perturb.hpp"
#include "sched/schedule.hpp"
#include "sim/power_trace.hpp"

namespace lamps::robust {

struct ReplayResult {
  /// The perturbed execution as a cycle-domain schedule (actual durations).
  sched::Schedule schedule;
  energy::EnergyBreakdown breakdown{};
  /// Wall-clock finish of the last task at the replay level.
  Seconds completion{0.0};
  /// Global deadline met AND every explicit per-task deadline met.
  bool met_deadline{false};
  /// Largest deadline overrun over the global and all explicit deadlines
  /// (0 when met).
  Seconds tardiness{0.0};
  /// Wakeups that drew a fault (each also counted in breakdown.shutdowns).
  std::size_t wake_faults{0};
};

/// Replays `plan` at level `lvl` under `sample`.  `deadline` is the global
/// deadline; energy is charged on [0, max(deadline, completion)] — an
/// overrunning schedule keeps its processors powered until the work
/// completes.  `ps` selects the per-gap shutdown policy exactly as in the
/// static evaluator.  Throws std::invalid_argument on plan/graph/sample
/// size mismatches.
[[nodiscard]] ReplayResult replay_schedule(const sched::Schedule& plan,
                                           const graph::TaskGraph& g,
                                           const power::DvsLevel& lvl, Seconds deadline,
                                           const power::SleepModel& sleep,
                                           const energy::PsOptions& ps,
                                           const PerturbSpec& spec,
                                           const PerturbSample& sample);

/// Numerically integrates a replay outcome with sim/power_trace at the
/// nominal power model (valid cross-check whenever the sample carries no
/// leakage spread; wake-fault energy is not part of the trace).
[[nodiscard]] sim::PowerTrace replay_trace(const ReplayResult& r, const graph::TaskGraph& g,
                                           const power::DvsLevel& lvl, Seconds deadline,
                                           const power::SleepModel& sleep,
                                           const energy::PsOptions& ps);

}  // namespace lamps::robust
