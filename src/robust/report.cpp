#include "robust/report.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/table.hpp"

namespace lamps::robust {

namespace {

/// Gap-shutdown policy a strategy's schedule is evaluated under — must
/// match what the strategy itself assumed when picking its level (see
/// core/stretch.cpp): plain S&S/LAMPS never power down, the +PS variants
/// shut down per gap with the problem's leading-gap setting.
energy::PsOptions ps_options_for(core::StrategyKind kind, const core::Problem& prob) {
  if (kind == core::StrategyKind::kSnsPs || kind == core::StrategyKind::kLampsPs)
    return energy::PsOptions{true, prob.ps_allow_leading_gaps};
  return energy::PsOptions{};
}

}  // namespace

std::vector<StrategyRobustness> evaluate_robustness(const core::Problem& prob,
                                                    std::span<const core::StrategyKind> kinds,
                                                    const McConfig& cfg) {
  std::vector<StrategyRobustness> rows;
  rows.reserve(kinds.size());
  const power::SleepModel sleep = prob.sleep();
  for (const core::StrategyKind kind : kinds) {
    const core::StrategyResult res = core::run_strategy(kind, prob);
    StrategyRobustness row;
    row.kind = kind;
    row.feasible = res.feasible;
    row.replayable = res.feasible && res.schedule.has_value();
    row.nominal = res.breakdown.total();
    row.num_procs = res.num_procs;
    row.level_index = res.level_index;
    if (row.replayable) {
      const power::DvsLevel& lvl = prob.ladder->level(res.level_index);
      row.stats = run_montecarlo(*res.schedule, *prob.graph, lvl, prob.deadline, sleep,
                                 ps_options_for(kind, prob), cfg);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void print_robustness_report(std::ostream& os, std::span<const StrategyRobustness> rows,
                             const McConfig& cfg) {
  const PerturbSpec& s = cfg.perturb;
  os << "Monte-Carlo robustness: " << cfg.trials << " trials, seed " << cfg.seed
     << "\n  jitter " << fmt_percent(s.jitter, 1) << " (" << to_string(s.jitter_kind)
     << "), leak spread " << fmt_percent(s.leak_spread, 1) << ", wake faults "
     << fmt_percent(s.wake_fault_prob, 1) << " x" << fmt_fixed(s.wake_fault_scale, 1)
     << ", stalls " << fmt_percent(s.stall_prob, 1) << "\n\n";
  TextTable table({"strategy", "nominal mJ", "mean mJ", "p95 mJ", "p99 mJ", "miss",
                   "shutdowns", "wake faults"});
  for (const StrategyRobustness& r : rows) {
    const std::string name{core::to_string(r.kind)};
    if (!r.feasible) {
      table.row(name, "infeasible", "-", "-", "-", "-", "-", "-");
      continue;
    }
    if (!r.replayable) {
      table.row(name, fmt_fixed(r.nominal.value() * 1e3, 3), "(bound)", "-", "-", "-", "-",
                "-");
      continue;
    }
    table.row(name, fmt_fixed(r.nominal.value() * 1e3, 3),
              fmt_fixed(r.stats.energy.mean * 1e3, 3),
              fmt_fixed(r.stats.energy_p95 * 1e3, 3),
              fmt_fixed(r.stats.energy_p99 * 1e3, 3), fmt_percent(r.stats.miss_rate, 1),
              fmt_fixed(r.stats.mean_shutdowns, 2), fmt_fixed(r.stats.mean_wake_faults, 2));
  }
  table.print(os);
}

void write_robustness_csv(const std::string& path, std::span<const StrategyRobustness> rows) {
  std::ofstream file = open_csv(path);
  CsvWriter csv(file);
  csv.row("strategy", "feasible", "replayable", "nominal_j", "trials", "miss_rate",
          "mean_j", "p50_j", "p95_j", "p99_j", "stddev_j", "mean_tardiness_s",
          "max_tardiness_s", "mean_shutdowns", "mean_wake_faults");
  for (const StrategyRobustness& r : rows) {
    csv.row(core::to_string(r.kind), r.feasible ? 1 : 0, r.replayable ? 1 : 0,
            r.nominal.value(), r.stats.trials, r.stats.miss_rate, r.stats.energy.mean,
            r.stats.energy.median, r.stats.energy_p95, r.stats.energy_p99,
            r.stats.energy.stddev, r.stats.tardiness.mean, r.stats.tardiness.max,
            r.stats.mean_shutdowns, r.stats.mean_wake_faults);
  }
}

}  // namespace lamps::robust
