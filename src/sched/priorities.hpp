// Priority policies for list scheduling.
//
// The paper's heuristics all use LS-EDF; the other policies exist for the
// ablation study motivated by section 4.4 ("EDF is not always optimal for
// multiprocessor scheduling"): how much does the choice of list-scheduling
// priority matter relative to the LIMIT-SF headroom?
//
// A priority key is an int64; SMALLER key = dispatched first.  Ties are
// broken by smaller task id inside the scheduler.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/deadlines.hpp"

namespace lamps::sched {

enum class PriorityPolicy {
  kEdf,          ///< earliest latest-finish-time first (the paper's LS-EDF)
  kBottomLevel,  ///< longest remaining path first (HLFET-style)
  kFifo,         ///< task id order (insertion order)
  kRandom,       ///< random permutation (seeded)
};

[[nodiscard]] std::string_view to_string(PriorityPolicy p);

struct PriorityOptions {
  PriorityPolicy policy{PriorityPolicy::kEdf};
  /// Global deadline in cycles (EDF only; combined with any explicit
  /// per-task deadlines carried by the graph).
  Cycles global_deadline_cycles{0};
  /// Reference frequency for converting explicit per-task second-deadlines
  /// to cycles (EDF only).
  Hertz ref_frequency{1.0};
  /// Seed for kRandom.
  std::uint64_t seed{0};
};

/// Computes the per-task priority keys for the given policy.
[[nodiscard]] std::vector<std::int64_t> make_priority_keys(const graph::TaskGraph& g,
                                                           const PriorityOptions& opts);

}  // namespace lamps::sched
