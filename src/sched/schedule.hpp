// Static multiprocessor schedule representation.
//
// A schedule places every task on one processor with integral start/finish
// cycle positions.  All positions are in the *cycle domain*: the schedule
// shape is independent of the DVS operating point, and "stretching" a
// schedule to a deadline is just a choice of clock frequency — exactly the
// single-frequency execution model of the paper (all processors share one
// constant frequency).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"
#include "util/units.hpp"

namespace lamps::sched {

using ProcId = std::uint32_t;

struct Placement {
  graph::TaskId task{graph::kInvalidTask};
  ProcId proc{0};
  Cycles start{0};
  Cycles finish{0};

  [[nodiscard]] Cycles duration() const { return finish - start; }
};

/// An idle interval on one processor, in cycles.  `begin == 0` marks a
/// leading gap; `end == horizon` marks a trailing gap.
struct Gap {
  ProcId proc{0};
  Cycles begin{0};
  Cycles end{0};

  [[nodiscard]] Cycles length() const { return end - begin; }
};

class Schedule {
 public:
  Schedule(std::size_t num_procs, std::size_t num_tasks);

  /// Records a task placement.  Placements on one processor must be added
  /// in non-decreasing start order and must not overlap; each task may be
  /// placed exactly once.  Violations throw std::logic_error.  Defined
  /// inline: the list scheduler calls this once per task per probe, and the
  /// call overhead is measurable across a configuration search.
  void place(graph::TaskId task, ProcId proc, Cycles start, Cycles finish) {
    if (task >= task_index_.size()) throw_place_error("unknown task");
    if (proc >= proc_rows_.size()) throw_place_error("unknown processor");
    if (finish < start) throw_place_error("finish before start");
    if (task_index_[task].placed) throw_place_error("task placed twice");
    auto& row = proc_rows_[proc];
    if (!row.empty() && start < row.back().finish)
      throw_place_error("overlapping placement on processor");

    task_index_[task] = Ref{proc, static_cast<std::uint32_t>(row.size()), true};
    row.push_back(Placement{task, proc, start, finish});
    busy_[proc] += finish - start;
    if (finish > makespan_) makespan_ = finish;
    ++placed_;
  }

  [[nodiscard]] std::size_t num_procs() const { return proc_rows_.size(); }
  [[nodiscard]] std::size_t num_tasks() const { return task_index_.size(); }
  [[nodiscard]] std::size_t num_placed() const { return placed_; }
  [[nodiscard]] bool complete() const { return placed_ == task_index_.size(); }

  /// Placement of a task (throws if the task was never placed).
  [[nodiscard]] const Placement& placement(graph::TaskId task) const;
  [[nodiscard]] bool is_placed(graph::TaskId task) const;

  /// Placements on processor p, ordered by start cycle.
  [[nodiscard]] std::span<const Placement> on_proc(ProcId p) const {
    return proc_rows_[p];
  }

  /// Finish cycle of the last task over all processors (0 if empty).
  [[nodiscard]] Cycles makespan() const { return makespan_; }

  /// Total executing cycles on processor p.
  [[nodiscard]] Cycles busy_cycles(ProcId p) const { return busy_[p]; }

  /// Idle intervals on all processors up to `horizon` cycles (leading,
  /// internal, and trailing).  Requires horizon >= makespan().  Zero-length
  /// gaps are omitted.
  [[nodiscard]] std::vector<Gap> gaps(Cycles horizon) const;

  /// Earliest cycle at which processor p is free for a new task.
  [[nodiscard]] Cycles proc_available(ProcId p) const {
    return proc_rows_[p].empty() ? 0 : proc_rows_[p].back().finish;
  }

 private:
  [[noreturn]] static void throw_place_error(const char* what);

  std::vector<std::vector<Placement>> proc_rows_;
  // Index into proc_rows_[proc][pos] per task; {kInvalid, 0} if unplaced.
  struct Ref {
    ProcId proc{0};
    std::uint32_t pos{0};
    bool placed{false};
  };
  std::vector<Ref> task_index_;
  std::vector<Cycles> busy_;
  Cycles makespan_{0};
  std::size_t placed_{0};
};

/// Structural validation against the task graph: every task placed exactly
/// once, durations equal task weights, per-processor placements
/// non-overlapping, and every precedence edge satisfied
/// (finish(pred) <= start(succ)).  Returns an empty string when valid, or a
/// human-readable description of the first violation.
[[nodiscard]] std::string validate_schedule(const Schedule& s, const graph::TaskGraph& g);

}  // namespace lamps::sched
