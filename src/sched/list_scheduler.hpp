// Non-preemptive global list scheduling (the paper's LS-EDF when combined
// with EDF priority keys).
//
// The scheduler is event-driven and greedy ("non-delay"): whenever a
// processor is free and ready tasks exist, the ready task with the smallest
// priority key is dispatched immediately.  Time is advanced to the next
// task-completion event otherwise.  Determinism: ready ties break on
// smaller task id, free processors are taken in ascending id order.
//
// Complexity: O((V + E) log V) standalone; the workspace overload runs in
// O(V + E) amortized per call once the priority ranking is cached (bitmap
// ready/free sets, calendar-bucketed completion events).
//
// Memory layout: the workspace carves every per-run scratch array (ready/
// free bitmaps, missing-predecessor counters, calendar event slots, the
// gap-run staging buffers) out of one util::Arena, so a configuration
// search's inner loop runs with a contiguous working set and zero heap
// allocation once the arena reached the request's high-water mark.
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/priorities.hpp"
#include "sched/schedule.hpp"
#include "util/arena.hpp"

namespace lamps::sched {

class ListScheduleWorkspace;

/// Raw idle-structure of one list-schedule run, recorded by
/// list_schedule_gaps without materializing a Schedule.  Exactly the data
/// energy::GapProfile derives from a full Schedule, in structure-of-arrays
/// form: per processor the busy cycle total, the leading gap and the
/// finish of the last placement, plus one flat (processor, length) event
/// list of the internal gaps in discovery order.  The buffers are owned by
/// the recording workspace and recycled run to run — consumers (the
/// GapProfile constructor) copy what they keep.
struct GapRun {
  std::span<const Cycles> busy;          ///< per processor: busy cycle total
  std::span<const Cycles> leading;       ///< idle cycles before the first placement
  std::span<const Cycles> tail;          ///< finish of the last placement (0 = none)
  std::span<const std::uint32_t> gap_proc;  ///< internal gaps: owning processor
  std::span<const Cycles> gap_len;          ///< internal gaps: length
  Cycles makespan{0};

  [[nodiscard]] std::size_t num_procs() const { return busy.size(); }
};

/// Reusable scratch state for list_schedule.  The configuration searches
/// (LAMPS phases 1+2, schedule_max_speedup, processor_sweep) invoke the
/// scheduler dozens of times with the same graph and priority keys but
/// different processor counts; a workspace threaded through those calls
/// eliminates the per-call allocations and — the larger win — computes the
/// priority ranking (tasks sorted by (key, id)) only once, turning the
/// ready queue into an O(1) find-first-set over a bitmap instead of a
/// binary heap.  A workspace may be reused across different graphs/keys
/// (it re-prepares itself when they change; a key change that leaves the
/// induced ranking intact — e.g. the uniform shift a new global EDF
/// deadline applies — is detected in O(V) and skips the re-sort).  It is
/// not thread-safe, so parallel sweeps use one workspace per worker
/// thread.
class ListScheduleWorkspace {
 public:
  ListScheduleWorkspace() = default;

 private:
  friend Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                std::span<const std::int64_t> priority_keys,
                                ListScheduleWorkspace& ws);
  friend Cycles list_schedule_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                                       std::span<const std::int64_t> priority_keys,
                                       ListScheduleWorkspace& ws);
  friend const GapRun& list_schedule_gaps(const graph::TaskGraph& g, std::size_t num_procs,
                                          std::span<const std::int64_t> priority_keys,
                                          ListScheduleWorkspace& ws);

  /// Two-level bitmap over dense indices with O(1) amortized insert /
  /// erase / pop-min.  Level 1 marks 64-index blocks with any member; a
  /// pop scans level 1 for the first non-empty block (a handful of words
  /// even for 5000 tasks) and finishes with count-trailing-zeros.  The
  /// word storage is carved from the workspace arena per run.
  struct IndexSet {
    std::span<std::uint64_t> words, top;
    std::size_t count{0};

    void carve(util::Arena& arena, std::size_t n); ///< allocate, contents undefined
    void init(util::Arena& arena, std::size_t n);  ///< carve + clear
    void fill_all(std::size_t n);                  ///< set members 0..n-1 (after init)
    [[nodiscard]] bool empty() const { return count == 0; }
    // insert/pop_min run once per task per scheduling probe; defined inline
    // because the call overhead is measurable across a configuration search.
    void insert(std::size_t i) {
      const std::size_t w = i / 64;
      words[w] |= std::uint64_t{1} << (i % 64);
      top[w / 64] |= std::uint64_t{1} << (w % 64);
      ++count;
    }
    std::size_t pop_min() {
      std::size_t t = 0;
      while (top[t] == 0) ++t;
      const std::size_t w = t * 64 + static_cast<std::size_t>(std::countr_zero(top[t]));
      const std::size_t b = static_cast<std::size_t>(std::countr_zero(words[w]));
      const std::size_t i = w * 64 + b;
      words[w] &= words[w] - 1;  // clear lowest set bit
      if (words[w] == 0) top[t] &= ~(std::uint64_t{1} << (w % 64));
      --count;
      return i;
    }
  };

  /// Calendar queue over task-completion events, used when the processor
  /// count exceeds 64 (wide ASAP sweeps).  The common search probes run
  /// on at most a few dozen processors and take the bitmask fast path in
  /// the event loop instead: a running-set mask plus a linear min-scan
  /// over at most 64 finish instants, which fits in two cache lines and
  /// has no bucket bookkeeping at all.  Buckets index
  /// `finish >> shift`, with `shift` sized per graph so the bucket count
  /// stays O(num_tasks) regardless of the cycle magnitudes; because the
  /// makespan never exceeds the total work, every finish maps in range.
  /// Each bucket chains the (at most one per processor) running entries
  /// through `next`, and retirement scans the chain for the exact minimum
  /// finish — so placements do not depend on the bucket resolution.  The
  /// structure is monotone (a dispatched finish is never below the current
  /// instant), which makes the non-empty scan a single forward pass over
  /// the bitmap for the whole run.  Buckets drain back to empty by the end
  /// of every complete run; `dirty` forces a full re-init if a prior run
  /// was abandoned mid-way (e.g. by an exception).  head/nonempty persist
  /// across runs (that is what makes the drain-back optimization pay); the
  /// per-processor arrays are carved from the arena each run.
  struct Calendar {
    std::vector<std::int32_t> head;       // slot -> first proc in bucket, -1 none
    std::vector<std::uint64_t> nonempty;  // bitmap over slots
    std::span<std::int32_t> next;         // proc -> next proc in same bucket
    std::span<Cycles> finish_of;          // proc -> finish instant
    std::span<graph::TaskId> task_of;     // proc -> running task
    unsigned shift{0};
    std::size_t slots{0};
    std::size_t count{0};
    std::size_t cursor{0};  // monotone non-empty scan position for this run
    bool dirty{true};

    void configure(util::Arena& arena, Cycles total_work, std::size_t num_tasks,
                   std::size_t num_procs);
    [[nodiscard]] bool empty() const { return count == 0; }
    void insert(ProcId p, graph::TaskId v, Cycles finish) {
      const std::size_t s = static_cast<std::size_t>(finish >> shift);
      if (head[s] < 0) nonempty[s / 64] |= std::uint64_t{1} << (s % 64);
      next[p] = head[s];
      head[s] = static_cast<std::int32_t>(p);
      finish_of[p] = finish;
      task_of[p] = v;
      ++count;
    }
    /// Removes every entry with the minimum outstanding finish instant,
    /// invoking `on_retire(proc, task)` for each, and returns that
    /// instant.  Precondition: count > 0.
    template <typename RetireFn>
    Cycles retire_min(RetireFn&& on_retire);

    /// First slot >= `from` with any entry; precondition: count > 0.
    [[nodiscard]] std::size_t next_slot(std::size_t from) const;
  };

  void prepare(const graph::TaskGraph& g, std::span<const std::int64_t> priority_keys);

  /// True when `priority_keys` induce exactly the cached ranking (the sort
  /// by (key, id) would return task_of_rank_ unchanged).  O(V); lets a
  /// uniformly shifted key set — a rescheduled global EDF deadline — skip
  /// the O(V log V) re-sort.
  [[nodiscard]] bool ranking_matches(std::span<const std::int64_t> priority_keys) const;

  /// Rebuilds the rank-space image of `g` for the current ranking: task
  /// weights and the successor CSR re-indexed by rank, plus snapshots of
  /// the initial missing-predecessor counts and the initial ready bitmap.
  /// With these, drive() touches only rank-indexed arrays — every access
  /// the dispatch/retire hot path makes walks memory in priority order
  /// instead of hopping task id -> rank -> counter — and the per-run O(V)
  /// init collapses to three memcpys.
  void build_rank_image(const graph::TaskGraph& g);

  /// True when the cached rank image was built from arrays byte-identical
  /// to `g`'s.  Content equality (not graph identity) is the test on
  /// purpose: a workspace outlives the graphs it serves, and a later graph
  /// can reuse both the heap address and the key pattern of a dead one
  /// (kFifo keys carry no structure).  Equal bytes under an equal ranking
  /// imply an identical image, so this memcmp — three sequential streams,
  /// microseconds at search sizes — is what keeps the cache airtight.
  [[nodiscard]] bool rank_image_matches(const graph::TaskGraph& g) const;

  /// The shared event loop behind list_schedule and list_schedule_makespan.
  /// `place(v, p, start, finish)` records a placement — a no-op functor
  /// turns the run into a makespan-only probe with zero materialization
  /// cost.  Returns the makespan.  Carves the run's scratch from the
  /// arena and dispatches to `drive` with either the bitmask pending
  /// queue (num_procs <= 64) or the calendar.  Defined (and only
  /// instantiated) in list_scheduler.cpp.
  template <typename PlaceFn>
  static Cycles run_event_loop(const graph::TaskGraph& g, std::size_t num_procs,
                               ListScheduleWorkspace& ws, PlaceFn&& place);

  /// The loop proper, generic over the pending-completion queue (bitmask
  /// or calendar — both expose empty/insert/retire_min).
  template <typename Pending, typename PlaceFn>
  static Cycles drive(const graph::TaskGraph& g, ListScheduleWorkspace& ws,
                      Pending& pending, PlaceFn&& place);

  // Priority ranking, cached across calls until the keys change.
  std::vector<std::int64_t> prepared_keys_;
  std::vector<graph::TaskId> task_of_rank_;
  std::vector<std::uint32_t> rank_of_task_;
  bool prepared_{false};

  // Rank-space graph image (build_rank_image), cached with the ranking.
  std::vector<Cycles> weight_by_rank_;        // weight of task_of_rank_[r]
  std::vector<graph::EdgeIndex> succ_roff_;   // CSR offsets over ranks, n+1
  std::vector<std::uint32_t> succ_rrank_;     // successor RANKS, |E|
  std::vector<std::uint32_t> init_missing_;   // pred count of rank r
  std::vector<std::uint64_t> init_ready_words_, init_ready_top_;  // zero-pred ranks
  std::size_t init_ready_count_{0};
  // Byte mirrors of the graph arrays the image was built from, compared by
  // rank_image_matches on every reuse.
  std::vector<Cycles> mirror_weights_;
  std::vector<graph::EdgeIndex> mirror_soff_;
  std::vector<graph::TaskId> mirror_stgt_;

  // Per-call scratch, carved from the arena by prepare()/run_event_loop().
  util::Arena arena_;
  std::span<std::uint32_t> missing_preds_;
  IndexSet ready_;      // over ranks
  IndexSet free_procs_; // over processor ids
  Calendar running_;    // completion-event calendar

  // Gap-run staging (list_schedule_gaps): SoA buffers recycled run to run.
  std::vector<Cycles> gap_busy_, gap_leading_, gap_tail_;
  std::vector<std::uint32_t> gap_proc_;
  std::vector<Cycles> gap_len_;
  GapRun gap_run_;
};

/// Schedules every task of `g` on `num_procs` processors using the given
/// priority keys (see make_priority_keys).  Always succeeds (a list
/// schedule exists for any DAG); deadline feasibility is judged afterwards
/// by the caller.
[[nodiscard]] Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                     std::span<const std::int64_t> priority_keys);

/// Same, reusing `ws` for scratch storage and the cached priority ranking.
/// Placements are identical to the workspace-free overload.
[[nodiscard]] Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                     std::span<const std::int64_t> priority_keys,
                                     ListScheduleWorkspace& ws);

/// Runs the identical event loop but records no placements, returning only
/// the makespan.  For search probes that compare makespans (e.g. the
/// schedule_max_speedup binary search) this skips the entire Schedule
/// materialization cost.  Equal by construction to
/// `list_schedule(g, num_procs, priority_keys, ws).makespan()`.
[[nodiscard]] Cycles list_schedule_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                                            std::span<const std::int64_t> priority_keys,
                                            ListScheduleWorkspace& ws);

/// Runs the identical event loop but records only the idle structure
/// (busy totals, leading/internal/trailing gaps) instead of placements.
/// Everything an energy evaluation needs — and nothing a configuration
/// search throws away when the candidate loses.  The returned view aliases
/// buffers owned by `ws` and is valid until the workspace's next run; the
/// data equals what energy::GapProfile would derive from the full
/// schedule: `GapProfile(list_schedule_gaps(...))` is bit-identical to
/// `GapProfile(list_schedule(...))`.
[[nodiscard]] const GapRun& list_schedule_gaps(const graph::TaskGraph& g,
                                               std::size_t num_procs,
                                               std::span<const std::int64_t> priority_keys,
                                               ListScheduleWorkspace& ws);

/// Convenience: build EDF keys for `deadline_cycles` and schedule.
[[nodiscard]] Schedule list_schedule_edf(const graph::TaskGraph& g, std::size_t num_procs,
                                         Cycles deadline_cycles,
                                         Hertz ref_frequency = Hertz{1.0});

/// Insertion-based list scheduling (ISH-style): tasks are taken strictly in
/// priority order (constrained to predecessors-first) and each is placed in
/// the earliest idle slot on any processor — including gaps *between*
/// already-placed tasks, which the non-delay scheduler above can never use.
/// Often shaves the makespan on unbalanced graphs at O(V * P + V * E + V^2 / P)
/// cost; exists for the section 4.4 "would a better scheduler help?"
/// ablation.
[[nodiscard]] Schedule list_schedule_insertion(const graph::TaskGraph& g,
                                               std::size_t num_procs,
                                               std::span<const std::int64_t> priority_keys);

}  // namespace lamps::sched
