// Non-preemptive global list scheduling (the paper's LS-EDF when combined
// with EDF priority keys).
//
// The scheduler is event-driven and greedy ("non-delay"): whenever a
// processor is free and ready tasks exist, the ready task with the smallest
// priority key is dispatched immediately.  Time is advanced to the next
// task-completion event otherwise.  Determinism: ready ties break on
// smaller task id, free processors are taken in ascending id order.
//
// Complexity: O((V + E) log V) standalone; the workspace overload runs in
// O(V + E) amortized per call once the priority ranking is cached (bitmap
// ready/free sets, calendar-bucketed completion events).
#pragma once

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/priorities.hpp"
#include "sched/schedule.hpp"

namespace lamps::sched {

class ListScheduleWorkspace;

/// Raw idle-structure of one list-schedule run, recorded by
/// list_schedule_gaps without materializing a Schedule.  Exactly the data
/// energy::GapProfile derives from a full Schedule: per processor the busy
/// cycle total, the leading gap, the finish of the last placement and the
/// internal gap lengths (in placement order; the profile sorts them).
struct GapRun {
  struct Proc {
    Cycles busy{0};
    Cycles leading{0};          ///< idle cycles before the first placement
    Cycles tail{0};             ///< finish of the last placement (0 = none)
    std::vector<Cycles> gaps;   ///< internal gap lengths, placement order
  };
  std::vector<Proc> procs;
  Cycles makespan{0};
};

/// Reusable scratch state for list_schedule.  The configuration searches
/// (LAMPS phases 1+2, schedule_max_speedup, processor_sweep) invoke the
/// scheduler dozens of times with the same graph and priority keys but
/// different processor counts; a workspace threaded through those calls
/// eliminates the per-call allocations and — the larger win — computes the
/// priority ranking (tasks sorted by (key, id)) only once, turning the
/// ready queue into an O(1) find-first-set over a bitmap instead of a
/// binary heap.  A workspace may be reused across different graphs/keys
/// (it re-prepares itself when they change); it is not thread-safe, so
/// parallel sweeps use one workspace per worker thread.
class ListScheduleWorkspace {
 public:
  ListScheduleWorkspace() = default;

 private:
  friend Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                std::span<const std::int64_t> priority_keys,
                                ListScheduleWorkspace& ws);
  friend Cycles list_schedule_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                                       std::span<const std::int64_t> priority_keys,
                                       ListScheduleWorkspace& ws);
  friend GapRun list_schedule_gaps(const graph::TaskGraph& g, std::size_t num_procs,
                                   std::span<const std::int64_t> priority_keys,
                                   ListScheduleWorkspace& ws);

  /// Two-level bitmap over dense indices with O(1) amortized insert /
  /// erase / pop-min.  Level 1 marks 64-index blocks with any member; a
  /// pop scans level 1 for the first non-empty block (a handful of words
  /// even for 5000 tasks) and finishes with count-trailing-zeros.
  struct IndexSet {
    std::vector<std::uint64_t> words, top;
    std::size_t count{0};

    void reset(std::size_t n);
    void fill_all(std::size_t n);
    [[nodiscard]] bool empty() const { return count == 0; }
    // insert/pop_min run once per task per scheduling probe; defined inline
    // because the call overhead is measurable across a configuration search.
    void insert(std::size_t i) {
      const std::size_t w = i / 64;
      words[w] |= std::uint64_t{1} << (i % 64);
      top[w / 64] |= std::uint64_t{1} << (w % 64);
      ++count;
    }
    std::size_t pop_min() {
      std::size_t t = 0;
      while (top[t] == 0) ++t;
      const std::size_t w = t * 64 + static_cast<std::size_t>(std::countr_zero(top[t]));
      const std::size_t b = static_cast<std::size_t>(std::countr_zero(words[w]));
      const std::size_t i = w * 64 + b;
      words[w] &= words[w] - 1;  // clear lowest set bit
      if (words[w] == 0) top[t] &= ~(std::uint64_t{1} << (w % 64));
      --count;
      return i;
    }
  };

  /// Calendar queue over task-completion events.  Buckets index
  /// `finish >> shift`, with `shift` sized per graph so the bucket count
  /// stays O(num_tasks) regardless of the cycle magnitudes; because the
  /// makespan never exceeds the total work, every finish maps in range.
  /// Each bucket chains the (at most one per processor) running entries
  /// through `next`, and retirement scans the chain for the exact minimum
  /// finish — so placements do not depend on the bucket resolution.  The
  /// structure is monotone (a dispatched finish is never below the current
  /// instant), which makes the non-empty scan a single forward pass over
  /// the bitmap for the whole run.  Buckets drain back to empty by the end
  /// of every complete run; `dirty` forces a full re-init if a prior run
  /// was abandoned mid-way (e.g. by an exception).
  struct Calendar {
    std::vector<std::int32_t> head;       // slot -> first proc in bucket, -1 none
    std::vector<std::uint64_t> nonempty;  // bitmap over slots
    std::vector<std::int32_t> next;       // proc -> next proc in same bucket
    std::vector<Cycles> finish_of;        // proc -> finish instant
    std::vector<graph::TaskId> task_of;   // proc -> running task
    unsigned shift{0};
    std::size_t slots{0};
    std::size_t count{0};
    bool dirty{true};

    void configure(Cycles total_work, std::size_t num_tasks, std::size_t num_procs);
    void insert(ProcId p, graph::TaskId v, Cycles finish) {
      const std::size_t s = static_cast<std::size_t>(finish >> shift);
      if (head[s] < 0) nonempty[s / 64] |= std::uint64_t{1} << (s % 64);
      next[p] = head[s];
      head[s] = static_cast<std::int32_t>(p);
      finish_of[p] = finish;
      task_of[p] = v;
      ++count;
    }
    /// First slot >= `from` with any entry; precondition: count > 0.
    [[nodiscard]] std::size_t next_slot(std::size_t from) const;
  };

  void prepare(const graph::TaskGraph& g, std::span<const std::int64_t> priority_keys);

  /// The shared event loop behind list_schedule and list_schedule_makespan.
  /// `place(v, p, start, finish)` records a placement — a no-op functor
  /// turns the run into a makespan-only probe with zero materialization
  /// cost.  Returns the makespan.  Defined (and only instantiated) in
  /// list_scheduler.cpp.
  template <typename PlaceFn>
  static Cycles run_event_loop(const graph::TaskGraph& g, std::size_t num_procs,
                               ListScheduleWorkspace& ws, PlaceFn&& place);

  // Priority ranking, cached across calls until the keys change.
  std::vector<std::int64_t> prepared_keys_;
  std::vector<graph::TaskId> task_of_rank_;
  std::vector<std::uint32_t> rank_of_task_;
  bool prepared_{false};

  // Per-call scratch.
  std::vector<std::size_t> missing_preds_;
  IndexSet ready_;      // over ranks
  IndexSet free_procs_; // over processor ids
  Calendar running_;    // completion-event calendar
};

/// Schedules every task of `g` on `num_procs` processors using the given
/// priority keys (see make_priority_keys).  Always succeeds (a list
/// schedule exists for any DAG); deadline feasibility is judged afterwards
/// by the caller.
[[nodiscard]] Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                     std::span<const std::int64_t> priority_keys);

/// Same, reusing `ws` for scratch storage and the cached priority ranking.
/// Placements are identical to the workspace-free overload.
[[nodiscard]] Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                     std::span<const std::int64_t> priority_keys,
                                     ListScheduleWorkspace& ws);

/// Runs the identical event loop but records no placements, returning only
/// the makespan.  For search probes that compare makespans (e.g. the
/// schedule_max_speedup binary search) this skips the entire Schedule
/// materialization cost.  Equal by construction to
/// `list_schedule(g, num_procs, priority_keys, ws).makespan()`.
[[nodiscard]] Cycles list_schedule_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                                            std::span<const std::int64_t> priority_keys,
                                            ListScheduleWorkspace& ws);

/// Runs the identical event loop but records only the idle structure
/// (busy totals, leading/internal/trailing gaps) instead of placements.
/// Everything an energy evaluation needs — and nothing a configuration
/// search throws away when the candidate loses.  The returned data equals
/// what energy::GapProfile would derive from the full schedule:
/// `GapProfile(list_schedule_gaps(...))` is bit-identical to
/// `GapProfile(list_schedule(...))`.
[[nodiscard]] GapRun list_schedule_gaps(const graph::TaskGraph& g, std::size_t num_procs,
                                        std::span<const std::int64_t> priority_keys,
                                        ListScheduleWorkspace& ws);

/// Convenience: build EDF keys for `deadline_cycles` and schedule.
[[nodiscard]] Schedule list_schedule_edf(const graph::TaskGraph& g, std::size_t num_procs,
                                         Cycles deadline_cycles,
                                         Hertz ref_frequency = Hertz{1.0});

/// Insertion-based list scheduling (ISH-style): tasks are taken strictly in
/// priority order (constrained to predecessors-first) and each is placed in
/// the earliest idle slot on any processor — including gaps *between*
/// already-placed tasks, which the non-delay scheduler above can never use.
/// Often shaves the makespan on unbalanced graphs at O(V * P + V * E + V^2 / P)
/// cost; exists for the section 4.4 "would a better scheduler help?"
/// ablation.
[[nodiscard]] Schedule list_schedule_insertion(const graph::TaskGraph& g,
                                               std::size_t num_procs,
                                               std::span<const std::int64_t> priority_keys);

}  // namespace lamps::sched
