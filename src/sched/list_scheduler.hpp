// Non-preemptive global list scheduling (the paper's LS-EDF when combined
// with EDF priority keys).
//
// The scheduler is event-driven and greedy ("non-delay"): whenever a
// processor is free and ready tasks exist, the ready task with the smallest
// priority key is dispatched immediately.  Time is advanced to the next
// task-completion event otherwise.  Determinism: ready ties break on
// smaller task id, free processors are taken in ascending id order.
//
// Complexity: O((V + E) log V).
#pragma once

#include <cstdint>
#include <span>

#include "graph/task_graph.hpp"
#include "sched/priorities.hpp"
#include "sched/schedule.hpp"

namespace lamps::sched {

/// Schedules every task of `g` on `num_procs` processors using the given
/// priority keys (see make_priority_keys).  Always succeeds (a list
/// schedule exists for any DAG); deadline feasibility is judged afterwards
/// by the caller.
[[nodiscard]] Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                                     std::span<const std::int64_t> priority_keys);

/// Convenience: build EDF keys for `deadline_cycles` and schedule.
[[nodiscard]] Schedule list_schedule_edf(const graph::TaskGraph& g, std::size_t num_procs,
                                         Cycles deadline_cycles,
                                         Hertz ref_frequency = Hertz{1.0});

/// Insertion-based list scheduling (ISH-style): tasks are taken strictly in
/// priority order (constrained to predecessors-first) and each is placed in
/// the earliest idle slot on any processor — including gaps *between*
/// already-placed tasks, which the non-delay scheduler above can never use.
/// Often shaves the makespan on unbalanced graphs at O(V * P + V * E + V^2 / P)
/// cost; exists for the section 4.4 "would a better scheduler help?"
/// ablation.
[[nodiscard]] Schedule list_schedule_insertion(const graph::TaskGraph& g,
                                               std::size_t num_procs,
                                               std::span<const std::int64_t> priority_keys);

}  // namespace lamps::sched
