#include "sched/stats.hpp"

#include <algorithm>
#include <bit>
#include <ostream>

namespace lamps::sched {

ScheduleStats compute_stats(const Schedule& s, const graph::TaskGraph& g) {
  ScheduleStats st;
  st.num_procs = s.num_procs();
  st.makespan = s.makespan();
  st.total_work = g.total_work();

  Cycles max_busy = 0, used_busy = 0;
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const Cycles busy = s.busy_cycles(p);
    if (!s.on_proc(p).empty()) {
      ++st.procs_used;
      used_busy += busy;
      max_busy = std::max(max_busy, busy);
    }
  }
  if (st.makespan > 0 && st.num_procs > 0) {
    st.utilization = static_cast<double>(st.total_work) /
                     (static_cast<double>(st.num_procs) * static_cast<double>(st.makespan));
    st.speedup = static_cast<double>(st.total_work) / static_cast<double>(st.makespan);
  }
  if (st.procs_used > 0 && used_busy > 0) {
    const double mean = static_cast<double>(used_busy) / static_cast<double>(st.procs_used);
    st.load_imbalance = static_cast<double>(max_busy) / mean;
  }
  if (st.makespan > 0) {
    for (const Gap& gap : s.gaps(st.makespan)) {
      st.idle_cycles += gap.length();
      st.longest_internal_gap = std::max(st.longest_internal_gap, gap.length());
    }
  }
  return st;
}

std::vector<std::size_t> gap_histogram(const Schedule& s) {
  std::vector<std::size_t> hist;
  if (s.makespan() == 0) return hist;
  for (const Gap& gap : s.gaps(s.makespan())) {
    const Cycles len = gap.length();
    if (len == 0) continue;
    const auto bucket = static_cast<std::size_t>(std::bit_width(len) - 1);
    if (bucket >= hist.size()) hist.resize(bucket + 1, 0);
    ++hist[bucket];
  }
  return hist;
}

void print_stats(const ScheduleStats& st, std::ostream& os) {
  os << "processors: " << st.procs_used << " used of " << st.num_procs
     << ", makespan: " << st.makespan << " cycles\n"
     << "utilization: " << st.utilization << ", speedup: " << st.speedup
     << ", load imbalance: " << st.load_imbalance << '\n'
     << "idle: " << st.idle_cycles << " cycles total, longest gap "
     << st.longest_internal_gap << " cycles\n";
}

}  // namespace lamps::sched
