#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"

namespace lamps::sched {

namespace {

// Scheduler run mix: full placements vs makespan-only vs gap-only runs
// (docs/observability.md).
obs::Counter& c_runs_full = obs::counter("scheduler.runs_full");
obs::Counter& c_runs_makespan = obs::counter("scheduler.runs_makespan");
obs::Counter& c_runs_gaps = obs::counter("scheduler.runs_gaps");

struct ReadyEntry {
  std::int64_t key;
  graph::TaskId task;
  // Min-heap: smallest key first, then smallest id.
  bool operator>(const ReadyEntry& o) const {
    return key != o.key ? key > o.key : task > o.task;
  }
};

}  // namespace

void ListScheduleWorkspace::IndexSet::reset(std::size_t n) {
  words.assign((n + 63) / 64, 0);
  top.assign((words.size() + 63) / 64, 0);
  count = 0;
}

void ListScheduleWorkspace::IndexSet::fill_all(std::size_t n) {
  reset(n);
  if (n == 0) return;
  for (std::size_t w = 0; w < words.size(); ++w) words[w] = ~std::uint64_t{0};
  if (n % 64 != 0) words.back() = (std::uint64_t{1} << (n % 64)) - 1;
  for (std::size_t w = 0; w < words.size(); ++w) top[w / 64] |= std::uint64_t{1} << (w % 64);
  count = n;
}

void ListScheduleWorkspace::Calendar::configure(Cycles total_work, std::size_t num_tasks,
                                                std::size_t num_procs) {
  // Bucket resolution: the coarsest shift that keeps the slot count within
  // ~4 tasks per bucket on average.  The makespan of any schedule is at
  // most the total work, so finish >> shift always lands in range.
  const std::size_t cap = std::max<std::size_t>(4 * num_tasks, 1024);
  unsigned k = 0;
  while ((total_work >> k) > cap) ++k;
  const std::size_t need = static_cast<std::size_t>(total_work >> k) + 2;
  if (dirty || k != shift || need > slots) {
    shift = k;
    slots = need;
    head.assign(slots, -1);
    nonempty.assign((slots + 63) / 64, 0);
    dirty = false;
  }
  next.resize(num_procs);
  finish_of.resize(num_procs);
  task_of.resize(num_procs);
  count = 0;
}

std::size_t ListScheduleWorkspace::Calendar::next_slot(std::size_t from) const {
  std::size_t w = from / 64;
  std::uint64_t bits = nonempty[w] & (~std::uint64_t{0} << (from % 64));
  while (bits == 0) bits = nonempty[++w];
  return w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
}

void ListScheduleWorkspace::prepare(const graph::TaskGraph& g,
                                    std::span<const std::int64_t> priority_keys) {
  const std::size_t n = g.num_tasks();
  const bool same_keys = prepared_ && prepared_keys_.size() == n &&
                         std::equal(prepared_keys_.begin(), prepared_keys_.end(),
                                    priority_keys.begin());
  if (!same_keys) {
    prepared_keys_.assign(priority_keys.begin(), priority_keys.end());
    task_of_rank_.resize(n);
    for (std::size_t i = 0; i < n; ++i) task_of_rank_[i] = static_cast<graph::TaskId>(i);
    std::sort(task_of_rank_.begin(), task_of_rank_.end(),
              [&](graph::TaskId a, graph::TaskId b) {
                return prepared_keys_[a] != prepared_keys_[b]
                           ? prepared_keys_[a] < prepared_keys_[b]
                           : a < b;
              });
    rank_of_task_.resize(n);
    for (std::size_t r = 0; r < n; ++r)
      rank_of_task_[task_of_rank_[r]] = static_cast<std::uint32_t>(r);
    prepared_ = true;
  }
  missing_preds_.resize(n);
  ready_.reset(n);
}

template <typename PlaceFn>
Cycles ListScheduleWorkspace::run_event_loop(const graph::TaskGraph& g, std::size_t num_procs,
                                             ListScheduleWorkspace& ws, PlaceFn&& place) {
  auto& cal = ws.running_;
  cal.configure(g.total_work(), g.num_tasks(), num_procs);
  cal.dirty = true;  // cleared on normal return; forces a re-init after aborts

  ws.free_procs_.fill_all(num_procs);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    ws.missing_preds_[v] = g.in_degree(v);
    if (ws.missing_preds_[v] == 0) ws.ready_.insert(ws.rank_of_task_[v]);
  }

  Cycles now = 0;
  Cycles makespan = 0;
  std::size_t cur_slot = 0;
  std::size_t scheduled = 0;
  // Keep retiring past the last dispatch (scheduled == num_tasks) until the
  // calendar is empty again: the workspace contract is that every bucket and
  // every occupancy bit is clean when the run returns, so the next run can
  // skip the O(slots) re-initialization.
  while (scheduled < g.num_tasks() || cal.count > 0) {
    // Watchdog poll: a stride-counted no-op without an installed token
    // (see util/cancel.hpp); the throw path leaves cal.dirty set, so an
    // aborted run re-initializes the calendar on the next use.
    cancel_checkpoint("sched/list_schedule");
    // Dispatch greedily while both a ready task and a free processor exist.
    while (!ws.ready_.empty() && !ws.free_procs_.empty()) {
      const graph::TaskId v = ws.task_of_rank_[ws.ready_.pop_min()];
      const ProcId p = static_cast<ProcId>(ws.free_procs_.pop_min());
      const Cycles finish = now + g.weight(v);
      place(v, p, now, finish);
      if (finish > makespan) makespan = finish;
      cal.insert(p, v, finish);
      ++scheduled;
    }
    if (cal.count == 0) break;  // all done (or nothing dispatchable — impossible for a DAG)

    // Advance to the next completion instant and retire everything that
    // finishes there, releasing successors and processors before the next
    // dispatch round.  The earliest outstanding finish always lives in the
    // first non-empty bucket at or after the current one (finishes are
    // monotone), and the exact minimum is found by scanning that bucket's
    // chain — within-instant retirement order never affects placements
    // because the ready/free sets are order-insensitive bitmaps.
    cur_slot = cal.next_slot(cur_slot);
    now = std::numeric_limits<Cycles>::max();
    for (std::int32_t p = cal.head[cur_slot]; p >= 0; p = cal.next[static_cast<std::size_t>(p)])
      now = std::min(now, cal.finish_of[static_cast<std::size_t>(p)]);
    std::int32_t keep = -1;
    for (std::int32_t p = cal.head[cur_slot]; p >= 0;) {
      const auto pi = static_cast<std::size_t>(p);
      const std::int32_t nx = cal.next[pi];
      if (cal.finish_of[pi] == now) {
        --cal.count;
        ws.free_procs_.insert(pi);
        for (const graph::TaskId s : g.successors(cal.task_of[pi]))
          if (--ws.missing_preds_[s] == 0) ws.ready_.insert(ws.rank_of_task_[s]);
      } else {
        cal.next[pi] = keep;
        keep = p;
      }
      p = nx;
    }
    cal.head[cur_slot] = keep;
    if (keep < 0) cal.nonempty[cur_slot / 64] &= ~(std::uint64_t{1} << (cur_slot % 64));
  }

  cal.dirty = false;
  return makespan;
}

namespace {

void check_list_schedule_args(const graph::TaskGraph& g, std::size_t num_procs,
                              std::span<const std::int64_t> priority_keys) {
  if (num_procs == 0)
    throw std::invalid_argument("list_schedule: need at least one processor");
  if (priority_keys.size() != g.num_tasks())
    throw std::invalid_argument("list_schedule: priority key count mismatch");
}

}  // namespace

Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                       std::span<const std::int64_t> priority_keys,
                       ListScheduleWorkspace& ws) {
  check_list_schedule_args(g, num_procs, priority_keys);
  obs::Span span("sched/list_schedule");
  c_runs_full.inc();
  ws.prepare(g, priority_keys);
  Schedule schedule(num_procs, g.num_tasks());
  ListScheduleWorkspace::run_event_loop(g, num_procs, ws,
                 [&schedule](graph::TaskId v, ProcId p, Cycles start, Cycles finish) {
                   schedule.place(v, p, start, finish);
                 });
  return schedule;
}

Cycles list_schedule_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                              std::span<const std::int64_t> priority_keys,
                              ListScheduleWorkspace& ws) {
  check_list_schedule_args(g, num_procs, priority_keys);
  c_runs_makespan.inc();
  ws.prepare(g, priority_keys);
  return ListScheduleWorkspace::run_event_loop(g, num_procs, ws, [](graph::TaskId, ProcId, Cycles, Cycles) {});
}

GapRun list_schedule_gaps(const graph::TaskGraph& g, std::size_t num_procs,
                          std::span<const std::int64_t> priority_keys,
                          ListScheduleWorkspace& ws) {
  check_list_schedule_args(g, num_procs, priority_keys);
  c_runs_gaps.inc();
  ws.prepare(g, priority_keys);
  GapRun run;
  run.procs.resize(num_procs);
  // Per processor the placements arrive in start order (each processor runs
  // one task at a time and `now` is monotone), so the gap structure streams:
  // `tail` doubles as the cursor GapProfile walks a finished row with.
  run.makespan = ListScheduleWorkspace::run_event_loop(
      g, num_procs, ws, [&run](graph::TaskId, ProcId p, Cycles start, Cycles finish) {
        GapRun::Proc& pp = run.procs[p];
        if (start > pp.tail) {
          if (pp.tail == 0)
            pp.leading = start;
          else
            pp.gaps.push_back(start - pp.tail);
        }
        pp.busy += finish - start;
        pp.tail = finish;
      });
  return run;
}

Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                       std::span<const std::int64_t> priority_keys) {
  ListScheduleWorkspace ws;
  return list_schedule(g, num_procs, priority_keys, ws);
}

Schedule list_schedule_insertion(const graph::TaskGraph& g, std::size_t num_procs,
                                 std::span<const std::int64_t> priority_keys) {
  if (num_procs == 0)
    throw std::invalid_argument("list_schedule_insertion: need at least one processor");
  if (priority_keys.size() != g.num_tasks())
    throw std::invalid_argument("list_schedule_insertion: priority key count mismatch");

  struct Slot {
    Cycles start, finish;
    graph::TaskId task;
  };
  std::vector<std::vector<Slot>> rows(num_procs);  // sorted by start
  std::vector<Cycles> finish_of(g.num_tasks(), 0);

  // Priority order constrained to predecessors-first.
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>> ready;
  std::vector<std::size_t> missing_preds(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    missing_preds[v] = g.in_degree(v);
    if (missing_preds[v] == 0) ready.push(ReadyEntry{priority_keys[v], v});
  }

  while (!ready.empty()) {
    cancel_checkpoint("sched/list_schedule_insertion");
    const graph::TaskId v = ready.top().task;
    ready.pop();
    Cycles ready_time = 0;
    for (const graph::TaskId p : g.predecessors(v))
      ready_time = std::max(ready_time, finish_of[p]);
    const Cycles w = g.weight(v);

    // Earliest feasible slot over all processors: scan each row's gaps
    // (before the first task, between tasks, after the last).
    ProcId best_proc = 0;
    Cycles best_start = std::numeric_limits<Cycles>::max();
    std::size_t best_pos = 0;
    for (ProcId p = 0; p < num_procs; ++p) {
      const auto& row = rows[p];
      Cycles cursor = 0;
      Cycles start = std::numeric_limits<Cycles>::max();
      std::size_t pos = row.size();
      for (std::size_t i = 0; i <= row.size(); ++i) {
        const Cycles gap_end =
            i < row.size() ? row[i].start : std::numeric_limits<Cycles>::max();
        const Cycles candidate = std::max(cursor, ready_time);
        if (candidate + w <= gap_end || gap_end == std::numeric_limits<Cycles>::max()) {
          start = candidate;
          pos = i;
          break;
        }
        cursor = row[i].finish;
      }
      if (start < best_start) {
        best_start = start;
        best_proc = p;
        best_pos = pos;
      }
    }

    rows[best_proc].insert(rows[best_proc].begin() + static_cast<std::ptrdiff_t>(best_pos),
                           Slot{best_start, best_start + w, v});
    finish_of[v] = best_start + w;
    for (const graph::TaskId s : g.successors(v))
      if (--missing_preds[s] == 0) ready.push(ReadyEntry{priority_keys[s], s});
  }

  Schedule schedule(num_procs, g.num_tasks());
  for (ProcId p = 0; p < num_procs; ++p)
    for (const Slot& slot : rows[p]) schedule.place(slot.task, p, slot.start, slot.finish);
  return schedule;
}

Schedule list_schedule_edf(const graph::TaskGraph& g, std::size_t num_procs,
                           Cycles deadline_cycles, Hertz ref_frequency) {
  PriorityOptions opts;
  opts.policy = PriorityPolicy::kEdf;
  opts.global_deadline_cycles = deadline_cycles;
  opts.ref_frequency = ref_frequency;
  return list_schedule(g, num_procs, make_priority_keys(g, opts));
}

}  // namespace lamps::sched
