#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"

namespace lamps::sched {

namespace {

// Scheduler run mix: full placements vs makespan-only vs gap-only runs
// (docs/observability.md).
obs::Counter& c_runs_full = obs::counter("scheduler.runs_full");
obs::Counter& c_runs_makespan = obs::counter("scheduler.runs_makespan");
obs::Counter& c_runs_gaps = obs::counter("scheduler.runs_gaps");

struct ReadyEntry {
  std::int64_t key;
  graph::TaskId task;
  // Min-heap: smallest key first, then smallest id.
  bool operator>(const ReadyEntry& o) const {
    return key != o.key ? key > o.key : task > o.task;
  }
};

/// Pending-completion queue for runs on at most 64 processors — every
/// search probe in practice.  One occupancy word plus two short arrays;
/// the minimum outstanding finish is maintained incrementally on insert,
/// so retirement is a single scan over the set bits that releases the
/// matching entries and computes the next minimum from the survivors in
/// the same pass — branch-cheap and entirely in L1 where the calendar's
/// bucket bitmaps and chain walks are not.  Retires the same set of
/// processors at the same instants as the calendar, so placements are
/// identical.
struct MaskQueue {
  std::uint64_t mask{0};
  Cycles min_finish{std::numeric_limits<Cycles>::max()};
  std::span<Cycles> finish_of;
  std::span<graph::TaskId> task_of;

  [[nodiscard]] bool empty() const { return mask == 0; }
  void insert(ProcId p, graph::TaskId v, Cycles finish) {
    mask |= std::uint64_t{1} << p;
    finish_of[p] = finish;
    task_of[p] = v;
    if (finish < min_finish) min_finish = finish;
  }
  template <typename RetireFn>
  Cycles retire_min(RetireFn&& on_retire) {
    const Cycles cur = min_finish;
    Cycles next = std::numeric_limits<Cycles>::max();
    for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
      const auto p = static_cast<std::size_t>(std::countr_zero(bits));
      const Cycles f = finish_of[p];
      if (f == cur) {
        mask &= ~(std::uint64_t{1} << p);
        on_retire(p, task_of[p]);
      } else if (f < next) {
        next = f;
      }
    }
    min_finish = next;
    return cur;
  }
};

}  // namespace

void ListScheduleWorkspace::IndexSet::carve(util::Arena& arena, std::size_t n) {
  const std::size_t nwords = (n + 63) / 64;
  words = arena.make<std::uint64_t>(nwords);
  top = arena.make<std::uint64_t>((nwords + 63) / 64);
}

void ListScheduleWorkspace::IndexSet::init(util::Arena& arena, std::size_t n) {
  carve(arena, n);
  std::memset(words.data(), 0, words.size_bytes());
  std::memset(top.data(), 0, top.size_bytes());
  count = 0;
}

void ListScheduleWorkspace::IndexSet::fill_all(std::size_t n) {
  if (n == 0) return;
  for (std::size_t w = 0; w < words.size(); ++w) words[w] = ~std::uint64_t{0};
  if (n % 64 != 0) words.back() = (std::uint64_t{1} << (n % 64)) - 1;
  for (std::size_t w = 0; w < words.size(); ++w) top[w / 64] |= std::uint64_t{1} << (w % 64);
  count = n;
}

void ListScheduleWorkspace::Calendar::configure(util::Arena& arena, Cycles total_work,
                                                std::size_t num_tasks,
                                                std::size_t num_procs) {
  // Bucket resolution: the coarsest shift that keeps the slot count within
  // ~4 tasks per bucket on average.  The makespan of any schedule is at
  // most the total work, so finish >> shift always lands in range.
  const std::size_t cap = std::max<std::size_t>(4 * num_tasks, 1024);
  unsigned k = 0;
  while ((total_work >> k) > cap) ++k;
  const std::size_t need = static_cast<std::size_t>(total_work >> k) + 2;
  if (dirty || k != shift || need > slots) {
    shift = k;
    slots = need;
    head.assign(slots, -1);
    nonempty.assign((slots + 63) / 64, 0);
    dirty = false;
  }
  next = arena.make<std::int32_t>(num_procs);
  finish_of = arena.make<Cycles>(num_procs);
  task_of = arena.make<graph::TaskId>(num_procs);
  count = 0;
  cursor = 0;
}

std::size_t ListScheduleWorkspace::Calendar::next_slot(std::size_t from) const {
  std::size_t w = from / 64;
  std::uint64_t bits = nonempty[w] & (~std::uint64_t{0} << (from % 64));
  while (bits == 0) bits = nonempty[++w];
  return w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
}

template <typename RetireFn>
Cycles ListScheduleWorkspace::Calendar::retire_min(RetireFn&& on_retire) {
  // The earliest outstanding finish always lives in the first non-empty
  // bucket at or after the cursor (finishes are monotone), and the exact
  // minimum is found by scanning that bucket's chain — within-instant
  // retirement order never affects placements because the ready/free sets
  // are order-insensitive bitmaps.
  cursor = next_slot(cursor);
  Cycles min_finish = std::numeric_limits<Cycles>::max();
  for (std::int32_t p = head[cursor]; p >= 0; p = next[static_cast<std::size_t>(p)])
    min_finish = std::min(min_finish, finish_of[static_cast<std::size_t>(p)]);
  std::int32_t keep = -1;
  for (std::int32_t p = head[cursor]; p >= 0;) {
    const auto pi = static_cast<std::size_t>(p);
    const std::int32_t nx = next[pi];
    if (finish_of[pi] == min_finish) {
      --count;
      on_retire(pi, task_of[pi]);
    } else {
      next[pi] = keep;
      keep = p;
    }
    p = nx;
  }
  head[cursor] = keep;
  if (keep < 0) nonempty[cursor / 64] &= ~(std::uint64_t{1} << (cursor % 64));
  return min_finish;
}

void ListScheduleWorkspace::prepare(const graph::TaskGraph& g,
                                    std::span<const std::int64_t> priority_keys) {
  const std::size_t n = g.num_tasks();
  if (prepared_ && prepared_keys_.size() == n) {
    bool ranking_ok = false;
    if (std::equal(prepared_keys_.begin(), prepared_keys_.end(), priority_keys.begin())) {
      ranking_ok = true;
    } else if (ranking_matches(priority_keys)) {
      // New keys, same induced order — e.g. EDF keys for a different
      // global deadline, which shift every key by one constant.  Keep the
      // cached permutation and skip the O(V log V) re-sort.
      prepared_keys_.assign(priority_keys.begin(), priority_keys.end());
      ranking_ok = true;
    }
    if (ranking_ok) {
      // The ranking depends only on the keys, but the rank image also
      // bakes in the graph; see rank_image_matches for why this must be a
      // content check, not an identity check.
      if (!rank_image_matches(g)) build_rank_image(g);
      return;
    }
  }
  prepared_keys_.assign(priority_keys.begin(), priority_keys.end());
  task_of_rank_.resize(n);
  for (std::size_t i = 0; i < n; ++i) task_of_rank_[i] = static_cast<graph::TaskId>(i);
  std::sort(task_of_rank_.begin(), task_of_rank_.end(),
            [&](graph::TaskId a, graph::TaskId b) {
              return prepared_keys_[a] != prepared_keys_[b]
                         ? prepared_keys_[a] < prepared_keys_[b]
                         : a < b;
            });
  rank_of_task_.resize(n);
  for (std::size_t r = 0; r < n; ++r)
    rank_of_task_[task_of_rank_[r]] = static_cast<std::uint32_t>(r);
  prepared_ = true;
  build_rank_image(g);
}

bool ListScheduleWorkspace::rank_image_matches(const graph::TaskGraph& g) const {
  const std::span<const Cycles> w = g.weights();
  const std::span<const graph::EdgeIndex> soff = g.succ_offsets();
  const std::span<const graph::TaskId> stgt = g.succ_targets();
  // The predecessor CSR is derived from the same edge set, so matching
  // successor arrays imply matching initial missing-predecessor counts.
  return mirror_weights_.size() == w.size() && mirror_soff_.size() == soff.size() &&
         mirror_stgt_.size() == stgt.size() &&
         std::memcmp(mirror_weights_.data(), w.data(), w.size_bytes()) == 0 &&
         std::memcmp(mirror_soff_.data(), soff.data(), soff.size_bytes()) == 0 &&
         std::memcmp(mirror_stgt_.data(), stgt.data(), stgt.size_bytes()) == 0;
}

void ListScheduleWorkspace::build_rank_image(const graph::TaskGraph& g) {
  const std::size_t n = g.num_tasks();
  const std::span<const Cycles> w = g.weights();
  const std::span<const graph::EdgeIndex> soff = g.succ_offsets();
  const std::span<const graph::TaskId> stgt = g.succ_targets();
  const std::span<const graph::EdgeIndex> poff = g.pred_offsets();
  mirror_weights_.assign(w.begin(), w.end());
  mirror_soff_.assign(soff.begin(), soff.end());
  mirror_stgt_.assign(stgt.begin(), stgt.end());

  weight_by_rank_.resize(n);
  init_missing_.resize(n);
  succ_roff_.resize(n + 1);
  succ_rrank_.resize(stgt.size());
  const std::size_t nwords = (n + 63) / 64;
  init_ready_words_.assign(nwords, 0);
  init_ready_top_.assign((nwords + 63) / 64, 0);
  init_ready_count_ = 0;

  graph::EdgeIndex out = 0;
  for (std::size_t r = 0; r < n; ++r) {
    const graph::TaskId v = task_of_rank_[r];
    weight_by_rank_[r] = w[v];
    const std::uint32_t preds = poff[v + 1] - poff[v];
    init_missing_[r] = preds;
    if (preds == 0) {
      init_ready_words_[r / 64] |= std::uint64_t{1} << (r % 64);
      init_ready_top_[r / 4096] |= std::uint64_t{1} << ((r / 64) % 64);
      ++init_ready_count_;
    }
    succ_roff_[r] = out;
    // Successor edges re-ordered by source rank; within one retirement the
    // targets only feed order-insensitive bitmap inserts and counter
    // decrements, so the permutation cannot change placements.
    for (graph::EdgeIndex e = soff[v]; e < soff[v + 1]; ++e)
      succ_rrank_[out++] = rank_of_task_[stgt[e]];
  }
  succ_roff_[n] = out;
}

bool ListScheduleWorkspace::ranking_matches(
    std::span<const std::int64_t> priority_keys) const {
  // The sort by (key, id) has a unique result, so the cached permutation is
  // exactly that result iff it is sorted under the new keys.
  for (std::size_t r = 1; r < task_of_rank_.size(); ++r) {
    const graph::TaskId a = task_of_rank_[r - 1];
    const graph::TaskId b = task_of_rank_[r];
    if (priority_keys[a] > priority_keys[b] ||
        (priority_keys[a] == priority_keys[b] && a > b))
      return false;
  }
  return true;
}

template <typename Pending, typename PlaceFn>
Cycles ListScheduleWorkspace::drive(const graph::TaskGraph& g, ListScheduleWorkspace& ws,
                                    Pending& pending, PlaceFn&& place) {
  const std::size_t n = g.num_tasks();
  // The loop runs entirely on the workspace's rank-space image (see
  // build_rank_image): weights, the successor CSR, and the missing-
  // predecessor counters are all indexed by rank, so dispatch reads and
  // retirement decrements walk memory in priority order instead of hopping
  // task id -> rank -> counter through three unrelated arrays.  The
  // original task id resurfaces only at the placement callback.
  const Cycles* const weight = ws.weight_by_rank_.data();
  const graph::EdgeIndex* const succ_off = ws.succ_roff_.data();
  const std::uint32_t* const succ_rank = ws.succ_rrank_.data();
  const graph::TaskId* const by_rank = ws.task_of_rank_.data();
  std::uint32_t* const missing = ws.missing_preds_.data();

  // O(V) init as three straight copies from the image's snapshots.
  std::memcpy(missing, ws.init_missing_.data(), n * sizeof(std::uint32_t));
  std::memcpy(ws.ready_.words.data(), ws.init_ready_words_.data(),
              ws.ready_.words.size_bytes());
  std::memcpy(ws.ready_.top.data(), ws.init_ready_top_.data(), ws.ready_.top.size_bytes());
  ws.ready_.count = ws.init_ready_count_;

  Cycles now = 0;
  Cycles makespan = 0;
  std::size_t scheduled = 0;
  // Keep retiring past the last dispatch (scheduled == num_tasks) until the
  // pending queue is empty again: the calendar's contract is that every
  // bucket and every occupancy bit is clean when the run returns, so the
  // next run can skip the O(slots) re-initialization.
  while (scheduled < n || !pending.empty()) {
    // Watchdog poll: a stride-counted no-op without an installed token
    // (see util/cancel.hpp); the throw path leaves the calendar dirty, so
    // an aborted run re-initializes it on the next use.
    cancel_checkpoint("sched/list_schedule");
    // Dispatch greedily while both a ready task and a free processor exist.
    while (!ws.ready_.empty() && !ws.free_procs_.empty()) {
      const std::size_t r = ws.ready_.pop_min();
      const auto p = static_cast<ProcId>(ws.free_procs_.pop_min());
      const Cycles finish = now + weight[r];
      place(by_rank[r], p, now, finish);
      if (finish > makespan) makespan = finish;
      pending.insert(p, static_cast<graph::TaskId>(r), finish);  // queue carries ranks
      ++scheduled;
    }
    if (pending.empty()) break;  // all done (or nothing dispatchable — impossible for a DAG)

    // Advance to the next completion instant and retire everything that
    // finishes there, releasing successors and processors before the next
    // dispatch round.
    now = pending.retire_min([&](std::size_t p, graph::TaskId r) {
      ws.free_procs_.insert(p);
      const graph::EdgeIndex end = succ_off[r + 1];
      for (graph::EdgeIndex e = succ_off[r]; e < end; ++e) {
        const std::uint32_t sr = succ_rank[e];
        if (--missing[sr] == 0) ws.ready_.insert(sr);
      }
    });
  }
  return makespan;
}

template <typename PlaceFn>
Cycles ListScheduleWorkspace::run_event_loop(const graph::TaskGraph& g,
                                             std::size_t num_procs,
                                             ListScheduleWorkspace& ws, PlaceFn&& place) {
  const std::size_t n = g.num_tasks();
  ws.arena_.reset();
  ws.missing_preds_ = ws.arena_.make<std::uint32_t>(n);
  ws.ready_.carve(ws.arena_, n);  // drive() loads it from the image snapshot
  ws.free_procs_.init(ws.arena_, num_procs);
  ws.free_procs_.fill_all(num_procs);

  if (num_procs <= 64) {
    MaskQueue pending;
    pending.finish_of = ws.arena_.make<Cycles>(num_procs);
    pending.task_of = ws.arena_.make<graph::TaskId>(num_procs);
    return drive(g, ws, pending, place);
  }
  Calendar& cal = ws.running_;
  cal.configure(ws.arena_, g.total_work(), n, num_procs);
  cal.dirty = true;  // cleared on normal return; forces a re-init after aborts
  const Cycles makespan = drive(g, ws, cal, place);
  cal.dirty = false;
  return makespan;
}

namespace {

void check_list_schedule_args(const graph::TaskGraph& g, std::size_t num_procs,
                              std::span<const std::int64_t> priority_keys) {
  if (num_procs == 0)
    throw std::invalid_argument("list_schedule: need at least one processor");
  if (priority_keys.size() != g.num_tasks())
    throw std::invalid_argument("list_schedule: priority key count mismatch");
}

}  // namespace

Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                       std::span<const std::int64_t> priority_keys,
                       ListScheduleWorkspace& ws) {
  check_list_schedule_args(g, num_procs, priority_keys);
  obs::Span span("sched/list_schedule");
  c_runs_full.inc();
  ws.prepare(g, priority_keys);
  Schedule schedule(num_procs, g.num_tasks());
  ListScheduleWorkspace::run_event_loop(
      g, num_procs, ws, [&schedule](graph::TaskId v, ProcId p, Cycles start, Cycles finish) {
        schedule.place(v, p, start, finish);
      });
  return schedule;
}

Cycles list_schedule_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                              std::span<const std::int64_t> priority_keys,
                              ListScheduleWorkspace& ws) {
  check_list_schedule_args(g, num_procs, priority_keys);
  c_runs_makespan.inc();
  ws.prepare(g, priority_keys);
  return ListScheduleWorkspace::run_event_loop(g, num_procs, ws,
                                               [](graph::TaskId, ProcId, Cycles, Cycles) {});
}

const GapRun& list_schedule_gaps(const graph::TaskGraph& g, std::size_t num_procs,
                                 std::span<const std::int64_t> priority_keys,
                                 ListScheduleWorkspace& ws) {
  check_list_schedule_args(g, num_procs, priority_keys);
  c_runs_gaps.inc();
  ws.prepare(g, priority_keys);
  ws.gap_busy_.assign(num_procs, 0);
  ws.gap_leading_.assign(num_procs, 0);
  ws.gap_tail_.assign(num_procs, 0);
  ws.gap_proc_.clear();
  ws.gap_len_.clear();
  // Per processor the placements arrive in start order (each processor runs
  // one task at a time and `now` is monotone), so the gap structure streams
  // into the flat (proc, length) event list in discovery order.
  Cycles* const busy = ws.gap_busy_.data();
  Cycles* const leading = ws.gap_leading_.data();
  Cycles* const tail = ws.gap_tail_.data();
  const Cycles makespan = ListScheduleWorkspace::run_event_loop(
      g, num_procs, ws, [&ws, busy, leading, tail](graph::TaskId, ProcId p, Cycles start, Cycles finish) {
        if (start > tail[p]) {
          if (tail[p] == 0) {
            leading[p] = start;
          } else {
            ws.gap_proc_.push_back(p);
            ws.gap_len_.push_back(start - tail[p]);
          }
        }
        busy[p] += finish - start;
        tail[p] = finish;
      });
  ws.gap_run_ = GapRun{ws.gap_busy_, ws.gap_leading_, ws.gap_tail_,
                       ws.gap_proc_, ws.gap_len_, makespan};
  return ws.gap_run_;
}

Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                       std::span<const std::int64_t> priority_keys) {
  ListScheduleWorkspace ws;
  return list_schedule(g, num_procs, priority_keys, ws);
}

Schedule list_schedule_insertion(const graph::TaskGraph& g, std::size_t num_procs,
                                 std::span<const std::int64_t> priority_keys) {
  if (num_procs == 0)
    throw std::invalid_argument("list_schedule_insertion: need at least one processor");
  if (priority_keys.size() != g.num_tasks())
    throw std::invalid_argument("list_schedule_insertion: priority key count mismatch");

  struct Slot {
    Cycles start, finish;
    graph::TaskId task;
  };
  std::vector<std::vector<Slot>> rows(num_procs);  // sorted by start
  std::vector<Cycles> finish_of(g.num_tasks(), 0);

  // Priority order constrained to predecessors-first.
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>> ready;
  std::vector<std::size_t> missing_preds(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    missing_preds[v] = g.in_degree(v);
    if (missing_preds[v] == 0) ready.push(ReadyEntry{priority_keys[v], v});
  }

  while (!ready.empty()) {
    cancel_checkpoint("sched/list_schedule_insertion");
    const graph::TaskId v = ready.top().task;
    ready.pop();
    Cycles ready_time = 0;
    for (const graph::TaskId p : g.predecessors(v))
      ready_time = std::max(ready_time, finish_of[p]);
    const Cycles w = g.weight(v);

    // Earliest feasible slot over all processors: scan each row's gaps
    // (before the first task, between tasks, after the last).
    ProcId best_proc = 0;
    Cycles best_start = std::numeric_limits<Cycles>::max();
    std::size_t best_pos = 0;
    for (ProcId p = 0; p < num_procs; ++p) {
      const auto& row = rows[p];
      Cycles cursor = 0;
      Cycles start = std::numeric_limits<Cycles>::max();
      std::size_t pos = row.size();
      for (std::size_t i = 0; i <= row.size(); ++i) {
        const Cycles gap_end =
            i < row.size() ? row[i].start : std::numeric_limits<Cycles>::max();
        const Cycles candidate = std::max(cursor, ready_time);
        if (candidate + w <= gap_end || gap_end == std::numeric_limits<Cycles>::max()) {
          start = candidate;
          pos = i;
          break;
        }
        cursor = row[i].finish;
      }
      if (start < best_start) {
        best_start = start;
        best_proc = p;
        best_pos = pos;
      }
    }

    rows[best_proc].insert(rows[best_proc].begin() + static_cast<std::ptrdiff_t>(best_pos),
                           Slot{best_start, best_start + w, v});
    finish_of[v] = best_start + w;
    for (const graph::TaskId s : g.successors(v))
      if (--missing_preds[s] == 0) ready.push(ReadyEntry{priority_keys[s], s});
  }

  Schedule schedule(num_procs, g.num_tasks());
  for (ProcId p = 0; p < num_procs; ++p)
    for (const Slot& slot : rows[p]) schedule.place(slot.task, p, slot.start, slot.finish);
  return schedule;
}

Schedule list_schedule_edf(const graph::TaskGraph& g, std::size_t num_procs,
                           Cycles deadline_cycles, Hertz ref_frequency) {
  PriorityOptions opts;
  opts.policy = PriorityPolicy::kEdf;
  opts.global_deadline_cycles = deadline_cycles;
  opts.ref_frequency = ref_frequency;
  return list_schedule(g, num_procs, make_priority_keys(g, opts));
}

}  // namespace lamps::sched
