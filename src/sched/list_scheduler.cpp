#include "sched/list_scheduler.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>
#include <vector>

namespace lamps::sched {

namespace {

struct ReadyEntry {
  std::int64_t key;
  graph::TaskId task;
  // Min-heap: smallest key first, then smallest id.
  bool operator>(const ReadyEntry& o) const {
    return key != o.key ? key > o.key : task > o.task;
  }
};

struct RunningEntry {
  Cycles finish;
  graph::TaskId task;
  ProcId proc;
  bool operator>(const RunningEntry& o) const {
    return finish != o.finish ? finish > o.finish : task > o.task;
  }
};

}  // namespace

Schedule list_schedule(const graph::TaskGraph& g, std::size_t num_procs,
                       std::span<const std::int64_t> priority_keys) {
  if (num_procs == 0)
    throw std::invalid_argument("list_schedule: need at least one processor");
  if (priority_keys.size() != g.num_tasks())
    throw std::invalid_argument("list_schedule: priority key count mismatch");

  Schedule schedule(num_procs, g.num_tasks());

  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>> ready;
  std::priority_queue<RunningEntry, std::vector<RunningEntry>, std::greater<>> running;
  std::priority_queue<ProcId, std::vector<ProcId>, std::greater<>> free_procs;
  for (ProcId p = 0; p < num_procs; ++p) free_procs.push(p);

  std::vector<std::size_t> missing_preds(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    missing_preds[v] = g.in_degree(v);
    if (missing_preds[v] == 0) ready.push(ReadyEntry{priority_keys[v], v});
  }

  Cycles now = 0;
  std::size_t scheduled = 0;
  while (scheduled < g.num_tasks()) {
    // Dispatch greedily while both a ready task and a free processor exist.
    while (!ready.empty() && !free_procs.empty()) {
      const graph::TaskId v = ready.top().task;
      ready.pop();
      const ProcId p = free_procs.top();
      free_procs.pop();
      const Cycles finish = now + g.weight(v);
      schedule.place(v, p, now, finish);
      running.push(RunningEntry{finish, v, p});
      ++scheduled;
    }
    if (running.empty()) break;  // all done (or nothing dispatchable — impossible for a DAG)

    // Advance to the next completion instant and retire everything that
    // finishes there, releasing successors and processors before the next
    // dispatch round.
    now = running.top().finish;
    while (!running.empty() && running.top().finish == now) {
      const RunningEntry done = running.top();
      running.pop();
      free_procs.push(done.proc);
      for (const graph::TaskId s : g.successors(done.task))
        if (--missing_preds[s] == 0) ready.push(ReadyEntry{priority_keys[s], s});
    }
  }

  return schedule;
}

Schedule list_schedule_insertion(const graph::TaskGraph& g, std::size_t num_procs,
                                 std::span<const std::int64_t> priority_keys) {
  if (num_procs == 0)
    throw std::invalid_argument("list_schedule_insertion: need at least one processor");
  if (priority_keys.size() != g.num_tasks())
    throw std::invalid_argument("list_schedule_insertion: priority key count mismatch");

  struct Slot {
    Cycles start, finish;
    graph::TaskId task;
  };
  std::vector<std::vector<Slot>> rows(num_procs);  // sorted by start
  std::vector<Cycles> finish_of(g.num_tasks(), 0);

  // Priority order constrained to predecessors-first.
  std::priority_queue<ReadyEntry, std::vector<ReadyEntry>, std::greater<>> ready;
  std::vector<std::size_t> missing_preds(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    missing_preds[v] = g.in_degree(v);
    if (missing_preds[v] == 0) ready.push(ReadyEntry{priority_keys[v], v});
  }

  while (!ready.empty()) {
    const graph::TaskId v = ready.top().task;
    ready.pop();
    Cycles ready_time = 0;
    for (const graph::TaskId p : g.predecessors(v))
      ready_time = std::max(ready_time, finish_of[p]);
    const Cycles w = g.weight(v);

    // Earliest feasible slot over all processors: scan each row's gaps
    // (before the first task, between tasks, after the last).
    ProcId best_proc = 0;
    Cycles best_start = std::numeric_limits<Cycles>::max();
    std::size_t best_pos = 0;
    for (ProcId p = 0; p < num_procs; ++p) {
      const auto& row = rows[p];
      Cycles cursor = 0;
      Cycles start = std::numeric_limits<Cycles>::max();
      std::size_t pos = row.size();
      for (std::size_t i = 0; i <= row.size(); ++i) {
        const Cycles gap_end =
            i < row.size() ? row[i].start : std::numeric_limits<Cycles>::max();
        const Cycles candidate = std::max(cursor, ready_time);
        if (candidate + w <= gap_end || gap_end == std::numeric_limits<Cycles>::max()) {
          start = candidate;
          pos = i;
          break;
        }
        cursor = row[i].finish;
      }
      if (start < best_start) {
        best_start = start;
        best_proc = p;
        best_pos = pos;
      }
    }

    rows[best_proc].insert(rows[best_proc].begin() + static_cast<std::ptrdiff_t>(best_pos),
                           Slot{best_start, best_start + w, v});
    finish_of[v] = best_start + w;
    for (const graph::TaskId s : g.successors(v))
      if (--missing_preds[s] == 0) ready.push(ReadyEntry{priority_keys[s], s});
  }

  Schedule schedule(num_procs, g.num_tasks());
  for (ProcId p = 0; p < num_procs; ++p)
    for (const Slot& slot : rows[p]) schedule.place(slot.task, p, slot.start, slot.finish);
  return schedule;
}

Schedule list_schedule_edf(const graph::TaskGraph& g, std::size_t num_procs,
                           Cycles deadline_cycles, Hertz ref_frequency) {
  PriorityOptions opts;
  opts.policy = PriorityPolicy::kEdf;
  opts.global_deadline_cycles = deadline_cycles;
  opts.ref_frequency = ref_frequency;
  return list_schedule(g, num_procs, make_priority_keys(g, opts));
}

}  // namespace lamps::sched
