#include "sched/deadlines.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ranges>

namespace lamps::sched {

std::vector<DeadlineCycles> latest_finish_times(const graph::TaskGraph& g,
                                                Cycles global_deadline, Hertz ref_frequency) {
  const auto global = static_cast<DeadlineCycles>(global_deadline);
  std::vector<DeadlineCycles> lf(g.num_tasks(), global);
  for (const graph::TaskId v : std::ranges::reverse_view(g.topological_order())) {
    DeadlineCycles own = global;
    if (const auto d = g.explicit_deadline(v)) {
      const auto own_cycles = static_cast<DeadlineCycles>(std::floor(d->value() * ref_frequency.value()));
      own = std::min(own, own_cycles);
    }
    DeadlineCycles from_succs = std::numeric_limits<DeadlineCycles>::max();
    for (const graph::TaskId s : g.successors(v))
      from_succs = std::min(from_succs, lf[s] - static_cast<DeadlineCycles>(g.weight(s)));
    lf[v] = std::min(own, from_succs);
  }
  return lf;
}

std::vector<DeadlineCycles> latest_finish_times(const graph::TaskGraph& g,
                                                Cycles global_deadline) {
  return latest_finish_times(g, global_deadline, Hertz{1.0});
}

}  // namespace lamps::sched
