#include "sched/schedule.hpp"

#include <sstream>
#include <stdexcept>

namespace lamps::sched {

Schedule::Schedule(std::size_t num_procs, std::size_t num_tasks)
    : proc_rows_(num_procs), task_index_(num_tasks), busy_(num_procs, 0) {
  if (num_procs == 0) throw std::invalid_argument("Schedule: need at least one processor");
}

void Schedule::throw_place_error(const char* what) {
  throw std::logic_error(std::string("Schedule::place: ") + what);
}

const Placement& Schedule::placement(graph::TaskId task) const {
  const Ref& ref = task_index_.at(task);
  if (!ref.placed) throw std::logic_error("Schedule::placement: task not placed");
  return proc_rows_[ref.proc][ref.pos];
}

bool Schedule::is_placed(graph::TaskId task) const { return task_index_.at(task).placed; }

std::vector<Gap> Schedule::gaps(Cycles horizon) const {
  if (horizon < makespan_)
    throw std::invalid_argument("Schedule::gaps: horizon before makespan");
  std::vector<Gap> out;
  for (ProcId p = 0; p < proc_rows_.size(); ++p) {
    Cycles cursor = 0;
    for (const Placement& pl : proc_rows_[p]) {
      if (pl.start > cursor) out.push_back(Gap{p, cursor, pl.start});
      cursor = pl.finish;
    }
    if (horizon > cursor) out.push_back(Gap{p, cursor, horizon});
  }
  return out;
}

std::string validate_schedule(const Schedule& s, const graph::TaskGraph& g) {
  std::ostringstream err;
  if (s.num_tasks() != g.num_tasks()) {
    err << "schedule sized for " << s.num_tasks() << " tasks, graph has " << g.num_tasks();
    return err.str();
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (!s.is_placed(v)) {
      err << "task " << v << " not placed";
      return err.str();
    }
    const Placement& pl = s.placement(v);
    if (pl.duration() != g.weight(v)) {
      err << "task " << v << " placed with duration " << pl.duration() << ", weight is "
          << g.weight(v);
      return err.str();
    }
  }
  // Per-processor rows are ordered & non-overlapping by construction of
  // place(); re-check anyway so the validator stands on its own.
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const auto row = s.on_proc(p);
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i].start < row[i - 1].finish) {
        err << "overlap on proc " << p << " between tasks " << row[i - 1].task << " and "
            << row[i].task;
        return err.str();
      }
    }
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId succ : g.successors(v)) {
      if (s.placement(v).finish > s.placement(succ).start) {
        err << "precedence violated: " << v << " finishes at " << s.placement(v).finish
            << " but successor " << succ << " starts at " << s.placement(succ).start;
        return err.str();
      }
    }
  return {};
}

}  // namespace lamps::sched
