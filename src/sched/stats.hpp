// Schedule quality metrics: utilization, load balance, speedup, slack
// distribution.  Used by the examples/tools for reporting and by tests as
// an independent cross-check on the schedulers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace lamps::sched {

struct ScheduleStats {
  std::size_t num_procs{0};
  std::size_t procs_used{0};  ///< processors with at least one task
  Cycles makespan{0};
  Cycles total_work{0};

  /// total_work / (num_procs * makespan): fraction of employed capacity
  /// doing useful work (0 for an empty schedule).
  double utilization{0.0};
  /// max busy / mean busy over *used* processors (1.0 = perfectly even).
  double load_imbalance{0.0};
  /// total_work / makespan: parallel speedup over one processor.
  double speedup{0.0};
  /// Longest idle gap below the makespan horizon (cycles).
  Cycles longest_internal_gap{0};
  /// Sum of all idle cycles below the makespan horizon.
  Cycles idle_cycles{0};
};

[[nodiscard]] ScheduleStats compute_stats(const Schedule& s, const graph::TaskGraph& g);

/// Histogram of idle-gap lengths (cycles) below the makespan horizon, in
/// power-of-two buckets: bucket i counts gaps in [2^i, 2^(i+1)).
[[nodiscard]] std::vector<std::size_t> gap_histogram(const Schedule& s);

void print_stats(const ScheduleStats& st, std::ostream& os);

}  // namespace lamps::sched
