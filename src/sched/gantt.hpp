// Schedule visualization: ASCII Gantt charts for terminal output (used by
// the examples) and SVG export for documentation.
#pragma once

#include <ostream>
#include <string>

#include "graph/task_graph.hpp"
#include "sched/schedule.hpp"

namespace lamps::sched {

struct GanttOptions {
  /// Character width of the time axis.
  std::size_t width{72};
  /// Horizon in cycles (0 = use the makespan).  Lets callers show the
  /// deadline slack after the last task.
  Cycles horizon{0};
  /// Show task labels (graph labels or T<id>) inside the bars.
  bool show_labels{true};
};

/// Renders one row per processor, e.g.
///   P0 |T1==|T2======|....|T5==|......|
void write_ascii_gantt(const Schedule& s, const graph::TaskGraph& g, std::ostream& os,
                       const GanttOptions& opts = {});
[[nodiscard]] std::string to_ascii_gantt(const Schedule& s, const graph::TaskGraph& g,
                                         const GanttOptions& opts = {});

/// Standalone SVG document with one lane per processor.
void write_svg_gantt(const Schedule& s, const graph::TaskGraph& g, std::ostream& os,
                     const GanttOptions& opts = {});

}  // namespace lamps::sched
