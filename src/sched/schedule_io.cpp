#include "sched/schedule_io.hpp"

#include <algorithm>
#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace lamps::sched {

namespace {

/// Minimal recursive-descent scanner for exactly the JSON subset the writer
/// produces (objects, arrays, unsigned integers, fixed key strings) — not a
/// general JSON parser, by design.
class Scanner {
 public:
  explicit Scanner(std::istream& is) : text_(std::istreambuf_iterator<char>(is), {}) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] std::string key() {
    expect('"');
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') out.push_back(text_[pos_++]);
    expect('"');
    expect(':');
    return out;
  }

  [[nodiscard]] std::uint64_t number() {
    skip_ws();
    if (pos_ >= text_.size() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0)
      fail("expected number");
    std::uint64_t v = 0;
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0)
      v = v * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
    return v;
  }

  void skip_ws() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_])) != 0)
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("schedule JSON parse error at offset " + std::to_string(pos_) +
                             ": " + what);
  }

 private:
  std::string text_;
  std::size_t pos_{0};
};

}  // namespace

void write_schedule_json(const Schedule& s, std::ostream& os) {
  os << "{\"num_procs\": " << s.num_procs() << ", \"num_tasks\": " << s.num_tasks()
     << ", \"placements\": [";
  bool first = true;
  for (ProcId p = 0; p < s.num_procs(); ++p)
    for (const Placement& pl : s.on_proc(p)) {
      if (!first) os << ", ";
      first = false;
      os << "{\"task\": " << pl.task << ", \"proc\": " << pl.proc
         << ", \"start\": " << pl.start << ", \"finish\": " << pl.finish << '}';
    }
  os << "]}\n";
}

std::string to_schedule_json(const Schedule& s) {
  std::ostringstream ss;
  write_schedule_json(s, ss);
  return ss.str();
}

Schedule read_schedule_json(std::istream& is) {
  Scanner sc(is);
  sc.expect('{');

  std::uint64_t num_procs = 0, num_tasks = 0;
  std::vector<Placement> placements;
  bool first_field = true;
  while (true) {
    if (!first_field && !sc.consume(',')) break;
    first_field = false;
    const std::string k = sc.key();
    if (k == "num_procs") {
      num_procs = sc.number();
    } else if (k == "num_tasks") {
      num_tasks = sc.number();
    } else if (k == "placements") {
      sc.expect('[');
      if (!sc.consume(']')) {
        do {
          sc.expect('{');
          Placement pl;
          bool first_inner = true;
          while (true) {
            if (!first_inner && !sc.consume(',')) break;
            first_inner = false;
            const std::string field = sc.key();
            const std::uint64_t v = sc.number();
            if (field == "task")
              pl.task = static_cast<graph::TaskId>(v);
            else if (field == "proc")
              pl.proc = static_cast<ProcId>(v);
            else if (field == "start")
              pl.start = v;
            else if (field == "finish")
              pl.finish = v;
            else
              sc.fail("unknown placement field: " + field);
          }
          sc.expect('}');
          placements.push_back(pl);
        } while (sc.consume(','));
        sc.expect(']');
      }
    } else {
      sc.fail("unknown field: " + k);
    }
  }
  sc.expect('}');

  if (num_procs == 0) throw std::runtime_error("schedule JSON: num_procs missing or zero");
  Schedule s(num_procs, num_tasks);
  // Accept any placement order: sort per (proc, start) before replaying
  // through the validating place() API.
  std::sort(placements.begin(), placements.end(), [](const Placement& a, const Placement& b) {
    return a.proc != b.proc ? a.proc < b.proc : a.start < b.start;
  });
  try {
    for (const Placement& pl : placements) s.place(pl.task, pl.proc, pl.start, pl.finish);
  } catch (const std::logic_error& e) {
    throw std::runtime_error(std::string("schedule JSON: inconsistent placements: ") +
                             e.what());
  }
  return s;
}

}  // namespace lamps::sched
