// Schedule persistence: JSON export/import so scheduling results can be
// stored, diffed and post-processed outside the process (the CLI separates
// planning from analysis this way).
//
// Format:
//   {"num_procs": P, "num_tasks": N,
//    "placements": [{"task": t, "proc": p, "start": s, "finish": f}, ...]}
// Placements are emitted per processor in start order; the reader accepts
// any order and revalidates.
#pragma once

#include <iosfwd>
#include <string>

#include "sched/schedule.hpp"

namespace lamps::sched {

void write_schedule_json(const Schedule& s, std::ostream& os);
[[nodiscard]] std::string to_schedule_json(const Schedule& s);

/// Parses a schedule written by write_schedule_json.  Throws
/// std::runtime_error on malformed input or inconsistent placements
/// (duplicate tasks, overlaps).
[[nodiscard]] Schedule read_schedule_json(std::istream& is);

}  // namespace lamps::sched
