#include "sched/priorities.hpp"

#include <numeric>
#include <stdexcept>

#include "graph/analysis.hpp"
#include "util/rng.hpp"

namespace lamps::sched {

std::string_view to_string(PriorityPolicy p) {
  switch (p) {
    case PriorityPolicy::kEdf:
      return "edf";
    case PriorityPolicy::kBottomLevel:
      return "bottom-level";
    case PriorityPolicy::kFifo:
      return "fifo";
    case PriorityPolicy::kRandom:
      return "random";
  }
  return "?";
}

std::vector<std::int64_t> make_priority_keys(const graph::TaskGraph& g,
                                             const PriorityOptions& opts) {
  const std::size_t n = g.num_tasks();
  std::vector<std::int64_t> keys(n);
  switch (opts.policy) {
    case PriorityPolicy::kEdf: {
      const auto lf =
          latest_finish_times(g, opts.global_deadline_cycles, opts.ref_frequency);
      for (std::size_t v = 0; v < n; ++v) keys[v] = lf[v];
      break;
    }
    case PriorityPolicy::kBottomLevel: {
      // Longest remaining path first: negate so larger bottom level sorts
      // first.
      const auto bl = graph::bottom_levels(g);
      for (std::size_t v = 0; v < n; ++v) keys[v] = -static_cast<std::int64_t>(bl[v]);
      break;
    }
    case PriorityPolicy::kFifo: {
      std::iota(keys.begin(), keys.end(), std::int64_t{0});
      break;
    }
    case PriorityPolicy::kRandom: {
      std::vector<std::int64_t> perm(n);
      std::iota(perm.begin(), perm.end(), std::int64_t{0});
      Rng rng(opts.seed);
      rng.shuffle(std::span<std::int64_t>(perm));
      for (std::size_t v = 0; v < n; ++v) keys[v] = perm[v];
      break;
    }
  }
  return keys;
}

}  // namespace lamps::sched
