#include "sched/gantt.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace lamps::sched {

namespace {

std::string bar_label(const graph::TaskGraph& g, graph::TaskId v) {
  if (!g.label(v).empty()) return g.label(v);
  return "T" + std::to_string(v);
}

}  // namespace

void write_ascii_gantt(const Schedule& s, const graph::TaskGraph& g, std::ostream& os,
                       const GanttOptions& opts) {
  const Cycles horizon = std::max(opts.horizon, std::max<Cycles>(s.makespan(), 1));
  const double scale = static_cast<double>(opts.width) / static_cast<double>(horizon);
  const auto to_col = [&](Cycles c) {
    return std::min(opts.width,
                    static_cast<std::size_t>(static_cast<double>(c) * scale + 0.5));
  };

  for (ProcId p = 0; p < s.num_procs(); ++p) {
    std::string row(opts.width, '.');
    for (const Placement& pl : s.on_proc(p)) {
      const std::size_t a = to_col(pl.start);
      std::size_t b = to_col(pl.finish);
      if (b <= a) b = std::min(opts.width, a + 1);  // keep tiny tasks visible
      for (std::size_t i = a; i < b; ++i) row[i] = '=';
      if (opts.show_labels) {
        const std::string label = bar_label(g, pl.task);
        for (std::size_t i = 0; i < label.size() && a + i < b; ++i) row[a + i] = label[i];
      }
    }
    os << 'P' << p << " |" << row << "|\n";
  }
}

std::string to_ascii_gantt(const Schedule& s, const graph::TaskGraph& g,
                           const GanttOptions& opts) {
  std::ostringstream ss;
  write_ascii_gantt(s, g, ss, opts);
  return ss.str();
}

void write_svg_gantt(const Schedule& s, const graph::TaskGraph& g, std::ostream& os,
                     const GanttOptions& opts) {
  const Cycles horizon = std::max(opts.horizon, std::max<Cycles>(s.makespan(), 1));
  constexpr int kLaneHeight = 28;
  constexpr int kBarHeight = 22;
  constexpr int kLeftPad = 44;
  constexpr int kWidth = 720;
  const int height = static_cast<int>(s.num_procs()) * kLaneHeight + 10;
  const double scale = static_cast<double>(kWidth - kLeftPad) / static_cast<double>(horizon);

  // A small qualitative palette, cycled by task id.
  static constexpr const char* kColors[] = {"#4e79a7", "#f28e2b", "#76b7b2", "#e15759",
                                            "#59a14f", "#edc948", "#b07aa1", "#9c755f"};

  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << kWidth << "\" height=\""
     << height << "\">\n";
  for (ProcId p = 0; p < s.num_procs(); ++p) {
    const int y = static_cast<int>(p) * kLaneHeight + 5;
    os << "  <text x=\"2\" y=\"" << y + 16 << "\" font-size=\"12\" font-family=\"sans-serif\">P"
       << p << "</text>\n";
    for (const Placement& pl : s.on_proc(p)) {
      const double x = kLeftPad + static_cast<double>(pl.start) * scale;
      const double w =
          std::max(1.0, static_cast<double>(pl.finish - pl.start) * scale);
      const char* color = kColors[pl.task % (sizeof(kColors) / sizeof(kColors[0]))];
      os << "  <rect x=\"" << x << "\" y=\"" << y << "\" width=\"" << w << "\" height=\""
         << kBarHeight << "\" fill=\"" << color << "\" stroke=\"#333\"/>\n";
      if (opts.show_labels && w > 24.0)
        os << "  <text x=\"" << x + 3 << "\" y=\"" << y + 16
           << "\" font-size=\"11\" font-family=\"sans-serif\" fill=\"#fff\">"
           << bar_label(g, pl.task) << "</text>\n";
    }
  }
  os << "</svg>\n";
}

}  // namespace lamps::sched
