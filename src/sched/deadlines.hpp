// Latest-finish-time computation: the deadline-propagation backward pass
// that turns a global graph deadline (plus any explicit per-task deadlines)
// into the per-task keys used by earliest-deadline-first list scheduling.
//
//   LF(v) = min( own_deadline(v),  min over successors s of LF(s) - w(s) )
//
// where own_deadline defaults to the global deadline for sinks and +inf for
// interior tasks.  All quantities are in cycles; LF values can be negative
// when the instance is infeasible (tails longer than the deadline), which
// is fine — EDF only uses them for ordering.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/task_graph.hpp"
#include "util/units.hpp"

namespace lamps::sched {

using DeadlineCycles = std::int64_t;

/// Computes LF for every task.  `global_deadline` applies to every task
/// (equivalently: to the sinks, propagated backwards).  Explicit per-task
/// deadlines carried by the graph (KPN-derived) are converted to cycles at
/// `ref_frequency` and tightened in.
[[nodiscard]] std::vector<DeadlineCycles> latest_finish_times(const graph::TaskGraph& g,
                                                              Cycles global_deadline,
                                                              Hertz ref_frequency);

/// Convenience overload for graphs without explicit deadlines (the
/// reference frequency is then irrelevant).
[[nodiscard]] std::vector<DeadlineCycles> latest_finish_times(const graph::TaskGraph& g,
                                                              Cycles global_deadline);

}  // namespace lamps::sched
