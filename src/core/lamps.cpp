#include "core/lamps.hpp"

#include <algorithm>

#include "core/priority_keys.hpp"
#include "core/sns.hpp"
#include "core/stretch.hpp"
#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {

namespace {

/// Feasibility at the maximum frequency, honoring explicit deadlines too.
bool feasible_at_fmax(const sched::Schedule& s, const Problem& prob) {
  const Hertz f_min = min_feasible_frequency(s, *prob.graph, prob.deadline);
  return f_min.value() <= prob.model->max_frequency().value() * (1.0 + 1e-12);
}

StrategyResult lamps_impl(const Problem& prob, bool with_ps) {
  const graph::TaskGraph& g = *prob.graph;
  StrategyResult best;
  if (g.num_tasks() == 0) return best;

  const auto keys = problem_priority_keys(prob);
  const Cycles deadline_cycles = prob.deadline_cycles_at_fmax();

  // ---- Phase 1: binary search for the minimal feasible processor count
  // on [N_lwb = ceil(W / D), N_upb = |V|].
  const std::size_t n_upb = g.num_tasks();
  std::size_t n_lwb = deadline_cycles == 0
                          ? n_upb
                          : static_cast<std::size_t>(
                                (g.total_work() + deadline_cycles - 1) / deadline_cycles);
  n_lwb = std::clamp<std::size_t>(n_lwb, 1, n_upb);

  std::size_t schedules = 0;
  const auto feasible_with = [&](std::size_t n) {
    sched::Schedule s = sched::list_schedule(g, n, keys);
    ++schedules;
    return feasible_at_fmax(s, prob);
  };

  if (!feasible_with(n_upb)) {
    best.schedules_computed = schedules;
    return best;  // not schedulable before the deadline at all
  }
  std::size_t lo = n_lwb, hi = n_upb;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (feasible_with(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  const std::size_t n_min = lo;

  // ---- Phase 2: full linear search over [N_min, N_max], where N_max is
  // the processor count beyond which the makespan cannot improve (the
  // count S&S employs).  The scan is exhaustive because the energy curve
  // has local minima (paper Fig 6: "a full search must be performed").
  const MaxSpeedupSchedule speedup = schedule_max_speedup(prob);
  schedules += speedup.schedules_computed;
  const std::size_t n_max = std::max(n_min, speedup.num_procs);

  for (std::size_t n = n_min; n <= n_max; ++n) {
    sched::Schedule s = sched::list_schedule(g, n, keys);
    ++schedules;

    if (with_ps) {
      const LevelChoice choice = best_level_with_ps(s, prob);
      if (choice.level == nullptr) continue;  // this N infeasible (EDF anomaly)
      if (!best.feasible || choice.breakdown.total() < best.breakdown.total()) {
        best.feasible = true;
        best.num_procs = n;
        best.level_index = choice.level->index;
        best.breakdown = choice.breakdown;
        best.completion = cycles_to_time(s.makespan(), choice.level->f);
        best.schedule = std::move(s);
      }
    } else {
      const power::DvsLevel* lvl = lowest_feasible_level(s, prob);
      if (lvl == nullptr) continue;
      const energy::EnergyBreakdown e = stretched_energy(s, *lvl, prob);
      if (!best.feasible || e.total() < best.breakdown.total()) {
        best.feasible = true;
        best.num_procs = n;
        best.level_index = lvl->index;
        best.breakdown = e;
        best.completion = cycles_to_time(s.makespan(), lvl->f);
        best.schedule = std::move(s);
      }
    }
  }
  best.schedules_computed = schedules;
  return best;
}

}  // namespace

StrategyResult lamps_schedule(const Problem& prob) { return lamps_impl(prob, false); }

StrategyResult lamps_schedule_ps(const Problem& prob) { return lamps_impl(prob, true); }

std::vector<SweepPoint> processor_sweep(const Problem& prob, std::size_t max_procs,
                                        bool with_ps) {
  const graph::TaskGraph& g = *prob.graph;
  const auto keys = problem_priority_keys(prob);
  std::vector<SweepPoint> out;
  out.reserve(max_procs);
  for (std::size_t n = 1; n <= max_procs; ++n) {
    sched::Schedule s = sched::list_schedule(g, n, keys);
    SweepPoint pt;
    pt.num_procs = n;
    pt.makespan = s.makespan();
    if (with_ps) {
      const LevelChoice choice = best_level_with_ps(s, prob);
      if (choice.level != nullptr) {
        pt.feasible = true;
        pt.level_index = choice.level->index;
        pt.energy = choice.breakdown.total();
      }
    } else {
      const power::DvsLevel* lvl = lowest_feasible_level(s, prob);
      if (lvl != nullptr) {
        pt.feasible = true;
        pt.level_index = lvl->index;
        pt.energy = stretched_energy(s, *lvl, prob).total();
      }
    }
    out.push_back(pt);
  }
  return out;
}

}  // namespace lamps::core
