#include "core/lamps.hpp"

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <thread>
#include <utility>
#include <vector>

#include "core/priority_keys.hpp"
#include "core/schedule_cache.hpp"
#include "core/sns.hpp"
#include "core/stretch.hpp"
#include "energy/gap_profile.hpp"
#include "graph/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/list_scheduler.hpp"
#include "util/cancel.hpp"
#include "util/thread_pool.hpp"

namespace lamps::core {

namespace {

// Graham-bound probe short-circuits (shared names with core/sns.cpp) and
// the probe mix: gap-only probes skip task placements entirely, while
// materialized probes run the full list scheduler.
obs::Counter& c_graham_upper = obs::counter("search.graham_shortcircuit_upper");
obs::Counter& c_graham_lower = obs::counter("search.graham_shortcircuit_lower");
obs::Counter& c_probe_gap_only = obs::counter("search.probe_gap_only");
obs::Counter& c_probe_materialized = obs::counter("search.probe_materialized");

/// One scheduling workspace per thread, shared by every configuration
/// search that runs on it (phase 1 + speedup via the ScheduleCache, the
/// phase-2 fan-out, processor_sweep).  Persisting it across calls means
/// the priority ranking is re-sorted only when the keys actually change,
/// and the scratch buffers stop being reallocated per call.
sched::ListScheduleWorkspace& tls_workspace() {
  thread_local sched::ListScheduleWorkspace ws;
  return ws;
}

/// Feasibility at the maximum frequency, honoring explicit deadlines too.
bool feasible_at_fmax(const sched::Schedule& s, const Problem& prob) {
  const Hertz f_min = min_feasible_frequency(s, *prob.graph, prob.deadline);
  return f_min.value() <= prob.model->max_frequency().value() * (1.0 + 1e-12);
}

/// Runs body(i) for i in [0, count), serially when the resolved thread
/// count is 1 (no pool is spun up) and across a transient thread pool
/// otherwise.  Callers own determinism: each index must be independent and
/// any reduction must happen serially afterwards, in index order.  The
/// calling thread's cancellation token (the cell watchdog) is re-installed
/// in every worker so the budget covers the parallel fan-out too; a
/// timeout raised inside a worker propagates out of the pool via the
/// lowest index's future (see parallel_for_index).
void run_indexed(std::size_t threads, std::size_t count,
                 const std::function<void(std::size_t)>& body) {
  std::size_t resolved =
      threads == 0 ? std::max<std::size_t>(1, std::thread::hardware_concurrency()) : threads;
  resolved = std::min(resolved, count);
  if (resolved <= 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  CancelToken* const token = current_cancel_token();
  ThreadPool pool(resolved);
  parallel_for_index(pool, count, [&body, token](std::size_t i) {
    CancelScope scope(token);
    body(i);
  });
}

StrategyResult lamps_impl(const Problem& prob, bool with_ps) {
  obs::Span strategy_span(with_ps ? "lamps+ps" : "lamps");
  obs::SearchTelemetry* tel = prob.telemetry;
  if (tel != nullptr) tel->strategy = with_ps ? "LAMPS+PS" : "LAMPS";
  const graph::TaskGraph& g = *prob.graph;
  StrategyResult best;
  if (g.num_tasks() == 0) {
    if (tel != nullptr) fill_telemetry_summary(*tel, best);
    return best;
  }

  const auto keys = problem_priority_keys(prob);
  const Cycles deadline_cycles = prob.deadline_cycles_at_fmax();
  const std::size_t width = std::max<std::size_t>(
      1, std::min(g.num_tasks(), graph::asap_max_concurrency(g)));
  // An attached ProfileStore (serve's ScheduleBank lease) supplies
  // deadline-invariant schedules/profiles from earlier requests on the
  // same graph structure; results and even schedules_computed stay
  // bit-identical to a from-scratch run (see schedule_cache.hpp).
  ScheduleCache cache(g, keys, width, &tls_workspace(), prob.profile_store);

  // ---- Phase 1: binary search for the minimal feasible processor count
  // on [N_lwb = ceil(W / D), N_upb = |V|].  The probe sequence is the
  // historical one; the cache clamps probes above the ASAP width to the
  // width-processor schedule, which has identical placements (see
  // schedule_cache.hpp), and memoizes every probe for phase 2.
  const std::size_t n_upb = g.num_tasks();
  std::size_t n_lwb = deadline_cycles == 0
                          ? n_upb
                          : static_cast<std::size_t>(
                                (g.total_work() + deadline_cycles - 1) / deadline_cycles);
  n_lwb = std::clamp<std::size_t>(n_lwb, 1, n_upb);

  // Probe short-circuit: for a single global deadline the feasibility
  // predicate is `required_frequency(makespan, D) <= f_max * (1 + 1e-12)`,
  // which is monotone non-increasing in the (integer) makespan.  The
  // list scheduler is greedy/work-conserving, so Graham's bound applies:
  //   max(CPL, ceil(W/n))  <=  makespan(n)  <=  ceil((W + (n-1)*CPL) / n).
  // Evaluating the *original* predicate at those integer bounds therefore
  // decides most probes without scheduling at all, with a boolean that is
  // identical to what the real schedule would produce; only probes whose
  // deadline falls between the two bounds compute a schedule.
  const bool bounds_ok = !g.has_explicit_deadlines() && prob.deadline.value() > 0.0;
  const Cycles total_work = g.total_work();
  const Cycles cpl = bounds_ok ? graph::critical_path_length(g) : 0;
  const double f_cap = prob.model->max_frequency().value() * (1.0 + 1e-12);
  const auto feasible_ms = [&](Cycles ms) {
    return required_frequency(ms, prob.deadline).value() <= f_cap;
  };
  const auto record_p1 = [&](std::size_t n, const char* action, std::int64_t makespan,
                             bool verdict) {
    if (tel == nullptr) return;
    obs::SearchProbe p;
    p.num_procs = n;
    p.phase = "phase1";
    p.action = action;
    p.makespan = makespan;
    p.feasible = verdict ? 1 : 0;
    tel->probes.push_back(p);
  };
  const auto feasible_with = [&](std::size_t n) {
    if (bounds_ok) {
      constexpr Cycles kMax = std::numeric_limits<Cycles>::max();
      const auto nc = static_cast<Cycles>(n);
      if (nc == 1 || cpl <= (kMax - total_work) / (nc - 1)) {
        const Cycles upper = (total_work + (nc - 1) * cpl + (nc - 1)) / nc;
        if (feasible_ms(upper)) {
          c_graham_upper.inc();
          record_p1(n, "graham-upper", -1, true);
          return true;
        }
      }
      Cycles lower = cpl;
      if (total_work <= kMax - nc) lower = std::max(lower, (total_work + nc - 1) / nc);
      if (!feasible_ms(lower)) {
        c_graham_lower.inc();
        record_p1(n, "graham-lower", -1, false);
        return false;
      }
      // Bounds inconclusive: the verdict needs the real makespan, but not
      // the placements — the gap-profile probe memoizes the idle structure
      // for phase 2 to reuse.
      c_probe_gap_only.inc();
      const Cycles ms = cache.profile_at(n).makespan();
      const bool ok = feasible_ms(ms);
      record_p1(n, "profile-probe", static_cast<std::int64_t>(ms), ok);
      return ok;
    }
    c_probe_materialized.inc();
    const sched::Schedule& s = cache.at(n);
    const bool ok = feasible_at_fmax(s, prob);
    record_p1(n, "schedule-probe", static_cast<std::int64_t>(s.makespan()), ok);
    return ok;
  };

  std::size_t n_min = n_lwb;
  {
    obs::Span phase1_span("lamps/phase1");
    if (!feasible_with(n_upb)) {
      best.schedules_computed = cache.computed();
      if (tel != nullptr) fill_telemetry_summary(*tel, best);
      return best;  // not schedulable before the deadline at all
    }
    std::size_t lo = n_lwb, hi = n_upb;
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (feasible_with(mid))
        hi = mid;
      else
        lo = mid + 1;
    }
    n_min = lo;
  }

  // ---- Phase 2: full linear search over [N_min, N_max], where N_max is
  // the processor count beyond which the makespan cannot improve (the
  // count S&S employs).  The scan is exhaustive because the energy curve
  // has local minima (paper Fig 6: "a full search must be performed").
  const std::size_t n_max = std::max(n_min, max_speedup_procs(cache, tel));

  // The N evaluations are independent; fan them out over
  // prob.search_threads workers.  Results are bit-identical at any thread
  // count: each slot's schedule and ConfigEval depend only on its own N,
  // and the argmin reduction below runs serially in ascending-N order.
  // Candidates are evaluated from idle-gap profiles wherever possible: the
  // energy and feasibility of a configuration depend on the schedule only
  // through its idle structure and makespan (when deadlines are global),
  // and all but one candidate's placements are discarded anyway.  Profiles
  // memoized by the phase-1/speedup probes are moved out and reused; the
  // rest come from gap-only scheduler runs.  Only the winning count's
  // schedule is materialized, afterwards, by re-running the (deterministic)
  // scheduler once.  Per-task explicit deadlines need real finish times,
  // so that path still schedules fully.
  const bool profile_ok = !g.has_explicit_deadlines();
  const std::size_t count = n_max - n_min + 1;
  std::vector<std::shared_ptr<const sched::Schedule>> slots(count);
  std::vector<std::shared_ptr<const energy::GapProfile>> profs(count);
  // Slots computed fresh inside the fan-out; published to the cache/store
  // serially afterwards (the store is not touched concurrently).
  std::vector<std::uint8_t> fresh(count, 0);
  std::vector<ConfigEval> evals(count);
  // Per-slot probe records, written by slot index inside the fan-out and
  // appended to the telemetry sink serially afterwards — the record order
  // is therefore bit-identical at any search_threads setting.
  std::vector<obs::SearchProbe> p2_probes(tel != nullptr ? count : 0);
  std::size_t phase2_computed = 0;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t n = n_min + i;
    if ((slots[i] = cache.schedule_ptr(n)) != nullptr)
      ;  // memoized by a phase-1/speedup probe
    else if (profile_ok && (profs[i] = cache.profile_lookup(n)) != nullptr)
      ;  // memoized probe or store reuse (counted inside the cache)
    else
      ++phase2_computed;
  }
  {
    obs::Span phase2_span("lamps/phase2");
    run_indexed(prob.search_threads, count, [&](std::size_t i) {
      const char* action = nullptr;
      if (slots[i]) {
        action = "cached-schedule-eval";
        evals[i] = evaluate_schedule_config(*slots[i], prob, with_ps);
      } else if (!profile_ok) {
        action = "schedule-eval";
        c_probe_materialized.inc();
        fresh[i] = 1;
        slots[i] = std::make_shared<const sched::Schedule>(
            sched::list_schedule(g, n_min + i, keys, tls_workspace()));
        evals[i] = evaluate_schedule_config(*slots[i], prob, with_ps);
      } else {
        if (!profs[i]) {
          action = "profile-eval";
          c_probe_gap_only.inc();
          fresh[i] = 1;
          profs[i] = std::make_shared<const energy::GapProfile>(
              energy::GapProfile(sched::list_schedule_gaps(g, n_min + i, keys,
                                                           tls_workspace())));
        } else {
          action = "cached-profile-eval";
        }
        evals[i] = evaluate_profile_config(*profs[i], prob, with_ps);
      }
      if (tel != nullptr) {
        obs::SearchProbe& p = p2_probes[i];
        p.num_procs = n_min + i;
        p.phase = "phase2";
        p.action = action;
        p.makespan = static_cast<std::int64_t>(slots[i] ? slots[i]->makespan()
                                                        : profs[i]->makespan());
        p.feasible = evals[i].feasible ? 1 : 0;
        if (evals[i].feasible) {
          p.level_index = static_cast<std::int64_t>(evals[i].level_index);
          p.energy_j = evals[i].breakdown.total().value();
        }
      }
    });
  }

  // Publish fan-out results serially: the cache (and any attached store)
  // is single-threaded by contract.
  for (std::size_t i = 0; i < count; ++i) {
    if (!fresh[i]) continue;
    if (slots[i])
      cache.adopt_schedule(n_min + i, slots[i]);
    else
      cache.adopt_profile(n_min + i, profs[i]);
  }

  std::size_t best_i = count;  // sentinel: none feasible yet
  for (std::size_t i = 0; i < count; ++i) {
    if (!evals[i].feasible) continue;  // this N infeasible (EDF anomaly)
    if (best_i == count ||
        evals[i].breakdown.total() < evals[best_i].breakdown.total())
      best_i = i;
  }
  if (best_i != count) {
    best.feasible = true;
    best.num_procs = n_min + best_i;
    best.level_index = evals[best_i].level_index;
    best.breakdown = evals[best_i].breakdown;
    best.completion = evals[best_i].completion;
    if (tel != nullptr) p2_probes[best_i].chosen = true;
    if (!slots[best_i]) {
      // Winner materialization: a store-held schedule short-circuits the
      // re-run; either way this stays uncounted, like the from-scratch
      // search's materialization re-run.
      obs::Span mat_span("lamps/materialize");
      c_probe_materialized.inc();
      slots[best_i] = cache.materialize(n_min + best_i);
    }
    best.schedule = *slots[best_i];
  }
  best.schedules_computed = cache.computed() + phase2_computed;
  if (tel != nullptr) {
    tel->probes.insert(tel->probes.end(), p2_probes.begin(), p2_probes.end());
    fill_telemetry_summary(*tel, best);
  }
  return best;
}

}  // namespace

StrategyResult lamps_schedule(const Problem& prob) { return lamps_impl(prob, false); }

StrategyResult lamps_schedule_ps(const Problem& prob) { return lamps_impl(prob, true); }

std::vector<SweepPoint> processor_sweep(const Problem& prob, std::size_t max_procs,
                                        bool with_ps) {
  obs::Span span("lamps/processor_sweep");
  const graph::TaskGraph& g = *prob.graph;
  const auto keys = problem_priority_keys(prob);
  std::vector<SweepPoint> out(max_procs);
  run_indexed(prob.search_threads, max_procs, [&](std::size_t i) {
    const std::size_t n = i + 1;
    const sched::Schedule s = sched::list_schedule(g, n, keys, tls_workspace());
    SweepPoint pt;
    pt.num_procs = n;
    pt.makespan = s.makespan();
    const ConfigEval ev = evaluate_schedule_config(s, prob, with_ps);
    if (ev.feasible) {
      pt.feasible = true;
      pt.level_index = ev.level_index;
      pt.energy = ev.breakdown.total();
    }
    out[i] = pt;
  });
  return out;
}

}  // namespace lamps::core
