// Experiment sweep driver for the paper's evaluation (section 5): runs
// every (graph, deadline factor, strategy) combination of a suite, in
// parallel across a thread pool, and aggregates per-group statistics.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"

namespace lamps::core {

/// One benchmark instance: a graph already scaled to cycles, tagged with
/// the group it reports under ("50", "fpppp", ...).
struct SuiteEntry {
  std::string group;
  graph::TaskGraph graph;
};

struct SweepConfig {
  /// Deadline factors relative to the critical path length at f_max
  /// (paper: 1.5, 2, 4, 8).
  std::vector<double> deadline_factors{1.5, 2.0, 4.0, 8.0};
  std::vector<StrategyKind> strategies{kAllStrategies.begin(), kAllStrategies.end()};
  sched::PriorityPolicy policy{sched::PriorityPolicy::kEdf};
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads{0};
};

/// One (graph, deadline, strategy) outcome.
struct InstanceResult {
  std::string group;
  std::string graph_name;
  double deadline_factor{0.0};
  StrategyKind strategy{StrategyKind::kSns};
  bool feasible{false};
  Joules energy{0.0};
  std::size_t num_procs{0};
  std::size_t level_index{0};
  std::size_t schedules_computed{0};
  double parallelism{0.0};  ///< graph's W / CPL
  Cycles total_work{0};
  /// Wall-clock time spent scheduling this instance (one run_strategy call).
  double seconds{0.0};
};

/// Runs the sweep.  `entries` must outlive the call.  Results are in a
/// deterministic order (by entry, then deadline factor, then strategy)
/// regardless of thread interleaving.
[[nodiscard]] std::vector<InstanceResult> run_sweep(const std::vector<SuiteEntry>& entries,
                                                    const power::PowerModel& model,
                                                    const power::DvsLadder& ladder,
                                                    const SweepConfig& config);

/// Mean relative-to-baseline energy per (group, deadline factor, strategy):
/// for each graph the strategy's energy is divided by the baseline
/// strategy's energy on the same graph, then averaged over the group.
/// Infeasible pairs are skipped (and counted).
struct GroupRelative {
  std::string group;
  double deadline_factor{0.0};
  StrategyKind strategy{StrategyKind::kSns};
  double mean_relative_energy{0.0};
  /// Spread of the per-graph relative energies (sample stddev, extremes).
  double stddev_relative_energy{0.0};
  double min_relative_energy{0.0};
  double max_relative_energy{0.0};
  std::size_t num_graphs{0};
  std::size_t num_skipped{0};
};

[[nodiscard]] std::vector<GroupRelative> aggregate_relative(
    const std::vector<InstanceResult>& results, StrategyKind baseline = StrategyKind::kSns);

}  // namespace lamps::core
