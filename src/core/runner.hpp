// Experiment sweep driver for the paper's evaluation (section 5): runs
// every (graph, deadline factor, strategy) combination of a suite, in
// parallel across a thread pool, and aggregates per-group statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/strategy.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "util/errors.hpp"

namespace lamps::core {

/// One benchmark instance: a graph already scaled to cycles, tagged with
/// the group it reports under ("50", "fpppp", ...).
struct SuiteEntry {
  std::string group;
  graph::TaskGraph graph;
};

/// How a sweep cell ended.  Failed/timeout cells still occupy their slot in
/// the result vector (with zeroed result fields and a typed error code), so
/// one bad instance never discards the rest of the sweep.
enum class CellOutcome {
  kOk,       ///< strategy ran to completion (feasible or not)
  kFailed,   ///< threw: input, validation or internal error
  kTimeout,  ///< the watchdog budget expired
  kSkipped,  ///< not executed (skip_cell predicate, e.g. journal resume)
};

[[nodiscard]] std::string_view to_string(CellOutcome o);
[[nodiscard]] CellOutcome cell_outcome_from_string(std::string_view name);

/// One (graph, deadline, strategy) outcome.
struct InstanceResult {
  std::string group;
  std::string graph_name;
  double deadline_factor{0.0};
  StrategyKind strategy{StrategyKind::kSns};
  bool feasible{false};
  Joules energy{0.0};
  std::size_t num_procs{0};
  std::size_t level_index{0};
  std::size_t schedules_computed{0};
  double parallelism{0.0};  ///< graph's W / CPL
  Cycles total_work{0};
  /// Wall-clock time spent scheduling this instance (one run_strategy call).
  double seconds{0.0};

  // -- fault-isolation fields --
  CellOutcome outcome{CellOutcome::kOk};
  ErrorCode error{ErrorCode::kNone};
  std::string error_message;  ///< bare message of the failing error
  std::uint32_t retries{0};   ///< attempts beyond the first
  /// True when the cell was replayed from a resume journal rather than
  /// executed (set by the experiment pipeline, never by run_sweep).
  bool from_journal{false};
};

struct SweepConfig {
  /// Deadline factors relative to the critical path length at f_max
  /// (paper: 1.5, 2, 4, 8).
  std::vector<double> deadline_factors{1.5, 2.0, 4.0, 8.0};
  std::vector<StrategyKind> strategies{kAllStrategies.begin(), kAllStrategies.end()};
  sched::PriorityPolicy policy{sched::PriorityPolicy::kEdf};
  /// Worker threads (0 = hardware concurrency).
  std::size_t threads{0};

  /// Wall-clock watchdog budget per cell (0 = unlimited).  Enforced
  /// cooperatively: the scheduling loops poll a cancellation token (see
  /// util/cancel.hpp) and the cell is recorded as CellOutcome::kTimeout.
  double cell_timeout_seconds{0.0};
  /// Run sched::validate_schedule on every materialized schedule; a
  /// violation becomes a typed ValidationError cell instead of a silent
  /// bad data point.
  bool validate{true};
  /// Extra attempts for cells failing with a *retryable* error (transient
  /// I/O, injected faults).  Deterministic failures are never retried.
  std::size_t max_retries{2};
  /// Backoff before retry k is retry_backoff_seconds * 2^k.
  double retry_backoff_seconds{0.05};

  /// When set and returning true for a cell (key fields group / graph_name /
  /// deadline_factor / strategy / parallelism / total_work are filled), the
  /// cell is not executed and records CellOutcome::kSkipped.  The resume
  /// path uses this to replay journaled cells.
  std::function<bool(const InstanceResult&)> skip_cell;
  /// Called after every *executed* cell (not skipped ones), from worker
  /// threads; the callee must be thread-safe.  The journal hooks in here.
  std::function<void(const InstanceResult&)> on_cell_done;
  /// Test seam: invoked before each attempt of each cell; a throw is
  /// handled exactly like a strategy failure (fault injection for the
  /// isolation/retry tests).
  std::function<void(const InstanceResult&, std::size_t attempt)> fault_injector;
};

/// Runs the sweep.  `entries` must outlive the call.  Results are in a
/// deterministic order (by entry, then deadline factor, then strategy)
/// regardless of thread interleaving.  Cells are fault-isolated: a
/// throwing or timing-out cell is recorded in place (see CellOutcome) and
/// the sweep continues; run_sweep itself only throws on setup errors.
[[nodiscard]] std::vector<InstanceResult> run_sweep(const std::vector<SuiteEntry>& entries,
                                                    const power::PowerModel& model,
                                                    const power::DvsLadder& ladder,
                                                    const SweepConfig& config);

/// Mean relative-to-baseline energy per (group, deadline factor, strategy):
/// for each graph the strategy's energy is divided by the baseline
/// strategy's energy on the same graph, then averaged over the group.
/// Infeasible pairs are skipped (and counted).
struct GroupRelative {
  std::string group;
  double deadline_factor{0.0};
  StrategyKind strategy{StrategyKind::kSns};
  double mean_relative_energy{0.0};
  /// Spread of the per-graph relative energies (sample stddev, extremes).
  double stddev_relative_energy{0.0};
  double min_relative_energy{0.0};
  double max_relative_energy{0.0};
  std::size_t num_graphs{0};
  std::size_t num_skipped{0};
};

[[nodiscard]] std::vector<GroupRelative> aggregate_relative(
    const std::vector<InstanceResult>& results, StrategyKind baseline = StrategyKind::kSns);

}  // namespace lamps::core
