#include "core/priority_keys.hpp"

namespace lamps::core {

std::vector<std::int64_t> problem_priority_keys(const Problem& prob) {
  sched::PriorityOptions opts;
  opts.policy = prob.policy;
  opts.global_deadline_cycles = prob.deadline_cycles_at_fmax();
  opts.ref_frequency = prob.model->max_frequency();
  opts.seed = prob.priority_seed;
  return sched::make_priority_keys(*prob.graph, opts);
}

}  // namespace lamps::core
