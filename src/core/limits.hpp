// LIMIT-SF and LIMIT-MF: the paper's absolute lower bounds (section 4.4).
//
// Both bounds charge *only active cycles* — idle processors consume nothing
// — so neither depends on the scheduling algorithm:
//
//   LIMIT-SF: one global constant frequency.  With |V| processors the best
//   achievable makespan is the critical path, so the frequency is the
//   critical (energy-optimal) level, raised to CPL/D if the deadline binds;
//   energy = total work x energy-per-cycle(level).  No schedule with a
//   single constant frequency can beat it.
//
//   LIMIT-MF: every task runs at the critical level regardless of the
//   deadline; energy = total work x energy-per-cycle(critical).  An
//   absolute bound even with per-processor, time-varying frequencies (it
//   may violate the deadline, which the paper accepts).
#pragma once

#include "core/problem.hpp"

namespace lamps::core {

struct LimitOptions {
  /// Use the continuous critical speed instead of the discrete ladder's
  /// critical level (default: discrete, matching the paper — this makes
  /// LIMIT-SF equal LIMIT-MF for loose deadlines, as in Table 3).
  bool continuous_critical{false};
};

/// Single-frequency bound.  feasible == false when even the maximum level
/// cannot fit the critical path before the deadline.
[[nodiscard]] StrategyResult limit_sf(const Problem& prob, const LimitOptions& opts = {});

/// Multiple-frequency bound.  Always "feasible" (ignores the deadline by
/// construction).
[[nodiscard]] StrategyResult limit_mf(const Problem& prob, const LimitOptions& opts = {});

}  // namespace lamps::core
