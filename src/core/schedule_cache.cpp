#include "core/schedule_cache.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace lamps::core {

namespace {

// Cache traffic of the configuration searches (docs/observability.md).
// store_* counters track the incremental-rescheduling reuse path.
obs::Counter& c_schedule_hit = obs::counter("schedule_cache.schedule_hit");
obs::Counter& c_schedule_miss = obs::counter("schedule_cache.schedule_miss");
obs::Counter& c_profile_hit = obs::counter("schedule_cache.profile_hit");
obs::Counter& c_profile_miss = obs::counter("schedule_cache.profile_miss");
obs::Counter& c_profile_from_schedule = obs::counter("schedule_cache.profile_from_schedule");
obs::Counter& c_store_schedule_hit = obs::counter("schedule_cache.store_schedule_hit");
obs::Counter& c_store_profile_hit = obs::counter("schedule_cache.store_profile_hit");

}  // namespace

const sched::Schedule& ScheduleCache::at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) {
    c_schedule_hit.inc();
    return *it->second;
  }
  if (store_ != nullptr) {
    if (const auto it = store_->schedules.find(key); it != store_->schedules.end()) {
      c_store_schedule_hit.inc();
      ++store_hits_;
      return *by_n_.emplace(key, it->second).first->second;
    }
  }
  c_schedule_miss.inc();
  ++computed_;
  auto s = std::make_shared<const sched::Schedule>(
      sched::list_schedule(*g_, key, keys_, *ws_));
  if (store_ != nullptr) store_->schedules.try_emplace(key, s);
  return *by_n_.emplace(key, std::move(s)).first->second;
}

const energy::GapProfile& ScheduleCache::profile_at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = profile_by_n_.find(key); it != profile_by_n_.end()) {
    c_profile_hit.inc();
    return *it->second;
  }
  if (const auto it = by_n_.find(key); it != by_n_.end()) {
    // Derivation from a locally held schedule is free scheduling-wise; the
    // cold path takes this same branch at the same point, so it stays
    // uncounted even when the schedule originally came from the store.
    c_profile_from_schedule.inc();
    auto p = std::make_shared<const energy::GapProfile>(*it->second);
    if (store_ != nullptr) store_->profiles.try_emplace(key, p);
    return *profile_by_n_.emplace(key, std::move(p)).first->second;
  }
  if (store_ != nullptr) {
    if (const auto it = store_->profiles.find(key); it != store_->profiles.end()) {
      c_store_profile_hit.inc();
      ++store_hits_;
      return *profile_by_n_.emplace(key, it->second).first->second;
    }
    if (const auto it = store_->schedules.find(key); it != store_->schedules.end()) {
      // The cold path would run the scheduler here; deriving from the
      // store's schedule replaces that run, so it counts.
      c_store_schedule_hit.inc();
      ++store_hits_;
      auto p = std::make_shared<const energy::GapProfile>(*it->second);
      store_->profiles.try_emplace(key, p);
      return *profile_by_n_.emplace(key, std::move(p)).first->second;
    }
  }
  c_profile_miss.inc();
  ++computed_;
  auto p = std::make_shared<const energy::GapProfile>(
      energy::GapProfile(sched::list_schedule_gaps(*g_, key, keys_, *ws_)));
  if (store_ != nullptr) store_->profiles.try_emplace(key, p);
  return *profile_by_n_.emplace(key, std::move(p)).first->second;
}

Cycles ScheduleCache::makespan_at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) return it->second->makespan();
  return profile_at(key).makespan();
}

std::shared_ptr<const sched::Schedule> ScheduleCache::schedule_ptr(std::size_t n) const {
  const auto it = by_n_.find(clamp(n));
  return it != by_n_.end() ? it->second : nullptr;
}

std::shared_ptr<const energy::GapProfile> ScheduleCache::profile_lookup(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = profile_by_n_.find(key); it != profile_by_n_.end()) return it->second;
  if (store_ != nullptr) {
    if (const auto it = store_->profiles.find(key); it != store_->profiles.end()) {
      c_store_profile_hit.inc();
      ++store_hits_;
      return profile_by_n_.emplace(key, it->second).first->second;
    }
    if (const auto it = store_->schedules.find(key); it != store_->schedules.end()) {
      c_store_schedule_hit.inc();
      ++store_hits_;
      auto p = std::make_shared<const energy::GapProfile>(*it->second);
      store_->profiles.try_emplace(key, p);
      return profile_by_n_.emplace(key, std::move(p)).first->second;
    }
  }
  return nullptr;
}

std::shared_ptr<const sched::Schedule> ScheduleCache::materialize(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) return it->second;
  if (store_ != nullptr) {
    if (const auto it = store_->schedules.find(key); it != store_->schedules.end()) {
      c_store_schedule_hit.inc();
      return by_n_.emplace(key, it->second).first->second;
    }
  }
  auto s = std::make_shared<const sched::Schedule>(
      sched::list_schedule(*g_, key, keys_, *ws_));
  if (store_ != nullptr) store_->schedules.try_emplace(key, s);
  return by_n_.emplace(key, std::move(s)).first->second;
}

void ScheduleCache::adopt_schedule(std::size_t n,
                                   std::shared_ptr<const sched::Schedule> s) {
  const std::size_t key = clamp(n);
  if (store_ != nullptr) store_->schedules.try_emplace(key, s);
  by_n_.try_emplace(key, std::move(s));
}

void ScheduleCache::adopt_profile(std::size_t n,
                                  std::shared_ptr<const energy::GapProfile> p) {
  const std::size_t key = clamp(n);
  if (store_ != nullptr) store_->profiles.try_emplace(key, p);
  profile_by_n_.try_emplace(key, std::move(p));
}

sched::Schedule ScheduleCache::take(std::size_t n) {
  const auto it = by_n_.find(clamp(n));
  if (it == by_n_.end()) throw std::logic_error("ScheduleCache::take: count not cached");
  sched::Schedule s = *it->second;
  by_n_.erase(it);
  return s;
}

}  // namespace lamps::core
