#include "core/schedule_cache.hpp"

#include <stdexcept>
#include <utility>

namespace lamps::core {

const sched::Schedule& ScheduleCache::at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) return it->second;
  ++computed_;
  return by_n_.emplace(key, sched::list_schedule(*g_, key, keys_, *ws_)).first->second;
}

const energy::GapProfile& ScheduleCache::profile_at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = profile_by_n_.find(key); it != profile_by_n_.end()) return it->second;
  if (const auto it = by_n_.find(key); it != by_n_.end())
    return profile_by_n_.emplace(key, energy::GapProfile(it->second)).first->second;
  ++computed_;
  return profile_by_n_
      .emplace(key, energy::GapProfile(sched::list_schedule_gaps(*g_, key, keys_, *ws_)))
      .first->second;
}

Cycles ScheduleCache::makespan_at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) return it->second.makespan();
  return profile_at(key).makespan();
}

sched::Schedule ScheduleCache::take(std::size_t n) {
  const auto it = by_n_.find(clamp(n));
  if (it == by_n_.end()) throw std::logic_error("ScheduleCache::take: count not cached");
  sched::Schedule s = std::move(it->second);
  by_n_.erase(it);
  return s;
}

energy::GapProfile ScheduleCache::take_profile(std::size_t n) {
  const auto it = profile_by_n_.find(clamp(n));
  if (it == profile_by_n_.end())
    throw std::logic_error("ScheduleCache::take_profile: count not cached");
  energy::GapProfile p = std::move(it->second);
  profile_by_n_.erase(it);
  return p;
}

}  // namespace lamps::core
