#include "core/schedule_cache.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace lamps::core {

namespace {

// Cache traffic of the configuration searches (docs/observability.md).
obs::Counter& c_schedule_hit = obs::counter("schedule_cache.schedule_hit");
obs::Counter& c_schedule_miss = obs::counter("schedule_cache.schedule_miss");
obs::Counter& c_profile_hit = obs::counter("schedule_cache.profile_hit");
obs::Counter& c_profile_miss = obs::counter("schedule_cache.profile_miss");
obs::Counter& c_profile_from_schedule = obs::counter("schedule_cache.profile_from_schedule");

}  // namespace

const sched::Schedule& ScheduleCache::at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) {
    c_schedule_hit.inc();
    return it->second;
  }
  c_schedule_miss.inc();
  ++computed_;
  return by_n_.emplace(key, sched::list_schedule(*g_, key, keys_, *ws_)).first->second;
}

const energy::GapProfile& ScheduleCache::profile_at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = profile_by_n_.find(key); it != profile_by_n_.end()) {
    c_profile_hit.inc();
    return it->second;
  }
  if (const auto it = by_n_.find(key); it != by_n_.end()) {
    c_profile_from_schedule.inc();
    return profile_by_n_.emplace(key, energy::GapProfile(it->second)).first->second;
  }
  c_profile_miss.inc();
  ++computed_;
  return profile_by_n_
      .emplace(key, energy::GapProfile(sched::list_schedule_gaps(*g_, key, keys_, *ws_)))
      .first->second;
}

Cycles ScheduleCache::makespan_at(std::size_t n) {
  const std::size_t key = clamp(n);
  if (const auto it = by_n_.find(key); it != by_n_.end()) return it->second.makespan();
  return profile_at(key).makespan();
}

sched::Schedule ScheduleCache::take(std::size_t n) {
  const auto it = by_n_.find(clamp(n));
  if (it == by_n_.end()) throw std::logic_error("ScheduleCache::take: count not cached");
  sched::Schedule s = std::move(it->second);
  by_n_.erase(it);
  return s;
}

energy::GapProfile ScheduleCache::take_profile(std::size_t n) {
  const auto it = profile_by_n_.find(clamp(n));
  if (it == profile_by_n_.end())
    throw std::logic_error("ScheduleCache::take_profile: count not cached");
  energy::GapProfile p = std::move(it->second);
  profile_by_n_.erase(it);
  return p;
}

}  // namespace lamps::core
