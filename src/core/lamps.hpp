// LAMPS and LAMPS+PS (paper sections 4.2-4.3, pseudocode Figs 5 and 8).
//
// Phase 1 establishes the minimal processor count meeting the deadline at
// the maximum frequency via binary search on
//   [N_lwb = ceil(total work / deadline cycles), N_upb = |V|].
// Phase 2 scans every N from N_min up to the count beyond which the
// makespan no longer decreases (the S&S processor count), evaluating for
// each N the stretched energy — without PS for LAMPS, or the best level of
// the PS frequency sweep for LAMPS+PS — and returns the configuration with
// minimal energy.  The scan is an exhaustive linear search, not a binary
// one, because energy as a function of N has local minima (paper Fig 6:
// "a full search must be performed on the number of processors").
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace lamps::core {

[[nodiscard]] StrategyResult lamps_schedule(const Problem& prob);
[[nodiscard]] StrategyResult lamps_schedule_ps(const Problem& prob);

/// One phase-2 evaluation point (for Fig 6-style plots of energy vs
/// processor count).
struct SweepPoint {
  std::size_t num_procs{0};
  Cycles makespan{0};
  bool feasible{false};
  std::size_t level_index{0};
  Joules energy{0.0};
};

/// Full energy-vs-processor-count curve: schedules the graph on every
/// processor count in [1, max_procs] and records the stretched energy (and
/// with_ps selects the +PS evaluation).  This is the "full search" the
/// paper performs to expose local minima (Fig 6).
[[nodiscard]] std::vector<SweepPoint> processor_sweep(const Problem& prob,
                                                      std::size_t max_procs, bool with_ps);

}  // namespace lamps::core
