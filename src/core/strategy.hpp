// Uniform dispatch over the six approaches of the paper's evaluation.
#pragma once

#include <array>
#include <span>

#include "core/lamps.hpp"
#include "core/limits.hpp"
#include "core/problem.hpp"
#include "core/sns.hpp"

namespace lamps::core {

/// Runs one strategy on one problem.
[[nodiscard]] StrategyResult run_strategy(StrategyKind kind, const Problem& prob);

/// The heuristics in the order the paper's figures present them.
inline constexpr std::array<StrategyKind, 4> kHeuristics = {
    StrategyKind::kSns, StrategyKind::kLamps, StrategyKind::kSnsPs, StrategyKind::kLampsPs};

/// Heuristics plus the two limits (figures 10/11 legend order).
inline constexpr std::array<StrategyKind, 6> kAllStrategies = {
    StrategyKind::kSns,     StrategyKind::kLamps,   StrategyKind::kSnsPs,
    StrategyKind::kLampsPs, StrategyKind::kLimitSf, StrategyKind::kLimitMf};

}  // namespace lamps::core
