// Memoized list scheduling for the configuration searches.
//
// LAMPS phase 1, schedule_max_speedup and LAMPS phase 2 all invoke the
// list scheduler on the same (graph, priority keys) with overlapping
// processor counts; the cache computes each count once, shares one
// ListScheduleWorkspace across the computations, and clamps counts at the
// graph's ASAP concurrency width:
//
//   With num_procs >= width, the dispatch loop never runs out of free
//   processors (at most width tasks are ever simultaneously runnable, and
//   at the instant a task is dispatched fewer than width others are
//   running), so every task starts at its ASAP time and the
//   smallest-free-id rule assigns it a processor id < width.  By induction
//   the placements are therefore *identical* for every num_procs >= width
//   — probing N = 2|V| and N = width produce the same makespan and finish
//   times, so feasibility verdicts are unchanged by the clamp.
//
// Callers that need per-processor-count *energy* (which does depend on the
// employed processor count, since every employed processor is powered over
// the horizon) only ever evaluate counts <= width, where the clamp is the
// identity.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>

#include "energy/gap_profile.hpp"
#include "graph/task_graph.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {

class ScheduleCache {
 public:
  /// `width` is the clamp point (normally the graph's ASAP concurrency,
  /// clamped to [1, |V|]).  `keys` must outlive the cache.  An external
  /// `ws` (which must outlive the cache and not be used concurrently)
  /// lets a caller share one workspace — and thus the cached priority
  /// ranking — across successive caches for the same problem; by default
  /// the cache owns a private workspace.
  ScheduleCache(const graph::TaskGraph& g, std::span<const std::int64_t> keys,
                std::size_t width, sched::ListScheduleWorkspace* ws = nullptr)
      : g_(&g), keys_(keys), width_(width), ws_(ws != nullptr ? ws : &owned_ws_) {}

  /// Schedule for `n` processors (computed on first use).  For n >= width
  /// the returned schedule is the width-processor one (see file header).
  const sched::Schedule& at(std::size_t n);

  /// Idle-gap profile of the schedule for `n` processors, without
  /// materializing the schedule: the probe runs the event loop with a
  /// gap-recording sink (sched::list_schedule_gaps) instead of placement
  /// storage.  Derived from the full schedule instead when one is already
  /// cached.  Bit-identical either way, and everything a feasibility test
  /// (makespan) or energy evaluation needs — so search probes memoized
  /// here are reusable by the phase-2 energy scan.
  const energy::GapProfile& profile_at(std::size_t n);

  /// Makespan for `n` processors via the cheapest cached artifact
  /// (schedule, else profile, else a fresh gap-only run).
  Cycles makespan_at(std::size_t n);

  [[nodiscard]] bool has(std::size_t n) const { return by_n_.contains(clamp(n)); }
  [[nodiscard]] bool has_profile(std::size_t n) const {
    return profile_by_n_.contains(clamp(n));
  }

  /// Moves the schedule for `n` out of the cache (it must be present).
  sched::Schedule take(std::size_t n);

  /// Moves the profile for `n` out of the cache (it must be present).
  energy::GapProfile take_profile(std::size_t n);

  /// Number of list-scheduler invocations actually performed.
  [[nodiscard]] std::size_t computed() const { return computed_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] const graph::TaskGraph& graph() const { return *g_; }

 private:
  [[nodiscard]] std::size_t clamp(std::size_t n) const { return n < width_ ? n : width_; }

  const graph::TaskGraph* g_;
  std::span<const std::int64_t> keys_;
  std::size_t width_;
  sched::ListScheduleWorkspace owned_ws_;
  sched::ListScheduleWorkspace* ws_;
  std::unordered_map<std::size_t, sched::Schedule> by_n_;
  std::unordered_map<std::size_t, energy::GapProfile> profile_by_n_;
  std::size_t computed_{0};
};

}  // namespace lamps::core
