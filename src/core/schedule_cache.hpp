// Memoized list scheduling for the configuration searches.
//
// LAMPS phase 1, schedule_max_speedup and LAMPS phase 2 all invoke the
// list scheduler on the same (graph, priority keys) with overlapping
// processor counts; the cache computes each count once, shares one
// ListScheduleWorkspace across the computations, and clamps counts at the
// graph's ASAP concurrency width:
//
//   With num_procs >= width, the dispatch loop never runs out of free
//   processors (at most width tasks are ever simultaneously runnable, and
//   at the instant a task is dispatched fewer than width others are
//   running), so every task starts at its ASAP time and the
//   smallest-free-id rule assigns it a processor id < width.  By induction
//   the placements are therefore *identical* for every num_procs >= width
//   — probing N = 2|V| and N = width produce the same makespan and finish
//   times, so feasibility verdicts are unchanged by the clamp.
//
// Callers that need per-processor-count *energy* (which does depend on the
// employed processor count, since every employed processor is powered over
// the horizon) only ever evaluate counts <= width, where the clamp is the
// identity.
//
// Incremental rescheduling: an optional ProfileStore (core/incremental.hpp)
// backs the cache with deadline-invariant artifacts from earlier requests
// on the same graph structure.  Lookup order is always local maps first,
// then the store, then a fresh scheduler run — and because the local maps
// evolve identically whether or not a store is attached (every acquisition
// lands in them at the same point of the search), the store can only be
// consulted exactly where the from-scratch path would have run the
// scheduler.  computed() counts store hits alongside fresh runs for the
// same reason: it reports the scheduling work the search *required*, which
// is what StrategyResult.schedules_computed means, and stays bit-identical
// to a cold run — the serve byte-exactness gate depends on that.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>

#include "core/incremental.hpp"
#include "energy/gap_profile.hpp"
#include "graph/task_graph.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {

class ScheduleCache {
 public:
  /// `width` is the clamp point (normally the graph's ASAP concurrency,
  /// clamped to [1, |V|]).  `keys` must outlive the cache.  An external
  /// `ws` (which must outlive the cache and not be used concurrently)
  /// lets a caller share one workspace — and thus the cached priority
  /// ranking — across successive caches for the same problem; by default
  /// the cache owns a private workspace.  An external `store` (externally
  /// synchronized, e.g. a ScheduleBank lease) supplies and receives
  /// deadline-invariant schedules/profiles across requests; the caller
  /// must guarantee the store was built with an identical priority
  /// *ranking* (see core/incremental.hpp).
  ScheduleCache(const graph::TaskGraph& g, std::span<const std::int64_t> keys,
                std::size_t width, sched::ListScheduleWorkspace* ws = nullptr,
                ProfileStore* store = nullptr)
      : g_(&g), keys_(keys), width_(width), ws_(ws != nullptr ? ws : &owned_ws_),
        store_(store) {}

  /// Schedule for `n` processors (computed on first use).  For n >= width
  /// the returned schedule is the width-processor one (see file header).
  const sched::Schedule& at(std::size_t n);

  /// Idle-gap profile of the schedule for `n` processors, without
  /// materializing the schedule: the probe runs the event loop with a
  /// gap-recording sink (sched::list_schedule_gaps) instead of placement
  /// storage.  Derived from the full schedule instead when one is already
  /// cached.  Bit-identical either way, and everything a feasibility test
  /// (makespan) or energy evaluation needs — so search probes memoized
  /// here are reusable by the phase-2 energy scan.
  const energy::GapProfile& profile_at(std::size_t n);

  /// Makespan for `n` processors via the cheapest cached artifact
  /// (schedule, else profile, else a fresh gap-only run).
  Cycles makespan_at(std::size_t n);

  /// Locally cached artifacts only (what this search has already paid
  /// for); deliberately blind to the store so callers branch identically
  /// with and without one.
  [[nodiscard]] bool has(std::size_t n) const { return by_n_.contains(clamp(n)); }
  [[nodiscard]] bool has_profile(std::size_t n) const {
    return profile_by_n_.contains(clamp(n));
  }

  /// Locally cached schedule for `n`, or nullptr.  Never consults the
  /// store and never counts.
  [[nodiscard]] std::shared_ptr<const sched::Schedule> schedule_ptr(std::size_t n) const;

  /// Profile for `n` from the local maps (silent) or the store (counted —
  /// it replaces the fresh run the cold path would do here); nullptr when
  /// neither has it.  Never runs the scheduler.
  [[nodiscard]] std::shared_ptr<const energy::GapProfile> profile_lookup(std::size_t n);

  /// Schedule for `n` for winner materialization: local map, else store,
  /// else a fresh run (published to the store).  Never counts — matching
  /// the from-scratch search, which does not count the winner's
  /// materialization re-run either.
  [[nodiscard]] std::shared_ptr<const sched::Schedule> materialize(std::size_t n);

  /// Publishes an artifact computed outside the cache (the phase-2
  /// fan-out) into the local map and the store.  Counting happened when
  /// the caller decided to compute it.
  void adopt_schedule(std::size_t n, std::shared_ptr<const sched::Schedule> s);
  void adopt_profile(std::size_t n, std::shared_ptr<const energy::GapProfile> p);

  /// Copy of the schedule for `n` (it must be locally cached); drops the
  /// local entry.  Store-backed artifacts stay in the store.
  sched::Schedule take(std::size_t n);

  /// Scheduling work the search required: fresh list-scheduler runs plus
  /// store hits that each replaced exactly one such run.  Bit-identical
  /// with and without a store (see file header).
  [[nodiscard]] std::size_t computed() const { return computed_ + store_hits_; }
  /// Fresh list-scheduler invocations actually performed by this cache.
  [[nodiscard]] std::size_t fresh_runs() const { return computed_; }
  [[nodiscard]] std::size_t store_hits() const { return store_hits_; }
  [[nodiscard]] std::size_t width() const { return width_; }
  [[nodiscard]] const graph::TaskGraph& graph() const { return *g_; }

 private:
  [[nodiscard]] std::size_t clamp(std::size_t n) const { return n < width_ ? n : width_; }

  const graph::TaskGraph* g_;
  std::span<const std::int64_t> keys_;
  std::size_t width_;
  sched::ListScheduleWorkspace owned_ws_;
  sched::ListScheduleWorkspace* ws_;
  ProfileStore* store_;
  std::unordered_map<std::size_t, std::shared_ptr<const sched::Schedule>> by_n_;
  std::unordered_map<std::size_t, std::shared_ptr<const energy::GapProfile>> profile_by_n_;
  std::size_t computed_{0};
  std::size_t store_hits_{0};
};

}  // namespace lamps::core
