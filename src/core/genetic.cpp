#include "core/genetic.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "core/priority_keys.hpp"
#include "core/sns.hpp"
#include "core/stretch.hpp"
#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "util/rng.hpp"

namespace lamps::core {

namespace {

struct Individual {
  std::vector<graph::TaskId> order;  // permutation: position = priority rank
  std::size_t num_procs{1};
  double energy{std::numeric_limits<double>::infinity()};
  bool feasible{false};
};

/// Priority keys from a permutation: earlier position = smaller key =
/// dispatched first.
std::vector<std::int64_t> keys_from_order(const std::vector<graph::TaskId>& order) {
  std::vector<std::int64_t> keys(order.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank)
    keys[order[rank]] = static_cast<std::int64_t>(rank);
  return keys;
}

/// Order crossover (OX1): copy a random slice from parent a, fill the rest
/// in parent-b order.
std::vector<graph::TaskId> order_crossover(const std::vector<graph::TaskId>& a,
                                           const std::vector<graph::TaskId>& b, Rng& rng) {
  const std::size_t n = a.size();
  if (n < 2) return a;
  std::size_t lo = static_cast<std::size_t>(rng.uniform(0, n - 1));
  std::size_t hi = static_cast<std::size_t>(rng.uniform(0, n - 1));
  if (lo > hi) std::swap(lo, hi);
  std::vector<graph::TaskId> child(n, graph::kInvalidTask);
  std::vector<bool> used(n, false);
  for (std::size_t i = lo; i <= hi; ++i) {
    child[i] = a[i];
    used[a[i]] = true;
  }
  std::size_t fill = (hi + 1) % n;
  for (std::size_t k = 0; k < n; ++k) {
    const graph::TaskId candidate = b[(hi + 1 + k) % n];
    if (used[candidate]) continue;
    child[fill] = candidate;
    fill = (fill + 1) % n;
  }
  return child;
}

}  // namespace

StrategyResult genetic_schedule(const Problem& prob, const GeneticOptions& opts) {
  const graph::TaskGraph& g = *prob.graph;
  StrategyResult best;
  if (g.num_tasks() == 0) return best;
  if (opts.population < 2 || opts.generations == 0 || opts.tournament == 0)
    throw std::invalid_argument("genetic_schedule: degenerate GA options");

  Rng rng(opts.seed);
  std::size_t schedules = 0;

  // Processor-count range: the same bracket LAMPS scans.
  const Cycles deadline_cycles = prob.deadline_cycles_at_fmax();
  if (deadline_cycles == 0) return best;
  std::size_t n_lwb = static_cast<std::size_t>((g.total_work() + deadline_cycles - 1) /
                                               deadline_cycles);
  n_lwb = std::clamp<std::size_t>(n_lwb, 1, g.num_tasks());
  const MaxSpeedupSchedule speedup = schedule_max_speedup(prob);
  schedules += speedup.schedules_computed;
  const std::size_t n_max = std::max(n_lwb, speedup.num_procs);

  sched::ListScheduleWorkspace ws;
  const auto evaluate = [&](Individual& ind) {
    const auto keys = keys_from_order(ind.order);
    const sched::Schedule s = sched::list_schedule(g, ind.num_procs, keys, ws);
    ++schedules;
    ind.feasible = false;
    ind.energy = std::numeric_limits<double>::infinity();
    const ConfigEval ev = evaluate_schedule_config(s, prob, opts.ps);
    if (!ev.feasible) return;
    ind.feasible = true;
    ind.energy = ev.breakdown.total().value();
    if (!best.feasible || ind.energy < best.energy().value()) {
      best.feasible = true;
      best.num_procs = ind.num_procs;
      best.level_index = ev.level_index;
      best.breakdown = ev.breakdown;
      best.completion = ev.completion;
      best.schedule = s;
    }
  };

  // ---- Initial population: EDF and bottom-level orders seed the search;
  // the rest are random permutations over the LAMPS processor bracket.
  std::vector<Individual> pop(opts.population);
  {
    const auto seed_keys = problem_priority_keys(prob);
    std::vector<graph::TaskId> edf_order(g.num_tasks());
    std::iota(edf_order.begin(), edf_order.end(), graph::TaskId{0});
    std::sort(edf_order.begin(), edf_order.end(), [&](graph::TaskId x, graph::TaskId y) {
      return seed_keys[x] != seed_keys[y] ? seed_keys[x] < seed_keys[y] : x < y;
    });
    const auto bl = graph::bottom_levels(g);
    std::vector<graph::TaskId> bl_order = edf_order;
    std::sort(bl_order.begin(), bl_order.end(), [&](graph::TaskId x, graph::TaskId y) {
      return bl[x] != bl[y] ? bl[x] > bl[y] : x < y;
    });

    for (std::size_t i = 0; i < pop.size(); ++i) {
      Individual& ind = pop[i];
      if (i == 0) {
        ind.order = edf_order;
      } else if (i == 1) {
        ind.order = bl_order;
      } else {
        ind.order.resize(g.num_tasks());
        std::iota(ind.order.begin(), ind.order.end(), graph::TaskId{0});
        rng.shuffle(std::span<graph::TaskId>(ind.order));
      }
      ind.num_procs = n_lwb + static_cast<std::size_t>(
                                  rng.uniform(0, static_cast<std::uint64_t>(n_max - n_lwb)));
      evaluate(ind);
    }
  }

  const auto tournament_pick = [&]() -> const Individual& {
    const Individual* winner = nullptr;
    for (std::size_t t = 0; t < opts.tournament; ++t) {
      const Individual& c =
          pop[static_cast<std::size_t>(rng.uniform(0, pop.size() - 1))];
      if (winner == nullptr || c.energy < winner->energy) winner = &c;
    }
    return *winner;
  };

  // ---- Generational loop with single-individual elitism.
  for (std::size_t gen = 0; gen < opts.generations; ++gen) {
    std::vector<Individual> next;
    next.reserve(pop.size());
    // Elite: keep the best current individual verbatim.
    next.push_back(*std::min_element(pop.begin(), pop.end(),
                                     [](const Individual& a, const Individual& b) {
                                       return a.energy < b.energy;
                                     }));
    while (next.size() < pop.size()) {
      const Individual& pa = tournament_pick();
      const Individual& pb = tournament_pick();
      Individual child;
      child.order = rng.bernoulli(opts.crossover_rate)
                        ? order_crossover(pa.order, pb.order, rng)
                        : pa.order;
      child.num_procs = rng.bernoulli(0.5) ? pa.num_procs : pb.num_procs;
      if (rng.bernoulli(opts.mutation_rate) && child.order.size() >= 2) {
        const std::size_t i =
            static_cast<std::size_t>(rng.uniform(0, child.order.size() - 1));
        const std::size_t j =
            static_cast<std::size_t>(rng.uniform(0, child.order.size() - 1));
        std::swap(child.order[i], child.order[j]);
      }
      if (rng.bernoulli(opts.mutation_rate)) {
        if (rng.bernoulli(0.5) && child.num_procs < n_max)
          ++child.num_procs;
        else if (child.num_procs > n_lwb)
          --child.num_procs;
      }
      evaluate(child);
      next.push_back(std::move(child));
    }
    pop = std::move(next);
  }

  best.schedules_computed = schedules;
  return best;
}

}  // namespace lamps::core
