// Schedule & Stretch (paper section 4.1) and S&S+PS (section 4.3).
//
// S&S employs as many processors as keep reducing the LS-EDF makespan, then
// stretches the whole schedule to the deadline with the lowest feasible
// discrete DVS level.  S&S+PS additionally sweeps the frequency from the
// maximum down to the minimum feasible level and shuts down idle gaps that
// exceed the breakeven length, returning the best balance of DVS and PS.
#pragma once

#include "core/problem.hpp"

namespace lamps::core {

class ScheduleCache;

/// Determines S&S's processor count: the smallest count achieving the
/// minimal list-schedule makespan ("as many processors as possible to
/// reduce the makespan", paper section 4.1).  With N >= the graph's ASAP
/// concurrency every task starts at its earliest possible time, so that
/// width pins the minimal makespan; a binary search then finds the smallest
/// count that reaches it.  Returns the chosen count and its schedule;
/// `schedules_computed` counts list-scheduling invocations.
struct MaxSpeedupSchedule {
  std::size_t num_procs{1};
  sched::Schedule schedule;
  std::size_t schedules_computed{0};
};
[[nodiscard]] MaxSpeedupSchedule schedule_max_speedup(const Problem& prob);

/// Same search through a shared ScheduleCache, returning only the chosen
/// processor count (LAMPS needs nothing else — its phase 2 re-reads the
/// cached probe schedules directly).  The cache's width clamp must be the
/// graph's ASAP concurrency width (it is what pins the minimal makespan).
/// When `telemetry` is non-null every probe is recorded (phase "speedup").
[[nodiscard]] std::size_t max_speedup_procs(ScheduleCache& cache,
                                            obs::SearchTelemetry* telemetry = nullptr);

/// Schedule & Stretch.  Infeasible results carry feasible = false and no
/// schedule.
[[nodiscard]] StrategyResult schedule_and_stretch(const Problem& prob);

/// S&S extended with processor shutdown.
[[nodiscard]] StrategyResult schedule_and_stretch_ps(const Problem& prob);

}  // namespace lamps::core
