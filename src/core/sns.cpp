#include "core/sns.hpp"

#include <algorithm>
#include <limits>

#include "core/priority_keys.hpp"
#include "core/schedule_cache.hpp"
#include "core/stretch.hpp"
#include "graph/analysis.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {

namespace {

// Graham-bound probe short-circuits (shared names with core/lamps.cpp —
// the registry aggregates the searches' decisions in one place).
obs::Counter& c_graham_upper = obs::counter("search.graham_shortcircuit_upper");
obs::Counter& c_graham_lower = obs::counter("search.graham_shortcircuit_lower");

StrategyResult stretch_result(const Problem& prob, sched::Schedule schedule,
                              std::size_t num_procs, std::size_t schedules_computed,
                              bool with_ps) {
  StrategyResult r;
  r.num_procs = num_procs;
  r.schedules_computed = schedules_computed;

  const ConfigEval ev = evaluate_schedule_config(schedule, prob, with_ps);
  if (ev.feasible) {
    r.feasible = true;
    r.level_index = ev.level_index;
    r.breakdown = ev.breakdown;
    r.completion = ev.completion;
    r.schedule = std::move(schedule);
  }
  if (prob.telemetry != nullptr) {
    prob.telemetry->strategy = with_ps ? "S&S+PS" : "S&S";
    fill_telemetry_summary(*prob.telemetry, r);
  }
  return r;
}

struct SpeedupSearch {
  std::size_t num_procs;
  std::size_t computed;
};

/// With width processors every task starts at its ASAP time, so the
/// makespan cannot improve further; binary-search the smallest count that
/// already reaches that makespan.
///
/// Probe short-circuit (pure integer arithmetic, so the branch taken is
/// identical to what the real schedule would decide): the list scheduler
/// is greedy, so Graham's bound brackets its makespan,
///   max(CPL, ceil(W/n)) <= makespan(n) <= ceil((W + (n-1)*CPL) / n);
/// when the lower bound already exceeds ms_min the probe cannot reach it,
/// and when the upper bound is within ms_min it certainly does — either
/// way the schedule need not be computed.
SpeedupSearch speedup_search(ScheduleCache& cache, obs::SearchTelemetry* tel) {
  obs::Span span("sns/speedup_search");
  const graph::TaskGraph& g = cache.graph();
  const std::size_t width = cache.width();
  const std::size_t before = cache.computed();
  std::size_t num_procs = width;
  constexpr Cycles kMax = std::numeric_limits<Cycles>::max();
  const Cycles total_work = g.total_work();
  const Cycles cpl = graph::critical_path_length(g);
  // With `width` processors every task starts at its ASAP time (the cache's
  // width-clamp induction), so the minimal makespan is the critical path
  // length exactly — no schedule needs to be computed to know the target.
  const Cycles ms_min = cpl;

  const auto record = [&](std::size_t n, const char* action, std::int64_t makespan,
                          bool reaches) {
    if (tel == nullptr) return;
    obs::SearchProbe p;
    p.num_procs = n;
    p.phase = "speedup";
    p.action = action;
    p.makespan = makespan;
    p.feasible = reaches ? 1 : 0;
    tel->probes.push_back(p);
  };
  const auto reaches_ms_min = [&](std::size_t n) {
    const auto nc = static_cast<Cycles>(n);
    Cycles lower = cpl;
    if (total_work <= kMax - nc) lower = std::max(lower, (total_work + nc - 1) / nc);
    if (lower > ms_min) {
      c_graham_lower.inc();
      record(n, "graham-lower", -1, false);
      return false;
    }
    if (nc == 1 || cpl <= (kMax - total_work) / (nc - 1)) {
      const Cycles upper = (total_work + (nc - 1) * cpl + (nc - 1)) / nc;
      if (upper <= ms_min) {
        c_graham_upper.inc();
        record(n, "graham-upper", -1, true);
        return true;
      }
    }
    const Cycles ms = cache.makespan_at(n);
    const bool reaches = ms <= ms_min;
    record(n, "profile-probe", static_cast<std::int64_t>(ms), reaches);
    return reaches;
  };

  std::size_t lo = 1, hi = width;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (reaches_ms_min(mid)) {
      hi = mid;
      num_procs = mid;
    } else {
      lo = mid + 1;
    }
  }
  return SpeedupSearch{num_procs, cache.computed() - before};
}

std::size_t concurrency_width(const graph::TaskGraph& g) {
  return std::max<std::size_t>(1, std::min(g.num_tasks(), graph::asap_max_concurrency(g)));
}

}  // namespace

MaxSpeedupSchedule schedule_max_speedup(const Problem& prob) {
  const graph::TaskGraph& g = *prob.graph;
  const auto keys = problem_priority_keys(prob);
  // An attached ProfileStore reuses deadline-invariant probes from earlier
  // same-structure requests; counting stays cold-identical (see
  // schedule_cache.hpp).
  ScheduleCache cache(g, keys, concurrency_width(g), nullptr, prob.profile_store);
  const SpeedupSearch s = speedup_search(cache, prob.telemetry);
  // The Graham-bound short-circuit may have decided the winning probe
  // without scheduling it; materialize the winner before taking it.
  const sched::Schedule& winner = cache.at(s.num_procs);
  if (prob.telemetry != nullptr) {
    obs::SearchProbe p;
    p.num_procs = s.num_procs;
    p.phase = "speedup";
    p.action = "materialize";
    p.makespan = static_cast<std::int64_t>(winner.makespan());
    p.feasible = 1;
    p.chosen = true;
    prob.telemetry->probes.push_back(p);
  }
  return MaxSpeedupSchedule{s.num_procs, cache.take(s.num_procs), cache.computed()};
}

std::size_t max_speedup_procs(ScheduleCache& cache, obs::SearchTelemetry* telemetry) {
  return speedup_search(cache, telemetry).num_procs;
}

StrategyResult schedule_and_stretch(const Problem& prob) {
  MaxSpeedupSchedule ms = schedule_max_speedup(prob);
  return stretch_result(prob, std::move(ms.schedule), ms.num_procs, ms.schedules_computed,
                        /*with_ps=*/false);
}

StrategyResult schedule_and_stretch_ps(const Problem& prob) {
  MaxSpeedupSchedule ms = schedule_max_speedup(prob);
  return stretch_result(prob, std::move(ms.schedule), ms.num_procs, ms.schedules_computed,
                        /*with_ps=*/true);
}

}  // namespace lamps::core
