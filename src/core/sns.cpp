#include "core/sns.hpp"

#include <algorithm>

#include "core/priority_keys.hpp"
#include "core/stretch.hpp"
#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {

namespace {

StrategyResult stretch_result(const Problem& prob, sched::Schedule schedule,
                              std::size_t num_procs, std::size_t schedules_computed,
                              bool with_ps) {
  StrategyResult r;
  r.num_procs = num_procs;
  r.schedules_computed = schedules_computed;

  if (with_ps) {
    const LevelChoice choice = best_level_with_ps(schedule, prob);
    if (choice.level == nullptr) return r;  // infeasible even at f_max
    r.feasible = true;
    r.level_index = choice.level->index;
    r.breakdown = choice.breakdown;
    r.completion = cycles_to_time(schedule.makespan(), choice.level->f);
  } else {
    const power::DvsLevel* lvl = lowest_feasible_level(schedule, prob);
    if (lvl == nullptr) return r;
    r.feasible = true;
    r.level_index = lvl->index;
    r.breakdown = stretched_energy(schedule, *lvl, prob);
    r.completion = cycles_to_time(schedule.makespan(), lvl->f);
  }
  r.schedule = std::move(schedule);
  return r;
}

}  // namespace

MaxSpeedupSchedule schedule_max_speedup(const Problem& prob) {
  const graph::TaskGraph& g = *prob.graph;
  const auto keys = problem_priority_keys(prob);
  const std::size_t width =
      std::max<std::size_t>(1, std::min(g.num_tasks(), graph::asap_max_concurrency(g)));

  // With width processors every task starts at its ASAP time, so the
  // makespan cannot improve further; binary-search the smallest count that
  // already reaches that makespan.
  MaxSpeedupSchedule out{width, sched::list_schedule(g, width, keys), 1};
  const Cycles ms_min = out.schedule.makespan();

  std::size_t lo = 1, hi = width;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    sched::Schedule s = sched::list_schedule(g, mid, keys);
    ++out.schedules_computed;
    if (s.makespan() <= ms_min) {
      hi = mid;
      out.num_procs = mid;
      out.schedule = std::move(s);
    } else {
      lo = mid + 1;
    }
  }
  return out;
}

StrategyResult schedule_and_stretch(const Problem& prob) {
  MaxSpeedupSchedule ms = schedule_max_speedup(prob);
  return stretch_result(prob, std::move(ms.schedule), ms.num_procs, ms.schedules_computed,
                        /*with_ps=*/false);
}

StrategyResult schedule_and_stretch_ps(const Problem& prob) {
  MaxSpeedupSchedule ms = schedule_max_speedup(prob);
  return stretch_result(prob, std::move(ms.schedule), ms.num_procs, ms.schedules_computed,
                        /*with_ps=*/true);
}

}  // namespace lamps::core
