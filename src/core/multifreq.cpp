#include "core/multifreq.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "core/priority_keys.hpp"
#include "core/sns.hpp"
#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {

namespace {

/// Slowest ladder level fitting `work` cycles into `window` seconds,
/// floored at the critical level.  Returns ladder.size() when even f_max
/// is too slow.
std::size_t pick_level(const power::DvsLadder& ladder, Cycles work, Seconds window) {
  if (work == 0) return ladder.critical_level().index;
  if (window.value() <= 0.0) return ladder.size();
  const Hertz f_need = required_frequency(work, window);
  const power::DvsLevel* lvl =
      ladder.lowest_level_at_least(Hertz{f_need.value() * (1.0 - 1e-12)});
  if (lvl == nullptr) return ladder.size();
  return std::max(lvl->index, ladder.critical_level().index);
}

/// The augmented precedence relation of a fixed schedule: graph edges plus
/// the processor-order edge to the next task on the same processor.  The
/// schedule realizes this DAG, so it is acyclic.
struct AugmentedDag {
  std::vector<std::vector<graph::TaskId>> succs;
  std::vector<graph::TaskId> topo;  // forward topological order

  AugmentedDag(const sched::Schedule& s, const graph::TaskGraph& g) : succs(g.num_tasks()) {
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const auto gs = g.successors(v);
      succs[v].assign(gs.begin(), gs.end());
    }
    for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
      const auto row = s.on_proc(p);
      for (std::size_t i = 0; i + 1 < row.size(); ++i)
        succs[row[i].task].push_back(row[i + 1].task);
    }
    // Kahn's algorithm over the augmented relation.
    std::vector<std::size_t> in_deg(g.num_tasks(), 0);
    for (const auto& ss : succs)
      for (const graph::TaskId t : ss) ++in_deg[t];
    std::priority_queue<graph::TaskId, std::vector<graph::TaskId>, std::greater<>> ready;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      if (in_deg[v] == 0) ready.push(v);
    topo.reserve(g.num_tasks());
    while (!ready.empty()) {
      const graph::TaskId v = ready.top();
      ready.pop();
      topo.push_back(v);
      for (const graph::TaskId t : succs[v])
        if (--in_deg[t] == 0) ready.push(t);
    }
  }
};

}  // namespace

std::vector<TaskAssignment> reclaim_slack(const sched::Schedule& s, const Problem& prob) {
  const graph::TaskGraph& g = *prob.graph;
  const power::DvsLadder& ladder = *prob.ladder;
  const double f_max = prob.model->max_frequency().value();
  const std::size_t n = g.num_tasks();

  const AugmentedDag dag(s, g);
  if (dag.topo.size() != n) return {};  // corrupt schedule (cannot happen for valid ones)

  // Backward pass: latest admissible finish, reserving f_max durations for
  // every augmented successor:
  //   LF(v) = min(deadline(v), min over succ s of LF(s) - w(s)/f_max).
  std::vector<double> lf(n, prob.deadline.value());
  for (auto it = dag.topo.rbegin(); it != dag.topo.rend(); ++it) {
    const graph::TaskId v = *it;
    if (const auto own = g.explicit_deadline(v)) lf[v] = std::min(lf[v], own->value());
    for (const graph::TaskId t : dag.succs[v])
      lf[v] = std::min(lf[v], lf[t] - static_cast<double>(g.weight(t)) / f_max);
    // Feasibility: even at f_max the task must fit before its LF.
    if (lf[v] < static_cast<double>(g.weight(v)) / f_max - 1e-12) return {};
  }

  // Forward pass in augmented topological order: start as early as the
  // realized predecessors allow, run at the slowest level that still makes
  // LF.  Induction gives start(v) <= LF(v) - w(v)/f_max, so a level always
  // exists when the feasibility check above passed.
  std::vector<TaskAssignment> out(n);
  std::vector<double> realized_finish(n, 0.0);
  std::vector<double> ready_at(n, 0.0);
  for (const graph::TaskId v : dag.topo) {
    const sched::Placement& pl = s.placement(v);
    TaskAssignment& a = out[v];
    a.task = v;
    a.proc = pl.proc;
    a.start = Seconds{ready_at[v]};
    a.window_end = Seconds{lf[v]};

    const std::size_t lvl_idx = pick_level(ladder, g.weight(v), a.window_end - a.start);
    if (lvl_idx >= ladder.size()) return {};  // numerical corner; treat as infeasible
    a.level_index = lvl_idx;
    a.finish = a.start + cycles_to_time(g.weight(v), ladder.level(lvl_idx).f);
    realized_finish[v] = a.finish.value();
    for (const graph::TaskId t : dag.succs[v])
      ready_at[t] = std::max(ready_at[t], realized_finish[v]);
  }
  return out;
}

energy::EnergyBreakdown evaluate_multifreq(const std::vector<TaskAssignment>& assignments,
                                           std::size_t num_procs, const Problem& prob,
                                           const MultiFreqOptions& opts) {
  const power::DvsLadder& ladder = *prob.ladder;
  const power::DvsLevel& idle_lvl = ladder.level(opts.idle_level_index);
  const power::SleepModel sleep = prob.sleep();

  energy::EnergyBreakdown e{};

  // Active energy per task at its own level.
  for (const TaskAssignment& a : assignments) {
    const power::DvsLevel& lvl = ladder.level(a.level_index);
    const Seconds dur = a.finish - a.start;
    e.dynamic += lvl.active.dynamic * dur;
    e.leakage += lvl.active.leakage * dur;
    e.intrinsic += lvl.active.intrinsic * dur;
  }

  // Idle/sleep energy per processor timeline.
  std::vector<std::vector<const TaskAssignment*>> rows(num_procs);
  for (const TaskAssignment& a : assignments) rows[a.proc].push_back(&a);
  for (auto& row : rows)
    std::sort(row.begin(), row.end(), [](const TaskAssignment* x, const TaskAssignment* y) {
      return x->start < y->start;
    });

  const auto charge_gap = [&](Seconds gap, bool leading) {
    if (gap.value() <= 0.0) return;
    const bool may_sleep = opts.ps && (prob.ps_allow_leading_gaps || !leading);
    if (may_sleep) {
      const auto d = sleep.decide(gap, idle_lvl.idle);
      if (d.shutdown) {
        e.sleep += sleep.sleep_power() * gap;
        e.wakeup += sleep.wakeup_energy();
        ++e.shutdowns;
        return;
      }
    }
    e.leakage += idle_lvl.active.leakage * gap;
    e.intrinsic += idle_lvl.active.intrinsic * gap;
  };

  for (const auto& row : rows) {
    Seconds cursor{0.0};
    bool leading = true;
    const TaskAssignment* prev = nullptr;
    for (const TaskAssignment* a : row) {
      charge_gap(a->start - cursor, leading);
      if (prev != nullptr && prev->level_index != a->level_index) {
        e.transition += opts.transition_energy;
        ++e.transitions;
      }
      prev = a;
      cursor = a->finish;
      leading = false;
    }
    charge_gap(prob.deadline - cursor, leading);
  }
  return e;
}

MultiFreqResult lamps_multifreq(const Problem& prob, const MultiFreqOptions& opts) {
  const graph::TaskGraph& g = *prob.graph;
  MultiFreqResult best;
  if (g.num_tasks() == 0) return best;
  if (opts.idle_level_index >= prob.ladder->size()) return best;

  const auto keys = problem_priority_keys(prob);
  const Cycles deadline_cycles = prob.deadline_cycles_at_fmax();
  if (deadline_cycles == 0) return best;

  // Same outer scan as LAMPS: phase-1 lower bound to the max-speedup count.
  const std::size_t n_upb = g.num_tasks();
  std::size_t n_lwb = static_cast<std::size_t>((g.total_work() + deadline_cycles - 1) /
                                               deadline_cycles);
  n_lwb = std::clamp<std::size_t>(n_lwb, 1, n_upb);

  const MaxSpeedupSchedule speedup = schedule_max_speedup(prob);
  std::size_t schedules = speedup.schedules_computed;
  const std::size_t n_max = std::max(n_lwb, speedup.num_procs);

  for (std::size_t n = n_lwb; n <= n_max; ++n) {
    const sched::Schedule s = sched::list_schedule(g, n, keys);
    ++schedules;
    const std::vector<TaskAssignment> assignments = reclaim_slack(s, prob);
    if (assignments.empty()) continue;  // this N misses the deadline at f_max
    const energy::EnergyBreakdown e = evaluate_multifreq(assignments, n, prob, opts);
    if (!best.feasible || e.total() < best.breakdown.total()) {
      best.feasible = true;
      best.num_procs = n;
      best.breakdown = e;
      best.assignments = assignments;
      Seconds completion{0.0};
      for (const TaskAssignment& a : assignments)
        completion = std::max(completion, a.finish);
      best.completion = completion;
    }
  }
  best.schedules_computed = schedules;
  return best;
}

}  // namespace lamps::core
