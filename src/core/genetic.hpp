// Integrated genetic scheduler (in the spirit of Kianzad et al.'s CASPER,
// the paper's reference [18], raised again in its future-work section).
//
// Instead of a fixed list-scheduling priority, a GA co-evolves
//   * the task priority permutation driving the list scheduler, and
//   * the processor count,
// with fitness = total energy after the usual stretch (+ optional PS level
// sweep).  Elitist generational GA: tournament selection, order crossover
// on the permutation, swap mutation, +-1 processor-count mutation.
//
// Purpose in this reproduction: the paper argues via LIMIT-SF that *no*
// scheduling algorithm can beat LS-EDF by much; an integrated
// metaheuristic search is the strongest practical challenger, and
// bench/ext_genetic measures how much of the (tiny) remaining gap it
// closes at orders of magnitude more scheduling work.
#pragma once

#include <cstdint>

#include "core/problem.hpp"

namespace lamps::core {

struct GeneticOptions {
  std::size_t population{40};
  std::size_t generations{60};
  std::size_t tournament{3};
  double crossover_rate{0.9};
  double mutation_rate{0.2};
  std::uint64_t seed{0x6e6e};
  /// Use the PS frequency sweep in the fitness (true = challenger to
  /// LAMPS+PS; false = challenger to LAMPS).
  bool ps{true};
};

/// Runs the GA.  The result carries the best schedule found plus
/// `schedules_computed` = total list-scheduling invocations (the cost
/// metric to hold against LAMPS's).
[[nodiscard]] StrategyResult genetic_schedule(const Problem& prob,
                                              const GeneticOptions& opts = {});

}  // namespace lamps::core
