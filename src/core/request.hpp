// Request -> Problem adapter for the serving path (net/server) plus the
// cross-request cache key.
//
// A ServiceRequest is everything a remote caller may vary: the task
// graph (already scaled to cycles), the absolute deadline, the strategy
// and the list-scheduling policy.  The digest hashes exactly those
// degrees of freedom — graph structure by value, not by name — so two
// requests collide iff run_service_request would compute the identical
// result (strategies are deterministic pure functions of the Problem).
// The serve layer uses it both for single-flight deduplication of
// concurrent identical requests and as the LRU key for completed ones.
#pragma once

#include <cstdint>

#include "core/problem.hpp"
#include "core/strategy.hpp"

namespace lamps::core {

/// One remote scheduling request, normalized: the deadline is absolute
/// seconds (the protocol's deadline-factor form is resolved against the
/// graph's critical path before this struct is built).
struct ServiceRequest {
  graph::TaskGraph graph;
  Seconds deadline{0.0};
  StrategyKind strategy{StrategyKind::kLampsPs};
  sched::PriorityPolicy policy{sched::PriorityPolicy::kEdf};
};

/// FNV-1a digest over the request's semantic content: task weights,
/// explicit deadlines, edge set, global deadline, strategy and policy.
/// Graph name/labels are cosmetic and excluded.  Stable across processes
/// (no pointers, no iteration-order dependence: CSR arrays are in fixed
/// task-id order).
[[nodiscard]] std::uint64_t service_request_digest(const ServiceRequest& req);

/// Digest over only the deadline-invariant degrees of freedom: weights,
/// edge set, explicit deadlines and priority policy.  The global deadline
/// and the strategy are deliberately excluded — requests differing only in
/// those produce identical schedules and idle-gap profiles (see
/// core/incremental.hpp), so they share one ScheduleBank store; LAMPS and
/// S&S probes cross-pollinate the same artifacts.
[[nodiscard]] std::uint64_t service_request_structure_digest(const ServiceRequest& req);

class ScheduleBank;

/// Builds the Problem over `req` (the model/ladder pair must outlive the
/// call) and runs the strategy.  Single-threaded search on purpose: the
/// serving layer parallelizes across requests, not within one.
[[nodiscard]] StrategyResult run_service_request(const ServiceRequest& req,
                                                 const power::PowerModel& model,
                                                 const power::DvsLadder& ladder);

/// Same, with incremental rescheduling: leases `bank`'s ProfileStore for
/// the request's structure digest so deadline-invariant schedules/profiles
/// carry over between requests on the same graph.  Results are
/// bit-identical to the 3-argument overload.  The store is only attached
/// when the graph has no explicit per-task deadlines (their EDF ranking
/// depends on the global deadline, breaking the invariance); `bank` may be
/// null, which degrades to the plain overload.
[[nodiscard]] StrategyResult run_service_request(const ServiceRequest& req,
                                                 const power::PowerModel& model,
                                                 const power::DvsLadder& ladder,
                                                 ScheduleBank* bank);

}  // namespace lamps::core
