#include "core/limits.hpp"

#include <algorithm>

#include "graph/analysis.hpp"

namespace lamps::core {

namespace {

/// Splits W * epc into the same component structure the heuristics report.
energy::EnergyBreakdown active_only_energy(Cycles work, const power::DvsLevel& lvl) {
  const Seconds t = cycles_to_time(work, lvl.f);
  energy::EnergyBreakdown e{};
  e.dynamic = lvl.active.dynamic * t;
  e.leakage = lvl.active.leakage * t;
  e.intrinsic = lvl.active.intrinsic * t;
  return e;
}

energy::EnergyBreakdown active_only_energy_continuous(Cycles work,
                                                      const power::PowerModel& model,
                                                      Volts vdd) {
  const Hertz f = model.frequency(vdd);
  const power::PowerBreakdown p = model.active_power(vdd);
  const Seconds t = cycles_to_time(work, f);
  energy::EnergyBreakdown e{};
  e.dynamic = p.dynamic * t;
  e.leakage = p.leakage * t;
  e.intrinsic = p.intrinsic * t;
  return e;
}

}  // namespace

StrategyResult limit_sf(const Problem& prob, const LimitOptions& opts) {
  const graph::TaskGraph& g = *prob.graph;
  StrategyResult r;
  if (g.num_tasks() == 0) {
    r.feasible = true;
    return r;
  }
  const Cycles cpl = graph::critical_path_length(g);
  // Lowest level fast enough for the critical path to fit the deadline.
  const Hertz f_need = required_frequency(cpl, prob.deadline);
  const power::DvsLevel* floor_lvl =
      prob.ladder->lowest_level_at_least(Hertz{f_need.value() * (1.0 - 1e-12)});
  if (floor_lvl == nullptr) return r;  // even f_max cannot fit the CPL

  const power::DvsLevel& crit = prob.ladder->critical_level();
  if (opts.continuous_critical) {
    const Volts v_crit = prob.model->critical_vdd();
    const Hertz f_crit = prob.model->frequency(v_crit);
    if (f_crit.value() >= f_need.value()) {
      // Deadline does not bind: run at the continuous optimum.
      r.feasible = true;
      r.breakdown = active_only_energy_continuous(g.total_work(), *prob.model, v_crit);
      r.level_index = crit.index;  // nearest ladder annotation
      r.completion = cycles_to_time(cpl, f_crit);
      return r;
    }
  }
  const power::DvsLevel& sel =
      floor_lvl->index > crit.index ? *floor_lvl : crit;  // max(critical, needed)
  r.feasible = true;
  r.level_index = sel.index;
  r.breakdown = active_only_energy(g.total_work(), sel);
  r.completion = cycles_to_time(cpl, sel.f);
  return r;
}

StrategyResult limit_mf(const Problem& prob, const LimitOptions& opts) {
  const graph::TaskGraph& g = *prob.graph;
  StrategyResult r;
  r.feasible = true;  // deadline deliberately ignored (paper section 4.4)
  if (g.num_tasks() == 0) return r;
  const Cycles cpl = graph::critical_path_length(g);
  if (opts.continuous_critical) {
    const Volts v_crit = prob.model->critical_vdd();
    r.breakdown = active_only_energy_continuous(g.total_work(), *prob.model, v_crit);
    r.level_index = prob.ladder->critical_level().index;
    r.completion = cycles_to_time(cpl, prob.model->frequency(v_crit));
    return r;
  }
  const power::DvsLevel& crit = prob.ladder->critical_level();
  r.level_index = crit.index;
  r.breakdown = active_only_energy(g.total_work(), crit);
  r.completion = cycles_to_time(cpl, crit.f);
  return r;
}

}  // namespace lamps::core
