#include "core/runner.hpp"

#include <map>
#include <stdexcept>

#include "graph/analysis.hpp"
#include "util/stopwatch.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

namespace lamps::core {

std::vector<InstanceResult> run_sweep(const std::vector<SuiteEntry>& entries,
                                      const power::PowerModel& model,
                                      const power::DvsLadder& ladder,
                                      const SweepConfig& config) {
  struct Job {
    const SuiteEntry* entry;
    double factor;
    StrategyKind strategy;
    Cycles cpl;
    double parallelism;
  };
  std::vector<Job> jobs;
  for (const SuiteEntry& e : entries) {
    const Cycles cpl = graph::critical_path_length(e.graph);
    const double par = graph::average_parallelism(e.graph);
    for (const double factor : config.deadline_factors)
      for (const StrategyKind s : config.strategies)
        jobs.push_back(Job{&e, factor, s, cpl, par});
  }

  std::vector<InstanceResult> results(jobs.size());
  ThreadPool pool(config.threads);
  parallel_for_index(pool, jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    Problem prob;
    prob.graph = &job.entry->graph;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.policy = config.policy;
    prob.deadline =
        Seconds{static_cast<double>(job.cpl) / model.max_frequency().value() * job.factor};

    const Stopwatch watch;
    const StrategyResult r = run_strategy(job.strategy, prob);
    const double elapsed = watch.elapsed_seconds();

    InstanceResult& out = results[i];
    out.group = job.entry->group;
    out.graph_name = job.entry->graph.name();
    out.deadline_factor = job.factor;
    out.strategy = job.strategy;
    out.feasible = r.feasible;
    out.energy = r.energy();
    out.num_procs = r.num_procs;
    out.level_index = r.level_index;
    out.schedules_computed = r.schedules_computed;
    out.parallelism = job.parallelism;
    out.total_work = job.entry->graph.total_work();
    out.seconds = elapsed;
  });
  return results;
}

std::vector<GroupRelative> aggregate_relative(const std::vector<InstanceResult>& results,
                                              StrategyKind baseline) {
  // Baseline energy per (graph, deadline factor).
  std::map<std::pair<std::string, double>, double> base;
  for (const InstanceResult& r : results)
    if (r.strategy == baseline && r.feasible && r.energy.value() > 0.0)
      base[{r.graph_name, r.deadline_factor}] = r.energy.value();

  struct Acc {
    std::vector<double> samples;
    std::size_t skipped{0};
  };
  std::map<std::tuple<std::string, double, StrategyKind>, Acc> acc;
  for (const InstanceResult& r : results) {
    Acc& a = acc[{r.group, r.deadline_factor, r.strategy}];
    const auto it = base.find({r.graph_name, r.deadline_factor});
    if (!r.feasible || it == base.end()) {
      ++a.skipped;
      continue;
    }
    a.samples.push_back(r.energy.value() / it->second);
  }

  std::vector<GroupRelative> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    GroupRelative g;
    g.group = std::get<0>(key);
    g.deadline_factor = std::get<1>(key);
    g.strategy = std::get<2>(key);
    const Summary s = summarize(a.samples);
    g.mean_relative_energy = s.mean;
    g.stddev_relative_energy = s.stddev;
    g.min_relative_energy = s.min;
    g.max_relative_energy = s.max;
    g.num_graphs = s.n;
    g.num_skipped = a.skipped;
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace lamps::core
