#include "core/runner.hpp"

#include <chrono>
#include <map>
#include <stdexcept>
#include <thread>

#include "graph/analysis.hpp"
#include "obs/metrics.hpp"
#include "sched/schedule.hpp"
#include "util/cancel.hpp"
#include "util/stopwatch.hpp"
#include "util/summary.hpp"
#include "util/thread_pool.hpp"

namespace lamps::core {

namespace {

// Cell dispositions and retry volume (docs/observability.md).
obs::Counter& c_cells_ok = obs::counter("sweep.cells_ok");
obs::Counter& c_cells_failed = obs::counter("sweep.cells_failed");
obs::Counter& c_cells_timeout = obs::counter("sweep.cells_timeout");
obs::Counter& c_cells_skipped = obs::counter("sweep.cells_skipped");
obs::Counter& c_retries = obs::counter("sweep.retries");
obs::Counter& c_validations = obs::counter("sweep.validations");

void count_outcome(CellOutcome o) {
  switch (o) {
    case CellOutcome::kOk:
      c_cells_ok.inc();
      return;
    case CellOutcome::kFailed:
      c_cells_failed.inc();
      return;
    case CellOutcome::kTimeout:
      c_cells_timeout.inc();
      return;
    case CellOutcome::kSkipped:
      c_cells_skipped.inc();
      return;
  }
}

std::string cell_context(const InstanceResult& r) {
  std::string ctx = r.graph_name;
  ctx += " / ";
  ctx += to_string(r.strategy);
  ctx += " / d=";
  ctx += std::to_string(r.deadline_factor);
  return ctx;
}

}  // namespace

std::string_view to_string(CellOutcome o) {
  switch (o) {
    case CellOutcome::kOk:
      return "OK";
    case CellOutcome::kFailed:
      return "FAIL";
    case CellOutcome::kTimeout:
      return "TIMEOUT";
    case CellOutcome::kSkipped:
      return "SKIPPED";
  }
  return "FAIL";
}

CellOutcome cell_outcome_from_string(std::string_view name) {
  for (const CellOutcome o : {CellOutcome::kOk, CellOutcome::kFailed, CellOutcome::kTimeout,
                              CellOutcome::kSkipped})
    if (name == to_string(o)) return o;
  return CellOutcome::kFailed;
}

std::vector<InstanceResult> run_sweep(const std::vector<SuiteEntry>& entries,
                                      const power::PowerModel& model,
                                      const power::DvsLadder& ladder,
                                      const SweepConfig& config) {
  struct Job {
    const SuiteEntry* entry;
    double factor;
    StrategyKind strategy;
    Cycles cpl;
    double parallelism;
  };
  std::vector<Job> jobs;
  for (const SuiteEntry& e : entries) {
    const Cycles cpl = graph::critical_path_length(e.graph);
    const double par = graph::average_parallelism(e.graph);
    for (const double factor : config.deadline_factors)
      for (const StrategyKind s : config.strategies)
        jobs.push_back(Job{&e, factor, s, cpl, par});
  }

  std::vector<InstanceResult> results(jobs.size());
  ThreadPool pool(config.threads);
  parallel_for_index(pool, jobs.size(), [&](std::size_t i) {
    const Job& job = jobs[i];
    InstanceResult& out = results[i];
    out.group = job.entry->group;
    out.graph_name = job.entry->graph.name();
    out.deadline_factor = job.factor;
    out.strategy = job.strategy;
    out.parallelism = job.parallelism;
    out.total_work = job.entry->graph.total_work();

    if (config.skip_cell && config.skip_cell(out)) {
      out.outcome = CellOutcome::kSkipped;
      count_outcome(out.outcome);
      return;
    }

    Problem prob;
    prob.graph = &job.entry->graph;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.policy = config.policy;
    prob.deadline =
        Seconds{static_cast<double>(job.cpl) / model.max_frequency().value() * job.factor};

    // Attempt loop: one mandatory attempt plus up to max_retries extra ones
    // for *retryable* failures, with doubling backoff.  Each attempt runs
    // under a fresh watchdog token installed for this thread (run_indexed
    // re-installs it in any nested fan-out workers).
    for (std::size_t attempt = 0;; ++attempt) {
      try {
        if (config.fault_injector) config.fault_injector(out, attempt);
        CancelToken token(config.cell_timeout_seconds);
        CancelScope scope(&token);
        const Stopwatch watch;
        const StrategyResult r = run_strategy(job.strategy, prob);
        out.seconds = watch.elapsed_seconds();
        if (config.validate && r.schedule.has_value()) {
          c_validations.inc();
          const std::string violation =
              sched::validate_schedule(*r.schedule, job.entry->graph);
          if (!violation.empty())
            throw ValidationError(ErrorCode::kScheduleInvalid, violation, cell_context(out),
                                  "the strategy produced an inconsistent schedule; "
                                  "report this instance");
        }
        out.feasible = r.feasible;
        out.energy = r.energy();
        out.num_procs = r.num_procs;
        out.level_index = r.level_index;
        out.schedules_computed = r.schedules_computed;
        out.outcome = CellOutcome::kOk;
        out.error = ErrorCode::kNone;
        out.error_message.clear();
        break;
      } catch (const Error& e) {
        out.outcome =
            e.code() == ErrorCode::kCellTimeout || e.code() == ErrorCode::kCancelled
                ? CellOutcome::kTimeout
                : CellOutcome::kFailed;
        out.error = e.code();
        out.error_message = e.message();
        if (e.retryable() && attempt < config.max_retries) {
          out.retries = static_cast<std::uint32_t>(attempt + 1);
          c_retries.inc();
          const double backoff =
              config.retry_backoff_seconds * static_cast<double>(std::size_t{1} << attempt);
          if (backoff > 0.0)
            std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
          continue;
        }
        break;
      } catch (const std::exception& e) {
        out.outcome = CellOutcome::kFailed;
        out.error = ErrorCode::kInternal;
        out.error_message = e.what();
        break;
      }
    }
    if (out.outcome != CellOutcome::kOk) {
      // Zero the result payload so a failed cell can never be mistaken for
      // a data point.
      out.feasible = false;
      out.energy = Joules{0.0};
      out.num_procs = 0;
      out.level_index = 0;
      out.schedules_computed = 0;
      out.seconds = 0.0;
    }
    count_outcome(out.outcome);
    if (config.on_cell_done) config.on_cell_done(out);
  });
  return results;
}

std::vector<GroupRelative> aggregate_relative(const std::vector<InstanceResult>& results,
                                              StrategyKind baseline) {
  // Baseline energy per (graph, deadline factor).
  std::map<std::pair<std::string, double>, double> base;
  for (const InstanceResult& r : results)
    if (r.strategy == baseline && r.feasible && r.energy.value() > 0.0)
      base[{r.graph_name, r.deadline_factor}] = r.energy.value();

  struct Acc {
    std::vector<double> samples;
    std::size_t skipped{0};
  };
  std::map<std::tuple<std::string, double, StrategyKind>, Acc> acc;
  for (const InstanceResult& r : results) {
    Acc& a = acc[{r.group, r.deadline_factor, r.strategy}];
    const auto it = base.find({r.graph_name, r.deadline_factor});
    if (!r.feasible || it == base.end()) {
      ++a.skipped;
      continue;
    }
    a.samples.push_back(r.energy.value() / it->second);
  }

  std::vector<GroupRelative> out;
  out.reserve(acc.size());
  for (const auto& [key, a] : acc) {
    GroupRelative g;
    g.group = std::get<0>(key);
    g.deadline_factor = std::get<1>(key);
    g.strategy = std::get<2>(key);
    const Summary s = summarize(a.samples);
    g.mean_relative_energy = s.mean;
    g.stddev_relative_energy = s.stddev;
    g.min_relative_energy = s.min;
    g.max_relative_energy = s.max;
    g.num_graphs = s.n;
    g.num_skipped = a.skipped;
    out.push_back(std::move(g));
  }
  return out;
}

}  // namespace lamps::core
