#include "core/request.hpp"

#include "core/incremental.hpp"

namespace lamps::core {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv1a {
  std::uint64_t h{kFnvOffset};

  void byte(std::uint8_t b) {
    h ^= b;
    h *= kFnvPrime;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

// Hashes the deadline-invariant part shared by both digests: weights, edge
// set, explicit deadlines and priority policy.
void hash_structure(Fnv1a& h, const ServiceRequest& req) {
  const graph::TaskGraph& g = req.graph;
  h.u64(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    h.u64(static_cast<std::uint64_t>(g.weight(v)));
    // Successor lists are CSR slices in ascending source order; hashing
    // (source-count, targets...) pins the exact edge set.
    const auto succ = g.successors(v);
    h.u64(succ.size());
    for (const graph::TaskId t : succ) h.u64(t);
    if (const auto d = g.explicit_deadline(v); d.has_value())
      h.f64(d->value());
    else
      h.f64(-1.0);
  }
  h.u64(static_cast<std::uint64_t>(req.policy));
}

}  // namespace

std::uint64_t service_request_digest(const ServiceRequest& req) {
  Fnv1a h;
  hash_structure(h, req);
  h.f64(req.deadline.value());
  h.u64(static_cast<std::uint64_t>(req.strategy));
  return h.h;
}

std::uint64_t service_request_structure_digest(const ServiceRequest& req) {
  Fnv1a h;
  hash_structure(h, req);
  return h.h;
}

StrategyResult run_service_request(const ServiceRequest& req,
                                   const power::PowerModel& model,
                                   const power::DvsLadder& ladder) {
  return run_service_request(req, model, ladder, nullptr);
}

StrategyResult run_service_request(const ServiceRequest& req,
                                   const power::PowerModel& model,
                                   const power::DvsLadder& ladder,
                                   ScheduleBank* bank) {
  Problem prob;
  prob.graph = &req.graph;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = req.deadline;
  prob.policy = req.policy;
  prob.search_threads = 1;
  if (bank != nullptr && !req.graph.has_explicit_deadlines()) {
    // Lease held for the whole strategy run: same-structure requests
    // serialize on the store, distinct structures proceed in parallel.
    ScheduleBank::Lease lease = bank->lease(service_request_structure_digest(req));
    prob.profile_store = lease.store();
    return run_strategy(req.strategy, prob);
  }
  return run_strategy(req.strategy, prob);
}

}  // namespace lamps::core
