#include "core/request.hpp"

namespace lamps::core {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

struct Fnv1a {
  std::uint64_t h{kFnvOffset};

  void byte(std::uint8_t b) {
    h ^= b;
    h *= kFnvPrime;
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    __builtin_memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
};

}  // namespace

std::uint64_t service_request_digest(const ServiceRequest& req) {
  Fnv1a h;
  const graph::TaskGraph& g = req.graph;
  h.u64(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    h.u64(static_cast<std::uint64_t>(g.weight(v)));
    // Successor lists are CSR slices in ascending source order; hashing
    // (source-count, targets...) pins the exact edge set.
    const auto succ = g.successors(v);
    h.u64(succ.size());
    for (const graph::TaskId t : succ) h.u64(t);
    if (const auto d = g.explicit_deadline(v); d.has_value())
      h.f64(d->value());
    else
      h.f64(-1.0);
  }
  h.f64(req.deadline.value());
  h.u64(static_cast<std::uint64_t>(req.strategy));
  h.u64(static_cast<std::uint64_t>(req.policy));
  return h.h;
}

StrategyResult run_service_request(const ServiceRequest& req,
                                   const power::PowerModel& model,
                                   const power::DvsLadder& ladder) {
  Problem prob;
  prob.graph = &req.graph;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = req.deadline;
  prob.policy = req.policy;
  prob.search_threads = 1;
  return run_strategy(req.strategy, prob);
}

}  // namespace lamps::core
