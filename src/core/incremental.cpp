#include "core/incremental.hpp"

#include <utility>

#include "obs/metrics.hpp"

namespace lamps::core {

namespace {

// Bank traffic: a "hit" lease found an existing store for the structure
// (docs/observability.md).
obs::Counter& c_bank_lease_hit = obs::counter("schedule_bank.lease_hit");
obs::Counter& c_bank_lease_miss = obs::counter("schedule_bank.lease_miss");
obs::Counter& c_bank_evictions = obs::counter("schedule_bank.evictions");

}  // namespace

struct ScheduleBank::Lease::Entry {
  std::mutex m;
  ProfileStore store;
};

ScheduleBank::Lease::Lease(std::shared_ptr<Entry> e)
    : entry_(std::move(e)), store_(&entry_->store), lock_(entry_->m) {}

ScheduleBank::Lease ScheduleBank::lease(std::uint64_t structure_digest) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> guard(mu_);
    if (const auto it = map_.find(structure_digest); it != map_.end()) {
      c_bank_lease_hit.inc();
      lru_.splice(lru_.begin(), lru_, it->second.pos);
      entry = it->second.entry;
    } else {
      c_bank_lease_miss.inc();
      while (capacity_ != 0 && map_.size() >= capacity_) {
        // Evict the least-recently leased store.  An in-flight lease keeps
        // its entry alive through the shared_ptr; only the map forgets it.
        c_bank_evictions.inc();
        map_.erase(lru_.back());
        lru_.pop_back();
      }
      lru_.push_front(structure_digest);
      entry = std::make_shared<Entry>();
      map_.emplace(structure_digest, Slot{entry, lru_.begin()});
    }
  }
  // Entry lock acquired outside the bank mutex: a long-running request
  // never blocks unrelated structures from leasing.
  return Lease(std::move(entry));
}

std::size_t ScheduleBank::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return map_.size();
}

}  // namespace lamps::core
