// Shared problem/result types for the scheduling strategies (paper
// section 4).
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

#include "energy/evaluator.hpp"
#include "graph/task_graph.hpp"
#include "obs/telemetry.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "power/sleep_model.hpp"
#include "sched/priorities.hpp"
#include "sched/schedule.hpp"

namespace lamps::core {

struct ProfileStore;

/// One scheduling problem instance.  The referenced graph/model/ladder must
/// outlive the Problem (strategies are pure functions over it).
struct Problem {
  const graph::TaskGraph* graph{nullptr};
  /// Global deadline (wall clock, applies to every task).
  Seconds deadline{0.0};
  const power::PowerModel* model{nullptr};
  const power::DvsLadder* ladder{nullptr};

  /// List-scheduling priority policy (paper: EDF; others for ablation).
  sched::PriorityPolicy policy{sched::PriorityPolicy::kEdf};
  /// Whether PS may remove leading idle gaps (see DESIGN.md section 7).
  bool ps_allow_leading_gaps{true};
  /// Seed for the kRandom priority policy.
  std::uint64_t priority_seed{0};

  /// Worker threads for the LAMPS phase-2 / processor_sweep fan-out over
  /// independent processor counts.  1 (default) runs serially — the
  /// experiment pipeline already parallelizes across instances — and 0
  /// selects the hardware concurrency.  Results are bit-identical at any
  /// thread count (deterministic index-ordered reduction).
  std::size_t search_threads{1};

  /// Optional search-telemetry sink.  When non-null, the configuration
  /// searches (LAMPS, LAMPS+PS, S&S, S&S+PS) record every probed
  /// processor count and the chosen configuration into it.  Observation
  /// only: results are bit-identical with or without a sink, at any
  /// search_threads setting.  Not owned; must outlive the strategy call.
  obs::SearchTelemetry* telemetry{nullptr};

  /// Optional cross-request store of deadline-invariant schedules and
  /// idle-gap profiles (core/incremental.hpp), normally a ScheduleBank
  /// lease held by the serving path.  Results — including
  /// schedules_computed — are bit-identical with or without one.  Only
  /// attach for graphs without explicit per-task deadlines (their EDF
  /// ranking depends on the global deadline).  Externally synchronized;
  /// not owned; must outlive the strategy call.
  ProfileStore* profile_store{nullptr};

  [[nodiscard]] power::SleepModel sleep() const { return power::SleepModel(*model); }

  /// Deadline expressed in cycles at the maximum frequency: a schedule is
  /// feasible at f_max iff its makespan (cycles) fits below this.
  [[nodiscard]] Cycles deadline_cycles_at_fmax() const {
    return static_cast<Cycles>(deadline.value() * model->max_frequency().value() * (1.0 + 1e-12));
  }
};

/// Identifies the six approaches of the paper's evaluation.
enum class StrategyKind {
  kSns,      ///< Schedule & Stretch (baseline)
  kLamps,    ///< Leakage-Aware MultiProcessor Scheduling
  kSnsPs,    ///< S&S + processor shutdown
  kLampsPs,  ///< LAMPS + processor shutdown
  kLimitSf,  ///< single-frequency lower bound
  kLimitMf,  ///< multiple-frequency lower bound
};

[[nodiscard]] std::string_view to_string(StrategyKind k);

/// Outcome of running one strategy on one Problem.
struct StrategyResult {
  bool feasible{false};
  /// Number of processors employed (0 for the LIMIT bounds: "N/A").
  std::size_t num_procs{0};
  /// Index into the DVS ladder of the chosen operating point.
  std::size_t level_index{0};
  energy::EnergyBreakdown breakdown{};
  /// Winning schedule (absent for the LIMIT bounds and infeasible results).
  std::optional<sched::Schedule> schedule;
  /// Wall-clock completion time of the last task at the chosen level.
  Seconds completion{0.0};
  /// Number of list-scheduling invocations performed (cost diagnostics,
  /// paper section 4.2's T_LAMPS discussion).
  std::size_t schedules_computed{0};

  [[nodiscard]] Joules energy() const { return breakdown.total(); }
};

/// Copies a strategy outcome into a telemetry record's summary fields
/// (the per-probe entries are appended by the searches as they run).
inline void fill_telemetry_summary(obs::SearchTelemetry& tel, const StrategyResult& r) {
  tel.feasible = r.feasible;
  tel.chosen_procs = r.num_procs;
  tel.chosen_level = r.level_index;
  tel.energy_total_j = r.breakdown.total().value();
  tel.energy_dynamic_j = r.breakdown.dynamic.value();
  tel.energy_leakage_j = r.breakdown.leakage.value();
  tel.energy_intrinsic_j = r.breakdown.intrinsic.value();
  tel.energy_sleep_j = r.breakdown.sleep.value();
  tel.energy_wakeup_j = r.breakdown.wakeup.value();
  tel.shutdowns = r.breakdown.shutdowns;
  tel.schedules_computed = r.schedules_computed;
}

}  // namespace lamps::core
