// Per-task DVS by static slack reclamation — the extension the paper's
// conclusions point at (section 6: schedulers in the style of Zhu et al.'s
// slack-reclamation [1] that let every task run at its own frequency).
//
// LAMPS+MF keeps the LAMPS outer loop (scan the processor count), but
// instead of stretching the whole schedule uniformly it reclaims slack per
// task:
//
//   1. list-schedule at f_max, which fixes the task-to-processor mapping
//      and the per-processor execution order,
//   2. backward pass over the *augmented* DAG (graph edges plus the edge to
//      the next task on the same processor): the latest admissible finish
//      LF(v) = min(deadline(v), min over augmented successors s of
//      LF(s) - w(s)/f_max) — every successor is reserved at least its
//      f_max duration,
//   3. forward pass in augmented topological order: each task starts as
//      early as its realized predecessors allow and runs at the slowest
//      discrete level that still finishes by LF(v), floored at the
//      critical level (running below the critical speed costs more energy
//      per cycle than sleeping through the leftover slack),
//   4. idle intervals are charged at a fixed idle operating point (an idle
//      core parks at a low supply voltage; default: the slowest ladder
//      level) and may be slept under the usual breakeven rule.
//
// Feasibility is by construction: induction over the augmented DAG gives
// start(v) <= LF(v) - w(v)/f_max whenever the f_max schedule met every
// deadline, so a fitting level always exists.  The result quantifies how
// much of the LIMIT-MF gap (paper Figs 10/11) per-task frequencies
// actually recover; the paper conjectures "probably much less" than the
// bound suggests, since LIMIT-MF ignores deadlines.
#pragma once

#include <vector>

#include "core/problem.hpp"

namespace lamps::core {

struct MultiFreqOptions {
  /// Shut down idle gaps longer than the breakeven (PS).
  bool ps{true};
  /// Ladder level an idle-but-powered core sits at (index).  The default
  /// (level 0 = lowest voltage) models an idle core parked at minimum
  /// supply; set to the chosen task level's index semantics are NOT
  /// supported — a single park level keeps the model simple and documented.
  std::size_t idle_level_index{0};
  /// Energy charged per DVS level change between consecutive tasks on the
  /// same processor (overhead-conscious voltage selection, cf. Andrei et
  /// al.; the paper's single-frequency model has no transitions).  Idle
  /// parking between tasks is not charged separately — the task-to-task
  /// level difference is the proxy.
  Joules transition_energy{0.0};
};

/// One task's realized placement under per-task DVS.
struct TaskAssignment {
  graph::TaskId task{graph::kInvalidTask};
  sched::ProcId proc{0};
  std::size_t level_index{0};
  Seconds start{0.0};
  Seconds finish{0.0};
  Seconds window_end{0.0};  ///< latest admissible finish
};

struct MultiFreqResult {
  bool feasible{false};
  std::size_t num_procs{0};
  energy::EnergyBreakdown breakdown{};
  std::vector<TaskAssignment> assignments;  ///< indexed by task id
  Seconds completion{0.0};
  std::size_t schedules_computed{0};

  [[nodiscard]] Joules energy() const { return breakdown.total(); }
};

/// Runs the LAMPS+MF heuristic on a Problem (same contract as the other
/// strategies: scans processor counts from the phase-1 minimum to the S&S
/// count, returns the minimum-energy configuration).
[[nodiscard]] MultiFreqResult lamps_multifreq(const Problem& prob,
                                              const MultiFreqOptions& opts = {});

/// Slack-reclamation core: re-times one fixed schedule (mapping + order)
/// with per-task levels.  Exposed for tests and for reusing an existing
/// schedule.  Returns an empty vector if the schedule misses a deadline
/// even at f_max.
[[nodiscard]] std::vector<TaskAssignment> reclaim_slack(const sched::Schedule& s,
                                                        const Problem& prob);

/// Energy of a per-task-level assignment under the multifreq idle model.
[[nodiscard]] energy::EnergyBreakdown evaluate_multifreq(
    const std::vector<TaskAssignment>& assignments, std::size_t num_procs,
    const Problem& prob, const MultiFreqOptions& opts);

}  // namespace lamps::core
