// Stretch/level-selection helpers shared by the strategies:
//   * the lowest DVS level at which a given schedule meets its deadline(s),
//   * energy of a stretched schedule without PS,
//   * the best (level, energy) over the DVS sweep with PS enabled
//     (paper section 4.3: "gradually scaling the operating frequency from
//     the maximum to the minimum required to meet the deadline").
#pragma once

#include <optional>

#include "core/problem.hpp"

namespace lamps::core {

/// Minimum clock frequency at which every task of `s` meets its deadline:
/// max over tasks of finish_cycles / deadline_seconds, where the deadline
/// is the per-task explicit one when present, else the global one.
[[nodiscard]] Hertz min_feasible_frequency(const sched::Schedule& s,
                                           const graph::TaskGraph& g, Seconds global_deadline);

/// Slowest ladder level meeting min_feasible_frequency; nullptr when the
/// schedule cannot meet its deadlines even at the maximum level.
[[nodiscard]] const power::DvsLevel* lowest_feasible_level(const sched::Schedule& s,
                                                           const Problem& prob);

/// Energy of `s` run entirely at `lvl` with all employed processors powered
/// until the deadline (no shutdown) — the S&S/LAMPS accounting.
[[nodiscard]] energy::EnergyBreakdown stretched_energy(const sched::Schedule& s,
                                                       const power::DvsLevel& lvl,
                                                       const Problem& prob);

struct LevelChoice {
  const power::DvsLevel* level{nullptr};
  energy::EnergyBreakdown breakdown{};
};

/// Sweeps every feasible ladder level and returns the one minimizing total
/// energy with per-gap shutdown decisions (the +PS inner loop).  Returns
/// level == nullptr when no level is feasible.
[[nodiscard]] LevelChoice best_level_with_ps(const sched::Schedule& s, const Problem& prob);

}  // namespace lamps::core
