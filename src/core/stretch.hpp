// Stretch/level-selection helpers shared by the strategies:
//   * the lowest DVS level at which a given schedule meets its deadline(s),
//   * energy of a stretched schedule without PS,
//   * the best (level, energy) over the DVS sweep with PS enabled
//     (paper section 4.3: "gradually scaling the operating frequency from
//     the maximum to the minimum required to meet the deadline").
#pragma once

#include <optional>

#include "core/problem.hpp"

namespace lamps::energy {
class GapProfile;
}

namespace lamps::core {

/// Minimum clock frequency at which every task of `s` meets its deadline:
/// max over tasks of finish_cycles / deadline_seconds, where the deadline
/// is the per-task explicit one when present, else the global one.
[[nodiscard]] Hertz min_feasible_frequency(const sched::Schedule& s,
                                           const graph::TaskGraph& g, Seconds global_deadline);

/// Slowest ladder level meeting min_feasible_frequency; nullptr when the
/// schedule cannot meet its deadlines even at the maximum level.
[[nodiscard]] const power::DvsLevel* lowest_feasible_level(const sched::Schedule& s,
                                                           const Problem& prob);

/// Energy of `s` run entirely at `lvl` with all employed processors powered
/// until the deadline (no shutdown) — the S&S/LAMPS accounting.
[[nodiscard]] energy::EnergyBreakdown stretched_energy(const sched::Schedule& s,
                                                       const power::DvsLevel& lvl,
                                                       const Problem& prob);

struct LevelChoice {
  const power::DvsLevel* level{nullptr};
  energy::EnergyBreakdown breakdown{};
  /// Levels actually evaluated by the sweep (< the feasible range when the
  /// active-energy lower bound proves the remaining levels cannot win).
  std::size_t levels_evaluated{0};
};

/// Sweeps every feasible ladder level and returns the one minimizing total
/// energy with per-gap shutdown decisions (the +PS inner loop).  Returns
/// level == nullptr when no level is feasible.
///
/// The sweep builds a GapProfile once and answers each level in O(P log G);
/// it stops early as soon as the exact active-energy lower bound of every
/// remaining level is >= the incumbent total, which cannot change the
/// returned optimum (idle charges only add energy, and a tie never
/// replaces the incumbent).  Results are bit-identical to evaluating
/// energy::evaluate_energy at every feasible level.
[[nodiscard]] LevelChoice best_level_with_ps(const sched::Schedule& s, const Problem& prob);

/// One processor-count configuration fully evaluated: the level/energy
/// choice LAMPS(+PS), S&S(+PS), the GA fitness and the sweep all share.
/// `feasible == false` when the schedule misses its deadline(s) even at
/// the fastest level.
struct ConfigEval {
  bool feasible{false};
  std::size_t level_index{0};
  energy::EnergyBreakdown breakdown{};
  Seconds completion{0.0};
  std::size_t levels_evaluated{0};
};

/// Evaluates a schedule as one candidate configuration: with PS the full
/// best_level_with_ps sweep, without PS the lowest feasible level and the
/// stretched (no-shutdown) energy.
[[nodiscard]] ConfigEval evaluate_schedule_config(const sched::Schedule& s,
                                                  const Problem& prob, bool with_ps);

/// Same evaluation from a GapProfile alone, for candidates whose schedule
/// was never materialized (sched::list_schedule_gaps).  Only valid when the
/// graph has no explicit per-task deadlines — feasibility is then a pure
/// makespan test, and the profile carries the makespan.  Bit-identical to
/// evaluate_schedule_config on the schedule the profile was taken from.
[[nodiscard]] ConfigEval evaluate_profile_config(const energy::GapProfile& prof,
                                                 const Problem& prob, bool with_ps);

}  // namespace lamps::core
