// Exact (branch-and-bound) multiprocessor makespan minimization, for small
// instances.
//
// P | prec | C_max is NP-hard, so the heuristics cannot be validated
// against a closed-form optimum; this module provides the ground truth for
// small graphs instead.  A depth-first branch-and-bound enumerates active
// schedules (every choice of ready task x distinct processor-availability
// time), pruned by two lower bounds (critical-path and remaining-work) and
// processor-symmetry canonicalization.
//
// Two consumers:
//   * tests assert LS-EDF stays within the Graham bound of the optimum and
//     that LAMPS's energy is never below the exact single-frequency
//     optimum,
//   * bench/ext_optimality_gap reports how far LS-EDF/LAMPS actually are
//     from optimal on a sample of small graphs (the paper argues via
//     LIMIT-SF that the gap must be small; this measures it directly).
//
// Note on energy: with a single frequency and no PS, all employed
// processors are powered from 0 to the deadline, so the schedule's energy
// depends only on (processor count, level); the minimal-energy exact
// solution is therefore derived from the minimal makespan per processor
// count, without enumerating schedules per level.
#pragma once

#include <cstdint>
#include <optional>

#include "core/problem.hpp"

namespace lamps::core {

struct ExactMakespanResult {
  Cycles makespan{0};       ///< best makespan found
  bool proven{false};       ///< true if the search completed (value is optimal)
  std::uint64_t nodes{0};   ///< search-tree nodes expanded
};

struct ExactOptions {
  /// Abort the search (returning the incumbent, proven = false) after this
  /// many nodes.  The default handles ~12-task graphs instantly and keeps
  /// adversarial instances bounded.
  std::uint64_t node_budget{4'000'000};
};

/// Minimal makespan of `g` on `num_procs` identical processors.
[[nodiscard]] ExactMakespanResult exact_min_makespan(const graph::TaskGraph& g,
                                                     std::size_t num_procs,
                                                     const ExactOptions& opts = {});

struct ExactEnergyResult {
  bool feasible{false};
  bool proven{false};
  std::size_t num_procs{0};
  std::size_t level_index{0};
  Joules energy{0.0};
  Cycles makespan{0};
};

/// Exact minimum energy over processor count and DVS level for the
/// single-frequency, no-PS execution model (the model S&S and LAMPS
/// optimize in): for each N in [1, max_procs], computes the exact minimal
/// makespan, stretches to the deadline, and charges all N processors to the
/// horizon.  `proven` is true only if every inner search completed.
[[nodiscard]] ExactEnergyResult exact_min_energy(const Problem& prob, std::size_t max_procs,
                                                 const ExactOptions& opts = {});

}  // namespace lamps::core
