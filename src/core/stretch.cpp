#include "core/stretch.hpp"

#include <algorithm>

namespace lamps::core {

Hertz min_feasible_frequency(const sched::Schedule& s, const graph::TaskGraph& g,
                             Seconds global_deadline) {
  double f_min = 0.0;
  if (!g.has_explicit_deadlines()) {
    // Single deadline: the binding constraint is the makespan.
    return required_frequency(s.makespan(), global_deadline);
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const Cycles finish = s.placement(v).finish;
    Seconds dl = global_deadline;
    if (const auto own = g.explicit_deadline(v)) dl = std::min(dl, *own);
    f_min = std::max(f_min, required_frequency(finish, dl).value());
  }
  return Hertz{f_min};
}

const power::DvsLevel* lowest_feasible_level(const sched::Schedule& s, const Problem& prob) {
  const Hertz f_min = min_feasible_frequency(s, *prob.graph, prob.deadline);
  if (f_min.value() <= 0.0) return &prob.ladder->level(0);
  // Guard against FP noise putting f_min epsilon above an exactly-feasible
  // level.
  return prob.ladder->lowest_level_at_least(Hertz{f_min.value() * (1.0 - 1e-12)});
}

energy::EnergyBreakdown stretched_energy(const sched::Schedule& s, const power::DvsLevel& lvl,
                                         const Problem& prob) {
  const power::SleepModel sleep = prob.sleep();
  return energy::evaluate_energy(s, lvl, prob.deadline, sleep, energy::PsOptions{});
}

LevelChoice best_level_with_ps(const sched::Schedule& s, const Problem& prob) {
  LevelChoice best;
  const power::DvsLevel* lo = lowest_feasible_level(s, prob);
  if (lo == nullptr) return best;
  const power::SleepModel sleep = prob.sleep();
  const energy::PsOptions ps{true, prob.ps_allow_leading_gaps};
  for (std::size_t i = lo->index; i < prob.ladder->size(); ++i) {
    const power::DvsLevel& lvl = prob.ladder->level(i);
    const energy::EnergyBreakdown e =
        energy::evaluate_energy(s, lvl, prob.deadline, sleep, ps);
    if (best.level == nullptr || e.total() < best.breakdown.total()) {
      best.level = &lvl;
      best.breakdown = e;
    }
  }
  return best;
}

}  // namespace lamps::core
