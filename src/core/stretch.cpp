#include "core/stretch.hpp"

#include <algorithm>
#include <vector>

#include "energy/gap_profile.hpp"
#include "obs/metrics.hpp"

namespace lamps::core {

namespace {

// +PS level-sweep effort (docs/observability.md).
obs::Counter& c_levels_evaluated = obs::counter("energy.levels_evaluated");
obs::Counter& c_level_early_exit = obs::counter("energy.level_sweep_early_exit");

}  // namespace

Hertz min_feasible_frequency(const sched::Schedule& s, const graph::TaskGraph& g,
                             Seconds global_deadline) {
  double f_min = 0.0;
  if (!g.has_explicit_deadlines()) {
    // Single deadline: the binding constraint is the makespan.
    return required_frequency(s.makespan(), global_deadline);
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    const Cycles finish = s.placement(v).finish;
    Seconds dl = global_deadline;
    if (const auto own = g.explicit_deadline(v)) dl = std::min(dl, *own);
    f_min = std::max(f_min, required_frequency(finish, dl).value());
  }
  return Hertz{f_min};
}

const power::DvsLevel* lowest_feasible_level(const sched::Schedule& s, const Problem& prob) {
  const Hertz f_min = min_feasible_frequency(s, *prob.graph, prob.deadline);
  if (f_min.value() <= 0.0) return &prob.ladder->level(0);
  // Guard against FP noise putting f_min epsilon above an exactly-feasible
  // level.
  return prob.ladder->lowest_level_at_least(Hertz{f_min.value() * (1.0 - 1e-12)});
}

energy::EnergyBreakdown stretched_energy(const sched::Schedule& s, const power::DvsLevel& lvl,
                                         const Problem& prob) {
  const power::SleepModel sleep = prob.sleep();
  return energy::evaluate_energy(s, lvl, prob.deadline, sleep, energy::PsOptions{});
}

namespace {

/// lowest_feasible_level for the global-deadline-only case, where the
/// binding constraint is the makespan alone.  Same epsilon policy.
const power::DvsLevel* lowest_level_for_makespan(Cycles makespan, const Problem& prob) {
  const Hertz f_min = required_frequency(makespan, prob.deadline);
  if (f_min.value() <= 0.0) return &prob.ladder->level(0);
  return prob.ladder->lowest_level_at_least(Hertz{f_min.value() * (1.0 - 1e-12)});
}

/// Active-only energy of the profiled schedule at `lvl`, composed through
/// the very same per-processor charge_active sequence
/// GapProfile::evaluate starts with.  Every idle charge the evaluator adds
/// afterwards is a non-negative product, and FP addition of non-negative
/// terms never decreases an accumulator, so this total is a certain lower
/// bound on the evaluated total — bitwise, not just mathematically (see
/// docs/performance.md).
double active_lower_bound(const energy::GapProfile& prof, const power::DvsLevel& lvl) {
  energy::EnergyBreakdown lb{};
  for (std::size_t p = 0; p < prof.num_procs(); ++p)
    energy::detail::charge_active(lb, lvl, cycles_to_time(prof.busy_cycles(p), lvl.f));
  return lb.total().value();
}

/// The +PS level sweep over [lo, fastest], shared by best_level_with_ps
/// and evaluate_schedule_config.  Strictly-less comparison keeps the
/// slowest level on ties, matching the historical scan order.
///
/// Early exit (the "past the critical frequency" guard): once the minimum
/// active-energy lower bound over all remaining levels is >= the incumbent
/// total, no remaining level can be *strictly* cheaper, so none can
/// replace the incumbent and the scan may stop.  Above the critical
/// frequency energy-per-cycle grows with f, which is what makes the
/// suffix minimum climb past the incumbent in practice.
LevelChoice sweep_levels_ps(const energy::GapProfile& prof, const power::DvsLevel& lo,
                            const Problem& prob) {
  LevelChoice best;
  const power::SleepModel sleep = prob.sleep();
  const energy::PsOptions ps{true, prob.ps_allow_leading_gaps};
  const std::size_t size = prob.ladder->size();

  // suffix_lb[i - lo.index] = min over j in [i, size) of the active-energy
  // lower bound at level j.  Not assumed monotone in f — the suffix min
  // makes the guard valid wherever the critical level sits.
  std::vector<double> suffix_lb(size - lo.index);
  for (std::size_t i = size; i-- > lo.index;) {
    const double lb = active_lower_bound(prof, prob.ladder->level(i));
    const std::size_t k = i - lo.index;
    suffix_lb[k] = k + 1 < suffix_lb.size() ? std::min(lb, suffix_lb[k + 1]) : lb;
  }

  for (std::size_t i = lo.index; i < size; ++i) {
    if (best.level != nullptr && suffix_lb[i - lo.index] >= best.breakdown.total().value()) {
      c_level_early_exit.inc();
      break;
    }
    const power::DvsLevel& lvl = prob.ladder->level(i);
    const energy::EnergyBreakdown e = prof.evaluate(lvl, prob.deadline, sleep, ps);
    ++best.levels_evaluated;
    c_levels_evaluated.inc();
    if (best.level == nullptr || e.total() < best.breakdown.total()) {
      best.level = &lvl;
      best.breakdown = e;
    }
  }
  return best;
}

}  // namespace

LevelChoice best_level_with_ps(const sched::Schedule& s, const Problem& prob) {
  LevelChoice best;
  const power::DvsLevel* lo = lowest_feasible_level(s, prob);
  if (lo == nullptr) return best;
  const energy::GapProfile prof(s);
  return sweep_levels_ps(prof, *lo, prob);
}

ConfigEval evaluate_schedule_config(const sched::Schedule& s, const Problem& prob,
                                    bool with_ps) {
  ConfigEval out;
  if (with_ps) {
    const LevelChoice choice = best_level_with_ps(s, prob);
    if (choice.level == nullptr) return out;
    out.feasible = true;
    out.level_index = choice.level->index;
    out.breakdown = choice.breakdown;
    out.completion = cycles_to_time(s.makespan(), choice.level->f);
    out.levels_evaluated = choice.levels_evaluated;
  } else {
    const power::DvsLevel* lvl = lowest_feasible_level(s, prob);
    if (lvl == nullptr) return out;
    out.feasible = true;
    out.level_index = lvl->index;
    out.breakdown = stretched_energy(s, *lvl, prob);
    out.completion = cycles_to_time(s.makespan(), lvl->f);
    out.levels_evaluated = 1;
  }
  return out;
}

ConfigEval evaluate_profile_config(const energy::GapProfile& prof, const Problem& prob,
                                   bool with_ps) {
  ConfigEval out;
  const power::DvsLevel* lo = lowest_level_for_makespan(prof.makespan(), prob);
  if (lo == nullptr) return out;
  if (with_ps) {
    const LevelChoice choice = sweep_levels_ps(prof, *lo, prob);
    if (choice.level == nullptr) return out;
    out.feasible = true;
    out.level_index = choice.level->index;
    out.breakdown = choice.breakdown;
    out.completion = cycles_to_time(prof.makespan(), choice.level->f);
    out.levels_evaluated = choice.levels_evaluated;
  } else {
    out.feasible = true;
    out.level_index = lo->index;
    // GapProfile::evaluate with default PsOptions is bit-identical to the
    // naive stretched_energy walk (see gap_profile.hpp).
    out.breakdown = prof.evaluate(*lo, prob.deadline, prob.sleep(), energy::PsOptions{});
    out.completion = cycles_to_time(prof.makespan(), lo->f);
    out.levels_evaluated = 1;
  }
  return out;
}

}  // namespace lamps::core
