#include "core/exact.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "util/cancel.hpp"

namespace lamps::core {

namespace {

class BranchAndBound {
 public:
  BranchAndBound(const graph::TaskGraph& g, std::size_t num_procs, const ExactOptions& opts)
      : g_(g),
        num_procs_(num_procs),
        opts_(opts),
        bottom_(graph::bottom_levels(g)),
        finish_(g.num_tasks(), 0),
        missing_preds_(g.num_tasks()),
        avail_(num_procs, 0) {
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      missing_preds_[v] = g.in_degree(v);
      if (missing_preds_[v] == 0) ready_.push_back(v);
    }
    remaining_work_ = g.total_work();
  }

  ExactMakespanResult run() {
    // Seed the incumbent with LS-EDF (bottom-level priority): a good upper
    // bound makes the pruning bite immediately.
    {
      sched::PriorityOptions popts;
      popts.policy = sched::PriorityPolicy::kBottomLevel;
      const sched::Schedule seed =
          sched::list_schedule(g_, num_procs_, sched::make_priority_keys(g_, popts));
      best_ = seed.makespan();
    }
    if (g_.num_tasks() > 0) dfs(0);
    ExactMakespanResult r;
    r.makespan = best_;
    r.proven = nodes_ <= opts_.node_budget;
    r.nodes = nodes_;
    return r;
  }

 private:
  [[nodiscard]] Cycles lower_bound(Cycles current_max) const {
    // Critical-path bound: every ready task still needs its bottom level,
    // starting no earlier than the earliest processor availability.
    Cycles earliest = std::numeric_limits<Cycles>::max();
    for (const Cycles a : avail_) earliest = std::min(earliest, a);
    Cycles lb = current_max;
    for (const graph::TaskId v : ready_) {
      Cycles ready_time = 0;
      for (const graph::TaskId p : g_.predecessors(v))
        ready_time = std::max(ready_time, finish_[p]);
      lb = std::max(lb, std::max(ready_time, earliest) + bottom_[v]);
    }
    // Work bound: remaining work plus committed busy time must fit on
    // num_procs processors; the busy time committed so far is
    // sum(avail) measured from zero.
    Cycles committed = 0;
    for (const Cycles a : avail_) committed += a;
    const Cycles work_lb =
        (committed + remaining_work_ + num_procs_ - 1) / num_procs_;
    return std::max(lb, work_lb);
  }

  void dfs(Cycles current_max) {
    if (nodes_ > opts_.node_budget) return;
    cancel_checkpoint("core/exact_dfs");
    ++nodes_;
    if (ready_.empty()) {
      best_ = std::min(best_, current_max);
      return;
    }
    if (lower_bound(current_max) >= best_) return;

    // Branch on every ready task; processor symmetry: identical
    // availability times are interchangeable, so only branch on distinct
    // availabilities.
    const std::vector<graph::TaskId> ready_snapshot = ready_;
    for (const graph::TaskId v : ready_snapshot) {
      Cycles ready_time = 0;
      for (const graph::TaskId p : g_.predecessors(v))
        ready_time = std::max(ready_time, finish_[p]);

      Cycles last_avail = std::numeric_limits<Cycles>::max();
      for (std::size_t pi = 0; pi < num_procs_; ++pi) {
        // Canonical order: consider processors sorted by availability by
        // scanning minima; cheaper: dedup equal availabilities.
        bool duplicate = false;
        for (std::size_t pj = 0; pj < pi; ++pj)
          if (avail_[pj] == avail_[pi]) {
            duplicate = true;
            break;
          }
        if (duplicate) continue;
        // Dominance: two distinct availabilities that clamp to the same
        // start are equivalent for this task; keep the later one only if
        // it yields a different start.
        const Cycles start = std::max(avail_[pi], ready_time);
        if (start == last_avail) continue;
        last_avail = start;

        apply(v, pi, start);
        dfs(std::max(current_max, finish_[v]));
        undo(v, pi);
        if (nodes_ > opts_.node_budget) return;
      }
    }
  }

  void apply(graph::TaskId v, std::size_t proc, Cycles start) {
    saved_avail_.push_back(avail_[proc]);
    finish_[v] = start + g_.weight(v);
    avail_[proc] = finish_[v];
    remaining_work_ -= g_.weight(v);
    ready_.erase(std::find(ready_.begin(), ready_.end(), v));
    for (const graph::TaskId s : g_.successors(v))
      if (--missing_preds_[s] == 0) ready_.push_back(s);
  }

  void undo(graph::TaskId v, std::size_t proc) {
    for (const graph::TaskId s : g_.successors(v))
      if (missing_preds_[s]++ == 0)
        ready_.erase(std::find(ready_.begin(), ready_.end(), s));
    ready_.push_back(v);
    remaining_work_ += g_.weight(v);
    avail_[proc] = saved_avail_.back();
    saved_avail_.pop_back();
    finish_[v] = 0;
  }

  const graph::TaskGraph& g_;
  std::size_t num_procs_;
  ExactOptions opts_;
  std::vector<Cycles> bottom_;
  std::vector<Cycles> finish_;
  std::vector<std::size_t> missing_preds_;
  std::vector<Cycles> avail_;
  std::vector<Cycles> saved_avail_;
  std::vector<graph::TaskId> ready_;
  Cycles remaining_work_{0};
  Cycles best_{std::numeric_limits<Cycles>::max()};
  std::uint64_t nodes_{0};
};

}  // namespace

ExactMakespanResult exact_min_makespan(const graph::TaskGraph& g, std::size_t num_procs,
                                       const ExactOptions& opts) {
  if (num_procs == 0)
    throw std::invalid_argument("exact_min_makespan: need at least one processor");
  if (g.num_tasks() == 0) return ExactMakespanResult{0, true, 0};
  BranchAndBound bb(g, num_procs, opts);
  return bb.run();
}

ExactEnergyResult exact_min_energy(const Problem& prob, std::size_t max_procs,
                                   const ExactOptions& opts) {
  const graph::TaskGraph& g = *prob.graph;
  ExactEnergyResult best;
  best.proven = true;
  if (g.num_tasks() == 0) {
    best.feasible = true;
    return best;
  }
  for (std::size_t n = 1; n <= max_procs; ++n) {
    const ExactMakespanResult ms = exact_min_makespan(g, n, opts);
    best.proven = best.proven && ms.proven;
    // Lowest level fitting the optimal makespan before the deadline; all n
    // processors powered to the horizon (no PS): energy depends only on
    // (n, level).
    const Hertz f_need = required_frequency(ms.makespan, prob.deadline);
    const power::DvsLevel* lvl =
        prob.ladder->lowest_level_at_least(Hertz{f_need.value() * (1.0 - 1e-12)});
    if (lvl == nullptr) continue;
    const Seconds busy = cycles_to_time(g.total_work(), lvl->f);
    const Seconds powered = prob.deadline * static_cast<double>(n);
    const Joules energy =
        lvl->active.total() * busy + lvl->idle * (powered - busy);
    if (!best.feasible || energy < best.energy) {
      best.feasible = true;
      best.num_procs = n;
      best.level_index = lvl->index;
      best.energy = energy;
      best.makespan = ms.makespan;
    }
  }
  return best;
}

}  // namespace lamps::core
