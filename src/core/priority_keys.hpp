// Shared helper: list-scheduling priority keys for a Problem (EDF keys use
// the deadline at maximum frequency as the reference).
#pragma once

#include <cstdint>
#include <vector>

#include "core/problem.hpp"

namespace lamps::core {

[[nodiscard]] std::vector<std::int64_t> problem_priority_keys(const Problem& prob);

}  // namespace lamps::core
