// Cross-request schedule/profile reuse for the serving path: incremental
// rescheduling for requests that differ only in the global deadline.
//
// The dominant `lamps serve` shape is the same graph asked about at many
// deadlines (a client sweeping deadline_factor).  For a graph without
// explicit per-task deadlines, every priority policy's *ranking* is
// deadline-invariant: kBottomLevel/kFifo/kRandom keys do not mention the
// deadline at all, and EDF keys are LF(v) = D - tail(v) — a new global
// deadline shifts every key by one constant, which cannot reorder the
// (key, id) sort.  List-schedule placements depend on the keys only
// through that ranking, so the schedules and idle-gap profiles for every
// processor count are *identical across deadlines*.  Only the cheap parts
// of a configuration search actually depend on D: the Graham-bound
// feasibility arithmetic and the O(P log G) profile energy evaluations.
//
// ProfileStore holds those deadline-invariant artifacts; ScheduleBank maps
// a graph-structure digest (weights + CSR + explicit deadlines + policy,
// global deadline and strategy excluded — see
// core::service_request_structure_digest) to a ProfileStore with LRU
// eviction.  A request leases its store for the duration of the strategy
// run; the per-entry mutex serializes same-structure requests (distinct
// structures proceed in parallel) while the bank mutex is only ever held
// for map/LRU bookkeeping.
//
// Results are bit-identical with and without a store — the store can only
// be consulted where the from-scratch path would have recomputed the very
// same artifact (see ScheduleCache for the accounting that keeps even the
// reported schedules_computed identical).  Callers must not attach a store
// when the graph has explicit per-task deadlines (there the EDF ranking
// genuinely depends on D); run_service_request enforces that gate.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "energy/gap_profile.hpp"
#include "sched/schedule.hpp"

namespace lamps::core {

/// Deadline-invariant scheduling artifacts of one (graph structure,
/// policy): schedules and idle-gap profiles keyed by processor count.
/// Plain data, externally synchronized (ScheduleBank's entry lock).
struct ProfileStore {
  std::unordered_map<std::size_t, std::shared_ptr<const sched::Schedule>> schedules;
  std::unordered_map<std::size_t, std::shared_ptr<const energy::GapProfile>> profiles;
};

/// LRU map from structure digest to ProfileStore, shared by all serve
/// workers.  lease() pins the entry (eviction-safe via shared_ptr) and
/// holds its mutex until the Lease is destroyed.
class ScheduleBank {
 public:
  explicit ScheduleBank(std::size_t capacity = 128) : capacity_(capacity) {}

  class Lease {
   public:
    Lease() = default;
    /// The leased store, or nullptr for an empty (default) lease.
    [[nodiscard]] ProfileStore* store() const { return store_; }

   private:
    friend class ScheduleBank;
    struct Entry;
    explicit Lease(std::shared_ptr<Entry> e);
    std::shared_ptr<Entry> entry_;
    ProfileStore* store_{nullptr};
    std::unique_lock<std::mutex> lock_;
  };

  /// Pins (creating if necessary) the store for `structure_digest` and
  /// acquires its entry lock — same-structure requests serialize here.
  /// The entry lock is taken outside the bank mutex.
  [[nodiscard]] Lease lease(std::uint64_t structure_digest);

  /// Number of resident stores (diagnostics).
  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  using Entry = Lease::Entry;

  mutable std::mutex mu_;
  std::size_t capacity_;
  /// Most-recently leased first.
  std::list<std::uint64_t> lru_;
  struct Slot {
    std::shared_ptr<Entry> entry;
    std::list<std::uint64_t>::iterator pos;
  };
  std::unordered_map<std::uint64_t, Slot> map_;
};

}  // namespace lamps::core
