#include "core/strategy.hpp"

#include <stdexcept>

#include "util/cancel.hpp"

namespace lamps::core {

std::string_view to_string(StrategyKind k) {
  switch (k) {
    case StrategyKind::kSns:
      return "S&S";
    case StrategyKind::kLamps:
      return "LAMPS";
    case StrategyKind::kSnsPs:
      return "S&S+PS";
    case StrategyKind::kLampsPs:
      return "LAMPS+PS";
    case StrategyKind::kLimitSf:
      return "LIMIT-SF";
    case StrategyKind::kLimitMf:
      return "LIMIT-MF";
  }
  return "?";
}

StrategyResult run_strategy(StrategyKind kind, const Problem& prob) {
  // Even closed-form strategies (the LIMIT bounds) respect an
  // already-expired watchdog: check the token directly once on entry.
  if (CancelToken* token = current_cancel_token(); token != nullptr)
    token->check("core/run_strategy");
  switch (kind) {
    case StrategyKind::kSns:
      return schedule_and_stretch(prob);
    case StrategyKind::kLamps:
      return lamps_schedule(prob);
    case StrategyKind::kSnsPs:
      return schedule_and_stretch_ps(prob);
    case StrategyKind::kLampsPs:
      return lamps_schedule_ps(prob);
    case StrategyKind::kLimitSf:
      return limit_sf(prob);
    case StrategyKind::kLimitMf:
      return limit_mf(prob);
  }
  throw std::invalid_argument("run_strategy: unknown strategy");
}

}  // namespace lamps::core
