#include "net/jsonv.hpp"

#include <cctype>
#include <charconv>
#include <cstdint>

#include "util/errors.hpp"

namespace lamps::net {

namespace {

[[noreturn]] void fail(std::size_t offset, const std::string& what) {
  throw InputError(ErrorCode::kJsonParse, what, "byte " + std::to_string(offset));
}

void append_utf8(std::string& out, std::uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue run() {
    skip_ws();
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail(pos_, "trailing characters after JSON document");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail(pos_, "unexpected end of document");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      }
      case 't':
        if (!consume_literal("true")) fail(pos_, "invalid literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail(pos_, "invalid literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail(pos_, "invalid literal");
        return JsonValue{};
      default:
        return parse_number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind_ = JsonValue::Kind::kBool;
    v.bool_ = b;
    return v;
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      skip_ws();
      v.object_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      v.array_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail(pos_ - 1, "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail(pos_, "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20)
        fail(pos_ - 1, "bare control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail(pos_, "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = parse_hex4();
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: the low half must follow as \uXXXX.
            if (!consume_literal("\\u")) fail(pos_, "unpaired surrogate");
            const std::uint32_t lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail(pos_ - 4, "invalid low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            fail(pos_ - 4, "unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default:
          fail(pos_ - 1, "invalid escape character");
      }
    }
  }

  std::uint32_t parse_hex4() {
    if (pos_ + 4 > text_.size()) fail(pos_, "truncated \\u escape");
    std::uint32_t cp = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      cp <<= 4;
      if (c >= '0' && c <= '9')
        cp |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        cp |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        cp |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail(pos_ - 1, "invalid hex digit in \\u escape");
    }
    return cp;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    const std::size_t int_digits = digits();
    if (int_digits == 0) fail(pos_, "invalid number");
    if (int_digits > 1 && text_[start + (text_[start] == '-' ? 1u : 0u)] == '0')
      fail(start, "leading zero in number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail(pos_, "digits required after decimal point");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail(pos_, "digits required in exponent");
    }
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    const std::string_view token = text_.substr(start, pos_ - start);
    const auto [end, ec] =
        std::from_chars(token.data(), token.data() + token.size(), v.number_);
    if (ec != std::errc{} || end != token.data() + token.size())
      fail(start, "unrepresentable number");
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

JsonValue JsonValue::parse(std::string_view text) { return JsonParser(text).run(); }

bool JsonValue::as_bool() const {
  if (!is_bool()) throw InputError(ErrorCode::kJsonParse, "expected a boolean");
  return bool_;
}

double JsonValue::as_number() const {
  if (!is_number()) throw InputError(ErrorCode::kJsonParse, "expected a number");
  return number_;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) throw InputError(ErrorCode::kJsonParse, "expected a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) throw InputError(ErrorCode::kJsonParse, "expected an array");
  return array_;
}

const JsonValue* JsonValue::get(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::get_number(std::string_view key, double fallback) const {
  const JsonValue* v = get(key);
  if (v == nullptr) return fallback;
  return v->as_number();
}

std::string JsonValue::get_string(std::string_view key, const std::string& fallback) const {
  const JsonValue* v = get(key);
  if (v == nullptr) return fallback;
  return v->as_string();
}

}  // namespace lamps::net
