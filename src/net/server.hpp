// `lamps serve` — persistent TCP JSON-lines scheduling daemon.
//
// Threading model (event loop; see docs/serving.md for the diagram):
//   - ONE event-loop thread (net::EventLoop: epoll + eventfd wake-up +
//     timer wheel) owns the listener and every connection fd.  It
//     accepts, feeds non-blocking reads into the per-connection
//     LineReader, parses and admits request lines, answers the admin
//     lane inline, and flushes responses — thread count is O(pool), not
//     O(connections);
//   - requests admitted by the loop run on the shared util::ThreadPool
//     (any number of connections fan into the same workers; pipelined
//     requests on one connection compute concurrently) behind a bounded
//     admission count — beyond max_pending the request is answered
//     immediately with an "overloaded" error instead of queueing without
//     bound;
//   - identical requests are deduplicated by net::ResultCache
//     (single-flight + cross-request LRU keyed by
//     core::service_request_digest);
//   - workers deliver completed payloads into per-connection response
//     slots and wake the loop; the loop writes responses strictly in
//     request order per connection, buffering what the peer's window
//     refuses and finishing on EPOLLOUT, so clients may pipeline naively;
//   - read/idle/write-stall clocks live on the loop's timer wheel: a
//     mid-line stall, a quiet connection, or a peer that stops draining
//     its responses is disconnected without a dedicated thread watching
//     it.
//
// Drain (SIGTERM/SIGINT via request_drain()): the listen socket closes
// (new connections are refused), the loop consumes only the bytes each
// connection already has on the wire, every admitted request still
// computes and its response is written, then write sides half-close and
// the daemon finishes.  Zero accepted requests are dropped.
//
// Observability: per-connection/request/compute spans, a "serve.*"
// metric family incl. loop health counters (catalog in
// docs/observability.md), a lock-free flight recorder of per-request
// phase timelines, and an admin lane — statsz / healthz / cachez /
// flightz / chaosz / quitquitquit lines are answered inline by the loop,
// bypassing both bounded admission and the compute pool, so
// introspection stays responsive under full saturation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "core/incremental.hpp"
#include "net/event_loop.hpp"
#include "net/result_cache.hpp"
#include "obs/flight.hpp"
#include "obs/flush.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace lamps::net {

struct AdminRequest;  // net/protocol.hpp

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral one (read it back via port()).
  std::uint16_t port{0};
  /// Compute pool workers; 0 = hardware concurrency.
  std::size_t threads{0};
  /// Admission bound: requests in flight (queued + computing) beyond
  /// which new ones get an "overloaded" response.  0 = 4x pool size.
  std::size_t max_pending{0};
  /// Completed-result LRU entries.
  std::size_t cache_capacity{512};
  /// ScheduleBank stores for incremental rescheduling: per graph
  /// *structure*, deadline-invariant schedules/profiles are reused across
  /// requests that differ only in deadline or strategy (see
  /// core/incremental.hpp).  Responses are byte-identical either way.
  /// 0 disables the bank.
  std::size_t bank_capacity{128};
  /// Flight-recorder ring slots (per-request phase timelines, flightz).
  std::size_t flight_capacity{1024};
  /// Requests whose arrival->write latency reaches this are promoted to a
  /// warn-level span dump and counted in serve.slow_requests.  <= 0
  /// disables promotion.
  double slow_request_s{1.0};
  /// > 0 starts a background obs::MetricsFlusher appending one registry
  /// snapshot per interval to `metrics_jsonl` and/or `metrics_hook`.
  double metrics_interval_s{0.0};
  std::string metrics_jsonl;
  obs::MetricsFlusher::SampleHook metrics_hook;
  /// Mid-line stall bound: a connection whose request line stops making
  /// byte progress for this long is closed (serve.read_timeouts).
  /// <= 0 disables.
  double read_timeout_s{30.0};
  /// Idle bound between complete request lines; exceeded connections are
  /// reaped (serve.idle_reaped).  <= 0 disables.
  double idle_timeout_s{300.0};
  /// Per-line byte cap.  An oversize line is answered with a typed
  /// "too_large" error and the stream resynchronizes at the next '\n'.
  /// 0 = unbounded.
  std::size_t max_request_bytes{32ull << 20};
  /// Per-connection response queue bound: once this many responses are
  /// admitted but unwritten, the loop stops reading that connection and
  /// disconnects it after the admitted ones drain
  /// (serve.write_queue_overflow).  0 = unbounded.
  std::size_t max_write_queue{256};
  /// Per-response write stall bound, cumulative: a response that is not
  /// fully accepted by the peer within this budget of starting to flush
  /// gets the connection disconnected (serve.slow_client_disconnects) —
  /// a slow-loris peer draining one byte per window cannot reset the
  /// clock.  <= 0 disables.
  double write_timeout_s{30.0};
  /// Default wall-clock budget (ms) for requests carrying no
  /// "deadline_ms" field; expired requests get a typed
  /// "deadline_exceeded" error.  0 = none.
  double default_deadline_ms{0.0};
  /// listen(2) backlog — sized for event-loop accept bursts (hundreds of
  /// clients connecting at once are absorbed by the kernel queue).
  int listen_backlog{1024};
  /// SO_SNDBUF for accepted sockets, bytes (0 = kernel default).  Bounds
  /// per-connection kernel memory and makes write-stall handling
  /// observable in tests.
  int sndbuf_bytes{0};
  /// Deterministic fault injection over the accepted sockets, the accept
  /// path and pool dispatch (util/faultinject.hpp).  nullptr = chaos off.
  std::shared_ptr<FaultInjector> chaos;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the event loop.  Throws
  /// InternalError(kIo) when the port cannot be bound.
  void start();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Begins a graceful drain (idempotent, callable from any thread; the
  /// CLI bridges SIGTERM/SIGINT here).
  void request_drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Blocks until the drain finished: event loop joined, every
  /// connection answered and closed, compute pool idle.
  void wait();

  /// The flight recorder backing flightz (read access for tests).
  [[nodiscard]] const obs::FlightRecorder& flights() const { return flights_; }

  /// The fault injector behind chaosz, nullptr when chaos is off (read
  /// access for tests and harnesses).
  [[nodiscard]] FaultInjector* chaos() const { return config_.chaos.get(); }

 private:
  struct Connection;
  using ConnPtr = std::shared_ptr<Connection>;

  // Everything below (except admin_response's locked snapshot diffs,
  // which are thread-safe on their own) runs on the loop thread.
  void on_accept_ready();
  void on_connection_event(const ConnPtr& conn, unsigned events);
  void process_input(const ConnPtr& conn);
  void handle_line(const ConnPtr& conn, const std::string& line);
  /// Admin lane: recognizes and answers an admin line inline on the loop
  /// thread.  Returns false when the line is not admin-shaped.
  bool handle_admin_line(const ConnPtr& conn, const std::string& line);
  [[nodiscard]] std::string admin_response(const AdminRequest& req);
  /// Pushes an already-resolved response (admin, typed errors) and
  /// flushes.
  void enqueue_ready(const ConnPtr& conn, std::string response,
                     std::shared_ptr<obs::FlightRecord> flight);
  /// Writes ready responses in order until the peer's window refuses
  /// bytes; arms EPOLLOUT + the write-stall timer on a partial flush.
  void flush_connection(const ConnPtr& conn);
  /// Stamps the flushed response's flight record and publishes it.
  void commit_response(const ConnPtr& conn);
  void mark_peer_dead(const ConnPtr& conn, bool slow);
  /// Stops reading (EOF, error, timeout, overflow stop or drain).
  void stop_input(const ConnPtr& conn);
  /// Re-arms the connection's read/idle deadline on the timer wheel.
  void schedule_input_timer(const ConnPtr& conn);
  void on_input_deadline(const ConnPtr& conn);
  void arm_write_timer(const ConnPtr& conn);
  void set_want_write(const ConnPtr& conn, bool on);
  /// Closes once input ended and every admitted response was flushed
  /// (or consumed, for a dead peer).
  void maybe_close(const ConnPtr& conn);
  void close_connection(const ConnPtr& conn);
  /// Drain, on the loop thread: close the listener, consume only the
  /// bytes already on the wire, finish once all connections flushed.
  void begin_drain();

  ServerConfig config_;
  power::PowerModel model_;
  power::DvsLadder ladder_;
  ResultCache cache_;
  core::ScheduleBank bank_;
  obs::FlightRecorder flights_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<obs::MetricsFlusher> flusher_;
  std::size_t max_pending_{0};
  std::int64_t start_ns_{0};
  std::int64_t read_timeout_ns_{0};
  std::int64_t idle_timeout_ns_{0};
  std::int64_t write_timeout_ns_{0};

  // Scrape baselines.  The admin lane is single-threaded on the loop
  // today, but the snapshot is still taken *under* these locks: a
  // snapshot captured outside and assigned later can overwrite a newer
  // baseline (double-counting the next scrape's deltas) the moment two
  // scrapers race — keep the invariant locked in, not incidental.
  std::mutex scrape_mutex_;
  std::map<std::string, std::uint64_t> last_scrape_;
  std::uint64_t scrape_seq_{0};

  /// healthz degradation window: counter snapshot at the previous healthz
  /// (seeded at start()), diffed per scrape so "degraded" reflects the
  /// interval, not all time.
  std::mutex health_mutex_;
  std::map<std::string, std::uint64_t> health_prev_;

  std::unique_ptr<ListenSocket> listener_;
  std::uint16_t port_{0};

  std::unique_ptr<EventLoop> loop_;
  std::thread loop_thread_;
  /// Loop-thread only; keyed by fd.
  std::unordered_map<int, ConnPtr> connections_;
  bool drain_begun_{false};  ///< loop-thread view of the drain

  std::atomic<bool> draining_{false};
  std::atomic<std::size_t> pending_{0};
};

}  // namespace lamps::net
