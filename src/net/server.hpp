// `lamps serve` — persistent TCP JSON-lines scheduling daemon.
//
// Threading model:
//   - one accept loop (poll on the listen socket + an internal drain
//     pipe), spawning a reader/writer thread pair per connection;
//   - requests parsed by the reader are admitted into the shared
//     util::ThreadPool (batching: any number of connections fan into the
//     same workers, pipelined requests on one connection run
//     concurrently) behind a bounded admission count — beyond
//     max_pending the request is answered immediately with an
//     "overloaded" error instead of queueing without bound;
//   - identical requests are deduplicated by net::ResultCache
//     (single-flight + cross-request LRU keyed by
//     core::service_request_digest);
//   - the writer emits responses strictly in request order per
//     connection, so clients may pipeline naively.
//
// Drain (SIGTERM/SIGINT via request_drain()): the listen socket closes
// (new connections are refused), readers consume only what is already
// buffered or on the wire, every admitted request still computes and its
// response is written, then write sides half-close and the daemon
// finishes.  Zero accepted requests are dropped.
//
// Observability: per-connection/request/compute spans, a "serve.*"
// metric family (catalog in docs/observability.md), a lock-free flight
// recorder of per-request phase timelines, and an admin lane — statsz /
// healthz / cachez / flightz / quitquitquit lines are answered by the
// connection reader itself, bypassing both bounded admission and the
// compute pool, so introspection stays responsive under full saturation.
#pragma once

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "core/incremental.hpp"
#include "net/result_cache.hpp"
#include "obs/flight.hpp"
#include "obs/flush.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"
#include "util/socket.hpp"
#include "util/thread_pool.hpp"

namespace lamps::net {

struct AdminRequest;  // net/protocol.hpp

struct ServerConfig {
  /// TCP port; 0 binds an ephemeral one (read it back via port()).
  std::uint16_t port{0};
  /// Compute pool workers; 0 = hardware concurrency.
  std::size_t threads{0};
  /// Admission bound: requests in flight (queued + computing) beyond
  /// which new ones get an "overloaded" response.  0 = 4x pool size.
  std::size_t max_pending{0};
  /// Completed-result LRU entries.
  std::size_t cache_capacity{512};
  /// ScheduleBank stores for incremental rescheduling: per graph
  /// *structure*, deadline-invariant schedules/profiles are reused across
  /// requests that differ only in deadline or strategy (see
  /// core/incremental.hpp).  Responses are byte-identical either way.
  /// 0 disables the bank.
  std::size_t bank_capacity{128};
  /// Flight-recorder ring slots (per-request phase timelines, flightz).
  std::size_t flight_capacity{1024};
  /// Requests whose arrival->write latency reaches this are promoted to a
  /// warn-level span dump and counted in serve.slow_requests.  <= 0
  /// disables promotion.
  double slow_request_s{1.0};
  /// > 0 starts a background obs::MetricsFlusher appending one registry
  /// snapshot per interval to `metrics_jsonl` and/or `metrics_hook`.
  double metrics_interval_s{0.0};
  std::string metrics_jsonl;
  obs::MetricsFlusher::SampleHook metrics_hook;
  /// Mid-line stall bound: a connection whose request line stops making
  /// byte progress for this long is closed (serve.read_timeouts).
  /// <= 0 disables.
  double read_timeout_s{30.0};
  /// Idle bound between complete request lines; exceeded connections are
  /// reaped (serve.idle_reaped).  <= 0 disables.
  double idle_timeout_s{300.0};
  /// Per-line byte cap.  An oversize line is answered with a typed
  /// "too_large" error and the stream resynchronizes at the next '\n'.
  /// 0 = unbounded.
  std::size_t max_request_bytes{32ull << 20};
  /// Per-connection response queue bound: once this many responses are
  /// admitted but unwritten, the reader stops and the client is
  /// disconnected after the admitted ones drain (serve.write_queue_overflow).
  /// 0 = unbounded.
  std::size_t max_write_queue{256};
  /// Per-response write stall bound: a peer that accepts no bytes for this
  /// long is disconnected (serve.slow_client_disconnects).  <= 0 disables.
  double write_timeout_s{30.0};
  /// Default wall-clock budget (ms) for requests carrying no
  /// "deadline_ms" field; expired requests get a typed
  /// "deadline_exceeded" error.  0 = none.
  double default_deadline_ms{0.0};
  /// Deterministic fault injection over the accepted sockets, the accept
  /// loop and pool dispatch (util/faultinject.hpp).  nullptr = chaos off.
  std::shared_ptr<FaultInjector> chaos;
};

class Server {
 public:
  explicit Server(const ServerConfig& config);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens and starts the accept loop.  Throws
  /// InternalError(kIo) when the port cannot be bound.
  void start();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Begins a graceful drain (idempotent, callable from any thread; the
  /// CLI bridges SIGTERM/SIGINT here).
  void request_drain();

  [[nodiscard]] bool draining() const {
    return draining_.load(std::memory_order_acquire);
  }

  /// Blocks until the drain finished: accept loop joined, every
  /// connection answered and closed, compute pool idle.
  void wait();

  /// The flight recorder backing flightz (read access for tests).
  [[nodiscard]] const obs::FlightRecorder& flights() const { return flights_; }

  /// The fault injector behind chaosz, nullptr when chaos is off (read
  /// access for tests and harnesses).
  [[nodiscard]] FaultInjector* chaos() const { return config_.chaos.get(); }

 private:
  struct Connection;

  void accept_loop();
  void reader_loop(Connection& conn);
  void writer_loop(Connection& conn);
  void handle_line(Connection& conn, const std::string& line);
  /// Admin lane: recognizes and answers an admin line inline on the
  /// reader thread.  Returns false when the line is not admin-shaped.
  bool handle_admin_line(Connection& conn, const std::string& line);
  [[nodiscard]] std::string admin_response(const AdminRequest& req);
  void reap_finished_locked();

  ServerConfig config_;
  power::PowerModel model_;
  power::DvsLadder ladder_;
  ResultCache cache_;
  core::ScheduleBank bank_;
  obs::FlightRecorder flights_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<obs::MetricsFlusher> flusher_;
  std::size_t max_pending_{0};
  std::int64_t start_ns_{0};

  std::mutex scrape_mutex_;
  std::map<std::string, std::uint64_t> last_scrape_;
  std::uint64_t scrape_seq_{0};

  /// healthz degradation window: counter snapshot at the previous healthz
  /// (seeded at start()), diffed per scrape so "degraded" reflects the
  /// interval, not all time.
  std::mutex health_mutex_;
  std::map<std::string, std::uint64_t> health_prev_;

  std::unique_ptr<ListenSocket> listener_;
  std::uint16_t port_{0};
  std::thread accept_thread_;

  std::atomic<bool> draining_{false};
  int drain_pipe_[2]{-1, -1};

  std::atomic<std::size_t> pending_{0};

  std::mutex connections_mutex_;
  std::list<std::unique_ptr<Connection>> connections_;
};

}  // namespace lamps::net
