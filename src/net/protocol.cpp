#include "net/protocol.hpp"

#include <sstream>

#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "net/jsonv.hpp"
#include "stg/format.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace lamps::net {

namespace {

core::StrategyKind strategy_from_wire(const std::string& name) {
  for (const core::StrategyKind k : core::kAllStrategies)
    if (name == core::to_string(k)) return k;
  throw InputError(ErrorCode::kConfig, "unknown strategy: '" + name + "'", {},
                   "valid: S&S, LAMPS, S&S+PS, LAMPS+PS, LIMIT-SF, LIMIT-MF");
}

std::string_view trimmed(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' || s.front() == '\r'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' || s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

std::optional<AdminCommand> admin_command_from_name(std::string_view name) {
  if (name == "statsz") return AdminCommand::kStatsz;
  if (name == "healthz") return AdminCommand::kHealthz;
  if (name == "cachez") return AdminCommand::kCachez;
  if (name == "flightz") return AdminCommand::kFlightz;
  if (name == "chaosz") return AdminCommand::kChaosz;
  if (name == "quitquitquit") return AdminCommand::kQuit;
  return std::nullopt;
}

}  // namespace

const char* to_string(AdminCommand cmd) {
  switch (cmd) {
    case AdminCommand::kStatsz:
      return "statsz";
    case AdminCommand::kHealthz:
      return "healthz";
    case AdminCommand::kCachez:
      return "cachez";
    case AdminCommand::kFlightz:
      return "flightz";
    case AdminCommand::kChaosz:
      return "chaosz";
    case AdminCommand::kQuit:
      return "quitquitquit";
  }
  return "?";
}

std::optional<AdminRequest> parse_admin_request(const std::string& line) {
  const std::string_view word = trimmed(line);
  if (const auto bare = admin_command_from_name(word); bare.has_value()) {
    AdminRequest req;
    req.cmd = *bare;
    return req;
  }
  // Cheap pre-filter: a schedule request has no top-level "cmd", so skip
  // the JSON parse entirely unless the token appears somewhere.
  if (line.find("\"cmd\"") == std::string::npos) return std::nullopt;
  const JsonValue doc = JsonValue::parse(line);
  if (!doc.is_object()) return std::nullopt;
  const JsonValue* cmd = doc.get("cmd");
  if (cmd == nullptr) return std::nullopt;  // "cmd" was inside a payload string
  const auto named = admin_command_from_name(cmd->as_string());
  if (!named.has_value())
    throw InputError(ErrorCode::kConfig, "unknown admin cmd: '" + cmd->as_string() + "'",
                     {}, "valid: statsz, healthz, cachez, flightz, chaosz, quitquitquit");
  AdminRequest req;
  req.cmd = *named;
  if (const JsonValue* id = doc.get("id"); id != nullptr && !id->is_null()) {
    std::ostringstream ss;
    if (id->is_string())
      write_json_string(ss, id->as_string());
    else if (id->is_number())
      ss << json_double(id->as_number());
    else
      throw InputError(ErrorCode::kJsonParse, "id must be a string or number");
    req.id_json = ss.str();
  }
  const double limit = doc.get_number("limit", static_cast<double>(req.limit));
  if (limit < 1.0 || limit > 4096.0)
    throw InputError(ErrorCode::kConfig, "flightz limit must be in [1, 4096]");
  req.limit = static_cast<std::size_t>(limit);
  return req;
}

ParsedRequest parse_schedule_request(const std::string& line,
                                     const power::PowerModel& model) {
  const JsonValue doc = JsonValue::parse(line);
  if (!doc.is_object())
    throw InputError(ErrorCode::kJsonParse, "request must be a JSON object");

  std::string id_json{"null"};
  if (const JsonValue* id = doc.get("id"); id != nullptr) {
    if (id->is_string()) {
      std::ostringstream ss;
      write_json_string(ss, id->as_string());
      id_json = ss.str();
    } else if (id->is_number()) {
      id_json = json_double(id->as_number());
    } else if (!id->is_null()) {
      throw InputError(ErrorCode::kJsonParse, "id must be a string or number");
    }
  }

  const JsonValue* stg_text = doc.get("stg");
  const JsonValue* stg_file = doc.get("file");
  if ((stg_text != nullptr) == (stg_file != nullptr))
    throw InputError(ErrorCode::kConfig,
                     "request needs exactly one of \"stg\" (inline) or \"file\" (path)");

  stg::ParseOptions popts;
  popts.name = stg_text != nullptr ? "inline" : stg_file->as_string();
  graph::TaskGraph raw = [&] {
    if (stg_text != nullptr) {
      std::istringstream is(stg_text->as_string());
      return stg::read_stg(is, popts);
    }
    return stg::read_stg_file(stg_file->as_string(), popts);
  }();

  const double unit = doc.get_number("unit", 3'100'000.0);
  if (unit < 1.0)
    throw InputError(ErrorCode::kConfig, "unit must be >= 1 cycle per weight unit");
  graph::TaskGraph scaled = graph::scale_weights(raw, static_cast<Cycles>(unit));

  const double deadline_s = doc.get_number("deadline_s", 0.0);
  const double factor = doc.get_number("deadline_factor", 2.0);
  Seconds deadline{0.0};
  if (deadline_s > 0.0) {
    deadline = Seconds{deadline_s};
  } else {
    if (factor <= 0.0)
      throw InputError(ErrorCode::kConfig, "deadline_factor must be > 0");
    deadline = Seconds{static_cast<double>(graph::critical_path_length(scaled)) /
                       model.max_frequency().value() * factor};
  }

  const double deadline_ms = doc.get_number("deadline_ms", 0.0);
  if (doc.get("deadline_ms") != nullptr && deadline_ms <= 0.0)
    throw InputError(ErrorCode::kConfig, "deadline_ms must be > 0 when present");

  const core::StrategyKind strategy =
      strategy_from_wire(doc.get_string("strategy", "LAMPS+PS"));
  return ParsedRequest{std::move(id_json),
                       core::ServiceRequest{std::move(scaled), deadline, strategy,
                                            sched::PriorityPolicy::kEdf},
                       deadline_ms};
}

std::string result_json(const core::StrategyResult& r, const power::DvsLadder& ladder) {
  std::ostringstream os;
  const double f_norm = r.feasible ? ladder.level(r.level_index).f_norm : 0.0;
  os << "{\"feasible\":" << (r.feasible ? "true" : "false") << ",\"procs\":" << r.num_procs
     << ",\"level\":" << r.level_index << ",\"f_norm\":";
  write_json_double(os, f_norm);
  os << ",\"energy_j\":";
  write_json_double(os, r.feasible ? r.breakdown.total().value() : 0.0);
  os << ",\"dynamic_j\":";
  write_json_double(os, r.breakdown.dynamic.value());
  os << ",\"leakage_j\":";
  write_json_double(os, r.breakdown.leakage.value());
  os << ",\"intrinsic_j\":";
  write_json_double(os, r.breakdown.intrinsic.value());
  os << ",\"sleep_j\":";
  write_json_double(os, r.breakdown.sleep.value());
  os << ",\"wakeup_j\":";
  write_json_double(os, r.breakdown.wakeup.value());
  os << ",\"shutdowns\":" << r.breakdown.shutdowns << ",\"completion_s\":";
  write_json_double(os, r.completion.value());
  os << ",\"schedules_computed\":" << r.schedules_computed << '}';
  return os.str();
}

std::string extract_result_json(const std::string& response_line) {
  static constexpr std::string_view kKey = "\"result\":";
  const auto pos = response_line.find(kKey);
  if (pos == std::string::npos) return {};
  const auto start = pos + kKey.size();
  // The payload is flat by construction: the first '}' closes it.
  const auto end = response_line.find('}', start);
  if (end == std::string::npos) return {};
  return response_line.substr(start, end - start + 1);
}

std::string ok_response(const std::string& id_json, const std::string& result_payload,
                        bool cached, double elapsed_ms) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"ok\":true,\"cached\":" << (cached ? "true" : "false")
     << ",\"result\":" << result_payload << ",\"elapsed_ms\":";
  write_json_double(os, elapsed_ms);
  os << "}\n";
  return os.str();
}

std::string error_response(const std::string& id_json, std::string_view kind,
                           std::string_view message) {
  std::ostringstream os;
  os << "{\"id\":" << id_json << ",\"ok\":false,\"error\":";
  write_json_string(os, kind);
  os << ",\"message\":";
  write_json_string(os, message);
  os << "}\n";
  return os.str();
}

}  // namespace lamps::net
