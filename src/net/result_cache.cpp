#include "net/result_cache.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace lamps::net {

ResultCache::ResultCache(std::size_t capacity) : capacity_(std::max<std::size_t>(1, capacity)) {}

std::size_t ResultCache::size() const {
  std::scoped_lock lock(mutex_);
  return lru_.size();
}

void ResultCache::insert_locked(std::uint64_t key, const std::string& payload) {
  lru_.emplace_front(key, payload);
  index_[key] = lru_.begin();
  if (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::vector<ResultCache::Waiter> ResultCache::take_waiters_locked(std::uint64_t key) {
  const auto it = in_flight_.find(key);
  if (it == in_flight_.end()) return {};
  std::vector<Waiter> waiters = std::move(it->second);
  in_flight_.erase(it);
  return waiters;
}

bool ResultCache::subscribe(std::uint64_t key, Consumer consumer) {
  static obs::Counter& hits = obs::counter("serve.cache_hits");
  static obs::Counter& misses = obs::counter("serve.cache_misses");
  static obs::Counter& joined = obs::counter("serve.singleflight_hits");

  std::string payload;
  {
    std::scoped_lock lock(mutex_);
    if (const auto it = index_.find(key); it != index_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
      hits.inc();
      payload = it->second->second;
    } else if (const auto fit = in_flight_.find(key); fit != in_flight_.end()) {
      joined.inc();
      fit->second.push_back(Waiter{std::move(consumer), true});
      return false;
    } else {
      misses.inc();
      in_flight_[key].push_back(Waiter{std::move(consumer), false});
      return true;
    }
  }
  consumer(payload, true, {});  // LRU hit, delivered outside the lock
  return false;
}

void ResultCache::complete(std::uint64_t key, const std::string& payload) {
  std::vector<Waiter> waiters;
  {
    std::scoped_lock lock(mutex_);
    insert_locked(key, payload);
    waiters = take_waiters_locked(key);
  }
  for (const Waiter& w : waiters) w.consumer(payload, w.joined, {});
}

void ResultCache::fail(std::uint64_t key, const std::string& error) {
  std::vector<Waiter> waiters;
  {
    std::scoped_lock lock(mutex_);
    waiters = take_waiters_locked(key);
  }
  for (const Waiter& w : waiters) w.consumer({}, w.joined, error);
}

}  // namespace lamps::net
