// Single-threaded epoll reactor for the serving plane.
//
// One EventLoop instance owns every connection fd of a `lamps serve`
// daemon: the listener, the eventfd other threads use to wake it, and a
// hashed timer wheel that carries the read/idle/write-stall clocks.  The
// loop thread is the only thread that touches fd registrations, timers
// and the callback table; the two cross-thread entry points are post()
// (run a closure on the loop thread) and wake()/request_stop(), which
// are safe from anywhere.
//
// Design notes:
//   - level-triggered epoll: callbacks read/write until EAGAIN but a
//     missed edge can never wedge a connection;
//   - every registration carries a generation number packed next to the
//     fd in epoll_event.data.u64, so an event dispatched in the same
//     epoll_wait batch as a remove_fd()+add_fd() pair on a recycled fd
//     number is recognized as stale and dropped (level-triggering
//     re-reports anything real);
//   - the timer wheel is hashed (slots x tick); far-out deadlines simply
//     survive a few bucket visits, which keeps arm/cancel O(1) without a
//     heap.  Resolution is one tick (default 10 ms) — timeouts in this
//     daemon are 10s-of-ms to minutes, never microseconds.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace lamps::net {

/// Hashed timer wheel.  Loop-thread only (no locks).  Timer ids are
/// never reused; 0 is the "no timer" sentinel callers can keep around.
class TimerWheel {
 public:
  explicit TimerWheel(std::int64_t tick_ns = 10'000'000, std::size_t slots = 512);

  /// Arms a one-shot timer firing at `deadline_ns` (obs::monotonic_ns
  /// clock).  Deadlines in the past fire on the next advance().
  std::uint64_t arm(std::int64_t deadline_ns, std::function<void()> fn);

  /// Cancels a pending timer; unknown/already-fired ids are a no-op.
  void cancel(std::uint64_t id);

  /// Fires every timer whose deadline is <= now.  Callbacks may arm or
  /// cancel other timers.  Returns the number fired.
  std::size_t advance(std::int64_t now_ns);

  [[nodiscard]] bool empty() const { return armed_ == 0; }
  [[nodiscard]] std::size_t armed() const { return armed_; }

  /// Milliseconds until the next tick worth waking for (>= 1), or -1
  /// when no timer is armed.  The wheel only promises tick resolution,
  /// so this is "time to the next bucket boundary", not to the exact
  /// earliest deadline.
  [[nodiscard]] int next_timeout_ms(std::int64_t now_ns) const;

 private:
  struct Timer {
    std::uint64_t id;
    std::int64_t deadline_ns;
    std::function<void()> fn;
  };

  [[nodiscard]] std::size_t slot_for(std::int64_t deadline_ns) const;

  std::int64_t tick_ns_;
  std::vector<std::vector<Timer>> slots_;
  std::uint64_t next_id_{1};
  std::size_t armed_{0};
  std::int64_t last_advance_ns_{0};
};

/// epoll + eventfd reactor.  Construct, register fds, then run() on the
/// thread that will own all I/O.  post()/wake()/request_stop() are the
/// only members callable from other threads.
class EventLoop {
 public:
  // Event bitmask handed to fd callbacks.
  static constexpr unsigned kReadable = 1u << 0;
  static constexpr unsigned kWritable = 1u << 1;
  static constexpr unsigned kHangup = 1u << 2;  ///< EPOLLHUP/EPOLLERR/RDHUP

  using FdCallback = std::function<void(unsigned events)>;

  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` (loop thread only).  The callback stays owned by the
  /// loop until remove_fd().
  void add_fd(int fd, bool want_read, bool want_write, FdCallback cb);

  /// Changes the interest set of a registered fd (loop thread only).
  void modify_fd(int fd, bool want_read, bool want_write);

  /// Deregisters `fd` and drops its callback (loop thread only).  Safe
  /// to call from inside a callback, including for fds with events still
  /// queued in the current dispatch batch.
  void remove_fd(int fd);

  /// Runs closures on the loop thread in post order.  Thread-safe; wakes
  /// the loop.  Tasks posted after run() returns are never executed.
  void post(std::function<void()> task);

  /// Wakes epoll_wait without queueing work.  Thread-safe.
  void wake();

  /// Makes run() return after the current iteration.  Thread-safe.
  void request_stop();

  /// The loop body: dispatch posted tasks, expire timers, wait for fd
  /// events.  Returns once request_stop() was observed.
  void run();

  /// Timer wheel (loop thread only).
  TimerWheel& timers() { return timers_; }

  /// Nanosecond timestamp of the current iteration's dispatch, refreshed
  /// once per wake-up (obs::monotonic_ns clock).
  [[nodiscard]] std::int64_t now_ns() const { return now_ns_; }

 private:
  struct Registration {
    FdCallback cb;
    std::uint64_t gen;
    std::uint32_t events;
  };

  void drain_wakeups();
  void run_posted_tasks();

  int epoll_fd_{-1};
  int wake_fd_{-1};
  std::unordered_map<int, Registration> fds_;
  std::uint64_t next_gen_{1};
  TimerWheel timers_;
  std::int64_t now_ns_{0};

  std::mutex tasks_mutex_;
  std::vector<std::function<void()>> tasks_;
  std::atomic<bool> stop_{false};
};

}  // namespace lamps::net
