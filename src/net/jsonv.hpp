// Minimal JSON value model + strict recursive-descent parser for the
// serve protocol (one request/response object per line).
//
// Scope is deliberately narrow — parse a complete document, expose typed
// accessors — because the hot path only ever reads a handful of scalar
// fields.  Strictness matters more than speed here: the parser rejects
// trailing garbage, unterminated strings, bare control characters and
// malformed escapes, so a request that round-trips through it is valid
// JSON by construction (this is also what the escaping regression tests
// use as their oracle).  Numbers are doubles; \uXXXX escapes decode to
// UTF-8 (surrogate pairs included).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lamps::net {

/// Immutable parsed JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses exactly one JSON document (leading/trailing whitespace
  /// allowed, anything else after it is an error).  Throws
  /// InputError(kJsonParse) with a byte offset in the context.
  [[nodiscard]] static JsonValue parse(std::string_view text);

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw InputError(kJsonParse) on a kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;

  /// Object field, nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* get(std::string_view key) const;

  /// Convenience over get(): returns the fallback when the key is absent;
  /// throws on a present-but-wrong-typed value so typos fail loudly.
  [[nodiscard]] double get_number(std::string_view key, double fallback) const;
  [[nodiscard]] std::string get_string(std::string_view key,
                                       const std::string& fallback) const;

 private:
  Kind kind_{Kind::kNull};
  bool bool_{false};
  double number_{0.0};
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

}  // namespace lamps::net
