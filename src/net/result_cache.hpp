// Cross-request result cache with single-flight deduplication.
//
// The serve daemon sees two flavors of redundancy: the same request
// replayed over time (dashboards, retries) and the same request in
// flight on several connections at once (a fan-out client).  The first
// is answered by an LRU of completed result payloads keyed by the
// core::service_request_digest (the same FNV-1a-keyed idea the journal
// uses to seal sweep cells, applied to requests; within one computation
// core::ScheduleCache still memoizes the per-processor-count probes).
// The second is collapsed by single-flight, and crucially the dedup
// happens at *admission* time, not when a worker dequeues the job: the
// first requester becomes the leader and owns the computation, later
// identical requests attach a completion callback to the in-flight entry
// and consume no worker at all.  The window therefore spans the whole
// queued-plus-computing lifetime — one list-scheduler search no matter
// how many clients ask, even when the duplicates pile up behind a busy
// pool.
//
// Payloads are canonical JSON strings (net::result_json), so a follower
// or cache hit is bit-identical to a fresh computation by construction.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace lamps::net {

class ResultCache {
 public:
  /// `capacity` completed payloads are retained (>= 1).
  explicit ResultCache(std::size_t capacity);

  /// Completion callback: `error` is empty on success, and `cached` tells
  /// whether the payload was served without computing on the caller's
  /// behalf (an LRU hit or a single-flight join).  Invoked exactly once,
  /// either inline from subscribe() (LRU hit) or from the leader's
  /// complete()/fail() call — never while the cache lock is held.
  using Consumer =
      std::function<void(const std::string& payload, bool cached, const std::string& error)>;

  /// Registers interest in `key`.  Returns true when the caller became
  /// the leader and MUST eventually call complete() or fail() for the
  /// key; returns false when the consumer was already satisfied (LRU hit)
  /// or attached to the in-flight leader (single-flight join).
  [[nodiscard]] bool subscribe(std::uint64_t key, Consumer consumer);

  /// Leader delivery: caches the payload and fulfils every consumer
  /// (the leader's own first, then the joined followers with
  /// cached=true).
  void complete(std::uint64_t key, const std::string& payload);

  /// Leader failure: fulfils every consumer with `error`; nothing is
  /// cached, so a later identical request recomputes.
  void fail(std::uint64_t key, const std::string& error);

  [[nodiscard]] std::size_t size() const;

  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  struct Waiter {
    Consumer consumer;
    bool joined;  ///< false for the leader, true for followers
  };

  void insert_locked(std::uint64_t key, const std::string& payload);
  std::vector<Waiter> take_waiters_locked(std::uint64_t key);

  mutable std::mutex mutex_;
  std::size_t capacity_;
  /// Front = most recently used.
  std::list<std::pair<std::uint64_t, std::string>> lru_;
  std::unordered_map<std::uint64_t, std::list<std::pair<std::uint64_t, std::string>>::iterator>
      index_;
  std::unordered_map<std::uint64_t, std::vector<Waiter>> in_flight_;
};

}  // namespace lamps::net
