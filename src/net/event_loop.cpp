#include "net/event_loop.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace lamps::net {

namespace {

// Loop health counters (docs/observability.md).  Process-global like the
// rest of the serve.* family; a daemon hosts one loop.
struct LoopMetrics {
  obs::Counter& wakeups = obs::counter("serve.loop_wakeups");
  obs::Counter& fd_events = obs::counter("serve.loop_fd_events");
  obs::Counter& tasks = obs::counter("serve.loop_tasks");
  obs::Counter& timers_fired = obs::counter("serve.loop_timers_fired");
};

LoopMetrics& loop_metrics() {
  static LoopMetrics m;
  return m;
}

}  // namespace

// ---------------------------------------------------------------------------
// TimerWheel

TimerWheel::TimerWheel(std::int64_t tick_ns, std::size_t slots)
    : tick_ns_(tick_ns), slots_(slots) {}

std::size_t TimerWheel::slot_for(std::int64_t deadline_ns) const {
  const auto tick = static_cast<std::uint64_t>(deadline_ns / tick_ns_);
  return static_cast<std::size_t>(tick % slots_.size());
}

std::uint64_t TimerWheel::arm(std::int64_t deadline_ns, std::function<void()> fn) {
  const std::uint64_t id = next_id_++;
  slots_[slot_for(deadline_ns)].push_back(Timer{id, deadline_ns, std::move(fn)});
  ++armed_;
  return id;
}

void TimerWheel::cancel(std::uint64_t id) {
  // Ids are dense and recent, but a cancelled timer can sit in any slot;
  // a linear scan of one bucket is O(timers in that bucket).  Without
  // the slot hint we scan all buckets — still fine at serve scale where
  // a connection owns at most two timers, but keep it honest: scan until
  // found.
  for (auto& bucket : slots_) {
    for (auto it = bucket.begin(); it != bucket.end(); ++it) {
      if (it->id == id) {
        bucket.erase(it);
        --armed_;
        return;
      }
    }
  }
}

std::size_t TimerWheel::advance(std::int64_t now_ns) {
  if (armed_ == 0) {
    last_advance_ns_ = now_ns;
    return 0;
  }
  const std::int64_t from_tick = last_advance_ns_ / tick_ns_;
  const std::int64_t to_tick = now_ns / tick_ns_;
  // Visit each bucket at most once even if we slept through several full
  // wheel rotations.
  const std::int64_t ticks =
      std::min<std::int64_t>(to_tick - from_tick, static_cast<std::int64_t>(slots_.size()));
  std::vector<std::function<void()>> due;
  for (std::int64_t t = 0; t <= ticks; ++t) {
    auto& bucket = slots_[static_cast<std::size_t>((from_tick + t) %
                                                   static_cast<std::int64_t>(slots_.size()))];
    for (auto it = bucket.begin(); it != bucket.end();) {
      if (it->deadline_ns <= now_ns) {
        due.push_back(std::move(it->fn));
        it = bucket.erase(it);
        --armed_;
      } else {
        ++it;
      }
    }
  }
  last_advance_ns_ = now_ns;
  // Fire after the scan: callbacks may arm new timers (possibly into the
  // buckets being iterated) or cancel pending ones.
  for (auto& fn : due) fn();
  return due.size();
}

int TimerWheel::next_timeout_ms(std::int64_t now_ns) const {
  if (armed_ == 0) return -1;
  const std::int64_t next_boundary = (now_ns / tick_ns_ + 1) * tick_ns_;
  const std::int64_t ms = (next_boundary - now_ns + 999'999) / 1'000'000;
  return static_cast<int>(ms < 1 ? 1 : ms);
}

// ---------------------------------------------------------------------------
// EventLoop

namespace {

std::uint64_t pack(int fd, std::uint64_t gen) {
  return (gen << 32) | static_cast<std::uint32_t>(fd);
}

std::uint32_t interest(bool want_read, bool want_write) {
  std::uint32_t ev = EPOLLRDHUP;
  if (want_read) ev |= EPOLLIN;
  if (want_write) ev |= EPOLLOUT;
  return ev;
}

}  // namespace

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("epoll_create1: ") + std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    ::close(epoll_fd_);
    throw InternalError(ErrorCode::kIo,
                        std::string("eventfd: ") + std::strerror(errno));
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = pack(wake_fd_, 0);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  now_ns_ = obs::monotonic_ns();
}

EventLoop::~EventLoop() {
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EventLoop::add_fd(int fd, bool want_read, bool want_write, FdCallback cb) {
  const std::uint64_t gen = next_gen_++;
  const std::uint32_t events = interest(want_read, want_write);
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack(fd, gen);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("epoll_ctl(ADD): ") + std::strerror(errno));
  fds_[fd] = Registration{std::move(cb), gen, events};
}

void EventLoop::modify_fd(int fd, bool want_read, bool want_write) {
  auto it = fds_.find(fd);
  if (it == fds_.end()) return;
  const std::uint32_t events = interest(want_read, want_write);
  if (events == it->second.events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = pack(fd, it->second.gen);
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) it->second.events = events;
}

void EventLoop::remove_fd(int fd) {
  if (fds_.erase(fd) > 0) ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::post(std::function<void()> task) {
  {
    std::scoped_lock lock(tasks_mutex_);
    tasks_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EventLoop::request_stop() {
  stop_.store(true, std::memory_order_release);
  wake();
}

void EventLoop::drain_wakeups() {
  std::uint64_t count = 0;
  while (::read(wake_fd_, &count, sizeof count) > 0) {
  }
}

void EventLoop::run_posted_tasks() {
  std::vector<std::function<void()>> batch;
  {
    std::scoped_lock lock(tasks_mutex_);
    batch.swap(tasks_);
  }
  if (!batch.empty()) loop_metrics().tasks.inc(batch.size());
  for (auto& task : batch) task();
}

void EventLoop::run() {
  LoopMetrics& metrics = loop_metrics();
  epoll_event events[128];
  while (!stop_.load(std::memory_order_acquire)) {
    run_posted_tasks();
    if (stop_.load(std::memory_order_acquire)) break;

    now_ns_ = obs::monotonic_ns();
    const std::size_t fired = timers_.advance(now_ns_);
    if (fired > 0) metrics.timers_fired.inc(fired);
    if (stop_.load(std::memory_order_acquire)) break;

    // If a task or timer callback queued more work, don't sleep on it.
    int timeout_ms = timers_.next_timeout_ms(obs::monotonic_ns());
    {
      std::scoped_lock lock(tasks_mutex_);
      if (!tasks_.empty()) timeout_ms = 0;
    }

    const int n = ::epoll_wait(epoll_fd_, events,
                               static_cast<int>(std::size(events)), timeout_ms);
    metrics.wakeups.inc();
    if (n < 0) {
      if (errno == EINTR) continue;
      throw InternalError(ErrorCode::kIo,
                          std::string("epoll_wait: ") + std::strerror(errno));
    }
    now_ns_ = obs::monotonic_ns();
    for (int i = 0; i < n; ++i) {
      const std::uint64_t data = events[i].data.u64;
      const int fd = static_cast<int>(data & 0xffffffffu);
      const std::uint64_t gen = data >> 32;
      if (fd == wake_fd_) {
        drain_wakeups();
        continue;
      }
      auto it = fds_.find(fd);
      // Stale event: the registration was removed (and possibly the fd
      // number recycled by a newer one) earlier in this same batch.
      if (it == fds_.end() || it->second.gen != gen) continue;
      unsigned mask = 0;
      const std::uint32_t ev = events[i].events;
      if ((ev & EPOLLIN) != 0) mask |= kReadable;
      if ((ev & EPOLLOUT) != 0) mask |= kWritable;
      if ((ev & (EPOLLHUP | EPOLLERR | EPOLLRDHUP)) != 0) mask |= kHangup;
      metrics.fd_events.inc();
      // The callback is looked up fresh (not cached) so remove_fd from
      // inside it stays safe; copy the handle in case the callback
      // replaces its own registration.
      const FdCallback cb = it->second.cb;
      cb(mask);
    }
  }
  // One final drain so tasks posted concurrently with request_stop()
  // (e.g. late compute completions) are not silently dropped.
  run_posted_tasks();
}

}  // namespace lamps::net
