#include "net/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <utility>

#include "core/request.hpp"
#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/errors.hpp"

namespace lamps::net {

namespace {

struct ServeMetrics {
  obs::Counter& requests_total = obs::counter("serve.requests_total");
  obs::Counter& requests_ok = obs::counter("serve.requests_ok");
  obs::Counter& requests_bad = obs::counter("serve.requests_bad_request");
  obs::Counter& requests_overloaded = obs::counter("serve.requests_overloaded");
  obs::Counter& requests_internal = obs::counter("serve.requests_internal_error");
  obs::Counter& connections_total = obs::counter("serve.connections_total");
  obs::Gauge& connections = obs::gauge("serve.connections");
  obs::Gauge& pending = obs::gauge("serve.pending");
  obs::Histogram& latency = obs::histogram(
      "serve.request_seconds",
      {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0});
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

/// Per-client state: the socket, a reader thread parsing and admitting
/// request lines, and a writer thread emitting the responses strictly in
/// arrival order (futures queue in the order the reader admitted them, so
/// pipelined clients see ordered replies even though compute is
/// concurrent).
struct Server::Connection {
  Socket socket;
  std::thread reader;
  std::thread writer;

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::future<std::string>> responses;
  bool reader_done{false};
  std::atomic<bool> finished{false};

  void push(std::future<std::string> fut) {
    {
      std::scoped_lock lock(mutex);
      responses.push_back(std::move(fut));
    }
    cv.notify_one();
  }

  void push_immediate(std::string response) {
    std::promise<std::string> p;
    p.set_value(std::move(response));
    push(p.get_future());
  }
};

Server::Server(const ServerConfig& config)
    : config_(config), ladder_(model_), cache_(config.cache_capacity),
      bank_(config.bank_capacity) {}

Server::~Server() {
  request_drain();
  wait();
  for (int fd : drain_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::start() {
  if (::pipe(drain_pipe_) != 0)
    throw InternalError(ErrorCode::kIo, "pipe() for drain notification failed");
  for (int fd : drain_pipe_) ::fcntl(fd, F_SETFL, O_NONBLOCK);

  pool_ = std::make_unique<ThreadPool>(config_.threads);
  max_pending_ =
      config_.max_pending > 0 ? config_.max_pending : pool_->num_threads() * 4;
  listener_ = std::make_unique<ListenSocket>(config_.port);
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  if (drain_pipe_[1] >= 0) {
    const char byte = 1;
    // Level-triggered wake-up for every poller; the byte is never read.
    [[maybe_unused]] const auto n = ::write(drain_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::scoped_lock lock(connections_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.front());
      connections_.pop_front();
    }
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  if (pool_) pool_->wait_idle();
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  for (;;) {
    if (draining()) break;
    const unsigned ready = poll_readable(listener_->fd(), drain_pipe_[0], 250);
    if (draining() || (ready & 2u) != 0) break;
    {
      std::scoped_lock lock(connections_mutex_);
      reap_finished_locked();
    }
    if ((ready & 1u) == 0) continue;
    std::optional<Socket> accepted = listener_->accept();
    if (!accepted) continue;

    metrics().connections_total.inc();
    metrics().connections.add(1);
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*accepted);
    Connection& ref = *conn;
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.writer = std::thread([this, &ref] { writer_loop(ref); });
    std::scoped_lock lock(connections_mutex_);
    connections_.push_back(std::move(conn));
  }
  // Refuse new connections from the first moment of the drain; in-flight
  // ones finish on their own threads.
  listener_->close();
}

void Server::reader_loop(Connection& conn) {
  obs::Span span("serve/connection");
  LineReader reader(conn.socket.fd());
  std::string line;
  for (;;) {
    if (!reader.has_buffered_line()) {
      if (draining()) {
        // Drain contract: consume only what already reached us.  A poll
        // with zero timeout picks up bytes on the wire; once the socket
        // is quiet the connection is done.
        if ((poll_readable(conn.socket.fd(), -1, 0) & 1u) == 0) break;
      } else {
        const unsigned ready =
            poll_readable(conn.socket.fd(), drain_pipe_[0], -1);
        if ((ready & 1u) == 0) continue;  // drain wake-up or EINTR
      }
    }
    const LineReader::Status status = reader.read_line(line);
    if (status != LineReader::Status::kLine) break;
    if (line.empty()) continue;
    handle_line(conn, line);
  }
  {
    std::scoped_lock lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_one();
}

void Server::handle_line(Connection& conn, const std::string& line) {
  obs::Span span("serve/request");
  metrics().requests_total.inc();

  std::optional<ParsedRequest> parsed;
  try {
    parsed.emplace(parse_schedule_request(line, model_));
  } catch (const Error& e) {
    metrics().requests_bad.inc();
    conn.push_immediate(error_response("null", "bad_request", e.what()));
    return;
  }

  if (pending_.fetch_add(1, std::memory_order_acq_rel) >= max_pending_) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics().requests_overloaded.inc();
    conn.push_immediate(error_response(
        parsed->id_json, "overloaded",
        "admission queue full (" + std::to_string(max_pending_) +
            " requests pending); retry with backoff"));
    return;
  }
  metrics().pending.set(static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));

  auto request = std::make_shared<ParsedRequest>(std::move(*parsed));
  auto response = std::make_shared<std::promise<std::string>>();
  conn.push(response->get_future());

  // Exactly-once completion for this request, from whichever thread
  // resolves it: the reader (LRU hit), a worker (leader compute), or the
  // leader's failure path fanning out to the joined followers.
  const auto t0 = std::chrono::steady_clock::now();
  auto consumer = [this, response, id_json = request->id_json, t0](
                      const std::string& payload, bool cached, const std::string& error) {
    std::string out;
    if (error.empty()) {
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      metrics().requests_ok.inc();
      metrics().latency.observe(elapsed_s);
      out = ok_response(id_json, payload, cached, elapsed_s * 1e3);
    } else {
      metrics().requests_internal.inc();
      out = error_response(id_json, "internal", error);
    }
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics().pending.set(
        static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));
    response->set_value(std::move(out));
  };

  const std::uint64_t key = core::service_request_digest(request->request);
  if (!cache_.subscribe(key, std::move(consumer))) return;  // hit or joined a leader

  try {
    pool_->submit([this, request, key] {
      try {
        obs::Span compute_span("serve/compute");
        obs::counter("serve.requests_computed").inc();
        // Incremental rescheduling: the bank carries deadline-invariant
        // artifacts between same-structure requests (response bytes are
        // unchanged — see core/incremental.hpp).
        core::ScheduleBank* bank = config_.bank_capacity != 0 ? &bank_ : nullptr;
        cache_.complete(key, result_json(core::run_service_request(request->request,
                                                                   model_, ladder_, bank),
                                         ladder_));
      } catch (const std::exception& e) {
        cache_.fail(key, e.what());
      }
    });
  } catch (const std::exception& e) {
    // Pool already stopping — answer instead of abandoning the flight.
    cache_.fail(key, e.what());
  }
}

void Server::writer_loop(Connection& conn) {
  bool peer_alive = true;
  for (;;) {
    std::future<std::string> next;
    {
      std::unique_lock lock(conn.mutex);
      conn.cv.wait(lock, [&] { return !conn.responses.empty() || conn.reader_done; });
      if (conn.responses.empty()) break;
      next = std::move(conn.responses.front());
      conn.responses.pop_front();
    }
    // Even when the peer vanished, keep draining futures so every compute
    // job's promise is consumed before the connection is reaped.
    const std::string response = next.get();
    if (peer_alive && !conn.socket.send_all(response)) peer_alive = false;
  }
  if (peer_alive) conn.socket.shutdown_write();
  metrics().connections.add(-1);
  conn.finished.store(true, std::memory_order_release);
}

}  // namespace lamps::net
