#include "net/server.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "core/request.hpp"
#include "net/protocol.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/signal.hpp"

namespace lamps::net {

namespace {

struct ServeMetrics {
  obs::Counter& requests_total = obs::counter("serve.requests_total");
  obs::Counter& requests_ok = obs::counter("serve.requests_ok");
  obs::Counter& requests_bad = obs::counter("serve.requests_bad_request");
  obs::Counter& requests_overloaded = obs::counter("serve.requests_overloaded");
  obs::Counter& requests_internal = obs::counter("serve.requests_internal_error");
  obs::Counter& requests_too_large = obs::counter("serve.requests_too_large");
  obs::Counter& requests_deadline = obs::counter("serve.requests_deadline_exceeded");
  obs::Counter& read_timeouts = obs::counter("serve.read_timeouts");
  obs::Counter& idle_reaped = obs::counter("serve.idle_reaped");
  obs::Counter& slow_client_disconnects =
      obs::counter("serve.slow_client_disconnects");
  obs::Counter& write_queue_overflow = obs::counter("serve.write_queue_overflow");
  obs::Counter& admin_requests = obs::counter("serve.admin_requests");
  obs::Counter& connections_total = obs::counter("serve.connections_total");
  obs::Gauge& connections = obs::gauge("serve.connections");
  obs::Gauge& pending = obs::gauge("serve.pending");
  obs::Histogram& latency = obs::histogram(
      "serve.request_seconds",
      {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0});
  // Phase breakdown of the same requests: admission->worker pickup,
  // worker compute, and payload-resolved->socket-write.  Queue and write
  // waits are often microseconds, so these start two decades lower than
  // serve.request_seconds.
  obs::Histogram& queue_seconds = obs::histogram(
      "serve.queue_seconds",
      {5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});
  obs::Histogram& compute_seconds = obs::histogram(
      "serve.compute_seconds",
      {5e-5, 1e-4, 5e-4, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0, 5.0});
  obs::Histogram& write_seconds = obs::histogram(
      "serve.write_seconds",
      {5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

}  // namespace

/// Per-client state: the socket, a reader thread parsing and admitting
/// request lines, and a writer thread emitting the responses strictly in
/// arrival order (entries queue in the order the reader admitted them, so
/// pipelined clients see ordered replies even though compute is
/// concurrent).  Each entry optionally carries the request's flight
/// record; the writer is the single commit point that stamps the write
/// phase and publishes the record to the ring.
struct Server::Connection {
  Socket socket;
  std::thread reader;
  std::thread writer;

  struct PendingResponse {
    std::future<std::string> response;
    std::shared_ptr<obs::FlightRecord> flight;  ///< nullptr: admin, unrecorded
  };

  std::mutex mutex;
  std::condition_variable cv;
  std::deque<PendingResponse> responses;
  bool reader_done{false};
  std::atomic<bool> finished{false};

  void push(std::future<std::string> fut, std::shared_ptr<obs::FlightRecord> flight) {
    {
      std::scoped_lock lock(mutex);
      responses.push_back({std::move(fut), std::move(flight)});
    }
    cv.notify_one();
  }

  void push_immediate(std::string response,
                      std::shared_ptr<obs::FlightRecord> flight = nullptr) {
    std::promise<std::string> p;
    p.set_value(std::move(response));
    push(p.get_future(), std::move(flight));
  }
};

Server::Server(const ServerConfig& config)
    : config_(config), ladder_(model_), cache_(config.cache_capacity),
      bank_(config.bank_capacity),
      flights_(config.flight_capacity, config.slow_request_s) {}

Server::~Server() {
  request_drain();
  wait();
  for (int fd : drain_pipe_)
    if (fd >= 0) ::close(fd);
}

void Server::start() {
  if (::pipe(drain_pipe_) != 0)
    throw InternalError(ErrorCode::kIo, "pipe() for drain notification failed");
  for (int fd : drain_pipe_) ::fcntl(fd, F_SETFL, O_NONBLOCK);

  pool_ = std::make_unique<ThreadPool>(config_.threads);
  max_pending_ =
      config_.max_pending > 0 ? config_.max_pending : pool_->num_threads() * 4;
  listener_ = std::make_unique<ListenSocket>(config_.port);
  port_ = listener_->port();
  start_ns_ = obs::monotonic_ns();
  {
    // Baseline for healthz interval deltas: counters are process-global,
    // so without this an earlier server's sheds would mark us degraded.
    std::scoped_lock lock(health_mutex_);
    health_prev_ = obs::Registry::global().counter_snapshot();
  }
  if (config_.chaos && config_.chaos->spec().any())
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.chaos_enabled")
        .str("spec", to_string(config_.chaos->spec()));

  if (config_.metrics_interval_s > 0.0) {
    obs::MetricsFlusher::Options fopts;
    fopts.interval_s = config_.metrics_interval_s;
    fopts.path = config_.metrics_jsonl;
    fopts.hook = config_.metrics_hook;
    flusher_ = std::make_unique<obs::MetricsFlusher>(std::move(fopts));
    try {
      flusher_->start();
    } catch (const std::runtime_error& e) {
      throw InternalError(ErrorCode::kIo, e.what());
    }
  }

  obs::LogEvent(obs::LogSeverity::kInfo, "serve.listening")
      .u64("port", port_)
      .u64("threads", pool_->num_threads())
      .u64("max_pending", max_pending_)
      .u64("flight_capacity", flights_.capacity())
      .num("slow_request_s", flights_.slow_threshold_s());
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Server::request_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  obs::LogEvent(obs::LogSeverity::kInfo, "serve.drain_requested")
      .u64("pending", pending_.load(std::memory_order_relaxed));
  if (drain_pipe_[1] >= 0) {
    const char byte = 1;
    // Level-triggered wake-up for every poller; the byte is never read.
    [[maybe_unused]] const auto n = ::write(drain_pipe_[1], &byte, 1);
  }
}

void Server::wait() {
  if (accept_thread_.joinable()) accept_thread_.join();
  for (;;) {
    std::unique_ptr<Connection> conn;
    {
      std::scoped_lock lock(connections_mutex_);
      if (connections_.empty()) break;
      conn = std::move(connections_.front());
      connections_.pop_front();
    }
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
  }
  if (pool_) pool_->wait_idle();
  // The final flusher sample then captures the fully drained state.
  if (flusher_) flusher_->stop();
}

void Server::reap_finished_locked() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->finished.load(std::memory_order_acquire)) {
      if ((*it)->reader.joinable()) (*it)->reader.join();
      if ((*it)->writer.joinable()) (*it)->writer.join();
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void Server::accept_loop() {
  for (;;) {
    if (draining()) break;
    const unsigned ready = poll_readable(listener_->fd(), drain_pipe_[0], 250);
    if (draining() || (ready & 2u) != 0) break;
    {
      std::scoped_lock lock(connections_mutex_);
      reap_finished_locked();
    }
    if ((ready & 1u) == 0) continue;
    if (FaultInjector* chaos = config_.chaos.get(); chaos != nullptr) {
      const int stall = chaos->accept_stall_ms();
      if (stall > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(stall));
    }
    std::optional<Socket> accepted = listener_->accept();
    if (!accepted) continue;

    metrics().connections_total.inc();
    metrics().connections.add(1);
    obs::LogEvent(obs::LogSeverity::kDebug, "serve.connection_accepted")
        .i64("open", obs::gauge("serve.connections").value());
    auto conn = std::make_unique<Connection>();
    conn->socket = std::move(*accepted);
    conn->socket.set_fault_injector(config_.chaos.get());
    Connection& ref = *conn;
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.writer = std::thread([this, &ref] { writer_loop(ref); });
    std::scoped_lock lock(connections_mutex_);
    connections_.push_back(std::move(conn));
  }
  // Refuse new connections from the first moment of the drain; in-flight
  // ones finish on their own threads.
  listener_->close();
}

void Server::reader_loop(Connection& conn) {
  obs::Span span("serve/connection");
  LineReader reader(conn.socket.fd(), config_.max_request_bytes,
                    config_.chaos.get());
  std::string line;

  const auto to_ns = [](double s) -> std::int64_t {
    return s > 0.0 ? static_cast<std::int64_t>(s * 1e9) : 0;
  };
  const std::int64_t read_timeout_ns = to_ns(config_.read_timeout_s);
  const std::int64_t idle_timeout_ns = to_ns(config_.idle_timeout_s);
  // Poll tick: a quarter of the tighter enabled timeout, clamped to
  // [10 ms, 250 ms] so the stall clocks are judged promptly without
  // spinning.  With both timeouts off the poll blocks indefinitely as
  // before (the drain pipe still wakes it).
  int tick_ms = -1;
  {
    std::int64_t tightest = 0;
    if (read_timeout_ns > 0) tightest = read_timeout_ns;
    if (idle_timeout_ns > 0 && (tightest == 0 || idle_timeout_ns < tightest))
      tightest = idle_timeout_ns;
    if (tightest > 0)
      tick_ms = static_cast<int>(
          std::clamp<std::int64_t>(tightest / 4'000'000, 10, 250));
  }

  std::int64_t last_progress_ns = obs::monotonic_ns();  // any bytes arrived
  std::int64_t last_line_ns = last_progress_ns;         // complete lines
  for (;;) {
    // Drain every complete buffered line before touching the socket.
    LineReader::Status status;
    bool stop = false;
    for (;;) {
      status = reader.next_line(line);
      if (status == LineReader::Status::kLine) {
        last_line_ns = last_progress_ns = obs::monotonic_ns();
        if (line.empty()) continue;
        if (config_.max_write_queue > 0) {
          std::size_t queued = 0;
          {
            std::scoped_lock lock(conn.mutex);
            queued = conn.responses.size();
          }
          // A client that pipelines faster than it drains responses is
          // bounded here: stop reading, let the writer flush what was
          // admitted, disconnect.  Nothing admitted is ever dropped.
          if (queued >= config_.max_write_queue) {
            metrics().write_queue_overflow.inc();
            obs::LogEvent(obs::LogSeverity::kWarn, "serve.write_queue_overflow")
                .u64("queued", queued)
                .u64("max_write_queue", config_.max_write_queue);
            stop = true;
            break;
          }
        }
        handle_line(conn, line);
        continue;
      }
      if (status == LineReader::Status::kOverflow) {
        // The oversize line never parsed, so it gets the typed error with
        // a null id; the stream already resynced at the next '\n'.
        metrics().requests_total.inc();
        metrics().requests_too_large.inc();
        auto flight = std::make_shared<obs::FlightRecord>();
        flight->request_id = obs::next_request_id();
        flight->arrival_ns = obs::monotonic_ns();
        flight->finish_ns = flight->arrival_ns;
        flight->outcome = obs::FlightOutcome::kTooLarge;
        obs::LogEvent(obs::LogSeverity::kWarn, "serve.request_too_large")
            .u64("req", flight->request_id)
            .u64("max_request_bytes", config_.max_request_bytes);
        conn.push_immediate(
            error_response("null", "too_large",
                           "request line exceeds max_request_bytes (" +
                               std::to_string(config_.max_request_bytes) + ")"),
            flight);
        last_line_ns = last_progress_ns = obs::monotonic_ns();
        continue;
      }
      break;  // kAgain, kEof or kError
    }
    if (stop || status == LineReader::Status::kEof ||
        status == LineReader::Status::kError)
      break;

    // status == kAgain: more bytes needed.
    if (draining()) {
      // Drain contract: consume only what already reached us.  A poll
      // with zero timeout picks up bytes on the wire; once the socket
      // is quiet the connection is done.
      if ((poll_readable(conn.socket.fd(), -1, 0) & 1u) == 0) break;
    } else {
      const unsigned ready =
          poll_readable(conn.socket.fd(), drain_pipe_[0], tick_ms);
      if ((ready & 1u) == 0) {
        // Tick or drain wake-up: judge the stall clocks, then re-poll.
        const std::int64_t now = obs::monotonic_ns();
        if (read_timeout_ns > 0 && reader.has_partial_line() &&
            now - last_progress_ns > read_timeout_ns) {
          metrics().read_timeouts.inc();
          obs::LogEvent(obs::LogSeverity::kWarn, "serve.read_timeout")
              .num("read_timeout_s", config_.read_timeout_s);
          break;
        }
        if (idle_timeout_ns > 0 && !reader.has_partial_line() &&
            now - last_line_ns > idle_timeout_ns) {
          metrics().idle_reaped.inc();
          obs::LogEvent(obs::LogSeverity::kInfo, "serve.idle_reaped")
              .num("idle_timeout_s", config_.idle_timeout_s);
          break;
        }
        continue;
      }
    }
    const LineReader::Status filled = reader.fill();
    if (filled == LineReader::Status::kError) break;
    if (filled == LineReader::Status::kAgain)
      last_progress_ns = obs::monotonic_ns();
    // kEof loops once more so next_line can flush the final line.
  }
  {
    std::scoped_lock lock(conn.mutex);
    conn.reader_done = true;
  }
  conn.cv.notify_one();
}

bool Server::handle_admin_line(Connection& conn, const std::string& line) {
  std::optional<AdminRequest> admin;
  try {
    admin = parse_admin_request(line);
  } catch (const Error& e) {
    // Admin-shaped but broken ({"cmd":"bogus"}): a bad request, but one
    // that never reaches admission.
    metrics().requests_bad.inc();
    conn.push_immediate(error_response("null", "bad_request", e.what()));
    return true;
  }
  if (!admin.has_value()) return false;

  metrics().admin_requests.inc();
  conn.push_immediate(admin_response(*admin));
  if (admin->cmd == AdminCommand::kQuit) {
    obs::LogEvent(obs::LogSeverity::kInfo, "serve.quitquitquit");
    request_drain();
    // Bridge to the CLI's signal loop so the process exits like on
    // SIGTERM (no-op when no handler machinery is installed, e.g. tests).
    lamps::request_drain_signal();
  }
  return true;
}

std::string Server::admin_response(const AdminRequest& req) {
  const double uptime_s =
      static_cast<double>(obs::monotonic_ns() - start_ns_) / 1e9;
  std::ostringstream os;
  os << "{\"id\":" << req.id_json << ",\"ok\":true,\"cmd\":\"" << to_string(req.cmd)
     << '"';
  switch (req.cmd) {
    case AdminCommand::kStatsz: {
      // Snapshot outside the scrape lock (counter reads are lock-free),
      // diff under it so concurrent scrapers see disjoint deltas.
      std::map<std::string, std::uint64_t> snapshot =
          obs::Registry::global().counter_snapshot();
      std::scoped_lock lock(scrape_mutex_);
      os << ",\"uptime_s\":";
      write_json_double(os, uptime_s);
      os << ",\"scrape_seq\":" << scrape_seq_++
         << ",\"draining\":" << (draining() ? "true" : "false") << ",\"deltas\":{";
      const char* sep = "";
      for (const auto& [name, value] : snapshot) {
        const auto it = last_scrape_.find(name);
        const std::uint64_t prev = it == last_scrape_.end() ? 0 : it->second;
        if (value <= prev) continue;
        os << sep;
        write_json_string(os, name);
        os << ':' << (value - prev);
        sep = ",";
      }
      os << "},\"metrics\":";
      obs::Registry::global().write_json_compact(os);
      last_scrape_ = std::move(snapshot);
      break;
    }
    case AdminCommand::kHealthz: {
      // Degradation is judged over the window since the previous healthz
      // (seeded at start()), so a single ancient shed does not poison the
      // report forever.
      std::map<std::string, std::uint64_t> snapshot =
          obs::Registry::global().counter_snapshot();
      std::scoped_lock hlock(health_mutex_);
      const auto delta = [&](const char* name) -> std::uint64_t {
        const auto now_it = snapshot.find(name);
        const std::uint64_t now_v = now_it == snapshot.end() ? 0 : now_it->second;
        const auto prev_it = health_prev_.find(name);
        const std::uint64_t prev_v =
            prev_it == health_prev_.end() ? 0 : prev_it->second;
        return now_v > prev_v ? now_v - prev_v : 0;
      };
      const std::uint64_t d_total = delta("serve.requests_total");
      const std::uint64_t d_shed = delta("serve.requests_overloaded");
      const std::uint64_t d_deadline = delta("serve.requests_deadline_exceeded");
      const std::uint64_t d_idle = delta("serve.idle_reaped");
      const std::uint64_t d_read_to = delta("serve.read_timeouts");
      const std::uint64_t d_slow = delta("serve.slow_client_disconnects");
      const std::uint64_t d_wq = delta("serve.write_queue_overflow");
      health_prev_ = std::move(snapshot);
      const bool degraded =
          d_shed + d_deadline + d_idle + d_read_to + d_slow + d_wq > 0;
      const char* status = draining() ? "draining" : degraded ? "degraded" : "ok";
      const double denom = d_total > 0 ? static_cast<double>(d_total) : 1.0;
      os << ",\"status\":\"" << status << '"'
         << ",\"draining\":" << (draining() ? "true" : "false")
         << ",\"accepting\":" << (draining() ? "false" : "true") << ",\"uptime_s\":";
      write_json_double(os, uptime_s);
      os << ",\"pool_size\":" << pool_->size() << ",\"pool_queued\":" << pool_->queued()
         << ",\"pool_active\":" << pool_->active()
         << ",\"pending\":" << pending_.load(std::memory_order_relaxed)
         << ",\"max_pending\":" << max_pending_
         << ",\"connections\":" << obs::gauge("serve.connections").value()
         << ",\"interval\":{\"requests\":" << d_total << ",\"shed\":" << d_shed
         << ",\"deadline_exceeded\":" << d_deadline << ",\"idle_reaped\":" << d_idle
         << ",\"read_timeouts\":" << d_read_to
         << ",\"slow_client_disconnects\":" << d_slow
         << ",\"write_queue_overflow\":" << d_wq << "},\"shed_rate\":";
      write_json_double(os, static_cast<double>(d_shed) / denom);
      os << ",\"deadline_miss_rate\":";
      write_json_double(os, static_cast<double>(d_deadline) / denom);
      break;
    }
    case AdminCommand::kCachez: {
      const obs::Registry& reg = obs::Registry::global();
      os << ",\"result_cache\":{\"size\":" << cache_.size()
         << ",\"capacity\":" << cache_.capacity()
         << ",\"hits\":" << reg.counter_value("serve.cache_hits")
         << ",\"misses\":" << reg.counter_value("serve.cache_misses")
         << ",\"coalesced\":" << reg.counter_value("serve.singleflight_hits")
         << "},\"schedule_bank\":{\"enabled\":"
         << (config_.bank_capacity != 0 ? "true" : "false")
         << ",\"size\":" << bank_.size() << ",\"capacity\":" << bank_.capacity()
         << ",\"lease_hits\":" << reg.counter_value("schedule_bank.lease_hit")
         << ",\"lease_misses\":" << reg.counter_value("schedule_bank.lease_miss")
         << ",\"evictions\":" << reg.counter_value("schedule_bank.evictions") << '}';
      break;
    }
    case AdminCommand::kFlightz: {
      os << ",\"total\":" << flights_.total_recorded()
         << ",\"capacity\":" << flights_.capacity() << ",\"slow_threshold_ms\":";
      write_json_double(os, flights_.slow_threshold_s() * 1e3);
      os << ",\"records\":[";
      const char* sep = "";
      for (const obs::FlightRecord& rec : flights_.last(req.limit)) {
        os << sep;
        obs::FlightRecorder::write_json(os, rec);
        sep = ",";
      }
      os << ']';
      break;
    }
    case AdminCommand::kChaosz:
      if (config_.chaos) {
        os << ",\"enabled\":true,";
        config_.chaos->write_json(os);
      } else {
        os << ",\"enabled\":false";
      }
      break;
    case AdminCommand::kQuit:
      os << ",\"draining\":true";
      break;
  }
  os << "}\n";
  return os.str();
}

void Server::handle_line(Connection& conn, const std::string& line) {
  // Admin lane first: answered inline by this reader, untouched by
  // admission control or the pool, and kept out of the flight ring.
  if (handle_admin_line(conn, line)) return;

  obs::Span span("serve/request");
  metrics().requests_total.inc();

  auto flight = std::make_shared<obs::FlightRecord>();
  flight->request_id = obs::next_request_id();
  flight->arrival_ns = obs::monotonic_ns();

  std::optional<ParsedRequest> parsed;
  try {
    parsed.emplace(parse_schedule_request(line, model_));
  } catch (const Error& e) {
    metrics().requests_bad.inc();
    flight->outcome = obs::FlightOutcome::kBadRequest;
    flight->finish_ns = obs::monotonic_ns();
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.bad_request")
        .u64("req", flight->request_id)
        .str("error", e.what());
    conn.push_immediate(error_response("null", "bad_request", e.what()), flight);
    return;
  }
  flight->digest = core::service_request_digest(parsed->request);

  if (pending_.fetch_add(1, std::memory_order_acq_rel) >= max_pending_) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics().requests_overloaded.inc();
    flight->outcome = obs::FlightOutcome::kOverloaded;
    flight->finish_ns = obs::monotonic_ns();
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.overloaded")
        .u64("req", flight->request_id)
        .u64("max_pending", max_pending_);
    conn.push_immediate(
        error_response(parsed->id_json, "overloaded",
                       "admission queue full (" + std::to_string(max_pending_) +
                           " requests pending); retry with backoff"),
        flight);
    return;
  }
  flight->admit_ns = obs::monotonic_ns();
  metrics().pending.set(static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));

  // Wall-clock budget, anchored at arrival so queue time counts against
  // it.  Transport-level on purpose: the digest (and thus the cache key)
  // ignores it, and the leader's budget governs a single-flight group.
  const double budget_ms = parsed->deadline_budget_ms > 0.0
                               ? parsed->deadline_budget_ms
                               : config_.default_deadline_ms;
  const std::int64_t deadline_ns =
      budget_ms > 0.0
          ? flight->arrival_ns + static_cast<std::int64_t>(budget_ms * 1e6)
          : 0;

  auto request = std::make_shared<ParsedRequest>(std::move(*parsed));
  auto response = std::make_shared<std::promise<std::string>>();
  conn.push(response->get_future(), flight);

  // Exactly-once completion for this request, from whichever thread
  // resolves it: the reader (LRU hit), a worker (leader compute), or the
  // leader's failure path fanning out to the joined followers.  The
  // outcome classification leans on that: a cached payload delivered on
  // the admitting thread is an inline LRU hit, on any other thread a
  // single-flight join.
  const auto t0 = std::chrono::steady_clock::now();
  const std::thread::id admit_tid = std::this_thread::get_id();
  auto consumer = [this, response, flight, admit_tid, id_json = request->id_json, t0](
                      const std::string& payload, bool cached, const std::string& error) {
    std::string out;
    if (error.empty()) {
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      metrics().requests_ok.inc();
      metrics().latency.observe(elapsed_s);
      out = ok_response(id_json, payload, cached, elapsed_s * 1e3);
      flight->outcome = !cached ? obs::FlightOutcome::kComputed
                        : std::this_thread::get_id() == admit_tid
                            ? obs::FlightOutcome::kCacheHit
                            : obs::FlightOutcome::kCoalesced;
    } else if (error.rfind("deadline_exceeded", 0) == 0) {
      // Deadline misses fan out to single-flight followers too: whoever
      // joined a leader that ran out of budget gets the same retryable
      // typed error (docs/serving.md "Failure modes & guarantees").
      metrics().requests_deadline.inc();
      out = error_response(id_json, "deadline_exceeded", error);
      flight->outcome = obs::FlightOutcome::kDeadlineExceeded;
    } else {
      metrics().requests_internal.inc();
      out = error_response(id_json, "internal", error);
      flight->outcome = obs::FlightOutcome::kInternalError;
    }
    flight->finish_ns = obs::monotonic_ns();
    obs::LogEvent(obs::LogSeverity::kDebug, "serve.request")
        .u64("req", flight->request_id)
        .str("outcome", obs::to_string(flight->outcome));
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics().pending.set(
        static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));
    response->set_value(std::move(out));
  };

  const std::uint64_t key = core::service_request_digest(request->request);
  if (!cache_.subscribe(key, std::move(consumer))) return;  // hit or joined a leader

  try {
    pool_->submit([this, request, key, flight, deadline_ns] {
      try {
        obs::Span compute_span("serve/compute");
        obs::counter("serve.requests_computed").inc();
        // Chaos queue aging happens before the deadline check so an
        // injected dispatch delay can produce real deadline misses.
        if (FaultInjector* chaos = config_.chaos.get(); chaos != nullptr) {
          const int delay = chaos->dispatch_delay_ms();
          if (delay > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        flight->compute_start_ns = obs::monotonic_ns();
        if (deadline_ns > 0 && flight->compute_start_ns >= deadline_ns) {
          flight->compute_end_ns = flight->compute_start_ns;
          cache_.fail(key, "deadline_exceeded: budget spent in queue before "
                           "compute started; retry with backoff");
          return;
        }
        // The remaining budget rides the same cooperative-cancellation
        // rail the sweep runner uses: the scheduler hot loops poll
        // cancel_checkpoint() and abandon the search mid-compute.
        std::optional<CancelToken> token;
        std::optional<CancelScope> scope;
        if (deadline_ns > 0) {
          token.emplace(
              static_cast<double>(deadline_ns - flight->compute_start_ns) * 1e-9);
          scope.emplace(&*token);
        }
        // Incremental rescheduling: the bank carries deadline-invariant
        // artifacts between same-structure requests (response bytes are
        // unchanged — see core/incremental.hpp).
        core::ScheduleBank* bank = config_.bank_capacity != 0 ? &bank_ : nullptr;
        const std::string payload = result_json(
            core::run_service_request(request->request, model_, ladder_, bank), ladder_);
        flight->compute_end_ns = obs::monotonic_ns();
        cache_.complete(key, payload);
      } catch (const TimeoutError& e) {
        flight->compute_end_ns = obs::monotonic_ns();
        cache_.fail(key, std::string("deadline_exceeded: ") + e.what());
      } catch (const std::exception& e) {
        flight->compute_end_ns = obs::monotonic_ns();
        cache_.fail(key, e.what());
      }
    });
  } catch (const std::exception& e) {
    // Pool already stopping — answer instead of abandoning the flight.
    cache_.fail(key, e.what());
  }
}

void Server::writer_loop(Connection& conn) {
  const int write_timeout_ms =
      config_.write_timeout_s > 0.0
          ? static_cast<int>(config_.write_timeout_s * 1e3)
          : -1;
  bool peer_alive = true;
  for (;;) {
    Connection::PendingResponse next;
    {
      std::unique_lock lock(conn.mutex);
      conn.cv.wait(lock, [&] { return !conn.responses.empty() || conn.reader_done; });
      if (conn.responses.empty()) break;
      next = std::move(conn.responses.front());
      conn.responses.pop_front();
    }
    // Even when the peer vanished, keep draining futures so every compute
    // job's promise is consumed before the connection is reaped.
    const std::string response = next.response.get();
    if (peer_alive) {
      const Socket::SendStatus sent =
          conn.socket.send_all_deadline(response, write_timeout_ms);
      if (sent != Socket::SendStatus::kOk) {
        peer_alive = false;
        if (sent == Socket::SendStatus::kTimeout) {
          metrics().slow_client_disconnects.inc();
          obs::LogEvent(obs::LogSeverity::kWarn, "serve.slow_client_disconnect")
              .num("write_timeout_s", config_.write_timeout_s);
        }
        // Shut both directions (without closing: the reader thread still
        // polls this fd) so the reader wakes with EOF instead of parsing
        // more requests for a peer that stopped draining.
        conn.socket.shutdown_both();
      }
    }
    if (next.flight) {
      // Single commit point: by here every other phase stamp happened
      // before the promise was fulfilled, so the record is complete and
      // raceless when it enters the ring.
      obs::FlightRecord& rec = *next.flight;
      rec.write_ns = obs::monotonic_ns();
      rec.response_bytes = static_cast<std::uint32_t>(response.size());
      if (rec.compute_start_ns > 0) {
        metrics().queue_seconds.observe(
            static_cast<double>(rec.compute_start_ns - rec.admit_ns) / 1e9);
        metrics().compute_seconds.observe(
            static_cast<double>(rec.compute_end_ns - rec.compute_start_ns) / 1e9);
      }
      if (rec.finish_ns > 0)
        metrics().write_seconds.observe(
            static_cast<double>(rec.write_ns - rec.finish_ns) / 1e9);
      flights_.record(rec);
    }
  }
  if (peer_alive) conn.socket.shutdown_write();
  metrics().connections.add(-1);
  obs::LogEvent(obs::LogSeverity::kDebug, "serve.connection_closed")
      .i64("open", obs::gauge("serve.connections").value());
  conn.finished.store(true, std::memory_order_release);
}

}  // namespace lamps::net
