#include "net/server.hpp"

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <deque>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "core/request.hpp"
#include "net/protocol.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cancel.hpp"
#include "util/errors.hpp"
#include "util/faultinject.hpp"
#include "util/json.hpp"
#include "util/signal.hpp"

namespace lamps::net {

namespace {

struct ServeMetrics {
  obs::Counter& requests_total = obs::counter("serve.requests_total");
  obs::Counter& requests_ok = obs::counter("serve.requests_ok");
  obs::Counter& requests_bad = obs::counter("serve.requests_bad_request");
  obs::Counter& requests_overloaded = obs::counter("serve.requests_overloaded");
  obs::Counter& requests_internal = obs::counter("serve.requests_internal_error");
  obs::Counter& requests_too_large = obs::counter("serve.requests_too_large");
  obs::Counter& requests_deadline = obs::counter("serve.requests_deadline_exceeded");
  obs::Counter& read_timeouts = obs::counter("serve.read_timeouts");
  obs::Counter& idle_reaped = obs::counter("serve.idle_reaped");
  obs::Counter& slow_client_disconnects =
      obs::counter("serve.slow_client_disconnects");
  obs::Counter& write_queue_overflow = obs::counter("serve.write_queue_overflow");
  obs::Counter& admin_requests = obs::counter("serve.admin_requests");
  obs::Counter& connections_total = obs::counter("serve.connections_total");
  obs::Gauge& connections = obs::gauge("serve.connections");
  obs::Gauge& pending = obs::gauge("serve.pending");
  obs::Histogram& latency = obs::histogram(
      "serve.request_seconds",
      {0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0});
  // Phase breakdown of the same requests: admission->worker pickup,
  // worker compute, and payload-resolved->socket-write.  Queue and write
  // waits are often microseconds, so these start two decades lower than
  // serve.request_seconds.
  obs::Histogram& queue_seconds = obs::histogram(
      "serve.queue_seconds",
      {5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});
  obs::Histogram& compute_seconds = obs::histogram(
      "serve.compute_seconds",
      {5e-5, 1e-4, 5e-4, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.5, 1.0, 5.0});
  obs::Histogram& write_seconds = obs::histogram(
      "serve.write_seconds",
      {5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0});
};

ServeMetrics& metrics() {
  static ServeMetrics m;
  return m;
}

std::int64_t seconds_to_ns(double s) {
  return s > 0.0 ? static_cast<std::int64_t>(s * 1e9) : 0;
}

}  // namespace

/// Per-client state, owned by the event loop (all fields loop-thread
/// only except ResponseSlot, see below).  Pipelined responses are kept
/// strictly in admission order: each admitted request appends a slot to
/// `responses`; whichever thread resolves the request fills the slot's
/// text, flips `ready` (release) and posts a flush; the loop only ever
/// writes the *head* slot, so completion order never reorders the wire.
/// The loop is the single commit point that stamps the write phase and
/// publishes the flight record to the ring.
struct Server::Connection {
  Socket socket;
  int fd{-1};
  std::optional<LineReader> reader;
  std::optional<obs::Span> span;  ///< "serve/connection", accept->close

  /// Filled by compute workers (or inline by the loop for cache hits and
  /// typed errors).  `text` is written before `ready` is released; the
  /// loop reads it only after acquiring `ready`.
  struct ResponseSlot {
    std::atomic<bool> ready{false};
    std::string text;
    std::shared_ptr<obs::FlightRecord> flight;  ///< nullptr: admin, unrecorded
  };

  std::deque<std::shared_ptr<ResponseSlot>> responses;

  // Write side: the head response currently flushing.  `out`/`out_off`
  // hold its unsent tail; the slot stays referenced until committed.
  std::string out;
  std::size_t out_off{0};
  std::shared_ptr<ResponseSlot> out_slot;
  std::int64_t write_start_ns{0};  ///< stall-deadline anchor (cumulative)

  bool reading{true};      ///< EPOLLIN subscribed
  bool want_write{false};  ///< EPOLLOUT subscribed
  bool peer_alive{true};
  bool input_done{false};
  bool closed{false};
  std::int64_t last_progress_ns{0};  ///< any bytes arrived
  std::int64_t last_line_ns{0};      ///< complete lines
  std::uint64_t input_timer{0};
  std::uint64_t write_timer{0};

  [[nodiscard]] std::size_t queued_responses() const {
    return responses.size() + (out_slot != nullptr ? 1 : 0);
  }
};

Server::Server(const ServerConfig& config)
    : config_(config), ladder_(model_), cache_(config.cache_capacity),
      bank_(config.bank_capacity),
      flights_(config.flight_capacity, config.slow_request_s) {
  read_timeout_ns_ = seconds_to_ns(config_.read_timeout_s);
  idle_timeout_ns_ = seconds_to_ns(config_.idle_timeout_s);
  write_timeout_ns_ = seconds_to_ns(config_.write_timeout_s);
}

Server::~Server() {
  request_drain();
  wait();
}

void Server::start() {
  pool_ = std::make_unique<ThreadPool>(config_.threads);
  max_pending_ =
      config_.max_pending > 0 ? config_.max_pending : pool_->num_threads() * 4;
  listener_ = std::make_unique<ListenSocket>(config_.port, config_.listen_backlog);
  listener_->set_nonblocking(true);
  port_ = listener_->port();
  start_ns_ = obs::monotonic_ns();
  {
    // Baseline for healthz interval deltas: counters are process-global,
    // so without this an earlier server's sheds would mark us degraded.
    std::scoped_lock lock(health_mutex_);
    health_prev_ = obs::Registry::global().counter_snapshot();
  }
  if (config_.chaos && config_.chaos->spec().any())
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.chaos_enabled")
        .str("spec", to_string(config_.chaos->spec()));

  if (config_.metrics_interval_s > 0.0) {
    obs::MetricsFlusher::Options fopts;
    fopts.interval_s = config_.metrics_interval_s;
    fopts.path = config_.metrics_jsonl;
    fopts.hook = config_.metrics_hook;
    flusher_ = std::make_unique<obs::MetricsFlusher>(std::move(fopts));
    try {
      flusher_->start();
    } catch (const std::runtime_error& e) {
      throw InternalError(ErrorCode::kIo, e.what());
    }
  }

  loop_ = std::make_unique<EventLoop>();
  // Registered before the loop thread exists, so the "loop thread only"
  // contract holds trivially.
  loop_->add_fd(listener_->fd(), /*want_read=*/true, /*want_write=*/false,
                [this](unsigned) { on_accept_ready(); });

  obs::LogEvent(obs::LogSeverity::kInfo, "serve.listening")
      .u64("port", port_)
      .u64("threads", pool_->num_threads())
      .u64("max_pending", max_pending_)
      .u64("flight_capacity", flights_.capacity())
      .num("slow_request_s", flights_.slow_threshold_s());
  loop_thread_ = std::thread([this] { loop_->run(); });
  // request_drain() raced ahead of start(): make sure the drain actually
  // begins now that the loop exists.
  if (draining()) loop_->post([this] { begin_drain(); });
}

void Server::request_drain() {
  if (draining_.exchange(true, std::memory_order_acq_rel)) return;
  obs::LogEvent(obs::LogSeverity::kInfo, "serve.drain_requested")
      .u64("pending", pending_.load(std::memory_order_relaxed));
  if (loop_) loop_->post([this] { begin_drain(); });
}

void Server::wait() {
  // The loop thread exits only once the drain finished: listener closed,
  // every admitted response flushed, every connection closed.
  if (loop_thread_.joinable()) loop_thread_.join();
  if (pool_) pool_->wait_idle();
  // The final flusher sample then captures the fully drained state.
  if (flusher_) flusher_->stop();
}

void Server::begin_drain() {
  if (drain_begun_) return;
  drain_begun_ = true;
  // Refuse new connections from the first moment of the drain.
  if (listener_) {
    loop_->remove_fd(listener_->fd());
    listener_->close();
  }
  // Drain contract: consume only what already reached us.  A final
  // non-blocking read sweep picks up bytes on the wire; once a socket is
  // quiet its input side is done.
  std::vector<ConnPtr> open;
  open.reserve(connections_.size());
  for (const auto& [fd, conn] : connections_) open.push_back(conn);
  for (const ConnPtr& conn : open) {
    if (conn->closed) continue;
    if (!conn->input_done) process_input(conn);
    if (conn->closed) continue;
    stop_input(conn);
    maybe_close(conn);
  }
  if (connections_.empty()) loop_->request_stop();
}

void Server::on_accept_ready() {
  if (drain_begun_ || draining()) return;
  // One accept per event: level-triggered epoll re-reports a non-empty
  // backlog immediately, and the one-at-a-time cadence keeps the chaos
  // accept_stall decision schedule identical to the threaded server's.
  if (FaultInjector* chaos = config_.chaos.get(); chaos != nullptr) {
    const int stall = chaos->accept_stall_ms();
    if (stall > 0) std::this_thread::sleep_for(std::chrono::milliseconds(stall));
  }
  std::optional<Socket> accepted = listener_->accept();
  if (!accepted) return;

  metrics().connections_total.inc();
  metrics().connections.add(1);
  obs::LogEvent(obs::LogSeverity::kDebug, "serve.connection_accepted")
      .i64("open", obs::gauge("serve.connections").value());

  auto conn = std::make_shared<Connection>();
  conn->socket = std::move(*accepted);
  conn->socket.set_fault_injector(config_.chaos.get());
  conn->socket.set_nonblocking(true);
  conn->fd = conn->socket.fd();
  if (config_.sndbuf_bytes > 0)
    ::setsockopt(conn->fd, SOL_SOCKET, SO_SNDBUF, &config_.sndbuf_bytes,
                 sizeof config_.sndbuf_bytes);
  conn->span.emplace("serve/connection");
  conn->reader.emplace(conn->fd, config_.max_request_bytes, config_.chaos.get());
  conn->last_progress_ns = conn->last_line_ns = obs::monotonic_ns();
  connections_[conn->fd] = conn;
  loop_->add_fd(conn->fd, /*want_read=*/true, /*want_write=*/false,
                [this, conn](unsigned events) { on_connection_event(conn, events); });
  schedule_input_timer(conn);
}

void Server::on_connection_event(const ConnPtr& conn, unsigned events) {
  if (conn->closed) return;
  // Flush first: draining the write buffer may re-open read capacity
  // (max_write_queue) and cancels the stall timer before new reads
  // re-anchor clocks.
  if ((events & EventLoop::kWritable) != 0 && conn->want_write)
    flush_connection(conn);
  if (conn->closed) return;
  if ((events & (EventLoop::kReadable | EventLoop::kHangup)) != 0 &&
      conn->reading && !conn->input_done)
    process_input(conn);
}

void Server::process_input(const ConnPtr& conn) {
  LineReader& reader = *conn->reader;
  std::string line;
  for (;;) {
    if (conn->closed || conn->input_done) return;
    const LineReader::Status status = reader.next_line(line);
    if (status == LineReader::Status::kLine) {
      conn->last_line_ns = conn->last_progress_ns = obs::monotonic_ns();
      if (line.empty()) continue;
      if (config_.max_write_queue > 0 &&
          conn->queued_responses() >= config_.max_write_queue) {
        // A client that pipelines faster than it drains responses is
        // bounded here: stop reading, flush what was admitted,
        // disconnect.  Nothing admitted is ever dropped.  (The line that
        // tripped the bound is dropped unanswered, exactly like the
        // threaded server's reader stopping before handle_line.)
        metrics().write_queue_overflow.inc();
        obs::LogEvent(obs::LogSeverity::kWarn, "serve.write_queue_overflow")
            .u64("queued", conn->queued_responses())
            .u64("max_write_queue", config_.max_write_queue);
        stop_input(conn);
        maybe_close(conn);
        return;
      }
      handle_line(conn, line);
      continue;
    }
    if (status == LineReader::Status::kOverflow) {
      // The oversize line never parsed, so it gets the typed error with
      // a null id; the stream already resynced at the next '\n'.
      metrics().requests_total.inc();
      metrics().requests_too_large.inc();
      auto flight = std::make_shared<obs::FlightRecord>();
      flight->request_id = obs::next_request_id();
      flight->arrival_ns = obs::monotonic_ns();
      flight->finish_ns = flight->arrival_ns;
      flight->outcome = obs::FlightOutcome::kTooLarge;
      obs::LogEvent(obs::LogSeverity::kWarn, "serve.request_too_large")
          .u64("req", flight->request_id)
          .u64("max_request_bytes", config_.max_request_bytes);
      enqueue_ready(conn,
                    error_response("null", "too_large",
                                   "request line exceeds max_request_bytes (" +
                                       std::to_string(config_.max_request_bytes) + ")"),
                    std::move(flight));
      if (conn->closed || conn->input_done) return;
      conn->last_line_ns = conn->last_progress_ns = obs::monotonic_ns();
      continue;
    }
    if (status == LineReader::Status::kAgain) {
      const LineReader::Status filled = reader.fill();
      if (filled == LineReader::Status::kAgain) {
        conn->last_progress_ns = obs::monotonic_ns();
        continue;
      }
      if (filled == LineReader::Status::kWouldBlock) {
        // Socket drained; wait for the next EPOLLIN and re-judge the
        // stall clocks from the freshest progress stamps.
        schedule_input_timer(conn);
        return;
      }
      if (filled == LineReader::Status::kError) break;
      continue;  // kEof: loop once more so next_line flushes the final line
    }
    break;  // kEof or kError
  }
  // Input ended (EOF or transport error).  Admitted responses still
  // flush; the connection closes once they have.
  stop_input(conn);
  maybe_close(conn);
}

bool Server::handle_admin_line(const ConnPtr& conn, const std::string& line) {
  std::optional<AdminRequest> admin;
  try {
    admin = parse_admin_request(line);
  } catch (const Error& e) {
    // Admin-shaped but broken ({"cmd":"bogus"}): a bad request, but one
    // that never reaches admission.
    metrics().requests_bad.inc();
    enqueue_ready(conn, error_response("null", "bad_request", e.what()), nullptr);
    return true;
  }
  if (!admin.has_value()) return false;

  metrics().admin_requests.inc();
  enqueue_ready(conn, admin_response(*admin), nullptr);
  if (admin->cmd == AdminCommand::kQuit) {
    obs::LogEvent(obs::LogSeverity::kInfo, "serve.quitquitquit");
    request_drain();
    // Bridge to the CLI's signal loop so the process exits like on
    // SIGTERM (no-op when no handler machinery is installed, e.g. tests).
    lamps::request_drain_signal();
  }
  return true;
}

std::string Server::admin_response(const AdminRequest& req) {
  const double uptime_s =
      static_cast<double>(obs::monotonic_ns() - start_ns_) / 1e9;
  std::ostringstream os;
  os << "{\"id\":" << req.id_json << ",\"ok\":true,\"cmd\":\"" << to_string(req.cmd)
     << '"';
  switch (req.cmd) {
    case AdminCommand::kStatsz: {
      // Snapshot *under* the scrape lock (counter reads are lock-free, so
      // the hold is short).  Taken outside, two racing scrapers could
      // each snapshot, then assign out of order — the older snapshot
      // overwrites the newer baseline and the next scrape double-counts
      // its deltas.  Under the lock, baselines are monotonic: summed
      // deltas across any set of scrapers telescope to the counter total.
      std::scoped_lock lock(scrape_mutex_);
      std::map<std::string, std::uint64_t> snapshot =
          obs::Registry::global().counter_snapshot();
      os << ",\"uptime_s\":";
      write_json_double(os, uptime_s);
      os << ",\"scrape_seq\":" << scrape_seq_++
         << ",\"draining\":" << (draining() ? "true" : "false") << ",\"deltas\":{";
      const char* sep = "";
      for (const auto& [name, value] : snapshot) {
        const auto it = last_scrape_.find(name);
        const std::uint64_t prev = it == last_scrape_.end() ? 0 : it->second;
        if (value <= prev) continue;
        os << sep;
        write_json_string(os, name);
        os << ':' << (value - prev);
        sep = ",";
      }
      os << "},\"metrics\":";
      obs::Registry::global().write_json_compact(os);
      last_scrape_ = std::move(snapshot);
      break;
    }
    case AdminCommand::kHealthz: {
      // Degradation is judged over the window since the previous healthz
      // (seeded at start()), so a single ancient shed does not poison the
      // report forever.  Snapshot under the lock for the same baseline-
      // monotonicity reason as statsz.
      std::scoped_lock hlock(health_mutex_);
      std::map<std::string, std::uint64_t> snapshot =
          obs::Registry::global().counter_snapshot();
      const auto delta = [&](const char* name) -> std::uint64_t {
        const auto now_it = snapshot.find(name);
        const std::uint64_t now_v = now_it == snapshot.end() ? 0 : now_it->second;
        const auto prev_it = health_prev_.find(name);
        const std::uint64_t prev_v =
            prev_it == health_prev_.end() ? 0 : prev_it->second;
        return now_v > prev_v ? now_v - prev_v : 0;
      };
      const std::uint64_t d_total = delta("serve.requests_total");
      const std::uint64_t d_shed = delta("serve.requests_overloaded");
      const std::uint64_t d_deadline = delta("serve.requests_deadline_exceeded");
      const std::uint64_t d_idle = delta("serve.idle_reaped");
      const std::uint64_t d_read_to = delta("serve.read_timeouts");
      const std::uint64_t d_slow = delta("serve.slow_client_disconnects");
      const std::uint64_t d_wq = delta("serve.write_queue_overflow");
      health_prev_ = std::move(snapshot);
      const bool degraded =
          d_shed + d_deadline + d_idle + d_read_to + d_slow + d_wq > 0;
      const char* status = draining() ? "draining" : degraded ? "degraded" : "ok";
      const double denom = d_total > 0 ? static_cast<double>(d_total) : 1.0;
      os << ",\"status\":\"" << status << '"'
         << ",\"draining\":" << (draining() ? "true" : "false")
         << ",\"accepting\":" << (draining() ? "false" : "true") << ",\"uptime_s\":";
      write_json_double(os, uptime_s);
      os << ",\"pool_size\":" << pool_->size() << ",\"pool_queued\":" << pool_->queued()
         << ",\"pool_active\":" << pool_->active()
         << ",\"pending\":" << pending_.load(std::memory_order_relaxed)
         << ",\"max_pending\":" << max_pending_
         << ",\"connections\":" << obs::gauge("serve.connections").value()
         << ",\"interval\":{\"requests\":" << d_total << ",\"shed\":" << d_shed
         << ",\"deadline_exceeded\":" << d_deadline << ",\"idle_reaped\":" << d_idle
         << ",\"read_timeouts\":" << d_read_to
         << ",\"slow_client_disconnects\":" << d_slow
         << ",\"write_queue_overflow\":" << d_wq << "},\"shed_rate\":";
      write_json_double(os, static_cast<double>(d_shed) / denom);
      os << ",\"deadline_miss_rate\":";
      write_json_double(os, static_cast<double>(d_deadline) / denom);
      break;
    }
    case AdminCommand::kCachez: {
      const obs::Registry& reg = obs::Registry::global();
      os << ",\"result_cache\":{\"size\":" << cache_.size()
         << ",\"capacity\":" << cache_.capacity()
         << ",\"hits\":" << reg.counter_value("serve.cache_hits")
         << ",\"misses\":" << reg.counter_value("serve.cache_misses")
         << ",\"coalesced\":" << reg.counter_value("serve.singleflight_hits")
         << "},\"schedule_bank\":{\"enabled\":"
         << (config_.bank_capacity != 0 ? "true" : "false")
         << ",\"size\":" << bank_.size() << ",\"capacity\":" << bank_.capacity()
         << ",\"lease_hits\":" << reg.counter_value("schedule_bank.lease_hit")
         << ",\"lease_misses\":" << reg.counter_value("schedule_bank.lease_miss")
         << ",\"evictions\":" << reg.counter_value("schedule_bank.evictions") << '}';
      break;
    }
    case AdminCommand::kFlightz: {
      os << ",\"total\":" << flights_.total_recorded()
         << ",\"capacity\":" << flights_.capacity() << ",\"slow_threshold_ms\":";
      write_json_double(os, flights_.slow_threshold_s() * 1e3);
      os << ",\"records\":[";
      const char* sep = "";
      for (const obs::FlightRecord& rec : flights_.last(req.limit)) {
        os << sep;
        obs::FlightRecorder::write_json(os, rec);
        sep = ",";
      }
      os << ']';
      break;
    }
    case AdminCommand::kChaosz:
      if (config_.chaos) {
        os << ",\"enabled\":true,";
        config_.chaos->write_json(os);
      } else {
        os << ",\"enabled\":false";
      }
      break;
    case AdminCommand::kQuit:
      os << ",\"draining\":true";
      break;
  }
  os << "}\n";
  return os.str();
}

void Server::handle_line(const ConnPtr& conn, const std::string& line) {
  // Admin lane first: answered inline by the loop, untouched by
  // admission control or the pool, and kept out of the flight ring.
  if (handle_admin_line(conn, line)) return;

  obs::Span span("serve/request");
  metrics().requests_total.inc();

  auto flight = std::make_shared<obs::FlightRecord>();
  flight->request_id = obs::next_request_id();
  flight->arrival_ns = obs::monotonic_ns();

  std::optional<ParsedRequest> parsed;
  try {
    parsed.emplace(parse_schedule_request(line, model_));
  } catch (const Error& e) {
    metrics().requests_bad.inc();
    flight->outcome = obs::FlightOutcome::kBadRequest;
    flight->finish_ns = obs::monotonic_ns();
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.bad_request")
        .u64("req", flight->request_id)
        .str("error", e.what());
    enqueue_ready(conn, error_response("null", "bad_request", e.what()),
                  std::move(flight));
    return;
  }
  flight->digest = core::service_request_digest(parsed->request);

  if (pending_.fetch_add(1, std::memory_order_acq_rel) >= max_pending_) {
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics().requests_overloaded.inc();
    flight->outcome = obs::FlightOutcome::kOverloaded;
    flight->finish_ns = obs::monotonic_ns();
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.overloaded")
        .u64("req", flight->request_id)
        .u64("max_pending", max_pending_);
    enqueue_ready(conn,
                  error_response(parsed->id_json, "overloaded",
                                 "admission queue full (" + std::to_string(max_pending_) +
                                     " requests pending); retry with backoff"),
                  std::move(flight));
    return;
  }
  flight->admit_ns = obs::monotonic_ns();
  metrics().pending.set(static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));

  // Wall-clock budget, anchored at arrival so queue time counts against
  // it.  Transport-level on purpose: the digest (and thus the cache key)
  // ignores it, and the leader's budget governs a single-flight group.
  const double budget_ms = parsed->deadline_budget_ms > 0.0
                               ? parsed->deadline_budget_ms
                               : config_.default_deadline_ms;
  const std::int64_t deadline_ns =
      budget_ms > 0.0
          ? flight->arrival_ns + static_cast<std::int64_t>(budget_ms * 1e6)
          : 0;

  auto request = std::make_shared<ParsedRequest>(std::move(*parsed));
  auto slot = std::make_shared<Connection::ResponseSlot>();
  slot->flight = flight;
  conn->responses.push_back(slot);

  // Exactly-once completion for this request, from whichever thread
  // resolves it: the loop (LRU hit), a worker (leader compute), or the
  // leader's failure path fanning out to the joined followers.  The
  // outcome classification leans on that: a cached payload delivered on
  // the admitting thread is an inline LRU hit, on any other thread a
  // single-flight join.  The consumer fills the connection's response
  // slot and hands the flush to the loop thread.
  const auto t0 = std::chrono::steady_clock::now();
  const std::thread::id admit_tid = std::this_thread::get_id();
  auto consumer = [this, slot, conn, flight, admit_tid, id_json = request->id_json, t0](
                      const std::string& payload, bool cached, const std::string& error) {
    std::string out;
    if (error.empty()) {
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      metrics().requests_ok.inc();
      metrics().latency.observe(elapsed_s);
      out = ok_response(id_json, payload, cached, elapsed_s * 1e3);
      flight->outcome = !cached ? obs::FlightOutcome::kComputed
                        : std::this_thread::get_id() == admit_tid
                            ? obs::FlightOutcome::kCacheHit
                            : obs::FlightOutcome::kCoalesced;
    } else if (error.rfind("deadline_exceeded", 0) == 0) {
      // Deadline misses fan out to single-flight followers too: whoever
      // joined a leader that ran out of budget gets the same retryable
      // typed error (docs/serving.md "Failure modes & guarantees").
      metrics().requests_deadline.inc();
      out = error_response(id_json, "deadline_exceeded", error);
      flight->outcome = obs::FlightOutcome::kDeadlineExceeded;
    } else {
      metrics().requests_internal.inc();
      out = error_response(id_json, "internal", error);
      flight->outcome = obs::FlightOutcome::kInternalError;
    }
    flight->finish_ns = obs::monotonic_ns();
    obs::LogEvent(obs::LogSeverity::kDebug, "serve.request")
        .u64("req", flight->request_id)
        .str("outcome", obs::to_string(flight->outcome));
    pending_.fetch_sub(1, std::memory_order_acq_rel);
    metrics().pending.set(
        static_cast<std::int64_t>(pending_.load(std::memory_order_relaxed)));
    slot->text = std::move(out);
    slot->ready.store(true, std::memory_order_release);
    loop_->post([this, conn] { flush_connection(conn); });
  };

  const std::uint64_t key = core::service_request_digest(request->request);
  if (!cache_.subscribe(key, std::move(consumer))) return;  // hit or joined a leader

  try {
    pool_->submit([this, request, key, flight, deadline_ns] {
      try {
        obs::Span compute_span("serve/compute");
        obs::counter("serve.requests_computed").inc();
        // Chaos queue aging happens before the deadline check so an
        // injected dispatch delay can produce real deadline misses.
        if (FaultInjector* chaos = config_.chaos.get(); chaos != nullptr) {
          const int delay = chaos->dispatch_delay_ms();
          if (delay > 0)
            std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        }
        flight->compute_start_ns = obs::monotonic_ns();
        if (deadline_ns > 0 && flight->compute_start_ns >= deadline_ns) {
          flight->compute_end_ns = flight->compute_start_ns;
          cache_.fail(key, "deadline_exceeded: budget spent in queue before "
                           "compute started; retry with backoff");
          return;
        }
        // The remaining budget rides the same cooperative-cancellation
        // rail the sweep runner uses: the scheduler hot loops poll
        // cancel_checkpoint() and abandon the search mid-compute.
        std::optional<CancelToken> token;
        std::optional<CancelScope> scope;
        if (deadline_ns > 0) {
          token.emplace(
              static_cast<double>(deadline_ns - flight->compute_start_ns) * 1e-9);
          scope.emplace(&*token);
        }
        // Incremental rescheduling: the bank carries deadline-invariant
        // artifacts between same-structure requests (response bytes are
        // unchanged — see core/incremental.hpp).
        core::ScheduleBank* bank = config_.bank_capacity != 0 ? &bank_ : nullptr;
        const std::string payload = result_json(
            core::run_service_request(request->request, model_, ladder_, bank), ladder_);
        flight->compute_end_ns = obs::monotonic_ns();
        cache_.complete(key, payload);
      } catch (const TimeoutError& e) {
        flight->compute_end_ns = obs::monotonic_ns();
        cache_.fail(key, std::string("deadline_exceeded: ") + e.what());
      } catch (const std::exception& e) {
        flight->compute_end_ns = obs::monotonic_ns();
        cache_.fail(key, e.what());
      }
    });
  } catch (const std::exception& e) {
    // Pool already stopping — answer instead of abandoning the flight.
    cache_.fail(key, e.what());
  }
}

void Server::enqueue_ready(const ConnPtr& conn, std::string response,
                           std::shared_ptr<obs::FlightRecord> flight) {
  auto slot = std::make_shared<Connection::ResponseSlot>();
  slot->text = std::move(response);
  slot->flight = std::move(flight);
  slot->ready.store(true, std::memory_order_release);
  conn->responses.push_back(std::move(slot));
  flush_connection(conn);
}

void Server::commit_response(const ConnPtr& conn) {
  if (conn->out_slot && conn->out_slot->flight) {
    // Single commit point: by here every other phase stamp happened
    // before the slot's ready flag was released, so the record is
    // complete and raceless when it enters the ring.
    obs::FlightRecord& rec = *conn->out_slot->flight;
    rec.write_ns = obs::monotonic_ns();
    rec.response_bytes = static_cast<std::uint32_t>(conn->out.size());
    if (rec.compute_start_ns > 0) {
      metrics().queue_seconds.observe(
          static_cast<double>(rec.compute_start_ns - rec.admit_ns) / 1e9);
      metrics().compute_seconds.observe(
          static_cast<double>(rec.compute_end_ns - rec.compute_start_ns) / 1e9);
    }
    if (rec.finish_ns > 0)
      metrics().write_seconds.observe(
          static_cast<double>(rec.write_ns - rec.finish_ns) / 1e9);
    flights_.record(rec);
  }
  conn->out_slot = nullptr;
  conn->out.clear();
  conn->out_off = 0;
}

void Server::flush_connection(const ConnPtr& conn) {
  if (conn->closed) return;
  for (;;) {
    if (conn->out_slot == nullptr) {
      // Strict per-connection ordering: only the head slot may flush,
      // and only once its resolver released the text.
      if (conn->responses.empty() ||
          !conn->responses.front()->ready.load(std::memory_order_acquire))
        break;
      conn->out_slot = conn->responses.front();
      conn->responses.pop_front();
      conn->out = std::move(conn->out_slot->text);
      conn->out_off = 0;
      // The stall clock anchors when the response *starts* flushing and
      // is never reset by partial progress: the budget is cumulative per
      // response, so a peer draining one byte per window still times out.
      conn->write_start_ns = loop_->now_ns();
    }
    if (!conn->peer_alive) {
      // Peer gone: consume (and record) the response without writing so
      // every compute completion is accounted before the close.
      conn->out_off = conn->out.size();
      commit_response(conn);
      continue;
    }
    if (conn->out_off < conn->out.size()) {
      std::size_t sent = 0;
      const Socket::IoStatus st = conn->socket.send_some(
          std::string_view(conn->out).substr(conn->out_off), &sent);
      if (st == Socket::IoStatus::kOk && sent > 0) {
        conn->out_off += sent;
        continue;
      }
      if (st == Socket::IoStatus::kError) {
        mark_peer_dead(conn, /*slow=*/false);
        continue;
      }
      // kWouldBlock (or a zero-byte chaos chunk): wait for EPOLLOUT with
      // the per-response stall budget running.
      set_want_write(conn, true);
      arm_write_timer(conn);
      return;
    }
    commit_response(conn);
  }
  // Nothing flushable right now.
  set_want_write(conn, false);
  if (conn->out_slot == nullptr && conn->write_timer != 0) {
    loop_->timers().cancel(conn->write_timer);
    conn->write_timer = 0;
  }
  maybe_close(conn);
}

void Server::mark_peer_dead(const ConnPtr& conn, bool slow) {
  if (!conn->peer_alive) return;
  conn->peer_alive = false;
  if (slow) {
    metrics().slow_client_disconnects.inc();
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.slow_client_disconnect")
        .num("write_timeout_s", config_.write_timeout_s);
  }
  if (conn->write_timer != 0) {
    loop_->timers().cancel(conn->write_timer);
    conn->write_timer = 0;
  }
  // Stop parsing requests for a peer that stopped draining; shutdown
  // both directions so the kernel tears the stream down promptly.
  conn->socket.shutdown_both();
  stop_input(conn);
}

void Server::arm_write_timer(const ConnPtr& conn) {
  if (write_timeout_ns_ <= 0 || conn->write_timer != 0) return;
  const std::int64_t deadline = conn->write_start_ns + write_timeout_ns_;
  conn->write_timer = loop_->timers().arm(deadline, [this, conn] {
    conn->write_timer = 0;
    if (conn->closed || !conn->peer_alive || conn->out_slot == nullptr) return;
    const std::int64_t now = obs::monotonic_ns();
    if (now - conn->write_start_ns < write_timeout_ns_) {
      // The wheel fired early relative to this response's anchor (a
      // later response re-used the armed timer slot); re-arm for the
      // remainder.
      arm_write_timer(conn);
      return;
    }
    mark_peer_dead(conn, /*slow=*/true);
    flush_connection(conn);  // consume remaining slots, then maybe_close
  });
}

void Server::set_want_write(const ConnPtr& conn, bool on) {
  if (conn->want_write == on || conn->closed) return;
  conn->want_write = on;
  loop_->modify_fd(conn->fd, conn->reading, conn->want_write);
}

void Server::stop_input(const ConnPtr& conn) {
  if (conn->input_done) return;
  conn->input_done = true;
  if (conn->input_timer != 0) {
    loop_->timers().cancel(conn->input_timer);
    conn->input_timer = 0;
  }
  if (conn->reading && !conn->closed) {
    conn->reading = false;
    loop_->modify_fd(conn->fd, conn->reading, conn->want_write);
  }
}

void Server::schedule_input_timer(const ConnPtr& conn) {
  if (conn->input_timer != 0) {
    loop_->timers().cancel(conn->input_timer);
    conn->input_timer = 0;
  }
  if (conn->closed || conn->input_done) return;
  // Mid-line stalls and quiet connections are judged separately: an
  // incomplete line runs on the read clock, an empty buffer on the idle
  // clock.
  const bool partial = conn->reader->has_partial_line();
  std::int64_t deadline = 0;
  if (partial && read_timeout_ns_ > 0)
    deadline = conn->last_progress_ns + read_timeout_ns_;
  else if (!partial && idle_timeout_ns_ > 0)
    deadline = conn->last_line_ns + idle_timeout_ns_;
  if (deadline == 0) return;
  conn->input_timer = loop_->timers().arm(deadline, [this, conn] {
    conn->input_timer = 0;
    on_input_deadline(conn);
  });
}

void Server::on_input_deadline(const ConnPtr& conn) {
  if (conn->closed || conn->input_done) return;
  const std::int64_t now = obs::monotonic_ns();
  const bool partial = conn->reader->has_partial_line();
  if (read_timeout_ns_ > 0 && partial &&
      now - conn->last_progress_ns > read_timeout_ns_) {
    metrics().read_timeouts.inc();
    obs::LogEvent(obs::LogSeverity::kWarn, "serve.read_timeout")
        .num("read_timeout_s", config_.read_timeout_s);
    stop_input(conn);
    maybe_close(conn);
    return;
  }
  if (idle_timeout_ns_ > 0 && !partial && now - conn->last_line_ns > idle_timeout_ns_) {
    metrics().idle_reaped.inc();
    obs::LogEvent(obs::LogSeverity::kInfo, "serve.idle_reaped")
        .num("idle_timeout_s", config_.idle_timeout_s);
    stop_input(conn);
    maybe_close(conn);
    return;
  }
  // Progress happened since arming (or the buffer switched between the
  // partial and idle regimes): re-judge at the fresh deadline.
  schedule_input_timer(conn);
}

void Server::maybe_close(const ConnPtr& conn) {
  if (conn->closed || !conn->input_done) return;
  if (conn->out_slot != nullptr || !conn->responses.empty()) return;
  close_connection(conn);
}

void Server::close_connection(const ConnPtr& conn) {
  if (conn->closed) return;
  conn->closed = true;
  if (conn->input_timer != 0) {
    loop_->timers().cancel(conn->input_timer);
    conn->input_timer = 0;
  }
  if (conn->write_timer != 0) {
    loop_->timers().cancel(conn->write_timer);
    conn->write_timer = 0;
  }
  // Half-close the write side so the peer sees EOF after the last
  // response while its final bytes can still sit in our receive queue.
  if (conn->peer_alive) conn->socket.shutdown_write();
  loop_->remove_fd(conn->fd);
  connections_.erase(conn->fd);
  conn->socket.close();
  conn->span.reset();
  metrics().connections.add(-1);
  obs::LogEvent(obs::LogSeverity::kDebug, "serve.connection_closed")
      .i64("open", obs::gauge("serve.connections").value());
  if (drain_begun_ && connections_.empty()) loop_->request_stop();
}

}  // namespace lamps::net
