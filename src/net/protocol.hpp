// JSON-lines wire protocol of `lamps serve` (one object per line).
//
// Request (client -> server):
//   {"id": <string|number>,            optional; echoed back verbatim
//    "stg": "<inline STG text>" |      exactly one graph source
//    "file": "<server-side .stg path>",
//    "unit": 3100000,                  cycles per STG weight unit
//    "deadline_factor": 2.0,           x critical path length at f_max
//    "deadline_s": 0.0,                absolute seconds; overrides factor when > 0
//    "deadline_ms": 250,               optional wall-clock budget for THIS
//                                      request (transport-level; not part of
//                                      the cache digest)
//    "strategy": "LAMPS+PS"}           S&S | LAMPS | S&S+PS | LAMPS+PS |
//                                      LIMIT-SF | LIMIT-MF
//
// Success (server -> client):
//   {"id": ..., "ok": true, "cached": <bool>, "result": {...}, "elapsed_ms": ...}
// where "result" is the flat deterministic payload built by result_json()
// — byte-identical for identical requests no matter which worker, cache
// hit or single-flight follower produced it (the bit-exactness contract
// lamps_loadgen --check verifies against direct run_strategy calls).
//
// Failure:
//   {"id": ..., "ok": false, "error": "<kind>", "message": "..."}
// with kind one of bad_request | overloaded | draining | internal |
// too_large | deadline_exceeded.
// Full schema and semantics: docs/serving.md.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "core/request.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"

namespace lamps::net {

/// Admin introspection commands, answered by the connection reader itself
/// on a lane that bypasses bounded admission and the compute pool — they
/// stay responsive while every worker is saturated.  Wire forms: a bare
/// command word per line ("statsz\n", nc-friendly) or a JSON object
/// {"cmd":"statsz","id":...} ({"cmd":"flightz","limit":N} caps the record
/// count).  Reference: docs/observability.md "Admin surface".
enum class AdminCommand { kStatsz, kHealthz, kCachez, kFlightz, kChaosz, kQuit };

[[nodiscard]] const char* to_string(AdminCommand cmd);

struct AdminRequest {
  AdminCommand cmd{AdminCommand::kHealthz};
  std::string id_json{"null"};
  std::size_t limit{32};  ///< flightz only: max records returned
};

/// Recognizes an admin line (bare word or {"cmd":...} object).  Returns
/// nullopt for anything that is not admin-shaped — schedule requests fall
/// through without a JSON parse.  Throws InputError on a JSON object
/// whose "cmd" is present but unknown or malformed.
[[nodiscard]] std::optional<AdminRequest> parse_admin_request(const std::string& line);

/// A parsed request line: the normalized core request plus the raw JSON
/// token ("\"abc\"", "17", or "null") to echo back as the response id.
struct ParsedRequest {
  std::string id_json{"null"};
  core::ServiceRequest request;
  /// Wall-clock budget for this request in milliseconds (0 = none).
  /// Deliberately outside ServiceRequest: two requests for the same graph
  /// with different budgets must share one digest / cache entry.
  double deadline_budget_ms{0.0};
};

/// Parses and validates one request line, resolving deadline_factor
/// against the graph's critical path at f_max.  Throws InputError
/// (kJsonParse / kStgParse / kConfig) on malformed input.
[[nodiscard]] ParsedRequest parse_schedule_request(const std::string& line,
                                                   const power::PowerModel& model);

/// Canonical deterministic result payload: a flat JSON object (no nested
/// braces, so it can be sliced back out of a response line verbatim).
[[nodiscard]] std::string result_json(const core::StrategyResult& r,
                                      const power::DvsLadder& ladder);

/// Extracts the "result" object substring from a success line, empty
/// string when absent.  Exact-match companion to result_json().
[[nodiscard]] std::string extract_result_json(const std::string& response_line);

[[nodiscard]] std::string ok_response(const std::string& id_json,
                                      const std::string& result_payload, bool cached,
                                      double elapsed_ms);

[[nodiscard]] std::string error_response(const std::string& id_json,
                                         std::string_view kind, std::string_view message);

}  // namespace lamps::net
