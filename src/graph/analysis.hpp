// Structural DAG analyses used throughout the scheduler and the evaluation:
// longest paths (critical path), bottom/top levels, parallelism metrics.
#pragma once

#include <vector>

#include "graph/task_graph.hpp"

namespace lamps::graph {

/// bottom_level(v) = w(v) + max over successors s of bottom_level(s):
/// the length of the longest path starting at (and including) v.
[[nodiscard]] std::vector<Cycles> bottom_levels(const TaskGraph& g);

/// top_level(v) = max over predecessors p of (top_level(p) + w(p)):
/// the longest-path distance from any source to the *start* of v (the
/// earliest possible start time of v on infinitely many processors).
[[nodiscard]] std::vector<Cycles> top_levels(const TaskGraph& g);

/// Critical path length in cycles: max over v of bottom_level(v).
/// Zero for an empty graph.
[[nodiscard]] Cycles critical_path_length(const TaskGraph& g);

/// One critical path, source to sink (ties broken by smaller task id).
[[nodiscard]] std::vector<TaskId> critical_path(const TaskGraph& g);

/// Average parallelism = total work / critical path length (paper
/// section 5.2: "the total amount of work divided by the CPL").  A chain
/// has parallelism 1.  Returns 0 for an empty graph.
[[nodiscard]] double average_parallelism(const TaskGraph& g);

/// Maximum number of tasks that overlap in the ASAP (infinite-processor)
/// schedule — a cheap upper estimate of exploitable parallelism, used to
/// bound processor-count searches.
[[nodiscard]] std::size_t asap_max_concurrency(const TaskGraph& g);

/// True if `g` contains edge u->v for every (u, v) pair given; convenience
/// for tests.
[[nodiscard]] bool has_edge(const TaskGraph& g, TaskId from, TaskId to);

}  // namespace lamps::graph
