#include "graph/transform.hpp"

#include <stdexcept>

namespace lamps::graph {

namespace {

TaskGraph rebuild(const TaskGraph& g, std::string name, Cycles factor) {
  TaskGraphBuilder b(std::move(name));
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const Cycles w = g.weight(v);
    if (factor != 1 && w != 0 && w > static_cast<Cycles>(-1) / factor)
      throw std::overflow_error("scale_weights: weight overflow");
    (void)b.add_task(w * factor, g.label(v));
  }
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (const TaskId s : g.successors(v)) b.add_edge(v, s);
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    if (const auto d = g.explicit_deadline(v)) b.set_deadline(v, *d);
  return b.build();
}

}  // namespace

TaskGraph scale_weights(const TaskGraph& g, Cycles factor) {
  return rebuild(g, g.name(), factor);
}

TaskGraph renamed(const TaskGraph& g, std::string name) {
  return rebuild(g, std::move(name), 1);
}

}  // namespace lamps::graph
