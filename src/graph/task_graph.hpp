// Weighted task DAG: the application model of the paper (section 3.1).
//
// Nodes are tasks, node weights are execution requirements in clock cycles
// (frequency-independent work), edges are precedence constraints.  Graphs
// are immutable after construction; TaskGraphBuilder validates acyclicity
// and freezes the adjacency into CSR arrays so the schedulers can iterate
// successor/predecessor lists with zero indirection.
//
// Storage is structure-of-arrays throughout, materialized once at build
// time: weights, CSR offsets and CSR targets are separate dense arrays
// (offsets are 32-bit — half the memory traffic of size_t on the
// 50k-100k-task serving graphs), and the hot loops grab them wholesale
// through the weights()/succ_offsets()/succ_targets()/pred_offsets() views
// instead of calling per-task accessors.
//
// Tasks may optionally carry an explicit deadline of their own; this is how
// unrolled Kahn Process Networks express per-iteration throughput
// requirements (paper Fig 1).  Plain DAG benchmarks leave these unset and
// use a single global deadline.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lamps::graph {

using TaskId = std::uint32_t;
inline constexpr TaskId kInvalidTask = static_cast<TaskId>(-1);

/// Index into the CSR target arrays.  32 bits on purpose: task counts are
/// below 2^32 by construction and the builder rejects edge sets that would
/// overflow, so offsets stay half the width of size_t.
using EdgeIndex = std::uint32_t;

class TaskGraphBuilder;

class TaskGraph {
 public:
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_tasks() const { return weights_.size(); }
  [[nodiscard]] std::size_t num_edges() const { return succ_targets_.size(); }

  [[nodiscard]] Cycles weight(TaskId v) const { return weights_[v]; }
  [[nodiscard]] const std::string& label(TaskId v) const { return labels_[v]; }

  [[nodiscard]] std::span<const TaskId> successors(TaskId v) const {
    return {succ_targets_.data() + succ_offsets_[v],
            static_cast<std::size_t>(succ_offsets_[v + 1] - succ_offsets_[v])};
  }
  [[nodiscard]] std::span<const TaskId> predecessors(TaskId v) const {
    return {pred_targets_.data() + pred_offsets_[v],
            static_cast<std::size_t>(pred_offsets_[v + 1] - pred_offsets_[v])};
  }
  [[nodiscard]] std::size_t in_degree(TaskId v) const {
    return pred_offsets_[v + 1] - pred_offsets_[v];
  }
  [[nodiscard]] std::size_t out_degree(TaskId v) const {
    return succ_offsets_[v + 1] - succ_offsets_[v];
  }

  // Whole-array SoA views for the hot loops (the list scheduler's event
  // loop and the gap profiler): one pointer load each instead of per-task
  // accessor calls.
  [[nodiscard]] std::span<const Cycles> weights() const { return weights_; }
  [[nodiscard]] std::span<const EdgeIndex> succ_offsets() const { return succ_offsets_; }
  [[nodiscard]] std::span<const TaskId> succ_targets() const { return succ_targets_; }
  [[nodiscard]] std::span<const EdgeIndex> pred_offsets() const { return pred_offsets_; }
  [[nodiscard]] std::span<const TaskId> pred_targets() const { return pred_targets_; }

  /// Explicit per-task deadline, if one was set (KPN-derived graphs).
  [[nodiscard]] std::optional<Seconds> explicit_deadline(TaskId v) const;
  [[nodiscard]] bool has_explicit_deadlines() const { return has_deadlines_; }

  /// Tasks in a fixed topological order (computed once at build time;
  /// deterministic: Kahn's algorithm with smallest-id-first tie-breaking).
  [[nodiscard]] std::span<const TaskId> topological_order() const { return topo_order_; }

  /// Entry tasks (no predecessors) / exit tasks (no successors), ascending.
  [[nodiscard]] std::span<const TaskId> sources() const { return sources_; }
  [[nodiscard]] std::span<const TaskId> sinks() const { return sinks_; }

  /// Sum of all task weights ("total work" in the paper's Table 2).
  [[nodiscard]] Cycles total_work() const { return total_work_; }

 private:
  friend class TaskGraphBuilder;
  TaskGraph() = default;

  std::string name_;
  std::vector<Cycles> weights_;
  std::vector<std::string> labels_;
  std::vector<EdgeIndex> succ_offsets_, pred_offsets_;
  std::vector<TaskId> succ_targets_, pred_targets_;
  std::vector<double> deadlines_;  // seconds; NaN = unset
  bool has_deadlines_{false};
  std::vector<TaskId> topo_order_;
  std::vector<TaskId> sources_, sinks_;
  Cycles total_work_{0};
};

/// Mutable staging area for building a TaskGraph.
class TaskGraphBuilder {
 public:
  explicit TaskGraphBuilder(std::string name = "graph");

  /// Adds a task and returns its id (ids are dense, in insertion order).
  TaskId add_task(Cycles weight, std::string label = {});

  /// Adds a precedence edge from -> to.  Duplicate edges are coalesced at
  /// build() time; self-loops are rejected immediately.
  void add_edge(TaskId from, TaskId to);

  /// Attaches an explicit deadline to a task (seconds from time zero).
  void set_deadline(TaskId v, Seconds deadline);

  [[nodiscard]] std::size_t num_tasks() const { return weights_.size(); }

  /// Validates (DAG check via Kahn's algorithm) and freezes the graph.
  /// Throws std::invalid_argument if the edge set contains a cycle.
  /// The builder is left empty afterwards.
  [[nodiscard]] TaskGraph build();

 private:
  void check_task(TaskId v, const char* what) const;

  std::string name_;
  std::vector<Cycles> weights_;
  std::vector<std::string> labels_;
  std::vector<std::pair<TaskId, TaskId>> edges_;
  std::vector<std::pair<TaskId, double>> deadlines_;
};

}  // namespace lamps::graph
