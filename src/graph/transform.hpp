// Graph transformations: weight scaling (granularity control) and
// miscellaneous rebuilds.
#pragma once

#include "graph/task_graph.hpp"

namespace lamps::graph {

/// Returns a copy of `g` with every task weight multiplied by `factor`.
/// Used to map abstract STG weight units onto cycle counts: the paper's
/// coarse-grain scenario makes one unit 3.1e6 cycles (1 ms at 3.1 GHz), the
/// fine-grain scenario 3.1e4 cycles (10 us).
[[nodiscard]] TaskGraph scale_weights(const TaskGraph& g, Cycles factor);

/// Returns a copy of `g` relabelled with a new name (metadata only).
[[nodiscard]] TaskGraph renamed(const TaskGraph& g, std::string name);

}  // namespace lamps::graph
