#include "graph/task_graph.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>
#include <stdexcept>

namespace lamps::graph {

std::optional<Seconds> TaskGraph::explicit_deadline(TaskId v) const {
  if (!has_deadlines_) return std::nullopt;
  const double d = deadlines_[v];
  if (std::isnan(d)) return std::nullopt;
  return Seconds{d};
}

TaskGraphBuilder::TaskGraphBuilder(std::string name) : name_(std::move(name)) {}

TaskId TaskGraphBuilder::add_task(Cycles weight, std::string label) {
  if (weights_.size() >= static_cast<std::size_t>(kInvalidTask))
    throw std::length_error("TaskGraphBuilder: too many tasks");
  weights_.push_back(weight);
  labels_.push_back(std::move(label));
  return static_cast<TaskId>(weights_.size() - 1);
}

void TaskGraphBuilder::check_task(TaskId v, const char* what) const {
  if (v >= weights_.size())
    throw std::out_of_range(std::string("TaskGraphBuilder: unknown task in ") + what);
}

void TaskGraphBuilder::add_edge(TaskId from, TaskId to) {
  check_task(from, "add_edge");
  check_task(to, "add_edge");
  if (from == to) throw std::invalid_argument("TaskGraphBuilder: self-loop edge");
  edges_.emplace_back(from, to);
}

void TaskGraphBuilder::set_deadline(TaskId v, Seconds deadline) {
  check_task(v, "set_deadline");
  if (deadline.value() <= 0.0)
    throw std::invalid_argument("TaskGraphBuilder: deadline must be positive");
  deadlines_.emplace_back(v, deadline.value());
}

TaskGraph TaskGraphBuilder::build() {
  const auto n = weights_.size();

  // Coalesce duplicate edges.
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  if (edges_.size() >= static_cast<std::size_t>(kInvalidTask))
    throw std::length_error("TaskGraphBuilder: too many edges for 32-bit CSR offsets");

  TaskGraph g;
  g.name_ = std::move(name_);
  g.weights_ = std::move(weights_);
  g.labels_ = std::move(labels_);

  // CSR successor arrays (edges_ already sorted by source).
  g.succ_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) ++g.succ_offsets_[from + 1];
  for (std::size_t i = 0; i < n; ++i) g.succ_offsets_[i + 1] += g.succ_offsets_[i];
  g.succ_targets_.resize(edges_.size());
  {
    std::vector<std::size_t> cursor(g.succ_offsets_.begin(), g.succ_offsets_.end() - 1);
    for (const auto& [from, to] : edges_) g.succ_targets_[cursor[from]++] = to;
  }

  // CSR predecessor arrays.
  g.pred_offsets_.assign(n + 1, 0);
  for (const auto& [from, to] : edges_) ++g.pred_offsets_[to + 1];
  for (std::size_t i = 0; i < n; ++i) g.pred_offsets_[i + 1] += g.pred_offsets_[i];
  g.pred_targets_.resize(edges_.size());
  {
    std::vector<std::size_t> cursor(g.pred_offsets_.begin(), g.pred_offsets_.end() - 1);
    for (const auto& [from, to] : edges_) g.pred_targets_[cursor[to]++] = from;
  }
  // Keep predecessor lists sorted for determinism.
  for (std::size_t v = 0; v < n; ++v) {
    auto* begin = g.pred_targets_.data() + g.pred_offsets_[v];
    auto* end = g.pred_targets_.data() + g.pred_offsets_[v + 1];
    std::sort(begin, end);
  }

  // Kahn's algorithm: topological order + acyclicity check.  A min-heap on
  // task id makes the order deterministic and independent of insertion.
  std::vector<std::size_t> in_deg(n);
  std::priority_queue<TaskId, std::vector<TaskId>, std::greater<>> ready;
  for (TaskId v = 0; v < n; ++v) {
    in_deg[v] = g.in_degree(v);
    if (in_deg[v] == 0) ready.push(v);
  }
  g.topo_order_.reserve(n);
  while (!ready.empty()) {
    const TaskId v = ready.top();
    ready.pop();
    g.topo_order_.push_back(v);
    for (const TaskId s : g.successors(v))
      if (--in_deg[s] == 0) ready.push(s);
  }
  if (g.topo_order_.size() != n)
    throw std::invalid_argument("TaskGraphBuilder: edge set contains a cycle");

  for (TaskId v = 0; v < n; ++v) {
    if (g.in_degree(v) == 0) g.sources_.push_back(v);
    if (g.out_degree(v) == 0) g.sinks_.push_back(v);
    g.total_work_ += g.weights_[v];
  }

  if (!deadlines_.empty()) {
    g.deadlines_.assign(n, std::numeric_limits<double>::quiet_NaN());
    for (const auto& [v, d] : deadlines_) g.deadlines_[v] = d;
    g.has_deadlines_ = true;
  }

  // Reset the builder.
  edges_.clear();
  deadlines_.clear();
  weights_.clear();
  labels_.clear();
  return g;
}

}  // namespace lamps::graph
