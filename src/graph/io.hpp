// Task-graph export: Graphviz DOT (visual inspection) and a small JSON
// encoding (interchange with plotting scripts).
#pragma once

#include <ostream>
#include <string>

#include "graph/task_graph.hpp"

namespace lamps::graph {

/// Writes the graph in Graphviz DOT syntax.  Node labels show the task
/// label (or id) and weight.
void write_dot(const TaskGraph& g, std::ostream& os);

/// Writes the graph as JSON:
///   {"name": ..., "tasks": [{"id", "weight", "label", "deadline"?}...],
///    "edges": [[from, to], ...]}
void write_json(const TaskGraph& g, std::ostream& os);

[[nodiscard]] std::string to_dot(const TaskGraph& g);
[[nodiscard]] std::string to_json(const TaskGraph& g);

}  // namespace lamps::graph
