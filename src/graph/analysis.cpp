#include "graph/analysis.hpp"

#include <algorithm>
#include <numeric>
#include <ranges>

namespace lamps::graph {

std::vector<Cycles> bottom_levels(const TaskGraph& g) {
  std::vector<Cycles> bl(g.num_tasks(), 0);
  for (const TaskId v : std::ranges::reverse_view(g.topological_order())) {
    Cycles best = 0;
    for (const TaskId s : g.successors(v)) best = std::max(best, bl[s]);
    bl[v] = g.weight(v) + best;
  }
  return bl;
}

std::vector<Cycles> top_levels(const TaskGraph& g) {
  std::vector<Cycles> tl(g.num_tasks(), 0);
  for (const TaskId v : g.topological_order())
    for (const TaskId s : g.successors(v)) tl[s] = std::max(tl[s], tl[v] + g.weight(v));
  return tl;
}

Cycles critical_path_length(const TaskGraph& g) {
  Cycles best = 0;
  for (const Cycles bl : bottom_levels(g)) best = std::max(best, bl);
  return best;
}

std::vector<TaskId> critical_path(const TaskGraph& g) {
  if (g.num_tasks() == 0) return {};
  const std::vector<Cycles> bl = bottom_levels(g);

  TaskId cur = kInvalidTask;
  for (const TaskId v : g.sources())
    if (cur == kInvalidTask || bl[v] > bl[cur]) cur = v;

  std::vector<TaskId> path;
  while (cur != kInvalidTask) {
    path.push_back(cur);
    TaskId next = kInvalidTask;
    for (const TaskId s : g.successors(cur)) {
      // The next hop continues the longest path: bl[cur] = w(cur) + bl[next].
      if (bl[s] + g.weight(cur) == bl[cur] && (next == kInvalidTask || s < next)) next = s;
    }
    cur = next;
  }
  return path;
}

double average_parallelism(const TaskGraph& g) {
  const Cycles cpl = critical_path_length(g);
  if (cpl == 0) return 0.0;
  return static_cast<double>(g.total_work()) / static_cast<double>(cpl);
}

std::size_t asap_max_concurrency(const TaskGraph& g) {
  // Sweep the ASAP start/finish events; zero-weight tasks are counted as
  // active at their start instant (open-closed intervals otherwise).
  const std::vector<Cycles> tl = top_levels(g);

  // Fast path: every ASAP start is a sum of weights, so when all weights
  // share a coarse common divisor the event instants live on a small grid
  // and the sweep reduces to a counting pass over delta buckets — exactly
  // equivalent to the sorted sweep (the net per-instant delta is what the
  // running maximum sees, since finishes sort before starts).  Falls back
  // to the sort when the grid would be large or a zero-weight task breaks
  // the divisibility (its +1-cycle padding is off-grid).
  Cycles unit = 0;
  for (TaskId v = 0; v < g.num_tasks(); ++v) unit = std::gcd(unit, g.weight(v));
  const std::size_t cap = std::max<std::size_t>(4 * g.num_tasks(), 1024);
  bool any_zero_weight = false;
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    if (g.weight(v) == 0) any_zero_weight = true;
  if (unit > 0 && !any_zero_weight && g.total_work() / unit + 2 <= cap) {
    std::vector<std::int32_t> delta(g.total_work() / unit + 2, 0);
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      const Cycles start = tl[v];
      ++delta[start / unit];
      --delta[(start + g.weight(v)) / unit];
    }
    std::int64_t cur = 0;
    std::int64_t best = 0;
    for (const std::int32_t d : delta) {
      cur += d;
      best = std::max(best, cur);
    }
    return static_cast<std::size_t>(best);
  }

  std::vector<std::pair<Cycles, int>> events;  // (+1 at start, -1 at finish)
  events.reserve(2 * g.num_tasks());
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    const Cycles start = tl[v];
    const Cycles finish = start + std::max<Cycles>(g.weight(v), 1);
    events.emplace_back(start, +1);
    events.emplace_back(finish, -1);
  }
  std::sort(events.begin(), events.end(), [](const auto& a, const auto& b) {
    // Process finishes before starts at the same instant.
    return a.first != b.first ? a.first < b.first : a.second < b.second;
  });
  std::size_t cur = 0, best = 0;
  for (const auto& [t, delta] : events) {
    cur = static_cast<std::size_t>(static_cast<long long>(cur) + delta);
    best = std::max(best, cur);
  }
  return best;
}

bool has_edge(const TaskGraph& g, TaskId from, TaskId to) {
  const auto succs = g.successors(from);
  return std::find(succs.begin(), succs.end(), to) != succs.end();
}

}  // namespace lamps::graph
