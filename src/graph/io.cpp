#include "graph/io.hpp"

#include <sstream>

namespace lamps::graph {

namespace {

void write_json_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

void write_dot(const TaskGraph& g, std::ostream& os) {
  os << "digraph \"" << g.name() << "\" {\n  rankdir=TB;\n  node [shape=box];\n";
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    os << "  t" << v << " [label=\"";
    if (g.label(v).empty())
      os << 'T' << v;
    else
      os << g.label(v);
    os << "\\nw=" << g.weight(v) << "\"];\n";
  }
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (const TaskId s : g.successors(v)) os << "  t" << v << " -> t" << s << ";\n";
  os << "}\n";
}

void write_json(const TaskGraph& g, std::ostream& os) {
  os << "{\"name\": ";
  write_json_string(os, g.name());
  os << ", \"tasks\": [";
  for (TaskId v = 0; v < g.num_tasks(); ++v) {
    if (v != 0) os << ", ";
    os << "{\"id\": " << v << ", \"weight\": " << g.weight(v);
    if (!g.label(v).empty()) {
      os << ", \"label\": ";
      write_json_string(os, g.label(v));
    }
    if (const auto d = g.explicit_deadline(v)) os << ", \"deadline\": " << d->value();
    os << '}';
  }
  os << "], \"edges\": [";
  bool first = true;
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (const TaskId s : g.successors(v)) {
      if (!first) os << ", ";
      first = false;
      os << '[' << v << ", " << s << ']';
    }
  os << "]}\n";
}

std::string to_dot(const TaskGraph& g) {
  std::ostringstream ss;
  write_dot(g, ss);
  return ss.str();
}

std::string to_json(const TaskGraph& g) {
  std::ostringstream ss;
  write_json(g, ss);
  return ss.str();
}

}  // namespace lamps::graph
