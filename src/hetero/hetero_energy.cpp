#include "hetero/hetero_energy.hpp"

#include <stdexcept>

namespace lamps::hetero {

energy::EnergyBreakdown evaluate_hetero_energy(const sched::Schedule& s,
                                               const Platform& plat,
                                               const power::DvsLevel& lvl, Seconds horizon,
                                               const power::SleepModel& sleep,
                                               const energy::PsOptions& ps) {
  if (s.num_procs() != plat.num_procs())
    throw std::invalid_argument("evaluate_hetero_energy: schedule/platform mismatch");
  const Seconds span = cycles_to_time(s.makespan(), lvl.f);
  if (span.value() > horizon.value() * (1.0 + 1e-12) + 1e-15)
    throw std::invalid_argument("evaluate_hetero_energy: schedule does not fit horizon");

  energy::EnergyBreakdown e{};
  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    const double scale = plat.cls(plat.class_of_proc(p)).power_scale;
    const Watts p_idle = lvl.idle * scale;
    const power::SleepModel class_sleep(sleep.sleep_power() * scale,
                                        sleep.wakeup_energy() * scale);

    const Seconds busy = cycles_to_time(s.busy_cycles(p), lvl.f);
    e.dynamic += lvl.active.dynamic * scale * busy;
    e.leakage += lvl.active.leakage * scale * busy;
    e.intrinsic += lvl.active.intrinsic * scale * busy;

    // Idle gaps: leading, internal, trailing to the horizon.
    Cycles cursor = 0;
    bool leading = true;
    const auto charge = [&](Seconds gap) {
      if (gap.value() <= 0.0) return;
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || !leading);
      if (may_sleep && class_sleep.decide(gap, p_idle).shutdown) {
        e.sleep += class_sleep.sleep_power() * gap;
        e.wakeup += class_sleep.wakeup_energy();
        ++e.shutdowns;
        return;
      }
      e.leakage += lvl.active.leakage * scale * gap;
      e.intrinsic += lvl.active.intrinsic * scale * gap;
    };
    for (const sched::Placement& pl : s.on_proc(p)) {
      charge(cycles_to_time(pl.start - cursor, lvl.f));
      cursor = pl.finish;
      leading = false;
    }
    charge(horizon - cycles_to_time(cursor, lvl.f));
  }
  return e;
}

}  // namespace lamps::hetero
