// Leakage-aware scheduling on a heterogeneous platform: LAMPS's
// processor-count search generalizes to a search over the processor *mix*
// (how many processors of each class to employ; the rest are off), with
// HEFT as the list scheduler and the usual stretch/PS level sweep per
// candidate.
//
// The mix space is the product of per-class counts, enumerated exhaustively
// (platforms have a handful of classes with single-digit counts; the
// enumeration is the heterogeneous analogue of LAMPS's full linear scan,
// for the same reason — the energy landscape has local minima).  Candidates
// that cannot carry the total work before the deadline even at f_max are
// pruned without scheduling.
#pragma once

#include <vector>

#include "energy/evaluator.hpp"
#include "graph/task_graph.hpp"
#include "hetero/heft.hpp"
#include "hetero/hetero_energy.hpp"
#include "hetero/platform.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"

namespace lamps::hetero {

struct HeteroOptions {
  bool ps{true};
  bool ps_allow_leading_gaps{true};
};

struct HeteroResult {
  bool feasible{false};
  /// Employed processors per class of the *input* platform.
  std::vector<std::size_t> counts;
  std::size_t level_index{0};
  energy::EnergyBreakdown breakdown{};
  Seconds completion{0.0};
  std::size_t schedules_computed{0};
  /// The winning schedule, laid out on platform.subset(counts).
  std::optional<sched::Schedule> schedule;

  [[nodiscard]] Joules energy() const { return breakdown.total(); }
};

/// Runs the mix search.  `deadline` is global (heterogeneous scheduling
/// ignores explicit per-task deadlines; see DESIGN.md §7).
[[nodiscard]] HeteroResult lamps_hetero(const graph::TaskGraph& g, const Platform& platform,
                                        const power::PowerModel& model,
                                        const power::DvsLadder& ladder, Seconds deadline,
                                        const HeteroOptions& opts = {});

}  // namespace lamps::hetero
