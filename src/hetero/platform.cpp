#include "hetero/platform.hpp"

#include <cmath>
#include <stdexcept>

namespace lamps::hetero {

std::size_t Platform::add_class(ProcessorClass cls, std::size_t count) {
  if (cls.speed_factor <= 0.0 || cls.speed_factor > 1.0 + 1e-12)
    throw std::invalid_argument(
        "Platform: speed_factor must be in (0, 1] (class 1.0 is the reference)");
  if (cls.power_scale <= 0.0)
    throw std::invalid_argument("Platform: power_scale must be positive");
  classes_.push_back(std::move(cls));
  counts_.push_back(count);
  const std::size_t c = classes_.size() - 1;
  for (std::size_t i = 0; i < count; ++i) class_of_.push_back(c);
  return c;
}

Cycles Platform::duration_on(std::size_t c, Cycles work) const {
  const double speed = cls(c).speed_factor;
  if (work == 0) return 0;
  return static_cast<Cycles>(std::ceil(static_cast<double>(work) / speed - 1e-12));
}

Platform Platform::subset(const std::vector<std::size_t>& counts) const {
  if (counts.size() != classes_.size())
    throw std::invalid_argument("Platform::subset: one count per class");
  Platform p;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (counts[c] > counts_[c])
      throw std::invalid_argument("Platform::subset: count exceeds available processors");
    if (counts[c] > 0) (void)p.add_class(classes_[c], counts[c]);
  }
  return p;
}

Platform big_little(std::size_t bigs, std::size_t littles) {
  Platform p;
  (void)p.add_class(ProcessorClass{"big", 1.0, 1.0}, bigs);
  (void)p.add_class(ProcessorClass{"little", 0.45, 0.18}, littles);
  return p;
}

}  // namespace lamps::hetero
