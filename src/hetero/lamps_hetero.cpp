#include "hetero/lamps_hetero.hpp"

#include <algorithm>

#include "graph/analysis.hpp"
#include "power/sleep_model.hpp"

namespace lamps::hetero {

namespace {

/// Iterates the per-class count vectors (0..count_of(c) each), skipping
/// the all-zero mix.  Returns false when exhausted.
bool next_mix(const Platform& plat, std::vector<std::size_t>& counts) {
  for (std::size_t c = 0; c < counts.size(); ++c) {
    if (counts[c] < plat.count_of(c)) {
      ++counts[c];
      return true;
    }
    counts[c] = 0;
  }
  return false;
}

}  // namespace

HeteroResult lamps_hetero(const graph::TaskGraph& g, const Platform& plat,
                          const power::PowerModel& model, const power::DvsLadder& ladder,
                          Seconds deadline, const HeteroOptions& opts) {
  HeteroResult best;
  if (g.num_tasks() == 0 || plat.num_procs() == 0 || deadline.value() <= 0.0) return best;

  const power::SleepModel sleep(model);
  const double f_max = model.max_frequency().value();
  const double work = static_cast<double>(g.total_work());
  const Cycles cpl = graph::critical_path_length(g);

  std::vector<std::size_t> counts(plat.num_classes(), 0);
  while (next_mix(plat, counts)) {
    // Capacity prune: even at f_max, the employed mix must be able to
    // retire the total work and the slowest-class critical path.
    double capacity = 0.0;
    double best_speed = 0.0;
    for (std::size_t c = 0; c < counts.size(); ++c) {
      capacity += static_cast<double>(counts[c]) * plat.cls(c).speed_factor;
      if (counts[c] > 0) best_speed = std::max(best_speed, plat.cls(c).speed_factor);
    }
    if (capacity * deadline.value() * f_max < work) continue;
    // The critical path must fit on the fastest employed class.
    if (static_cast<double>(cpl) / (best_speed * f_max) > deadline.value()) continue;

    const Platform sub = plat.subset(counts);
    sched::Schedule s = heft_schedule(g, sub);
    ++best.schedules_computed;

    // Lowest feasible ladder level for this schedule's makespan.
    const Hertz f_need = required_frequency(s.makespan(), deadline);
    const power::DvsLevel* lo =
        ladder.lowest_level_at_least(Hertz{f_need.value() * (1.0 - 1e-12)});
    if (lo == nullptr) continue;

    // Level sweep (with or without PS), as in the homogeneous +PS variants.
    const energy::PsOptions ps{opts.ps, opts.ps_allow_leading_gaps};
    const std::size_t sweep_top = opts.ps ? ladder.size() : lo->index + 1;
    for (std::size_t li = lo->index; li < sweep_top; ++li) {
      const power::DvsLevel& lvl = ladder.level(li);
      const energy::EnergyBreakdown e =
          evaluate_hetero_energy(s, sub, lvl, deadline, sleep, ps);
      if (!best.feasible || e.total() < best.breakdown.total()) {
        best.feasible = true;
        best.counts = counts;
        best.level_index = li;
        best.breakdown = e;
        best.completion = cycles_to_time(s.makespan(), lvl.f);
        best.schedule = s;
      }
    }
  }
  return best;
}

}  // namespace lamps::hetero
