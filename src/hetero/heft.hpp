// HEFT-style list scheduling for heterogeneous platforms (Topcuoglu et
// al.'s Heterogeneous Earliest Finish Time, without communication costs —
// the paper's shared-memory model has none).
//
//   * priority: upward rank  rank_u(v) = mean_dur(v) + max succ rank_u,
//     with the mean duration taken across the platform's classes,
//   * placement: the processor (any class) minimizing the earliest finish
//     time, searching idle slots insertion-style.
//
// Schedules stay in the reference cycle domain: a placement on a class-c
// processor has duration Platform::duration_on(c, w).  Because durations
// are processor-dependent, the homogeneous validate_schedule does not
// apply; use validate_hetero_schedule.
#pragma once

#include <string>

#include "graph/task_graph.hpp"
#include "hetero/platform.hpp"
#include "sched/schedule.hpp"

namespace lamps::hetero {

/// Schedules every task; always succeeds for a DAG on a platform with at
/// least one processor.
[[nodiscard]] sched::Schedule heft_schedule(const graph::TaskGraph& g,
                                            const Platform& platform);

/// Heterogeneous validation: every task placed once, with the duration of
/// its processor's class, no overlaps, precedence satisfied.  Empty string
/// when valid.
[[nodiscard]] std::string validate_hetero_schedule(const sched::Schedule& s,
                                                   const graph::TaskGraph& g,
                                                   const Platform& platform);

}  // namespace lamps::hetero
