#include "hetero/heft.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "graph/analysis.hpp"

namespace lamps::hetero {

namespace {

/// Upward ranks over mean per-class durations (double-valued; only the
/// order matters).
std::vector<double> upward_ranks(const graph::TaskGraph& g, const Platform& plat) {
  std::vector<double> mean_dur(g.num_tasks(), 0.0);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    double sum = 0.0;
    for (std::size_t c = 0; c < plat.num_classes(); ++c)
      sum += static_cast<double>(plat.duration_on(c, g.weight(v)));
    mean_dur[v] = sum / static_cast<double>(plat.num_classes());
  }
  std::vector<double> rank(g.num_tasks(), 0.0);
  const auto topo = g.topological_order();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const graph::TaskId v = *it;
    double best = 0.0;
    for (const graph::TaskId s : g.successors(v)) best = std::max(best, rank[s]);
    rank[v] = mean_dur[v] + best;
  }
  return rank;
}

struct ReadyEntry {
  double rank;
  graph::TaskId task;
  // Max-heap on rank (higher rank first), ties to smaller id.
  bool operator<(const ReadyEntry& o) const {
    return rank != o.rank ? rank < o.rank : task > o.task;
  }
};

}  // namespace

sched::Schedule heft_schedule(const graph::TaskGraph& g, const Platform& plat) {
  if (plat.num_procs() == 0)
    throw std::invalid_argument("heft_schedule: platform has no processors");

  const std::vector<double> rank = upward_ranks(g, plat);

  struct Slot {
    Cycles start, finish;
    graph::TaskId task;
  };
  std::vector<std::vector<Slot>> rows(plat.num_procs());
  std::vector<Cycles> finish_of(g.num_tasks(), 0);

  std::priority_queue<ReadyEntry> ready;
  std::vector<std::size_t> missing_preds(g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    missing_preds[v] = g.in_degree(v);
    if (missing_preds[v] == 0) ready.push(ReadyEntry{rank[v], v});
  }

  sched::Schedule schedule(plat.num_procs(), g.num_tasks());
  while (!ready.empty()) {
    const graph::TaskId v = ready.top().task;
    ready.pop();
    Cycles ready_time = 0;
    for (const graph::TaskId p : g.predecessors(v))
      ready_time = std::max(ready_time, finish_of[p]);

    // Earliest finish over all processors, insertion-style slot search.
    std::size_t best_proc = 0, best_pos = 0;
    Cycles best_start = 0;
    Cycles best_finish = std::numeric_limits<Cycles>::max();
    for (std::size_t p = 0; p < plat.num_procs(); ++p) {
      const Cycles dur = plat.duration_on(plat.class_of_proc(p), g.weight(v));
      const auto& row = rows[p];
      Cycles cursor = 0;
      for (std::size_t i = 0; i <= row.size(); ++i) {
        const Cycles gap_end =
            i < row.size() ? row[i].start : std::numeric_limits<Cycles>::max();
        const Cycles candidate = std::max(cursor, ready_time);
        const bool fits = gap_end == std::numeric_limits<Cycles>::max() ||
                          candidate + dur <= gap_end;
        if (fits) {
          if (candidate + dur < best_finish) {
            best_finish = candidate + dur;
            best_start = candidate;
            best_proc = p;
            best_pos = i;
          }
          break;
        }
        cursor = row[i].finish;
      }
    }

    rows[best_proc].insert(rows[best_proc].begin() + static_cast<std::ptrdiff_t>(best_pos),
                           Slot{best_start, best_finish, v});
    finish_of[v] = best_finish;
    for (const graph::TaskId s : g.successors(v))
      if (--missing_preds[s] == 0) ready.push(ReadyEntry{rank[s], s});
  }

  for (std::size_t p = 0; p < plat.num_procs(); ++p)
    for (const Slot& slot : rows[p])
      schedule.place(slot.task, static_cast<sched::ProcId>(p), slot.start, slot.finish);
  return schedule;
}

std::string validate_hetero_schedule(const sched::Schedule& s, const graph::TaskGraph& g,
                                     const Platform& plat) {
  std::ostringstream err;
  if (s.num_tasks() != g.num_tasks() || s.num_procs() != plat.num_procs()) {
    err << "schedule shape mismatch";
    return err.str();
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    if (!s.is_placed(v)) {
      err << "task " << v << " not placed";
      return err.str();
    }
    const sched::Placement& pl = s.placement(v);
    const Cycles want = plat.duration_on(plat.class_of_proc(pl.proc), g.weight(v));
    if (pl.duration() != want) {
      err << "task " << v << " duration " << pl.duration() << " != class duration " << want;
      return err.str();
    }
  }
  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    const auto row = s.on_proc(p);
    for (std::size_t i = 1; i < row.size(); ++i)
      if (row[i].start < row[i - 1].finish) {
        err << "overlap on proc " << p;
        return err.str();
      }
  }
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId succ : g.successors(v))
      if (s.placement(v).finish > s.placement(succ).start) {
        err << "precedence violated: " << v << " -> " << succ;
        return err.str();
      }
  return {};
}

}  // namespace lamps::hetero
