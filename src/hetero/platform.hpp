// Heterogeneous multiprocessor platform model (extension; the paper
// assumes identical processors, its related work [23] — Yan, Luo & Jha —
// studies the heterogeneous generalization).
//
// A platform is a set of processor classes sharing the global DVS ladder:
// at ladder level L, a processor of class c runs at speed_factor(c) x the
// level's frequency and draws power_scale(c) x the level's power (active
// and idle alike; sleep parameters are per-class absolute).  A big.LITTLE
// pair is the canonical instance: the little core is slower but its
// power — in particular its leakage — is far smaller, which is exactly the
// trade-off leakage-aware scheduling wants to exploit.
//
// Work remains in reference-core cycles (class speed 1.0); a task of w
// cycles occupies ceil(w / speed) reference cycles on a class-c processor,
// so heterogeneous schedules stay in the same integer cycle domain as the
// homogeneous ones and stretch with the ladder the same way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lamps::hetero {

struct ProcessorClass {
  std::string name;
  /// Clock speed relative to the reference class at the same ladder level.
  double speed_factor{1.0};
  /// Power relative to the reference class at the same operating point
  /// (applied to dynamic, leakage and intrinsic power alike).
  double power_scale{1.0};
};

class Platform {
 public:
  /// Adds `count` processors of the given class; returns the class index.
  std::size_t add_class(ProcessorClass cls, std::size_t count);

  [[nodiscard]] std::size_t num_classes() const { return classes_.size(); }
  [[nodiscard]] std::size_t num_procs() const { return class_of_.size(); }
  [[nodiscard]] const ProcessorClass& cls(std::size_t c) const { return classes_.at(c); }
  [[nodiscard]] std::size_t count_of(std::size_t c) const { return counts_.at(c); }

  /// Class index of processor p (processors are laid out class by class in
  /// insertion order).
  [[nodiscard]] std::size_t class_of_proc(std::size_t p) const { return class_of_.at(p); }

  /// Reference-cycle duration of `work` cycles on a class-c processor.
  [[nodiscard]] Cycles duration_on(std::size_t c, Cycles work) const;

  /// A sub-platform employing only `counts[c]` processors of each class
  /// (counts.size() == num_classes(), counts[c] <= count_of(c)).  Used by
  /// the mix search.
  [[nodiscard]] Platform subset(const std::vector<std::size_t>& counts) const;

 private:
  std::vector<ProcessorClass> classes_;
  std::vector<std::size_t> counts_;
  std::vector<std::size_t> class_of_;  // per processor
};

/// Canonical big.LITTLE example platform: `bigs` reference cores plus
/// `littles` cores at 45% speed and 18% power (roughly the DVS-comparable
/// big.LITTLE power/performance ratios reported for Cortex-A15/A7-class
/// pairs).
[[nodiscard]] Platform big_little(std::size_t bigs, std::size_t littles);

}  // namespace lamps::hetero
