// Energy accounting for heterogeneous schedules: identical structure to
// energy/evaluator.hpp, with each processor's power scaled by its class
// (dynamic, leakage, intrinsic, sleep power and wake energy alike — a
// smaller core has proportionally less state to keep alive and re-warm).
#pragma once

#include "energy/evaluator.hpp"
#include "hetero/platform.hpp"
#include "power/dvs_ladder.hpp"
#include "power/sleep_model.hpp"
#include "sched/schedule.hpp"

namespace lamps::hetero {

/// Evaluates a heterogeneous schedule at one ladder level (all processors
/// share the level; class speed factors are already folded into the
/// schedule's reference-cycle durations).
[[nodiscard]] energy::EnergyBreakdown evaluate_hetero_energy(
    const sched::Schedule& s, const Platform& platform, const power::DvsLevel& lvl,
    Seconds horizon, const power::SleepModel& sleep, const energy::PsOptions& ps = {});

}  // namespace lamps::hetero
