// Memory-boundedness check for the paper's section 3.1 assumption.
//
// The paper assumes "executing a task on 1/N-th of the frequency will take
// at most N times as much time", arguing this is safe because memory
// accesses do not slow down with the core clock.  This module quantifies
// the built-in conservatism: splitting each task's work into a
// frequency-scalable compute part and a frequency-independent memory part
// (fraction m(v)), the memory-aware duration at level f is
//
//     d(v) = w(v)·(1 − m(v))/f + w(v)·m(v)/f_max
//
// which never exceeds the conservative w(v)/f used by the schedulers.
// Re-timing a schedule with these durations (same mapping and order) shows
// how much earlier the computation actually finishes — slack the paper's
// model leaves on the table as a safety margin.
#pragma once

#include <span>
#include <vector>

#include "graph/task_graph.hpp"
#include "power/dvs_ladder.hpp"
#include "sched/schedule.hpp"

namespace lamps::energy {

struct MemoryAwareResult {
  /// Realized makespan with memory-aware durations.
  Seconds makespan{0.0};
  /// Makespan under the conservative all-compute model (= cycles/f).
  Seconds conservative_makespan{0.0};
  /// 1 - makespan/conservative: the safety margin fraction.
  double margin{0.0};
  /// Realized finish time per task.
  std::vector<Seconds> finish;
};

/// Re-times `s` at operating point `lvl` with per-task memory fractions
/// (values in [0, 1]; one entry per task).  The mapping and per-processor
/// order of `s` are kept; starts are recomputed by a forward pass over the
/// augmented DAG (precedence + processor order).  Throws on fraction
/// out-of-range or size mismatch.
[[nodiscard]] MemoryAwareResult retime_memory_aware(const sched::Schedule& s,
                                                    const graph::TaskGraph& g,
                                                    const power::DvsLevel& lvl,
                                                    Hertz f_max,
                                                    std::span<const double> mem_fraction);

}  // namespace lamps::energy
