#include "energy/evaluator.hpp"

#include <stdexcept>

namespace lamps::energy {

namespace {

/// Walks every idle interval of `s` up to the wall-clock horizon, invoking
/// fn(proc, gap_seconds, is_leading, begin_cycles, end_cycles_or_0).
/// Gap boundaries between tasks are exact cycle positions; the trailing gap
/// runs to the (generally non-integral in cycles) horizon.
template <typename Fn>
void for_each_gap(const sched::Schedule& s, Hertz f, Seconds horizon, Fn&& fn) {
  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    Cycles cursor = 0;
    for (const sched::Placement& pl : s.on_proc(p)) {
      if (pl.start > cursor)
        fn(p, cycles_to_time(pl.start - cursor, f), /*leading=*/cursor == 0, cursor, pl.start);
      cursor = pl.finish;
    }
    const Seconds tail = horizon - cycles_to_time(cursor, f);
    if (tail.value() > 0.0)
      fn(p, tail, /*leading=*/cursor == 0, cursor, Cycles{0});
  }
}

}  // namespace

EnergyBreakdown evaluate_energy(const sched::Schedule& s, const power::DvsLevel& lvl,
                                Seconds horizon, const power::SleepModel& sleep,
                                const PsOptions& ps) {
  const Seconds span = cycles_to_time(s.makespan(), lvl.f);
  // Tolerate FP rounding from the horizon = makespan/f case.
  if (span.value() > horizon.value() * (1.0 + 1e-12) + 1e-15)
    throw std::invalid_argument("evaluate_energy: schedule does not fit in horizon");

  EnergyBreakdown e{};
  for (sched::ProcId p = 0; p < s.num_procs(); ++p)
    detail::charge_active(e, lvl, cycles_to_time(s.busy_cycles(p), lvl.f));

  // Per processor: accumulate integral gap cycles (exact, order-independent)
  // split by the shutdown decision, plus the single fractional trailing gap,
  // then charge the totals through the shared canonical composition.  The
  // GapProfile fast path computes the very same ProcIdleTotals via sorted
  // gaps + prefix sums, so both evaluators agree bit for bit.
  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    ProcIdleTotals t;
    Cycles cursor = 0;
    for (const sched::Placement& pl : s.on_proc(p)) {
      if (pl.start > cursor) {
        const Cycles c = pl.start - cursor;
        const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || cursor != 0);
        if (may_sleep && sleep.decide(cycles_to_time(c, lvl.f), lvl.idle).shutdown) {
          t.slept_idle += c;
          ++t.shutdowns;
        } else {
          t.powered_idle += c;
        }
      }
      cursor = pl.finish;
    }
    const Seconds tail = horizon - cycles_to_time(cursor, lvl.f);
    if (tail.value() > 0.0) {
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || cursor != 0);
      if (may_sleep && sleep.decide(tail, lvl.idle).shutdown) {
        t.tail_slept = tail;
        ++t.shutdowns;
      } else {
        t.tail_powered = tail;
      }
    }
    detail::charge_idle(e, lvl, sleep, t);
  }
  return e;
}

std::vector<sched::Gap> shutdown_gaps(const sched::Schedule& s, const power::DvsLevel& lvl,
                                      Seconds horizon, const power::SleepModel& sleep,
                                      const PsOptions& ps) {
  std::vector<sched::Gap> out;
  if (!ps.enabled) return out;
  for_each_gap(s, lvl.f, horizon,
               [&](sched::ProcId p, Seconds gap, bool leading, Cycles begin, Cycles end) {
                 if (!ps.allow_leading_gaps && leading) return;
                 if (sleep.decide(gap, lvl.idle).shutdown) {
                   // Trailing gaps report end = begin + gap in whole cycles.
                   const Cycles e =
                       end != 0 ? end
                                : begin + static_cast<Cycles>(gap * lvl.f);
                   out.push_back(sched::Gap{p, begin, e});
                 }
               });
  return out;
}

}  // namespace lamps::energy
