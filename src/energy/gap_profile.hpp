// Gap-profile energy evaluation: answer "energy of this schedule at level
// L?" for many levels without re-walking the schedule each time.
//
// A schedule's idle structure is frequency-independent when expressed in
// cycles: stretching to a slower level scales every gap duration by the
// same 1/f, so the *order* of gaps by length never changes and the per-gap
// shutdown decision (sleep iff gap > breakeven time) partitions the sorted
// gap array at a single threshold.  GapProfile is built once per schedule
// in O(V + G log G) and stores, per processor:
//   * the busy-cycle total,
//   * internal gap lengths sorted ascending with exact integer prefix sums,
//   * the single leading gap (its shutdown eligibility is policy-gated),
//   * the trailing-gap start (the tail runs to the wall-clock horizon and
//     is generally fractional in cycles).
// evaluate() then answers one DVS level in O(P log G): a binary search
// (std::partition_point) locates the powered/slept split, the integer
// prefix sums give both cycle totals exactly, and the result is composed
// through the same detail::charge_active / detail::charge_idle helpers as
// the naive walk in evaluator.cpp — which is why the two agree bit for bit
// (see docs/performance.md).
#pragma once

#include <cstddef>
#include <vector>

#include "energy/evaluator.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::energy {

class GapProfile {
 public:
  explicit GapProfile(const sched::Schedule& s);

  /// Builds the profile straight from a gap-only scheduler run
  /// (sched::list_schedule_gaps), bit-identical to profiling the full
  /// schedule of the same run — the configuration searches use this to
  /// evaluate candidates whose placements would be discarded anyway.
  explicit GapProfile(sched::GapRun&& run);

  /// Energy at operating point `lvl`, bit-identical to
  /// evaluate_energy(s, lvl, horizon, sleep, ps) for the profiled schedule.
  [[nodiscard]] EnergyBreakdown evaluate(const power::DvsLevel& lvl, Seconds horizon,
                                         const power::SleepModel& sleep,
                                         const PsOptions& ps = {}) const;

  [[nodiscard]] Cycles makespan() const { return makespan_; }
  [[nodiscard]] std::size_t num_procs() const { return procs_.size(); }
  [[nodiscard]] Cycles busy_cycles(std::size_t p) const { return procs_[p].busy; }
  /// Sum of busy cycles over all processors (= graph total work).
  [[nodiscard]] Cycles total_busy_cycles() const { return total_busy_; }

 private:
  struct ProcProfile {
    Cycles busy{0};
    /// Idle cycles before the first placement (0 = starts at cycle 0).
    /// Kept out of `gaps` because its shutdown eligibility is gated by
    /// PsOptions::allow_leading_gaps.
    Cycles leading{0};
    std::vector<Cycles> gaps;    ///< internal gap lengths, ascending
    std::vector<Cycles> prefix;  ///< prefix[i] = gaps[0] + .. + gaps[i-1]
    Cycles tail_start{0};        ///< finish of the last placement
    bool tail_leading{false};    ///< empty row: the tail is a leading gap
  };

  std::vector<ProcProfile> procs_;
  Cycles makespan_{0};
  Cycles total_busy_{0};
};

}  // namespace lamps::energy
