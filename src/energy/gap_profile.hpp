// Gap-profile energy evaluation: answer "energy of this schedule at level
// L?" for many levels without re-walking the schedule each time.
//
// A schedule's idle structure is frequency-independent when expressed in
// cycles: stretching to a slower level scales every gap duration by the
// same 1/f, so the *order* of gaps by length never changes and the per-gap
// shutdown decision (sleep iff gap > breakeven time) partitions the sorted
// gap array at a single threshold.  GapProfile is built once per schedule
// in O(V + G log G) and stores, per processor:
//   * the busy-cycle total,
//   * internal gap lengths sorted ascending with exact integer prefix sums,
//   * the single leading gap (its shutdown eligibility is policy-gated),
//   * the trailing-gap start (the tail runs to the wall-clock horizon and
//     is generally fractional in cycles).
// evaluate() then answers one DVS level in O(P log G): a binary search
// (std::partition_point) locates the powered/slept split, the integer
// prefix sums give both cycle totals exactly, and the result is composed
// through the same detail::charge_active / detail::charge_idle helpers as
// the naive walk in evaluator.cpp — which is why the two agree bit for bit
// (see docs/performance.md).
//
// Storage is structure-of-arrays: per-processor scalars live in parallel
// dense arrays and all gap rows share one flat CSR-style buffer (gap_off_
// delimits rows), so a level sweep streams a handful of contiguous arrays
// instead of chasing a vector-of-structs with two heap blocks per
// processor.  The sorted rows are plain integer arrays, so the re-layout
// cannot change any evaluation result.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "energy/evaluator.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::energy {

class GapProfile {
 public:
  explicit GapProfile(const sched::Schedule& s);

  /// Builds the profile straight from a gap-only scheduler run
  /// (sched::list_schedule_gaps), bit-identical to profiling the full
  /// schedule of the same run — the configuration searches use this to
  /// evaluate candidates whose placements would be discarded anyway.
  /// Copies what it keeps; the run's buffers stay with the workspace.
  explicit GapProfile(const sched::GapRun& run);

  /// Energy at operating point `lvl`, bit-identical to
  /// evaluate_energy(s, lvl, horizon, sleep, ps) for the profiled schedule.
  [[nodiscard]] EnergyBreakdown evaluate(const power::DvsLevel& lvl, Seconds horizon,
                                         const power::SleepModel& sleep,
                                         const PsOptions& ps = {}) const;

  [[nodiscard]] Cycles makespan() const { return makespan_; }
  [[nodiscard]] std::size_t num_procs() const { return busy_.size(); }
  [[nodiscard]] Cycles busy_cycles(std::size_t p) const { return busy_[p]; }
  /// Sum of busy cycles over all processors (= graph total work).
  [[nodiscard]] Cycles total_busy_cycles() const { return total_busy_; }

 private:
  /// Sorts each row of gaps_ ascending and builds prefix_; called by both
  /// constructors once gap_off_/gaps_ hold the raw rows.
  void finalize_rows();

  [[nodiscard]] std::span<const Cycles> row_gaps(std::size_t p) const {
    return {gaps_.data() + gap_off_[p], static_cast<std::size_t>(gap_off_[p + 1] - gap_off_[p])};
  }
  /// Prefix-sum row for processor p: length row_gaps(p).size() + 1.  Rows
  /// are packed back to back, so row p starts at gap_off_[p] + p.
  [[nodiscard]] std::span<const Cycles> row_prefix(std::size_t p) const {
    return {prefix_.data() + gap_off_[p] + p,
            static_cast<std::size_t>(gap_off_[p + 1] - gap_off_[p]) + 1};
  }

  // Per-processor scalars, parallel arrays.
  std::vector<Cycles> busy_;
  std::vector<Cycles> leading_;     ///< idle cycles before the first placement
  std::vector<Cycles> tail_start_;  ///< finish of the last placement
  std::vector<std::uint8_t> tail_leading_;  ///< empty row: the tail is a leading gap
  // Internal gaps, flat CSR: row p at gaps_[gap_off_[p] .. gap_off_[p+1]),
  // sorted ascending; prefix_ holds each row's exact integer prefix sums.
  std::vector<std::uint32_t> gap_off_;
  std::vector<Cycles> gaps_;
  std::vector<Cycles> prefix_;
  Cycles makespan_{0};
  Cycles total_busy_{0};
};

}  // namespace lamps::energy
