// Schedule energy accounting (paper sections 3.2-3.4).
//
// Given a schedule in the cycle domain, a discrete DVS operating point and
// a wall-clock horizon (the deadline), the evaluator charges:
//   * active placements:   P_AC + P_DC + P_on for weight/f seconds,
//   * powered idle gaps:   P_DC + P_on (no switching activity),
//   * slept gaps (PS on):  P_sleep for the gap plus one E_wake per gap,
// choosing per gap whichever of {stay powered, shut down} is cheaper.
// Every *employed* processor is accounted from t = 0 to the horizon;
// processors beyond the schedule's processor count are unused and free.
//
// Canonical composition: per processor, idle time is accumulated as exact
// integer cycle totals (powered vs slept, which are order-independent) plus
// the single fractional trailing gap in seconds, and each category is
// converted to seconds and multiplied by its power rail exactly once
// (detail::charge_active / detail::charge_idle below).  Both the per-gap
// walk here and the O(log G) fast path in energy/gap_profile.hpp reduce to
// this composition, which is what makes their results bit-identical;
// robust/replay.cpp mirrors it with per-processor leakage weights.
#pragma once

#include <vector>

#include "power/dvs_ladder.hpp"
#include "power/sleep_model.hpp"
#include "sched/schedule.hpp"

namespace lamps::energy {

struct EnergyBreakdown {
  Joules dynamic;       ///< switching energy of executed cycles
  Joules leakage;       ///< P_DC while powered (active + idle)
  Joules intrinsic;     ///< P_on while powered (active + idle)
  Joules sleep;         ///< P_sleep during slept gaps
  Joules wakeup;        ///< E_wake * number of shutdowns
  /// DVS level-change overhead (zero in the paper's single-frequency model;
  /// used by the per-task-DVS extension and the online simulator when a
  /// transition cost is configured).
  Joules transition;
  std::size_t shutdowns{0};
  std::size_t transitions{0};

  [[nodiscard]] Joules total() const {
    return dynamic + leakage + intrinsic + sleep + wakeup + transition;
  }
};

struct PsOptions {
  bool enabled{false};
  /// Allow shutting down during a leading gap (processor idle before its
  /// first task).  The paper only calls out slack "inside as well as at the
  /// end of the schedule"; leading gaps are enabled by default because a
  /// core sitting idle before its first task is physically no different —
  /// DESIGN.md section 7 records this choice.
  bool allow_leading_gaps{true};
};

/// Exact idle accounting for one processor at one DVS level: integral idle
/// cycles split by the per-gap shutdown decision, plus the (generally
/// fractional in cycles) trailing gap in seconds.  At most one trailing gap
/// exists per processor, so the tail fields hold a single value, not a sum.
struct ProcIdleTotals {
  Cycles powered_idle{0};   ///< integral gap cycles staying powered on
  Cycles slept_idle{0};     ///< integral gap cycles spent shut down
  Seconds tail_powered{0.0};///< trailing gap, if it stays powered
  Seconds tail_slept{0.0};  ///< trailing gap, if it is slept
  std::size_t shutdowns{0};
};

namespace detail {

/// Active-power charge for one processor's busy time.
inline void charge_active(EnergyBreakdown& e, const power::DvsLevel& lvl, Seconds busy) {
  e.dynamic += lvl.active.dynamic * busy;
  e.leakage += lvl.active.leakage * busy;
  e.intrinsic += lvl.active.intrinsic * busy;
}

/// Idle/sleep charge for one processor's gap totals — the canonical
/// composition both evaluate_energy overloads share (see the file header).
inline void charge_idle(EnergyBreakdown& e, const power::DvsLevel& lvl,
                        const power::SleepModel& sleep, const ProcIdleTotals& t) {
  const Seconds powered = cycles_to_time(t.powered_idle, lvl.f) + t.tail_powered;
  const Seconds slept = cycles_to_time(t.slept_idle, lvl.f) + t.tail_slept;
  e.leakage += lvl.active.leakage * powered;
  e.intrinsic += lvl.active.intrinsic * powered;
  e.sleep += sleep.sleep_power() * slept;
  e.wakeup += sleep.wakeup_energy() * static_cast<double>(t.shutdowns);
  e.shutdowns += t.shutdowns;
}

}  // namespace detail

/// Evaluates the total energy of running `s` at operating point `lvl`, with
/// all employed processors powered on [0, horizon] except for gaps removed
/// by PS.  Requires horizon >= makespan/f (the schedule must fit).
[[nodiscard]] EnergyBreakdown evaluate_energy(const sched::Schedule& s,
                                              const power::DvsLevel& lvl, Seconds horizon,
                                              const power::SleepModel& sleep,
                                              const PsOptions& ps = {});

/// Idle gaps selected for shutdown by the evaluator (for reporting /
/// visualization): recomputes the same per-gap decisions.
[[nodiscard]] std::vector<sched::Gap> shutdown_gaps(const sched::Schedule& s,
                                                    const power::DvsLevel& lvl,
                                                    Seconds horizon,
                                                    const power::SleepModel& sleep,
                                                    const PsOptions& ps);

}  // namespace lamps::energy
