// Schedule energy accounting (paper sections 3.2-3.4).
//
// Given a schedule in the cycle domain, a discrete DVS operating point and
// a wall-clock horizon (the deadline), the evaluator charges:
//   * active placements:   P_AC + P_DC + P_on for weight/f seconds,
//   * powered idle gaps:   P_DC + P_on (no switching activity),
//   * slept gaps (PS on):  P_sleep for the gap plus one E_wake per gap,
// choosing per gap whichever of {stay powered, shut down} is cheaper.
// Every *employed* processor is accounted from t = 0 to the horizon;
// processors beyond the schedule's processor count are unused and free.
#pragma once

#include <vector>

#include "power/dvs_ladder.hpp"
#include "power/sleep_model.hpp"
#include "sched/schedule.hpp"

namespace lamps::energy {

struct EnergyBreakdown {
  Joules dynamic;       ///< switching energy of executed cycles
  Joules leakage;       ///< P_DC while powered (active + idle)
  Joules intrinsic;     ///< P_on while powered (active + idle)
  Joules sleep;         ///< P_sleep during slept gaps
  Joules wakeup;        ///< E_wake * number of shutdowns
  /// DVS level-change overhead (zero in the paper's single-frequency model;
  /// used by the per-task-DVS extension and the online simulator when a
  /// transition cost is configured).
  Joules transition;
  std::size_t shutdowns{0};
  std::size_t transitions{0};

  [[nodiscard]] Joules total() const {
    return dynamic + leakage + intrinsic + sleep + wakeup + transition;
  }
};

struct PsOptions {
  bool enabled{false};
  /// Allow shutting down during a leading gap (processor idle before its
  /// first task).  The paper only calls out slack "inside as well as at the
  /// end of the schedule"; leading gaps are enabled by default because a
  /// core sitting idle before its first task is physically no different —
  /// DESIGN.md section 7 records this choice.
  bool allow_leading_gaps{true};
};

/// Evaluates the total energy of running `s` at operating point `lvl`, with
/// all employed processors powered on [0, horizon] except for gaps removed
/// by PS.  Requires horizon >= makespan/f (the schedule must fit).
[[nodiscard]] EnergyBreakdown evaluate_energy(const sched::Schedule& s,
                                              const power::DvsLevel& lvl, Seconds horizon,
                                              const power::SleepModel& sleep,
                                              const PsOptions& ps = {});

/// Idle gaps selected for shutdown by the evaluator (for reporting /
/// visualization): recomputes the same per-gap decisions.
[[nodiscard]] std::vector<sched::Gap> shutdown_gaps(const sched::Schedule& s,
                                                    const power::DvsLevel& lvl,
                                                    Seconds horizon,
                                                    const power::SleepModel& sleep,
                                                    const PsOptions& ps);

}  // namespace lamps::energy
