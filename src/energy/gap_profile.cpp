#include "energy/gap_profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace lamps::energy {

namespace {

// Gap-profile traffic: builds (either constructor) and energy evaluations
// (docs/observability.md).
obs::Counter& c_profile_builds = obs::counter("energy.gap_profile_builds");
obs::Counter& c_profile_evals = obs::counter("energy.gap_profile_evaluations");

/// Sorts the internal gaps ascending and builds their exact prefix sums —
/// the shape both constructors leave every processor row in.
void finalize_proc(std::vector<Cycles>& gaps, std::vector<Cycles>& prefix) {
  std::sort(gaps.begin(), gaps.end());
  prefix.resize(gaps.size() + 1);
  prefix[0] = 0;
  for (std::size_t i = 0; i < gaps.size(); ++i) prefix[i + 1] = prefix[i] + gaps[i];
}

}  // namespace

GapProfile::GapProfile(const sched::Schedule& s) : makespan_(s.makespan()) {
  c_profile_builds.inc();
  procs_.resize(s.num_procs());
  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    ProcProfile& pp = procs_[p];
    pp.busy = s.busy_cycles(p);
    total_busy_ += pp.busy;
    Cycles cursor = 0;
    for (const sched::Placement& pl : s.on_proc(p)) {
      if (pl.start > cursor) {
        if (cursor == 0)
          pp.leading = pl.start;
        else
          pp.gaps.push_back(pl.start - cursor);
      }
      cursor = pl.finish;
    }
    pp.tail_start = cursor;
    pp.tail_leading = cursor == 0;
    finalize_proc(pp.gaps, pp.prefix);
  }
}

GapProfile::GapProfile(sched::GapRun&& run) : makespan_(run.makespan) {
  c_profile_builds.inc();
  procs_.resize(run.procs.size());
  for (std::size_t p = 0; p < procs_.size(); ++p) {
    ProcProfile& pp = procs_[p];
    sched::GapRun::Proc& rp = run.procs[p];
    pp.busy = rp.busy;
    total_busy_ += pp.busy;
    pp.leading = rp.leading;
    pp.tail_start = rp.tail;
    pp.tail_leading = rp.tail == 0;
    pp.gaps = std::move(rp.gaps);
    finalize_proc(pp.gaps, pp.prefix);
  }
}

EnergyBreakdown GapProfile::evaluate(const power::DvsLevel& lvl, Seconds horizon,
                                     const power::SleepModel& sleep,
                                     const PsOptions& ps) const {
  const Seconds span = cycles_to_time(makespan_, lvl.f);
  // Same fit tolerance as evaluate_energy.
  if (span.value() > horizon.value() * (1.0 + 1e-12) + 1e-15)
    throw std::invalid_argument("GapProfile::evaluate: schedule does not fit in horizon");
  c_profile_evals.inc();

  EnergyBreakdown e{};
  for (const ProcProfile& pp : procs_)
    detail::charge_active(e, lvl, cycles_to_time(pp.busy, lvl.f));

  for (const ProcProfile& pp : procs_) {
    ProcIdleTotals t;
    // Internal gaps: the shutdown decision is monotone in gap length, so
    // the sorted array splits at one point — everything before it stays
    // powered, everything after sleeps.  Integer prefix sums make both
    // cycle totals exact regardless of how the naive walk ordered them.
    std::size_t k = pp.gaps.size();
    if (ps.enabled && !pp.gaps.empty()) {
      k = static_cast<std::size_t>(
          std::partition_point(pp.gaps.begin(), pp.gaps.end(),
                               [&](Cycles c) {
                                 return !sleep.decide(cycles_to_time(c, lvl.f), lvl.idle)
                                             .shutdown;
                               }) -
          pp.gaps.begin());
    }
    t.powered_idle += pp.prefix[k];
    t.slept_idle += pp.prefix.back() - pp.prefix[k];
    t.shutdowns += pp.gaps.size() - k;

    if (pp.leading != 0) {
      const bool may_sleep = ps.enabled && ps.allow_leading_gaps;
      if (may_sleep &&
          sleep.decide(cycles_to_time(pp.leading, lvl.f), lvl.idle).shutdown) {
        t.slept_idle += pp.leading;
        ++t.shutdowns;
      } else {
        t.powered_idle += pp.leading;
      }
    }

    const Seconds tail = horizon - cycles_to_time(pp.tail_start, lvl.f);
    if (tail.value() > 0.0) {
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || !pp.tail_leading);
      if (may_sleep && sleep.decide(tail, lvl.idle).shutdown) {
        t.tail_slept = tail;
        ++t.shutdowns;
      } else {
        t.tail_powered = tail;
      }
    }
    detail::charge_idle(e, lvl, sleep, t);
  }
  return e;
}

}  // namespace lamps::energy
