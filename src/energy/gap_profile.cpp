#include "energy/gap_profile.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace lamps::energy {

namespace {

// Gap-profile traffic: builds (either constructor) and energy evaluations
// (docs/observability.md).
obs::Counter& c_profile_builds = obs::counter("energy.gap_profile_builds");
obs::Counter& c_profile_evals = obs::counter("energy.gap_profile_evaluations");

}  // namespace

void GapProfile::finalize_rows() {
  const std::size_t num_procs = busy_.size();
  prefix_.resize(gaps_.size() + num_procs);
  std::size_t out = 0;
  for (std::size_t p = 0; p < num_procs; ++p) {
    auto* const begin = gaps_.data() + gap_off_[p];
    auto* const end = gaps_.data() + gap_off_[p + 1];
    std::sort(begin, end);
    prefix_[out] = 0;
    for (auto* it = begin; it != end; ++it, ++out) prefix_[out + 1] = prefix_[out] + *it;
    ++out;
  }
}

GapProfile::GapProfile(const sched::Schedule& s) : makespan_(s.makespan()) {
  c_profile_builds.inc();
  const std::size_t num_procs = s.num_procs();
  busy_.resize(num_procs);
  leading_.assign(num_procs, 0);
  tail_start_.resize(num_procs);
  tail_leading_.resize(num_procs);
  gap_off_.resize(num_procs + 1);
  gap_off_[0] = 0;
  for (sched::ProcId p = 0; p < num_procs; ++p) {
    busy_[p] = s.busy_cycles(p);
    total_busy_ += busy_[p];
    Cycles cursor = 0;
    for (const sched::Placement& pl : s.on_proc(p)) {
      if (pl.start > cursor) {
        if (cursor == 0)
          leading_[p] = pl.start;
        else
          gaps_.push_back(pl.start - cursor);
      }
      cursor = pl.finish;
    }
    tail_start_[p] = cursor;
    tail_leading_[p] = cursor == 0 ? 1 : 0;
    gap_off_[p + 1] = static_cast<std::uint32_t>(gaps_.size());
  }
  finalize_rows();
}

GapProfile::GapProfile(const sched::GapRun& run) : makespan_(run.makespan) {
  c_profile_builds.inc();
  const std::size_t num_procs = run.num_procs();
  busy_.assign(run.busy.begin(), run.busy.end());
  leading_.assign(run.leading.begin(), run.leading.end());
  tail_start_.assign(run.tail.begin(), run.tail.end());
  tail_leading_.resize(num_procs);
  for (std::size_t p = 0; p < num_procs; ++p) {
    total_busy_ += busy_[p];
    tail_leading_[p] = run.tail[p] == 0 ? 1 : 0;
  }
  // Counting-sort the flat (proc, length) event list into per-processor
  // rows; finalize_rows() sorts each row afterwards, so scatter order is
  // irrelevant — the rows end up identical to the Schedule constructor's.
  gap_off_.assign(num_procs + 1, 0);
  for (const std::uint32_t p : run.gap_proc) ++gap_off_[p + 1];
  for (std::size_t p = 0; p < num_procs; ++p) gap_off_[p + 1] += gap_off_[p];
  gaps_.resize(run.gap_len.size());
  {
    std::vector<std::uint32_t> cursor(gap_off_.begin(), gap_off_.end() - 1);
    for (std::size_t i = 0; i < run.gap_proc.size(); ++i)
      gaps_[cursor[run.gap_proc[i]]++] = run.gap_len[i];
  }
  finalize_rows();
}

EnergyBreakdown GapProfile::evaluate(const power::DvsLevel& lvl, Seconds horizon,
                                     const power::SleepModel& sleep,
                                     const PsOptions& ps) const {
  const Seconds span = cycles_to_time(makespan_, lvl.f);
  // Same fit tolerance as evaluate_energy.
  if (span.value() > horizon.value() * (1.0 + 1e-12) + 1e-15)
    throw std::invalid_argument("GapProfile::evaluate: schedule does not fit in horizon");
  c_profile_evals.inc();

  const std::size_t num_procs = busy_.size();
  EnergyBreakdown e{};
  for (std::size_t p = 0; p < num_procs; ++p)
    detail::charge_active(e, lvl, cycles_to_time(busy_[p], lvl.f));

  for (std::size_t p = 0; p < num_procs; ++p) {
    const std::span<const Cycles> gaps = row_gaps(p);
    const std::span<const Cycles> prefix = row_prefix(p);
    ProcIdleTotals t;
    // Internal gaps: the shutdown decision is monotone in gap length, so
    // the sorted array splits at one point — everything before it stays
    // powered, everything after sleeps.  Integer prefix sums make both
    // cycle totals exact regardless of how the naive walk ordered them.
    std::size_t k = gaps.size();
    if (ps.enabled && !gaps.empty()) {
      k = static_cast<std::size_t>(
          std::partition_point(gaps.begin(), gaps.end(),
                               [&](Cycles c) {
                                 return !sleep.decide(cycles_to_time(c, lvl.f), lvl.idle)
                                             .shutdown;
                               }) -
          gaps.begin());
    }
    t.powered_idle += prefix[k];
    t.slept_idle += prefix.back() - prefix[k];
    t.shutdowns += gaps.size() - k;

    if (leading_[p] != 0) {
      const bool may_sleep = ps.enabled && ps.allow_leading_gaps;
      if (may_sleep &&
          sleep.decide(cycles_to_time(leading_[p], lvl.f), lvl.idle).shutdown) {
        t.slept_idle += leading_[p];
        ++t.shutdowns;
      } else {
        t.powered_idle += leading_[p];
      }
    }

    const Seconds tail = horizon - cycles_to_time(tail_start_[p], lvl.f);
    if (tail.value() > 0.0) {
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || tail_leading_[p] == 0);
      if (may_sleep && sleep.decide(tail, lvl.idle).shutdown) {
        t.tail_slept = tail;
        ++t.shutdowns;
      } else {
        t.tail_powered = tail;
      }
    }
    detail::charge_idle(e, lvl, sleep, t);
  }
  return e;
}

}  // namespace lamps::energy
