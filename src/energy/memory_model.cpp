#include "energy/memory_model.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

namespace lamps::energy {

MemoryAwareResult retime_memory_aware(const sched::Schedule& s, const graph::TaskGraph& g,
                                      const power::DvsLevel& lvl, Hertz f_max,
                                      std::span<const double> mem_fraction) {
  const std::size_t n = g.num_tasks();
  if (s.num_tasks() != n)
    throw std::invalid_argument("retime_memory_aware: schedule/graph mismatch");
  if (mem_fraction.size() != n)
    throw std::invalid_argument("retime_memory_aware: one memory fraction per task");
  for (const double m : mem_fraction)
    if (m < 0.0 || m > 1.0)
      throw std::invalid_argument("retime_memory_aware: fraction outside [0, 1]");

  // Augmented successors: graph edges + next task on the same processor.
  std::vector<std::vector<graph::TaskId>> succs(n);
  std::vector<std::size_t> in_deg(n, 0);
  for (graph::TaskId v = 0; v < n; ++v) {
    const auto gs = g.successors(v);
    succs[v].assign(gs.begin(), gs.end());
  }
  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    const auto row = s.on_proc(p);
    for (std::size_t i = 0; i + 1 < row.size(); ++i)
      succs[row[i].task].push_back(row[i + 1].task);
  }
  for (const auto& ss : succs)
    for (const graph::TaskId t : ss) ++in_deg[t];

  std::priority_queue<graph::TaskId, std::vector<graph::TaskId>, std::greater<>> ready;
  for (graph::TaskId v = 0; v < n; ++v)
    if (in_deg[v] == 0) ready.push(v);

  MemoryAwareResult r;
  r.finish.assign(n, Seconds{0.0});
  std::vector<double> start(n, 0.0);
  const double f = lvl.f.value();
  const double fm = f_max.value();

  std::size_t processed = 0;
  while (!ready.empty()) {
    const graph::TaskId v = ready.top();
    ready.pop();
    ++processed;
    const double w = static_cast<double>(g.weight(v));
    const double dur = w * (1.0 - mem_fraction[v]) / f + w * mem_fraction[v] / fm;
    const double fin = start[v] + dur;
    r.finish[v] = Seconds{fin};
    r.makespan = std::max(r.makespan, Seconds{fin});
    for (const graph::TaskId t : succs[v]) {
      start[t] = std::max(start[t], fin);
      if (--in_deg[t] == 0) ready.push(t);
    }
  }
  if (processed != n)
    throw std::logic_error("retime_memory_aware: augmented relation not acyclic");

  r.conservative_makespan = cycles_to_time(s.makespan(), lvl.f);
  r.margin = r.conservative_makespan.value() > 0.0
                 ? 1.0 - r.makespan.value() / r.conservative_makespan.value()
                 : 0.0;
  return r;
}

}  // namespace lamps::energy
