#include "util/faultinject.hpp"

#include <algorithm>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string_view>

#include "util/errors.hpp"
#include "util/rng.hpp"

namespace lamps {

namespace {

/// Distinct salt per site so the per-site streams are independent even
/// though they share one seed.
constexpr std::array<std::uint64_t, kNumFaultSites> kSiteSalt = {
    0x73686f72745f7264ULL,  // "short_rd"
    0x72645f7265736574ULL,  // "rd_reset"
    0x73686f72745f7772ULL,  // "short_wr"
    0x77725f7265736574ULL,  // "wr_reset"
    0x746f726e5f777269ULL,  // "torn_wri"
    0x61636370745f7374ULL,  // "accpt_st"
    0x64697370745f646cULL,  // "dispt_dl"
};

constexpr double to_unit(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

bool parse_double(std::string_view value, double& out) {
  const std::string s(value);
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0' && !s.empty();
}

}  // namespace

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kShortRead:
      return "short_read";
    case FaultSite::kReadReset:
      return "read_reset";
    case FaultSite::kShortWrite:
      return "short_write";
    case FaultSite::kWriteReset:
      return "write_reset";
    case FaultSite::kTornWrite:
      return "torn_write";
    case FaultSite::kAcceptStall:
      return "accept_stall";
    case FaultSite::kDispatchDelay:
      return "dispatch_delay";
  }
  return "?";
}

bool FaultSpec::any() const {
  return short_read > 0.0 || read_reset > 0.0 || short_write > 0.0 ||
         write_reset > 0.0 || torn_write > 0.0 || accept_stall > 0.0 ||
         dispatch_delay > 0.0;
}

FaultSpec parse_fault_spec(const std::string& text) {
  FaultSpec spec;
  std::string_view rest = text;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    while (!item.empty() && item.front() == ' ') item.remove_prefix(1);
    while (!item.empty() && item.back() == ' ') item.remove_suffix(1);
    if (item.empty()) continue;
    const auto eq = item.find('=');
    if (eq == std::string_view::npos)
      throw InputError(ErrorCode::kConfig,
                       "chaos spec item '" + std::string(item) + "' is not key=value",
                       {}, "e.g. seed=42,short_read=0.2");
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    double num = 0.0;
    if (!parse_double(value, num))
      throw InputError(ErrorCode::kConfig,
                       "chaos spec value for '" + std::string(key) + "' is not a number",
                       std::string(value));

    const auto prob = [&](double* field) {
      if (num < 0.0 || num > 1.0)
        throw InputError(ErrorCode::kConfig,
                         "chaos probability '" + std::string(key) + "' must be in [0, 1]");
      *field = num;
    };
    const auto delay = [&](int* field) {
      if (num < 0.0)
        throw InputError(ErrorCode::kConfig,
                         "chaos delay '" + std::string(key) + "' must be >= 0 ms");
      *field = static_cast<int>(num);
    };
    if (key == "seed") {
      spec.seed = static_cast<std::uint64_t>(num);
    } else if (key == "short_read") {
      prob(&spec.short_read);
    } else if (key == "read_reset") {
      prob(&spec.read_reset);
    } else if (key == "short_write") {
      prob(&spec.short_write);
    } else if (key == "write_reset") {
      prob(&spec.write_reset);
    } else if (key == "torn_write") {
      prob(&spec.torn_write);
    } else if (key == "accept_stall") {
      prob(&spec.accept_stall);
    } else if (key == "dispatch_delay") {
      prob(&spec.dispatch_delay);
    } else if (key == "accept_stall_ms") {
      delay(&spec.accept_stall_ms);
    } else if (key == "dispatch_delay_ms") {
      delay(&spec.dispatch_delay_ms);
    } else {
      throw InputError(ErrorCode::kConfig,
                       "unknown chaos spec key: '" + std::string(key) + "'", {},
                       "valid: seed, short_read, read_reset, short_write, "
                       "write_reset, torn_write, accept_stall, accept_stall_ms, "
                       "dispatch_delay, dispatch_delay_ms");
    }
  }
  return spec;
}

std::string to_string(const FaultSpec& spec) {
  std::ostringstream os;
  os << "seed=" << spec.seed;
  const auto prob = [&](const char* key, double v) {
    if (v > 0.0) os << ',' << key << '=' << v;
  };
  prob("short_read", spec.short_read);
  prob("read_reset", spec.read_reset);
  prob("short_write", spec.short_write);
  prob("write_reset", spec.write_reset);
  prob("torn_write", spec.torn_write);
  if (spec.accept_stall > 0.0)
    os << ",accept_stall=" << spec.accept_stall
       << ",accept_stall_ms=" << spec.accept_stall_ms;
  if (spec.dispatch_delay > 0.0)
    os << ",dispatch_delay=" << spec.dispatch_delay
       << ",dispatch_delay_ms=" << spec.dispatch_delay_ms;
  return os.str();
}

bool FaultInjector::roll(FaultSite site, double p, std::uint64_t* draw) {
  if (p <= 0.0) return false;
  const auto idx = static_cast<std::size_t>(site);
  const std::uint64_t n = seq_[idx].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t h = child_seed(spec_.seed ^ kSiteSalt[idx], n);
  if (to_unit(h) >= p) return false;
  hits_[idx].fetch_add(1, std::memory_order_relaxed);
  // Re-mix so the sizing bits are independent of the accept threshold.
  if (draw != nullptr) *draw = SplitMix64(h).next();
  return true;
}

FaultInjector::ReadPlan FaultInjector::plan_read() {
  ReadPlan plan;
  if (roll(FaultSite::kReadReset, spec_.read_reset)) {
    plan.reset = true;
    return plan;
  }
  std::uint64_t draw = 0;
  if (roll(FaultSite::kShortRead, spec_.short_read, &draw))
    plan.max_bytes = 1 + static_cast<std::size_t>(draw % 7);
  return plan;
}

FaultInjector::WritePlan FaultInjector::plan_write(std::size_t remaining) {
  WritePlan plan;
  if (roll(FaultSite::kWriteReset, spec_.write_reset)) {
    plan.reset = true;
    return plan;
  }
  std::uint64_t draw = 0;
  if (roll(FaultSite::kShortWrite, spec_.short_write, &draw)) {
    plan.chunk = 1 + static_cast<std::size_t>(draw % 7);
    return plan;
  }
  if (roll(FaultSite::kTornWrite, spec_.torn_write, &draw)) {
    // Tear the buffer roughly in half and stall before the fragment, so a
    // peer reading this line sees it arrive in pieces with a gap between.
    plan.chunk = std::max<std::size_t>(1, remaining / 2);
    plan.pause_us = 200 + static_cast<int>(draw % 800);
  }
  return plan;
}

int FaultInjector::accept_stall_ms() {
  return roll(FaultSite::kAcceptStall, spec_.accept_stall) ? spec_.accept_stall_ms : 0;
}

int FaultInjector::dispatch_delay_ms() {
  return roll(FaultSite::kDispatchDelay, spec_.dispatch_delay) ? spec_.dispatch_delay_ms
                                                               : 0;
}

std::uint64_t FaultInjector::decisions(FaultSite site) const {
  return seq_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return hits_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& h : hits_) total += h.load(std::memory_order_relaxed);
  return total;
}

void FaultInjector::write_json(std::ostream& os) const {
  os << "\"seed\":" << spec_.seed << ",\"spec\":\"" << to_string(spec_)
     << "\",\"injected_total\":" << injected_total() << ",\"sites\":{";
  const char* sep = "";
  for (int i = 0; i < kNumFaultSites; ++i) {
    const auto site = static_cast<FaultSite>(i);
    os << sep << '"' << to_string(site) << "\":{\"decisions\":" << decisions(site)
       << ",\"injected\":" << injected(site) << '}';
    sep = ",";
  }
  os << '}';
}

}  // namespace lamps
