// Descriptive statistics over samples: mean / stddev / quantiles plus a
// seeded bootstrap confidence interval for the mean.  Used by the bench
// harnesses to report spread, not just point estimates, over the random
// graph suites.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace lamps {

struct Summary {
  std::size_t n{0};
  double mean{0.0};
  double stddev{0.0};  ///< sample standard deviation (n-1 denominator)
  double min{0.0};
  double max{0.0};
  double median{0.0};
  double p25{0.0};
  double p75{0.0};
};

/// Summarizes the sample; all fields are 0 for an empty input.
[[nodiscard]] Summary summarize(std::span<const double> xs);

/// Linear-interpolated quantile, q in [0, 1].  Throws on empty input or
/// out-of-range q.
[[nodiscard]] double quantile(std::span<const double> xs, double q);

struct BootstrapCi {
  double lo{0.0};
  double hi{0.0};
};

/// Percentile bootstrap CI for the mean (seeded, deterministic).
/// `confidence` in (0, 1), e.g. 0.95.
[[nodiscard]] BootstrapCi bootstrap_mean_ci(std::span<const double> xs,
                                            double confidence = 0.95,
                                            std::size_t resamples = 2000,
                                            std::uint64_t seed = 0xb007);

}  // namespace lamps
