#include "util/csv.hpp"

#include <stdexcept>

namespace lamps {

std::ofstream open_csv(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open CSV output file: " + path);
  return os;
}

}  // namespace lamps
