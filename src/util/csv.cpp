#include "util/csv.hpp"

#include <cerrno>
#include <cstdio>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/errors.hpp"

namespace lamps {

namespace {

/// Whether an fsync/open errno means "this file system or permission
/// setup cannot durably sync here" rather than "the data did not reach
/// the disk".  EINVAL is how special files and some network/tmpfs mounts
/// refuse fsync entirely, EROFS/EACCES/EPERM are permission shapes (a
/// read-only file or directory), ENOTSUP mirrors EINVAL on other libcs.
/// All of these are deterministic — retrying or failing the commit would
/// not make the bytes any more durable, and the rename is atomic either
/// way — so they downgrade to best-effort uniformly for files and
/// directories alike.  Real I/O failures (EIO, EBADF, ...) still throw.
bool fsync_unsupported(int err) {
  return err == EINVAL || err == EROFS || err == EACCES || err == EPERM ||
         err == ENOTSUP;
}

std::string parent_dir(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

}  // namespace

void fsync_path(const std::string& path, bool directory) {
  // O_WRONLY is the portable way to fsync a regular file, but it is
  // refused (EACCES) for a read-only file — e.g. a journal committed from
  // a signal-driven shutdown path after the operator locked the artifact
  // tree down.  Fall back to O_RDONLY, which Linux happily fsyncs.
  int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0 && !directory && errno == EACCES) fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (directory || fsync_unsupported(errno)) return;
    throw InternalError(ErrorCode::kIo, "cannot reopen for fsync", path);
  }
  errno = 0;
  const int rc = ::fsync(fd);
  const int fsync_errno = errno;
  ::close(fd);
  if (rc != 0 && !directory && !fsync_unsupported(fsync_errno))
    throw InternalError(ErrorCode::kIo, "fsync failed", path);
}

std::ofstream open_csv(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open CSV output file: " + path);
  return os;
}

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), os_(tmp_path_) {
  if (!os_)
    throw InternalError(ErrorCode::kIo, "cannot open temp output file", tmp_path_,
                        "check that the output directory exists and is writable");
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    os_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::commit() {
  if (committed_) return;
  os_.flush();
  if (!os_) throw InternalError(ErrorCode::kIo, "write failed", tmp_path_);
  os_.close();
  fsync_path(tmp_path_, /*directory=*/false);
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
    throw InternalError(ErrorCode::kIo, "rename failed", tmp_path_ + " -> " + path_);
  fsync_path(parent_dir(path_), /*directory=*/true);
  committed_ = true;
}

}  // namespace lamps
