#include "util/csv.hpp"

#include <cstdio>
#include <stdexcept>

#include <fcntl.h>
#include <unistd.h>

#include "util/errors.hpp"

namespace lamps {

namespace {

/// fsync the file at `path` (O_WRONLY for regular files, O_RDONLY for
/// directories).  Best-effort on file systems that reject directory fsync.
void fsync_path(const std::string& path, bool directory) {
  const int fd = ::open(path.c_str(), directory ? O_RDONLY : O_WRONLY);
  if (fd < 0) {
    if (directory) return;  // some file systems refuse; rename is still atomic
    throw InternalError(ErrorCode::kIo, "cannot reopen for fsync", path);
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0 && !directory)
    throw InternalError(ErrorCode::kIo, "fsync failed", path);
}

std::string parent_dir(const std::string& path) {
  const auto pos = path.find_last_of('/');
  if (pos == std::string::npos) return ".";
  if (pos == 0) return "/";
  return path.substr(0, pos);
}

}  // namespace

std::ofstream open_csv(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot open CSV output file: " + path);
  return os;
}

AtomicFile::AtomicFile(std::string path)
    : path_(std::move(path)), tmp_path_(path_ + ".tmp"), os_(tmp_path_) {
  if (!os_)
    throw InternalError(ErrorCode::kIo, "cannot open temp output file", tmp_path_,
                        "check that the output directory exists and is writable");
}

AtomicFile::~AtomicFile() {
  if (!committed_) {
    os_.close();
    std::remove(tmp_path_.c_str());
  }
}

void AtomicFile::commit() {
  if (committed_) return;
  os_.flush();
  if (!os_) throw InternalError(ErrorCode::kIo, "write failed", tmp_path_);
  os_.close();
  fsync_path(tmp_path_, /*directory=*/false);
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0)
    throw InternalError(ErrorCode::kIo, "rename failed", tmp_path_ + " -> " + path_);
  fsync_path(parent_dir(path_), /*directory=*/true);
  committed_ = true;
}

}  // namespace lamps
