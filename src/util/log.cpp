#include "util/log.hpp"

#include "obs/log.hpp"

// The canonical level filter and sink live in obs/log.cpp so the plain
// and structured logging paths share one configuration; this file only
// adapts the historical lamps:: API onto them (the enumerators are
// value-identical by construction).

namespace lamps {

void set_log_level(LogLevel level) {
  obs::set_min_severity(static_cast<obs::LogSeverity>(level));
}

LogLevel log_level() { return static_cast<LogLevel>(obs::min_severity()); }

void log_line(LogLevel level, std::string_view message) {
  obs::emit_plain(static_cast<obs::LogSeverity>(level), message);
}

}  // namespace lamps
