#include "util/log.hpp"

#include <atomic>
#include <iostream>

namespace lamps {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

constexpr std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }

LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log_line(LogLevel level, std::string_view message) {
  if (level < log_level()) return;
  std::scoped_lock lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace lamps
