#include "util/summary.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace lamps {

double quantile(std::span<const double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q outside [0, 1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double idx = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(idx));
  const auto hi = static_cast<std::size_t>(std::ceil(idx));
  const double frac = idx - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  double sum = 0.0;
  s.min = xs[0];
  s.max = xs[0];
  for (const double x : xs) {
    sum += x;
    s.min = std::min(s.min, x);
    s.max = std::max(s.max, x);
  }
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double ss = 0.0;
    for (const double x : xs) ss += (x - s.mean) * (x - s.mean);
    s.stddev = std::sqrt(ss / static_cast<double>(s.n - 1));
  }
  s.median = quantile(xs, 0.5);
  s.p25 = quantile(xs, 0.25);
  s.p75 = quantile(xs, 0.75);
  return s;
}

BootstrapCi bootstrap_mean_ci(std::span<const double> xs, double confidence,
                              std::size_t resamples, std::uint64_t seed) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_mean_ci: empty sample");
  if (confidence <= 0.0 || confidence >= 1.0)
    throw std::invalid_argument("bootstrap_mean_ci: confidence outside (0, 1)");
  if (resamples < 10) throw std::invalid_argument("bootstrap_mean_ci: too few resamples");

  Rng rng(seed);
  std::vector<double> means(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i)
      sum += xs[static_cast<std::size_t>(rng.uniform(0, xs.size() - 1))];
    means[r] = sum / static_cast<double>(xs.size());
  }
  const double alpha = (1.0 - confidence) / 2.0;
  return BootstrapCi{quantile(means, alpha), quantile(means, 1.0 - alpha)};
}

}  // namespace lamps
