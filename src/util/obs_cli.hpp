// Shared --trace-out / --metrics-out / --log-level plumbing for the CLI
// front ends (tools/lamps_cli.cpp, tools/lamps_exp.cpp): one struct to
// register the flags, apply them, wrap the command body in a root span,
// and write the requested files once the body — and its root span — have
// finished.
#pragma once

#include <functional>
#include <iosfwd>
#include <string>

#include "util/cli.hpp"

namespace lamps {

struct ObsOptions {
  std::string trace_out;    ///< Chrome trace-event JSON path ("" = tracing stays off)
  std::string metrics_out;  ///< metrics registry export (.csv → CSV, else JSON)
  std::string log_level;    ///< debug | info | warn | error ("" = leave default)
  bool log_json{false};     ///< emit structured JSON-lines log records

  void register_flags(CliParser& cli);

  /// Applies --log-level and enables span recording when --trace-out is
  /// set.  Throws std::invalid_argument on an unknown log level.
  void apply() const;

  /// Disables tracing and writes the requested files, reporting each
  /// through the log layer (stderr by default, structured records under
  /// --log-json — stdout carries CSV/table payloads).  Returns false if
  /// any file could not be written.
  [[nodiscard]] bool finish() const;
};

/// apply() + a root span named `span_name` around `body` + finish().
/// The root span closes before the trace is exported, so a trace of a
/// healthy run always covers the whole command body.  Returns body's exit
/// code, or 1 if body succeeded but an output file could not be written.
int run_observed(const ObsOptions& opts, const char* span_name,
                 const std::function<int()>& body);

}  // namespace lamps
