#include "util/signal.hpp"

#include <atomic>
#include <csignal>

#include <fcntl.h>
#include <unistd.h>

namespace lamps {

namespace {

std::atomic<bool> g_drain_pending{false};
std::atomic<int> g_pipe_read{-1};
std::atomic<int> g_pipe_write{-1};

void notify() noexcept {
  g_drain_pending.store(true, std::memory_order_release);
  const int fd = g_pipe_write.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe already wakes every poller; the return value is moot.
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

extern "C" void drain_signal_handler(int) { notify(); }

}  // namespace

int install_drain_signal_handlers() {
  int expected = -1;
  if (g_pipe_read.load(std::memory_order_acquire) < 0) {
    int fds[2];
    if (::pipe(fds) == 0) {
      ::fcntl(fds[0], F_SETFL, O_NONBLOCK);
      ::fcntl(fds[1], F_SETFL, O_NONBLOCK);
      g_pipe_write.store(fds[1], std::memory_order_release);
      // Publish the read end last; expected stays -1 on the first call.
      g_pipe_read.compare_exchange_strong(expected, fds[0], std::memory_order_acq_rel);
    }
  }
  struct sigaction sa{};
  sa.sa_handler = drain_signal_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: blocking accept/read must wake
  ::sigaction(SIGTERM, &sa, nullptr);
  ::sigaction(SIGINT, &sa, nullptr);
  return g_pipe_read.load(std::memory_order_acquire);
}

bool drain_signal_pending() noexcept {
  return g_drain_pending.load(std::memory_order_acquire);
}

int drain_signal_fd() noexcept { return g_pipe_read.load(std::memory_order_acquire); }

void request_drain_signal() noexcept { notify(); }

void reset_drain_signal_for_testing() noexcept {
  g_drain_pending.store(false, std::memory_order_release);
  const int fd = g_pipe_read.load(std::memory_order_acquire);
  if (fd >= 0) {
    char buf[64];
    while (::read(fd, buf, sizeof buf) > 0) {
    }
  }
}

}  // namespace lamps
