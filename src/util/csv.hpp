// Minimal RFC-4180-ish CSV writer used by the bench binaries to emit the
// data series behind every reproduced table/figure.
#pragma once

#include <fstream>
#include <initializer_list>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace lamps {

/// Streams rows to an std::ostream, quoting fields only when required.
/// The writer does not own the stream; keep it alive for the writer's
/// lifetime.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(&os) {}

  /// Writes a full row; each cell is formatted with operator<<.
  template <typename... Ts>
  void row(const Ts&... cells) {
    bool first = true;
    ((write_cell(to_string_cell(cells), first), first = false), ...);
    *os_ << '\n';
  }

  void row_strings(const std::vector<std::string>& cells) {
    bool first = true;
    for (const auto& c : cells) {
      write_cell(c, first);
      first = false;
    }
    *os_ << '\n';
  }

 private:
  template <typename T>
  static std::string to_string_cell(const T& x) {
    if constexpr (std::is_convertible_v<T, std::string_view>) {
      return std::string(std::string_view(x));
    } else {
      std::ostringstream ss;
      ss << x;
      return ss.str();
    }
  }

  void write_cell(std::string_view cell, bool first) {
    if (!first) *os_ << ',';
    const bool needs_quotes =
        cell.find_first_of(",\"\n\r") != std::string_view::npos;
    if (!needs_quotes) {
      *os_ << cell;
      return;
    }
    *os_ << '"';
    for (char c : cell) {
      if (c == '"') *os_ << '"';
      *os_ << c;
    }
    *os_ << '"';
  }

  std::ostream* os_;
};

/// Convenience: open `path` for writing, throwing on failure.
[[nodiscard]] std::ofstream open_csv(const std::string& path);

/// fsyncs the file (or, with `directory`, the directory entry) at `path`.
/// Deterministic "cannot sync here" conditions — read-only files or
/// directories (EACCES/EPERM/EROFS) and file systems that reject fsync
/// outright (EINVAL/ENOTSUP) — degrade to best-effort uniformly instead
/// of throwing, so AtomicFile::commit() stays usable from signal-driven
/// shutdown paths (the rename is atomic regardless).  Genuine I/O errors
/// on a file still throw InternalError(kIo).
void fsync_path(const std::string& path, bool directory);

/// Crash-safe output file: writes go to `<path>.tmp`, and commit() makes
/// them visible at `path` via flush + fsync + atomic rename (the directory
/// entry is fsync'd too).  Readers therefore only ever see either the old
/// complete file or the new complete file — never a torn write, even
/// across SIGKILL.  Destroying an uncommitted AtomicFile removes the temp
/// file and leaves `path` untouched.
class AtomicFile {
 public:
  /// Opens `<path>.tmp` for writing; throws InternalError(kIo) on failure.
  explicit AtomicFile(std::string path);
  ~AtomicFile();

  AtomicFile(const AtomicFile&) = delete;
  AtomicFile& operator=(const AtomicFile&) = delete;

  [[nodiscard]] std::ostream& stream() { return os_; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Flushes, fsyncs and renames the temp file onto `path`.  Throws
  /// InternalError(kIo) on any failure; idempotent (second call no-ops).
  void commit();

 private:
  std::string path_;
  std::string tmp_path_;
  std::ofstream os_;
  bool committed_{false};
};

}  // namespace lamps
