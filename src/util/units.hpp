// Strong unit types for the quantities that flow through the simulator.
//
// The power model mixes volts, hertz, watts, joules, seconds and cycle
// counts; mixing them up silently is the classic source of 1000x errors in
// energy studies.  Each physical dimension gets its own wrapper with only
// the cross-dimension operations that are physically meaningful
// (W x s = J, J / s = W, cycles / Hz = s, ...).  The wrappers are trivial
// (a single double) and compile away entirely.
#pragma once

#include <compare>
#include <cstdint>
#include <ostream>

namespace lamps {

/// Task work and schedule positions are measured in clock cycles.  Cycle
/// counts are exact integers: the task-graph weights are integral and list
/// scheduling only ever adds them, so using an integer keeps schedules and
/// makespans bit-exact and platform-independent.
using Cycles = std::uint64_t;

namespace detail {

/// CRTP base providing the dimension-preserving operator set.
template <typename Derived>
struct Quantity {
  double v{0.0};

  constexpr Quantity() = default;
  constexpr explicit Quantity(double value) : v(value) {}

  [[nodiscard]] constexpr double value() const { return v; }

  friend constexpr Derived operator+(Derived a, Derived b) { return Derived{a.v + b.v}; }
  friend constexpr Derived operator-(Derived a, Derived b) { return Derived{a.v - b.v}; }
  friend constexpr Derived operator-(Derived a) { return Derived{-a.v}; }
  friend constexpr Derived operator*(Derived a, double s) { return Derived{a.v * s}; }
  friend constexpr Derived operator*(double s, Derived a) { return Derived{a.v * s}; }
  friend constexpr Derived operator/(Derived a, double s) { return Derived{a.v / s}; }
  /// Same-dimension ratio is dimensionless.
  friend constexpr double operator/(Derived a, Derived b) { return a.v / b.v; }
  friend constexpr auto operator<=>(Derived a, Derived b) { return a.v <=> b.v; }
  friend constexpr bool operator==(Derived a, Derived b) { return a.v == b.v; }

  constexpr Derived& operator+=(Derived o) {
    v += o.v;
    return static_cast<Derived&>(*this);
  }
  constexpr Derived& operator-=(Derived o) {
    v -= o.v;
    return static_cast<Derived&>(*this);
  }
};

}  // namespace detail

struct Seconds : detail::Quantity<Seconds> {
  using Quantity::Quantity;
};
struct Hertz : detail::Quantity<Hertz> {
  using Quantity::Quantity;
};
struct Volts : detail::Quantity<Volts> {
  using Quantity::Quantity;
};
struct Watts : detail::Quantity<Watts> {
  using Quantity::Quantity;
};
struct Joules : detail::Quantity<Joules> {
  using Quantity::Quantity;
};

// --- Physically meaningful cross-dimension operations --------------------

constexpr Joules operator*(Watts p, Seconds t) { return Joules{p.value() * t.value()}; }
constexpr Joules operator*(Seconds t, Watts p) { return p * t; }
constexpr Watts operator/(Joules e, Seconds t) { return Watts{e.value() / t.value()}; }
constexpr Seconds operator/(Joules e, Watts p) { return Seconds{e.value() / p.value()}; }

/// Number of clock periods that fit in a time span (dimensionless, may be
/// fractional; round as appropriate at the call site).
constexpr double operator*(Seconds t, Hertz f) { return t.value() * f.value(); }
constexpr double operator*(Hertz f, Seconds t) { return t * f; }

/// Wall-clock duration of an integral number of cycles at a clock rate.
[[nodiscard]] constexpr Seconds cycles_to_time(Cycles c, Hertz f) {
  return Seconds{static_cast<double>(c) / f.value()};
}

/// Clock rate required to retire `c` cycles within `t` (the "stretch"
/// frequency used when fitting a schedule to a deadline).
[[nodiscard]] constexpr Hertz required_frequency(Cycles c, Seconds t) {
  return Hertz{static_cast<double>(c) / t.value()};
}

inline std::ostream& operator<<(std::ostream& os, Seconds s) { return os << s.value() << " s"; }
inline std::ostream& operator<<(std::ostream& os, Hertz f) { return os << f.value() << " Hz"; }
inline std::ostream& operator<<(std::ostream& os, Volts u) { return os << u.value() << " V"; }
inline std::ostream& operator<<(std::ostream& os, Watts p) { return os << p.value() << " W"; }
inline std::ostream& operator<<(std::ostream& os, Joules e) { return os << e.value() << " J"; }

namespace unit_literals {

constexpr Seconds operator""_s(long double x) { return Seconds{static_cast<double>(x)}; }
constexpr Seconds operator""_ms(long double x) { return Seconds{static_cast<double>(x) * 1e-3}; }
constexpr Seconds operator""_us(long double x) { return Seconds{static_cast<double>(x) * 1e-6}; }
constexpr Hertz operator""_Hz(long double x) { return Hertz{static_cast<double>(x)}; }
constexpr Hertz operator""_MHz(long double x) { return Hertz{static_cast<double>(x) * 1e6}; }
constexpr Hertz operator""_GHz(long double x) { return Hertz{static_cast<double>(x) * 1e9}; }
constexpr Volts operator""_V(long double x) { return Volts{static_cast<double>(x)}; }
constexpr Watts operator""_W(long double x) { return Watts{static_cast<double>(x)}; }
constexpr Watts operator""_uW(long double x) { return Watts{static_cast<double>(x) * 1e-6}; }
constexpr Joules operator""_J(long double x) { return Joules{static_cast<double>(x)}; }
constexpr Joules operator""_uJ(long double x) { return Joules{static_cast<double>(x) * 1e-6}; }

}  // namespace unit_literals

}  // namespace lamps
