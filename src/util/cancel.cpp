#include "util/cancel.hpp"

#include <string>

#include "obs/metrics.hpp"
#include "util/errors.hpp"

namespace lamps {

namespace {

thread_local CancelToken* tls_token = nullptr;
// Calls until the next real clock read.  Reset on scope entry so the first
// checkpoint under a fresh token always consults the clock.
thread_local unsigned tls_countdown = 0;

obs::Counter& timeout_counter() {
  static obs::Counter& c = obs::counter("watchdog.timeouts");
  return c;
}

}  // namespace

CancelToken::CancelToken(double budget_seconds) : budget_seconds_(budget_seconds) {
  if (budget_seconds > 0.0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(budget_seconds));
  }
}

bool CancelToken::expired() const noexcept {
  if (cancelled_.load(std::memory_order_relaxed)) return true;
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

void CancelToken::check(const char* where) const {
  if (cancelled_.load(std::memory_order_relaxed)) {
    throw TimeoutError(ErrorCode::kCancelled, "work was cancelled", where);
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    timeout_counter().inc();
    throw TimeoutError(ErrorCode::kCellTimeout,
                       "watchdog budget of " + std::to_string(budget_seconds_) +
                           " s exhausted",
                       where, "raise cell_timeout_seconds or exclude the instance");
  }
}

CancelToken* current_cancel_token() noexcept { return tls_token; }

CancelScope::CancelScope(CancelToken* token) noexcept : previous_(tls_token) {
  tls_token = token;
  tls_countdown = 0;
}

CancelScope::~CancelScope() {
  tls_token = previous_;
  tls_countdown = 0;
}

void cancel_checkpoint(const char* where) {
  if (tls_token == nullptr) return;
  if (tls_countdown > 0) {
    --tls_countdown;
    return;
  }
  tls_countdown = kCancelPollStride - 1;
  tls_token->check(where);
}

}  // namespace lamps
