// Fixed-width text table formatter for human-readable bench output.
//
// The bench binaries print each reproduced paper table/figure twice: once as
// CSV (machine-readable, for plotting) and once as an aligned text table
// (what you read in the terminal).  This class renders the latter.
#pragma once

#include <cstddef>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace lamps {

class TextTable {
 public:
  /// Column headers fix the column count; subsequent rows must match it.
  explicit TextTable(std::vector<std::string> headers);

  template <typename... Ts>
  void row(const Ts&... cells) {
    std::vector<std::string> r;
    r.reserve(sizeof...(cells));
    (r.push_back(format_cell(cells)), ...);
    add_row(std::move(r));
  }

  void add_row(std::vector<std::string> cells);

  /// Inserts a horizontal separator line at the current position.
  void separator();

  /// Renders with aligned columns: first column left-aligned, the rest
  /// right-aligned (numeric convention).
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }

 private:
  template <typename T>
  static std::string format_cell(const T& x) {
    std::ostringstream ss;
    ss << x;
    return ss.str();
  }

  std::vector<std::string> headers_;
  // Empty row vector encodes a separator.
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimal places, trimming to a
/// compact fixed representation ("0.413", "12.5", "18.116").
[[nodiscard]] std::string fmt_fixed(double x, int digits);

/// Formats a ratio as a percentage string ("87.3%").
[[nodiscard]] std::string fmt_percent(double ratio, int digits = 1);

}  // namespace lamps
