// Cooperative cancellation with deadline watchdogs.
//
// The experiment sweep gives every (instance, strategy) cell a wall-clock
// budget; a pathological cell (an exact-bound blowup, an adversarial graph)
// must stop burning CPU without taking the process down.  Preemption is off
// the table — the schedulers are pure compute — so cancellation is
// cooperative: the cell owner installs a CancelToken for the current thread
// (CancelScope), and the long-running loops (list-scheduler event loop,
// exact branch-and-bound, LAMPS search probes) call cancel_checkpoint(),
// which throws TimeoutError once the budget is exhausted.
//
// Cost discipline: cancel_checkpoint() is called from scheduling hot loops,
// so it reads the clock only every kPollStride calls (a thread-local
// countdown; everything else is one pointer load and a decrement).  With a
// stride of 256 and event-loop iterations in the tens of nanoseconds, the
// detection latency is microseconds — noise against budgets of seconds.
//
// Tokens do not propagate across threads automatically; fan-out helpers
// that ship work to a pool (core's run_indexed) re-install the parent
// token in each worker so a cell's budget covers its parallel phases too.
#pragma once

#include <atomic>
#include <chrono>

namespace lamps {

/// One cancellable unit of work: an explicit cancel() flag plus an optional
/// wall-clock deadline.  Immovable (threads poll its address); create one
/// per cell on the stack and install it with CancelScope.
class CancelToken {
 public:
  /// `budget_seconds <= 0` means no deadline (explicit cancel() only).
  explicit CancelToken(double budget_seconds = 0.0);

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation (thread-safe, idempotent).
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancel_requested() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once cancelled or past the deadline (reads the clock).
  [[nodiscard]] bool expired() const noexcept;

  /// Throws TimeoutError (code E_TIMEOUT for deadline expiry, E_CANCELLED
  /// for explicit cancellation) when expired; `where` names the polling
  /// loop for the error context.
  void check(const char* where) const;

  [[nodiscard]] double budget_seconds() const noexcept { return budget_seconds_; }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_{false};
  double budget_seconds_{0.0};
  std::chrono::steady_clock::time_point deadline_{};
};

/// The token installed for the current thread, nullptr when none.
[[nodiscard]] CancelToken* current_cancel_token() noexcept;

/// RAII: installs `token` as the current thread's token, restoring the
/// previous one on destruction (scopes nest; the innermost wins).
class CancelScope {
 public:
  explicit CancelScope(CancelToken* token) noexcept;
  ~CancelScope();
  CancelScope(const CancelScope&) = delete;
  CancelScope& operator=(const CancelScope&) = delete;

 private:
  CancelToken* previous_;
};

/// Polls the current thread's token (no-op without one).  Reads the clock
/// only every kPollStride calls; an explicit cancel() is seen on the next
/// stride boundary.  Throws TimeoutError via CancelToken::check.
void cancel_checkpoint(const char* where);

inline constexpr unsigned kCancelPollStride = 256;

}  // namespace lamps
