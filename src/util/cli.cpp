#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <sstream>

namespace lamps {

namespace {

template <typename T>
bool parse_number(std::string_view text, T* out) {
  if constexpr (std::is_same_v<T, double>) {
    // std::from_chars for double is available in libstdc++ 11+, but strtod
    // keeps us portable and the inputs are tiny.
    std::string buf(text);
    char* end = nullptr;
    const double v = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) return false;
    *out = v;
    return true;
  } else {
    T v{};
    const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc{} || ptr != text.data() + text.size()) return false;
    *out = v;
    return true;
  }
}

}  // namespace

CliParser::CliParser(std::string program_description)
    : description_(std::move(program_description)) {}

void CliParser::add_generic(std::string name, std::string help, std::string default_repr,
                            bool is_flag, std::function<bool(std::string_view)> apply) {
  options_.push_back(Option{std::move(name), std::move(help), std::move(default_repr), is_flag,
                            std::move(apply)});
}

void CliParser::add_flag(std::string name, std::string help, bool* target) {
  add_generic(std::move(name), std::move(help), *target ? "true" : "false", true,
              [target](std::string_view v) {
                if (v.empty() || v == "true" || v == "1") {
                  *target = true;
                  return true;
                }
                if (v == "false" || v == "0") {
                  *target = false;
                  return true;
                }
                return false;
              });
}

void CliParser::add_option(std::string name, std::string help, int* target) {
  add_generic(std::move(name), std::move(help), std::to_string(*target), false,
              [target](std::string_view v) { return parse_number(v, target); });
}

void CliParser::add_option(std::string name, std::string help, std::size_t* target) {
  add_generic(std::move(name), std::move(help), std::to_string(*target), false,
              [target](std::string_view v) { return parse_number(v, target); });
}

void CliParser::add_option(std::string name, std::string help, double* target) {
  std::ostringstream ss;
  ss << *target;
  add_generic(std::move(name), std::move(help), ss.str(), false,
              [target](std::string_view v) { return parse_number(v, target); });
}

void CliParser::add_option(std::string name, std::string help, std::string* target) {
  add_generic(std::move(name), std::move(help), *target, false, [target](std::string_view v) {
    *target = std::string(v);
    return true;
  });
}

CliParser::Option* CliParser::find(std::string_view name) {
  for (auto& o : options_)
    if (o.name == name) return &o;
  return nullptr;
}

bool CliParser::parse(int argc, const char* const* argv, std::ostream& err) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(argv[0], err);
      return false;
    }
    if (!arg.starts_with("--")) {
      err << "unexpected positional argument: " << arg << '\n';
      print_usage(argv[0], err);
      return false;
    }
    arg.remove_prefix(2);
    std::string_view value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string_view::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    Option* opt = find(arg);
    if (opt == nullptr) {
      err << "unknown option: --" << arg << '\n';
      print_usage(argv[0], err);
      return false;
    }
    if (!has_value && !opt->is_flag) {
      if (i + 1 >= argc) {
        err << "option --" << arg << " requires a value\n";
        return false;
      }
      value = argv[++i];
    }
    if (!opt->apply(value)) {
      err << "invalid value for --" << arg << ": '" << value << "'\n";
      return false;
    }
  }
  return true;
}

void CliParser::print_usage(std::string_view argv0, std::ostream& os) const {
  os << description_ << "\n\nUsage: " << argv0 << " [options]\n\nOptions:\n";
  for (const auto& o : options_) {
    os << "  --" << o.name;
    if (!o.is_flag) os << " <value>";
    os << "\n      " << o.help << " (default: " << o.default_repr << ")\n";
  }
  os << "  --help\n      Show this message.\n";
}

}  // namespace lamps
