#include "util/obs_cli.hpp"

#include <stdexcept>
#include <string>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lamps {

void ObsOptions::register_flags(CliParser& cli) {
  cli.add_option("trace-out", "write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
                 &trace_out);
  cli.add_option("metrics-out", "write the metrics registry (.csv = CSV, else JSON)",
                 &metrics_out);
  cli.add_option("log-level", "stderr log level: debug|info|warn|error", &log_level);
  cli.add_flag("log-json", "structured JSON-lines log records instead of plain text",
               &log_json);
}

void ObsOptions::apply() const {
  if (!log_level.empty()) {
    if (log_level == "debug")
      set_log_level(LogLevel::kDebug);
    else if (log_level == "info")
      set_log_level(LogLevel::kInfo);
    else if (log_level == "warn")
      set_log_level(LogLevel::kWarn);
    else if (log_level == "error")
      set_log_level(LogLevel::kError);
    else
      throw std::invalid_argument("unknown --log-level: " + log_level +
                                  " (debug|info|warn|error)");
  }
  if (log_json) obs::set_structured_logging(true);
  if (!trace_out.empty()) obs::set_tracing_enabled(true);
}

bool ObsOptions::finish() const {
  // Through the log layer, not a raw stream: under --log-json these lines
  // wrap as structured records, keeping stderr pure JSON end to end.
  bool ok = true;
  if (!trace_out.empty()) {
    obs::set_tracing_enabled(false);
    if (obs::write_chrome_trace_file(trace_out)) {
      obs::emit_plain(obs::LogSeverity::kInfo,
                      "wrote trace " + trace_out + " (" +
                          std::to_string(obs::trace_span_count()) + " spans)");
    } else {
      obs::emit_plain(obs::LogSeverity::kError, "cannot write trace " + trace_out);
      ok = false;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::write_metrics_file(metrics_out)) {
      obs::emit_plain(obs::LogSeverity::kInfo, "wrote metrics " + metrics_out);
    } else {
      obs::emit_plain(obs::LogSeverity::kError, "cannot write metrics " + metrics_out);
      ok = false;
    }
  }
  return ok;
}

int run_observed(const ObsOptions& opts, const char* span_name,
                 const std::function<int()>& body) {
  opts.apply();
  int rc = 0;
  {
    obs::Span root(span_name);
    rc = body();
  }
  if (!opts.finish() && rc == 0) rc = 1;
  return rc;
}

}  // namespace lamps
