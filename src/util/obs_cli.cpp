#include "util/obs_cli.hpp"

#include <iostream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace lamps {

void ObsOptions::register_flags(CliParser& cli) {
  cli.add_option("trace-out", "write a Chrome trace-event JSON (chrome://tracing, Perfetto)",
                 &trace_out);
  cli.add_option("metrics-out", "write the metrics registry (.csv = CSV, else JSON)",
                 &metrics_out);
  cli.add_option("log-level", "stderr log level: debug|info|warn|error", &log_level);
}

void ObsOptions::apply() const {
  if (!log_level.empty()) {
    if (log_level == "debug")
      set_log_level(LogLevel::kDebug);
    else if (log_level == "info")
      set_log_level(LogLevel::kInfo);
    else if (log_level == "warn")
      set_log_level(LogLevel::kWarn);
    else if (log_level == "error")
      set_log_level(LogLevel::kError);
    else
      throw std::invalid_argument("unknown --log-level: " + log_level +
                                  " (debug|info|warn|error)");
  }
  if (!trace_out.empty()) obs::set_tracing_enabled(true);
}

bool ObsOptions::finish(std::ostream& diag) const {
  bool ok = true;
  if (!trace_out.empty()) {
    obs::set_tracing_enabled(false);
    if (obs::write_chrome_trace_file(trace_out)) {
      diag << "wrote trace " << trace_out << " (" << obs::trace_span_count()
           << " spans)\n";
    } else {
      diag << "cannot write trace " << trace_out << '\n';
      ok = false;
    }
  }
  if (!metrics_out.empty()) {
    if (obs::write_metrics_file(metrics_out)) {
      diag << "wrote metrics " << metrics_out << '\n';
    } else {
      diag << "cannot write metrics " << metrics_out << '\n';
      ok = false;
    }
  }
  return ok;
}

int run_observed(const ObsOptions& opts, const char* span_name,
                 const std::function<int()>& body) {
  opts.apply();
  int rc = 0;
  {
    obs::Span root(span_name);
    rc = body();
  }
  if (!opts.finish(std::cerr) && rc == 0) rc = 1;
  return rc;
}

}  // namespace lamps
