#include "util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <stdexcept>

namespace lamps {

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw std::invalid_argument("TextTable requires at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size())
    throw std::invalid_argument("TextTable row has wrong number of cells");
  rows_.push_back(std::move(cells));
}

void TextTable::separator() { rows_.emplace_back(); }

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());

  const auto print_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      os << (c == 0 ? "+" : "");
      os << std::string(widths[c] + 2, '-') << '+';
    }
    os << '\n';
  };
  const auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "|" : "");
      if (c == 0)
        os << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
      else
        os << ' ' << std::right << std::setw(static_cast<int>(widths[c])) << cells[c] << " |";
    }
    os << '\n';
  };

  print_rule();
  print_cells(headers_);
  print_rule();
  for (const auto& r : rows_) {
    if (r.empty())
      print_rule();
    else
      print_cells(r);
  }
  print_rule();
}

std::string fmt_fixed(double x, int digits) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(digits) << x;
  return ss.str();
}

std::string fmt_percent(double ratio, int digits) {
  return fmt_fixed(ratio * 100.0, digits) + "%";
}

}  // namespace lamps
