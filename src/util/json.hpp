// Shared JSON encoding primitives for every exporter that hand-writes
// JSON (obs/metrics, obs/telemetry, obs/trace, net/protocol).
//
// The escaper used to be copy-pasted per exporter and only handled `"`
// and `\` — a metric/strategy/span name carrying a control character (a
// tab pasted into an INI field, a newline inside an inline STG payload)
// produced invalid JSON and broke every strict parser downstream.  This
// header is the single implementation: RFC 8259 string escaping with the
// short forms \b \f \n \r \t and \u00XX for the remaining control
// characters.  Bytes >= 0x20 (including multi-byte UTF-8 sequences) pass
// through untouched.
//
// Header-only on purpose: lamps_util links against lamps_obs, so the obs
// exporters can include this without creating a library cycle.
#pragma once

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>

namespace lamps {

/// Writes `s` with JSON string escaping (quotes not included): `"` `\`
/// and all control characters below 0x20 are escaped; everything else —
/// UTF-8 continuation bytes included — is emitted verbatim.
inline void write_json_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

/// json_escape("a\tb") == "a\\tb": the escaped body, without quotes.
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::ostringstream ss;
  write_json_escaped(ss, s);
  return ss.str();
}

/// Writes `s` as a complete JSON string token, quotes included.
inline void write_json_string(std::ostream& os, std::string_view s) {
  os << '"';
  write_json_escaped(os, s);
  os << '"';
}

/// Shortest round-trip decimal for a finite double.  JSON has no
/// inf/nan tokens, so non-finite values are emitted as `null` — the
/// documented backstop for aggregates (e.g. a histogram sum poisoned by
/// +inf observations) that must still parse strictly.
inline void write_json_double(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  os << ss.str();
}

[[nodiscard]] inline std::string json_double(double v) {
  std::ostringstream ss;
  write_json_double(ss, v);
  return ss.str();
}

}  // namespace lamps
