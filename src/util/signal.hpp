// Async-signal-safe shutdown notification for the serve daemon.
//
// A signal handler may only touch lock-free primitives, so the classic
// self-pipe trick carries the event into ordinary control flow: SIGTERM/
// SIGINT set a process-wide atomic flag and write one byte into a pipe
// whose read end any poll loop (the server's accept loop, the connection
// readers) can multiplex with its sockets.  Installation is idempotent;
// the pipe is created once and intentionally never closed (handlers may
// fire during static destruction).
#pragma once

namespace lamps {

/// Installs SIGTERM + SIGINT handlers that request a drain.  Returns the
/// pipe read end to poll; safe to call more than once.
int install_drain_signal_handlers();

/// True once a drain signal arrived (or request_drain_signal was called).
[[nodiscard]] bool drain_signal_pending() noexcept;

/// Readable fd that becomes ready when a drain is requested; -1 until
/// install_drain_signal_handlers() ran.
[[nodiscard]] int drain_signal_fd() noexcept;

/// Raises the drain flag from ordinary code (tests, an admin endpoint),
/// waking every poller exactly like a real signal.
void request_drain_signal() noexcept;

/// Testing backdoor: clears the flag and drains the pipe so one process
/// can exercise several drain cycles.
void reset_drain_signal_for_testing() noexcept;

}  // namespace lamps
