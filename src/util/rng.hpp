// Deterministic, seedable random number generation.
//
// The benchmark-suite generators must produce identical graphs on every
// platform and run, so we avoid std::mt19937's distribution functions
// (libstdc++/libc++ differ) and implement xoshiro256** plus our own
// distribution helpers.  Every generator in src/stg takes an explicit seed.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

namespace lamps {

/// SplitMix64: used to expand a single 64-bit seed into a full xoshiro
/// state (the construction recommended by the xoshiro authors).
class SplitMix64 {
 public:
  constexpr explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality, tiny state.  Satisfies
/// std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x1a2b3c4d5e6f7081ULL) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  constexpr result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive, unbiased (Lemire rejection).
  constexpr std::uint64_t uniform(std::uint64_t lo, std::uint64_t hi) {
    const std::uint64_t range = hi - lo + 1;  // hi == max() && lo == 0 unsupported by design
    // Rejection sampling on the top bits to avoid modulo bias.
    const std::uint64_t limit = max() - max() % range;
    std::uint64_t x = (*this)();
    while (x >= limit) x = (*this)();
    return lo + x % range;
  }

  /// Uniform double in [0, 1).
  constexpr double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform_real(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Bernoulli trial with probability p.
  constexpr bool bernoulli(double p) { return uniform01() < p; }

  /// Fork an independent stream (for parallel generation): hashes the
  /// current state together with `stream_id` so forks do not overlap.
  [[nodiscard]] constexpr Rng fork(std::uint64_t stream_id) const {
    SplitMix64 sm(state_[0] ^ (state_[3] * 0x9e3779b97f4a7c15ULL) ^ stream_id);
    Rng r(sm.next());
    return r;
  }

  /// Gaussian N(0, 1) via Box-Muller on our own uniforms (std::normal_
  /// distribution differs across standard libraries).  Consumes two draws.
  double normal01() {
    constexpr double two_pi = 6.283185307179586476925286766559;
    const double u1 = uniform01();
    const double u2 = uniform01();
    // 1 - u1 in (0, 1] keeps the log argument away from zero.
    return std::sqrt(-2.0 * std::log(1.0 - u1)) * std::cos(two_pi * u2);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  constexpr void shuffle(std::span<T> xs) {
    for (std::size_t i = xs.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform(0, i - 1));
      using std::swap;
      swap(xs[i - 1], xs[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the seed of an independent child stream for fan-out work item
/// `index` under master `seed`.
///
/// Parallel loops (Monte-Carlo trials, per-run variability draws) must NOT
/// share one Rng across work items — results would depend on thread
/// interleaving — and must not derive child seeds by cheap arithmetic
/// (`seed + i`, `1000 * i + run`): consecutive xoshiro seeds produce
/// correlated early outputs and collide between nested fan-outs.  Seeding
/// each work item with child_seed(seed, index) gives every item a
/// statistically independent stream that depends only on (seed, index), so
/// results are reproducible at any thread count.
[[nodiscard]] constexpr std::uint64_t child_seed(std::uint64_t seed, std::uint64_t index) {
  SplitMix64 sm(seed);
  const std::uint64_t mixed = sm.next() ^ (0x9e3779b97f4a7c15ULL * (index + 1));
  SplitMix64 sm2(mixed);
  return sm2.next();
}

/// Convenience: an Rng seeded with child_seed(seed, index).
[[nodiscard]] constexpr Rng child_rng(std::uint64_t seed, std::uint64_t index) {
  return Rng(child_seed(seed, index));
}

}  // namespace lamps
