// Fixed-size thread pool with a parallel_for_index helper.
//
// The experiment sweeps (hundreds of graphs x deadlines x strategies) are
// embarrassingly parallel; each instance is scheduled independently.  The
// pool uses a single mutex-protected deque — contention is irrelevant here
// because every work item is milliseconds to seconds of scheduling work.
//
// The pool feeds the observability layer (observation-only, never affects
// which task runs where): a queue-depth/active-workers gauge pair plus
// task queue-wait and run-time histograms, all under "threadpool." in the
// global metrics registry.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

namespace lamps {

class ThreadPool {
 public:
  /// `num_threads == 0` selects std::thread::hardware_concurrency() (at
  /// least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t num_threads() const { return workers_.size(); }
  /// Alias of num_threads(), for symmetry with queued()/active().
  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  /// Tasks waiting in the queue (submitted, not yet started).
  [[nodiscard]] std::size_t queued() const;
  /// Tasks currently executing on a worker.
  [[nodiscard]] std::size_t active() const;

  /// Enqueues a task and returns the future observing it.  An exception
  /// escaping the task is captured into the future (never swallowed by the
  /// worker, never terminates the pool); callers that discard the future
  /// accept losing it.  Throws std::logic_error — reporting the pool's
  /// worker, queued and active counts — if the pool is already shutting
  /// down.
  std::future<void> submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::promise<void> done;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<QueuedTask> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_work_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_{0};
  bool stopping_{false};
};

/// Runs body(i) for i in [0, count) across the pool and waits for
/// completion.  `body` must be safe to invoke concurrently for distinct i.
/// Every index runs to completion even when some throw; afterwards the
/// exception of the *lowest* failed index is rethrown (deterministic
/// regardless of thread interleaving).
void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body);

}  // namespace lamps
