#include "util/errors.hpp"

namespace lamps {

namespace {

std::string compose(ErrorCode code, const std::string& message, const std::string& context,
                    const std::string& hint) {
  std::string out(to_string(code));
  out += ": ";
  out += message;
  if (!context.empty()) {
    out += " [";
    out += context;
    out += ']';
  }
  if (!hint.empty()) {
    out += " (hint: ";
    out += hint;
    out += ')';
  }
  return out;
}

}  // namespace

std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return "E_NONE";
    case ErrorCode::kIniParse:
      return "E_INI_PARSE";
    case ErrorCode::kIniValue:
      return "E_INI_VALUE";
    case ErrorCode::kStgParse:
      return "E_STG_PARSE";
    case ErrorCode::kGraphStructure:
      return "E_GRAPH_STRUCTURE";
    case ErrorCode::kConfig:
      return "E_CONFIG";
    case ErrorCode::kJsonParse:
      return "E_JSON_PARSE";
    case ErrorCode::kScheduleInvalid:
      return "E_SCHEDULE_INVALID";
    case ErrorCode::kCellTimeout:
      return "E_TIMEOUT";
    case ErrorCode::kCancelled:
      return "E_CANCELLED";
    case ErrorCode::kIo:
      return "E_IO";
    case ErrorCode::kInternal:
      return "E_INTERNAL";
  }
  return "E_INTERNAL";
}

ErrorCode error_code_from_string(std::string_view name) {
  for (const ErrorCode c :
       {ErrorCode::kNone, ErrorCode::kIniParse, ErrorCode::kIniValue, ErrorCode::kStgParse,
        ErrorCode::kGraphStructure, ErrorCode::kConfig, ErrorCode::kJsonParse,
        ErrorCode::kScheduleInvalid,
        ErrorCode::kCellTimeout, ErrorCode::kCancelled, ErrorCode::kIo, ErrorCode::kInternal})
    if (name == to_string(c)) return c;
  return ErrorCode::kInternal;
}

int exit_code_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kNone:
      return 0;
    case ErrorCode::kIniParse:
    case ErrorCode::kIniValue:
    case ErrorCode::kStgParse:
    case ErrorCode::kGraphStructure:
    case ErrorCode::kConfig:
    case ErrorCode::kJsonParse:
      return 2;
    case ErrorCode::kScheduleInvalid:
      return 3;
    case ErrorCode::kCellTimeout:
    case ErrorCode::kCancelled:
      return 4;
    case ErrorCode::kIo:
      return 5;
    case ErrorCode::kInternal:
      return 1;
  }
  return 1;
}

Error::Error(ErrorCode code, const std::string& message, std::string context,
             std::string hint, bool retryable)
    : std::runtime_error(compose(code, message, context, hint)),
      code_(code),
      message_(message),
      context_(std::move(context)),
      hint_(std::move(hint)),
      retryable_(retryable) {}

}  // namespace lamps
