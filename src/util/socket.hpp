// Thin POSIX TCP helpers for the serving path (net/server, lamps_loadgen).
//
// Deliberately minimal: blocking sockets, IPv4 loopback-style addressing,
// RAII fd ownership, and a buffered line reader — everything the
// JSON-lines protocol needs and nothing more.  Readiness multiplexing
// (accept loops, drain wake-ups) goes through poll_readable so callers
// can mix a socket with a signal self-pipe.
//
// Robustness hooks (all opt-in, zero cost when unused):
//   - send_all_deadline bounds how long a write may stall on a slow peer;
//   - try_connect_tcp bounds the connect handshake;
//   - LineReader can cap the per-line buffer (oversize lines surface as
//     Status::kOverflow and the stream resynchronizes at the next '\n');
//   - a FaultInjector attached to a Socket/LineReader injects short
//     reads/writes, resets and torn writes on a deterministic per-seed
//     schedule (util/faultinject.hpp) for chaos testing.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lamps {

class FaultInjector;  // util/faultinject.hpp

/// Move-only owner of a connected socket (or any) file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Attaches a fault injector to the write path (nullptr detaches).  The
  /// injector must outlive the socket's sends.
  void set_fault_injector(FaultInjector* injector) { fault_ = injector; }

  enum class SendStatus { kOk, kTimeout, kError };

  /// Writes the whole buffer (retrying partial writes / EINTR) under a
  /// cumulative deadline: `timeout_ms` is anchored once at entry and each
  /// wait for window space gets only the remaining budget, so a slow-loris
  /// peer draining one byte per window cannot stall the writer forever
  /// (-1 = unbounded).  kError once the peer is gone (EPIPE/ECONNRESET)
  /// or on any other failure.
  [[nodiscard]] SendStatus send_all_deadline(std::string_view data,
                                             int timeout_ms) const;

  enum class IoStatus { kOk, kWouldBlock, kError };

  /// One non-blocking send attempt (EINTR retried), for event-loop
  /// writers.  On kOk, `*sent` holds the bytes the kernel accepted —
  /// possibly fewer than data.size(), and possibly clamped/torn by an
  /// attached fault injector.  kWouldBlock when the peer's receive
  /// window is full: register for writability and retry later.
  [[nodiscard]] IoStatus send_some(std::string_view data, std::size_t* sent) const;

  /// Toggles O_NONBLOCK on the fd.  Returns false when fcntl fails.
  bool set_nonblocking(bool on) const;

  /// send_all_deadline without a stall bound.  Returns false on error.
  bool send_all(std::string_view data) const {
    return send_all_deadline(data, -1) == SendStatus::kOk;
  }

  /// Half-closes the write side so the peer sees EOF after the last
  /// response while we can still drain its final bytes.
  void shutdown_write() const;

  /// Full shutdown (both directions) without closing the fd: safe to call
  /// while another thread polls this socket — its poll wakes with EOF and
  /// the fd number cannot be reused underneath it.
  void shutdown_both() const;

  void close();

 private:
  int fd_{-1};
  FaultInjector* fault_{nullptr};
};

/// Listening IPv4 TCP socket.  `port == 0` binds an ephemeral port;
/// `port()` reports the actual one.  Throws InternalError(kIo) when the
/// socket cannot be bound.
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port, int backlog = 128);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return socket_.fd(); }

  /// Accepts one connection; empty optional on EINTR, EAGAIN (when the
  /// listener is non-blocking) or a transient accept failure — callers
  /// poll/epoll first, so no connection pending means "try again".
  [[nodiscard]] std::optional<Socket> accept() const;

  /// Toggles O_NONBLOCK on the listening fd (event-loop accept).
  bool set_nonblocking(bool on) const { return socket_.set_nonblocking(on); }

  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_{0};
};

/// Connects to `host`:`port` with a handshake bound of `timeout_ms`
/// (-1 = kernel default).  Returns nullopt on failure or timeout; when
/// `error` is non-null it receives a description.  Never throws.
[[nodiscard]] std::optional<Socket> try_connect_tcp(std::uint16_t port,
                                                    const std::string& host = "127.0.0.1",
                                                    int timeout_ms = -1,
                                                    std::string* error = nullptr);

/// Connects to 127.0.0.1:`port` (or `host` when given).  Throws
/// InternalError(kIo) on failure.
[[nodiscard]] Socket connect_tcp(std::uint16_t port, const std::string& host = "127.0.0.1");

/// poll(2) on up to two fds (`fd2 < 0` = only one).  Returns a bitmask:
/// bit 0 set when fd1 is readable/EOF, bit 1 for fd2.  0 on timeout;
/// `timeout_ms < 0` blocks indefinitely.  EINTR is retried with the
/// remaining budget, never reported as a timeout.
[[nodiscard]] unsigned poll_readable(int fd1, int fd2, int timeout_ms);

/// poll(2) for writability on one fd.  True when writable (or the peer
/// hung up — the next send surfaces the error); false on timeout.  EINTR
/// is retried with the remaining budget.
[[nodiscard]] bool poll_writable(int fd, int timeout_ms);

/// Buffered newline-delimited reader over a socket fd (does not own it).
///
/// Two usage styles:
///   - read_line(): blocks until one full line is available (clients);
///   - next_line() + fill(): incremental, never blocks beyond one recv
///     that the caller polled for (the server's reader loop, which
///     interleaves timeout accounting between fills).
class LineReader {
 public:
  /// `max_line_bytes` caps the unterminated tail the reader buffers; a
  /// line exceeding it is discarded through its terminating '\n' and
  /// reported once as Status::kOverflow (0 = unbounded).  `fault` injects
  /// read-side chaos (nullptr = none; must outlive the reader).
  explicit LineReader(int fd, std::size_t max_line_bytes = 0,
                      FaultInjector* fault = nullptr)
      : fd_(fd), max_line_bytes_(max_line_bytes), fault_(fault) {}

  enum class Status {
    kLine,        ///< one complete line in `out` (trailing '\n' stripped)
    kEof,         ///< stream ended, nothing buffered
    kError,       ///< recv failed (including injected resets)
    kAgain,       ///< no complete line buffered yet — fill() for more
    kOverflow,    ///< an oversize line was discarded (stream resynced)
    kWouldBlock,  ///< fill() on a non-blocking fd with no bytes pending
  };

  /// Blocks until one full line is available.  kEof after the final,
  /// possibly unterminated, line; kOverflow surfaces oversize lines.
  Status read_line(std::string& out);

  /// Non-blocking: pops a buffered line (or the final unterminated line
  /// once EOF was seen, or a pending kOverflow report).  kAgain when more
  /// bytes are needed, kEof at end of stream.
  Status next_line(std::string& out);

  /// One recv into the buffer (the caller polls for readability first,
  /// so this blocks at most for one ready read).  kAgain = bytes
  /// buffered, kEof = peer half-closed, kError = failure/injected reset,
  /// kWouldBlock = non-blocking fd with nothing to read yet (the event
  /// loop waits for the next EPOLLIN instead of spinning).
  Status fill();

  /// True when a complete buffered line can be returned without touching
  /// the socket.
  [[nodiscard]] bool has_buffered_line() const;

  /// True while an incomplete (not yet terminated) line sits in the
  /// buffer — the condition a read timeout judges.
  [[nodiscard]] bool has_partial_line() const;

 private:
  int fd_;
  std::size_t max_line_bytes_;
  FaultInjector* fault_;
  std::string buffer_;
  bool eof_{false};
  bool overflow_pending_{false};
  bool discarding_{false};
};

}  // namespace lamps
