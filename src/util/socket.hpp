// Thin POSIX TCP helpers for the serving path (net/server, lamps_loadgen).
//
// Deliberately minimal: blocking sockets, IPv4 loopback-style addressing,
// RAII fd ownership, and a buffered line reader — everything the
// JSON-lines protocol needs and nothing more.  Readiness multiplexing
// (accept loops, drain wake-ups) goes through poll_readable so callers
// can mix a socket with a signal self-pipe.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace lamps {

/// Move-only owner of a connected socket (or any) file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }

  /// Writes the whole buffer (retrying partial writes / EINTR).  Returns
  /// false once the peer is gone (EPIPE/ECONNRESET) or on any other error.
  bool send_all(std::string_view data) const;

  /// Half-closes the write side so the peer sees EOF after the last
  /// response while we can still drain its final bytes.
  void shutdown_write() const;

  void close();

 private:
  int fd_{-1};
};

/// Listening IPv4 TCP socket.  `port == 0` binds an ephemeral port;
/// `port()` reports the actual one.  Throws InternalError(kIo) when the
/// socket cannot be bound.
class ListenSocket {
 public:
  explicit ListenSocket(std::uint16_t port, int backlog = 128);

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] int fd() const { return socket_.fd(); }

  /// Accepts one connection; empty optional on EINTR or a transient
  /// accept failure (callers poll first, so no connection pending means
  /// "try again").
  [[nodiscard]] std::optional<Socket> accept() const;

  void close() { socket_.close(); }

 private:
  Socket socket_;
  std::uint16_t port_{0};
};

/// Connects to 127.0.0.1:`port` (or `host` when given).  Throws
/// InternalError(kIo) on failure.
[[nodiscard]] Socket connect_tcp(std::uint16_t port, const std::string& host = "127.0.0.1");

/// poll(2) on up to two fds (`fd2 < 0` = only one).  Returns a bitmask:
/// bit 0 set when fd1 is readable/EOF, bit 1 for fd2.  0 on timeout;
/// `timeout_ms < 0` blocks indefinitely.  EINTR reports as timeout.
[[nodiscard]] unsigned poll_readable(int fd1, int fd2, int timeout_ms);

/// Buffered newline-delimited reader over a socket fd (does not own it).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  enum class Status { kLine, kEof, kError };

  /// Blocks until one full line is available (the trailing '\n' is
  /// stripped).  kEof after the final, possibly unterminated, line.
  Status read_line(std::string& out);

  /// True when a complete buffered line can be returned without touching
  /// the socket.
  [[nodiscard]] bool has_buffered_line() const;

 private:
  int fd_;
  std::string buffer_;
  bool eof_{false};
};

}  // namespace lamps
