// Leveled logging to stderr.  Deliberately minimal: the library itself is a
// deterministic simulator, so logging is used only by the long-running
// bench/example drivers for progress reporting.
#pragma once

#include <mutex>
#include <sstream>
#include <string_view>

namespace lamps {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level (default kInfo).  Thread-safe to set/read.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

/// Emits one line "[level] message" to stderr if `level` passes the filter.
/// Lines are written atomically w.r.t. other log calls.
void log_line(LogLevel level, std::string_view message);

namespace detail {

template <typename... Ts>
void log_fmt(LogLevel level, const Ts&... parts) {
  if (level < log_level()) return;
  std::ostringstream ss;
  (ss << ... << parts);
  log_line(level, ss.str());
}

}  // namespace detail

template <typename... Ts>
void log_debug(const Ts&... parts) {
  detail::log_fmt(LogLevel::kDebug, parts...);
}
template <typename... Ts>
void log_info(const Ts&... parts) {
  detail::log_fmt(LogLevel::kInfo, parts...);
}
template <typename... Ts>
void log_warn(const Ts&... parts) {
  detail::log_fmt(LogLevel::kWarn, parts...);
}
template <typename... Ts>
void log_error(const Ts&... parts) {
  detail::log_fmt(LogLevel::kError, parts...);
}

}  // namespace lamps
