// Monotonic wall-clock stopwatch for the scheduler-runtime measurements
// (paper section 4.2 reports LAMPS configuration search times), extended
// with CPU-time readings so the experiment pipeline can report wall *and*
// CPU seconds per phase (a parallel sweep's process-CPU total exceeds its
// wall clock; the gap is the parallelism actually achieved).
#pragma once

#include <chrono>
#include <ctime>

namespace lamps {

class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() {
    start_ = clock::now();
    cpu_process_start_ = cpu_process_now();
    cpu_thread_start_ = cpu_thread_now();
  }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// CPU seconds consumed by the whole process (all threads) since reset.
  [[nodiscard]] double elapsed_cpu_process_seconds() const {
    return cpu_process_now() - cpu_process_start_;
  }

  /// CPU seconds consumed by the *calling* thread since reset; meaningful
  /// only when read from the thread that constructed/reset the stopwatch.
  /// 0 on platforms without a per-thread CPU clock.
  [[nodiscard]] double elapsed_cpu_thread_seconds() const {
    return cpu_thread_now() - cpu_thread_start_;
  }

 private:
  using clock = std::chrono::steady_clock;

  static double cpu_process_now() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0)
      return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return static_cast<double>(std::clock()) / static_cast<double>(CLOCKS_PER_SEC);
  }

  static double cpu_thread_now() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
      return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
#endif
    return 0.0;
  }

  clock::time_point start_;
  double cpu_process_start_{0.0};
  double cpu_thread_start_{0.0};
};

}  // namespace lamps
