// Monotonic wall-clock stopwatch for the scheduler-runtime measurements
// (paper section 4.2 reports LAMPS configuration search times).
#pragma once

#include <chrono>

namespace lamps {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace lamps
