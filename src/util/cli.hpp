// Tiny declarative command-line flag parser for the bench and example
// binaries (keeps them dependency-free and uniform: --flag=value or
// --flag value; --help auto-generated).
#pragma once

#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace lamps {

class CliParser {
 public:
  explicit CliParser(std::string program_description);

  /// Registers a flag bound to `target`; the current value of `target` is
  /// documented as the default.
  void add_flag(std::string name, std::string help, bool* target);
  void add_option(std::string name, std::string help, int* target);
  void add_option(std::string name, std::string help, std::size_t* target);
  void add_option(std::string name, std::string help, double* target);
  void add_option(std::string name, std::string help, std::string* target);

  /// Parses argv.  Returns false (after printing usage) if --help was given
  /// or an error occurred; callers should then exit.  Unrecognized
  /// arguments are an error.  Exits with the error printed to stderr.
  [[nodiscard]] bool parse(int argc, const char* const* argv, std::ostream& err);

  void print_usage(std::string_view argv0, std::ostream& os) const;

 private:
  struct Option {
    std::string name;  // without leading "--"
    std::string help;
    std::string default_repr;
    bool is_flag{false};
    std::function<bool(std::string_view)> apply;  // returns false on parse error
  };

  void add_generic(std::string name, std::string help, std::string default_repr, bool is_flag,
                   std::function<bool(std::string_view)> apply);
  [[nodiscard]] Option* find(std::string_view name);

  std::string description_;
  std::vector<Option> options_;
};

}  // namespace lamps
