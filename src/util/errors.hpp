// Structured error taxonomy for the whole pipeline.
//
// Every failure the experiment driver can isolate carries (1) a stable
// machine-readable code (rendered into CSV/journal cells and mapped to a
// process exit code), (2) the *instance context* — which file, line, graph
// or sweep cell failed — and (3) a remediation hint for the operator.  The
// four categories mirror who has to act:
//
//   InputError       the input artifact is malformed           -> fix input
//   ValidationError  a computed result violates an invariant   -> file a bug
//   TimeoutError     a cell exceeded its watchdog budget       -> raise budget
//   InternalError    anything else (logic errors, I/O)         -> file a bug
//
// Process exit codes (documented in docs/robustness.md and README):
//
//   0  success                      4  E_TIMEOUT / E_CANCELLED
//   1  unhandled std::exception     5  E_IO
//   2  input/config errors          6  sweep completed but some cells
//   3  validation errors               failed (--strict only)
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace lamps {

enum class ErrorCode {
  kNone = 0,
  // -- input --
  kIniParse,         ///< malformed INI document
  kIniValue,         ///< INI key present but unparsable / invalid
  kStgParse,         ///< malformed STG file
  kGraphStructure,   ///< parsed, but the graph is not a valid task DAG
  kConfig,           ///< inconsistent experiment configuration
  kJsonParse,        ///< malformed JSON document (serve protocol)
  // -- validation --
  kScheduleInvalid,  ///< a strategy produced an invalid schedule
  // -- timeout --
  kCellTimeout,      ///< watchdog budget exceeded
  kCancelled,        ///< cooperative cancellation (not deadline-driven)
  // -- internal --
  kIo,               ///< file system failure (open/write/rename)
  kInternal,         ///< unexpected condition; catch-all
};

/// Stable wire name ("E_STG_PARSE", ...).  Round-trips through
/// error_code_from_string for journal replay.
[[nodiscard]] std::string_view to_string(ErrorCode code);
[[nodiscard]] ErrorCode error_code_from_string(std::string_view name);

/// Process exit code for a failure of this kind (see table above).
[[nodiscard]] int exit_code_for(ErrorCode code);

/// Exit code used by --strict runs whose sweep finished but recorded at
/// least one failed/timeout cell.
inline constexpr int kExitPartialFailure = 6;

/// Base of the taxonomy.  what() composes "<CODE>: <message> [<context>]
/// (hint: <hint>)" so untyped catch sites still print everything.
class Error : public std::runtime_error {
 public:
  Error(ErrorCode code, const std::string& message, std::string context = {},
        std::string hint = {}, bool retryable = false);

  [[nodiscard]] ErrorCode code() const noexcept { return code_; }
  /// Which instance failed: "file.stg:12", "graph r50-3 / LAMPS / d=1.5", ...
  [[nodiscard]] const std::string& context() const noexcept { return context_; }
  [[nodiscard]] const std::string& hint() const noexcept { return hint_; }
  /// The bare message, without code/context/hint decoration.
  [[nodiscard]] const std::string& message() const noexcept { return message_; }
  /// Whether retrying the same operation can plausibly succeed (transient
  /// I/O, injected faults).  Deterministic failures must stay false.
  [[nodiscard]] bool retryable() const noexcept { return retryable_; }

 private:
  ErrorCode code_;
  std::string message_;
  std::string context_;
  std::string hint_;
  bool retryable_;
};

class InputError : public Error {
 public:
  using Error::Error;
};

class ValidationError : public Error {
 public:
  using Error::Error;
};

class TimeoutError : public Error {
 public:
  using Error::Error;
};

class InternalError : public Error {
 public:
  using Error::Error;
};

}  // namespace lamps
