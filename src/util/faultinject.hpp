// Deterministic, seeded fault injection for the serving plane.
//
// Chaos testing only works when a failure found at seed 42 can be
// replayed at seed 42: every injection decision here is a pure function
// of (seed, site, per-site operation index).  Each site keeps an atomic
// operation counter; the n-th decision at a site hashes
// (seed ^ site_salt, n) through the same SplitMix construction as
// util::child_seed, so the schedule of which operations fault is fixed
// per seed no matter how threads interleave (interleaving only changes
// which connection draws which ticket, not the ticket sequence itself).
//
// Sites cover the failure surfaces the daemon must survive:
//
//   short_read       recv clamped to 1..7 bytes (fragmented/torn input)
//   read_reset       recv fails as if the peer reset the connection
//   short_write      send clamped to 1..7 bytes (partial-write retry path)
//   write_reset      send fails as if the peer vanished (EPIPE)
//   torn_write       a response goes out in two fragments with a pause
//                    between them (slow-drain / torn-line output)
//   accept_stall     the accept loop sleeps before taking a connection
//   dispatch_delay   a pool worker sleeps before computing (queue aging,
//                    deadline pressure)
//
// The injector is wired by pointer (Socket::set_fault_injector,
// LineReader's constructor, net::ServerConfig::chaos) — never globally —
// so chaos applies exactly to the sockets a harness opted in, and a
// daemon without a spec carries zero overhead (one null check per hook).
// `lamps serve --chaos-spec` / LAMPS_CHAOS enable it; the `chaosz` admin
// verb reports the spec and per-site decision/injection counts live.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lamps {

/// One injection site == one independent deterministic decision stream.
enum class FaultSite : int {
  kShortRead = 0,
  kReadReset,
  kShortWrite,
  kWriteReset,
  kTornWrite,
  kAcceptStall,
  kDispatchDelay,
};
inline constexpr int kNumFaultSites = 7;

[[nodiscard]] const char* to_string(FaultSite site);

/// Parsed `--chaos-spec`: probabilities in [0, 1] per site plus the
/// magnitudes of the time-shaped faults.  Defaults are all-off.
struct FaultSpec {
  std::uint64_t seed{1};
  double short_read{0.0};
  double read_reset{0.0};
  double short_write{0.0};
  double write_reset{0.0};
  double torn_write{0.0};
  double accept_stall{0.0};
  double dispatch_delay{0.0};
  int accept_stall_ms{20};
  int dispatch_delay_ms{10};

  /// True when any probability is positive (an all-zero spec injects
  /// nothing and is treated as "chaos off").
  [[nodiscard]] bool any() const;
};

/// Parses "seed=42,short_read=0.2,read_reset=0.05,..." (keys are the
/// FaultSpec fields).  Throws InputError(kConfig) on unknown keys,
/// unparsable values, probabilities outside [0, 1] or negative delays.
[[nodiscard]] FaultSpec parse_fault_spec(const std::string& text);

/// Canonical round-trippable rendering (only non-default fields, sorted
/// field order; an empty spec renders as "seed=<seed>").
[[nodiscard]] std::string to_string(const FaultSpec& spec);

/// Thread-safe deterministic injector over a FaultSpec.  All state is a
/// pair of atomic counters per site; decisions are lock-free.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultSpec& spec) : spec_(spec) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }

  struct ReadPlan {
    bool reset{false};
    std::size_t max_bytes{static_cast<std::size_t>(-1)};
  };
  /// Decision for one recv call.
  [[nodiscard]] ReadPlan plan_read();

  struct WritePlan {
    bool reset{false};
    std::size_t chunk{static_cast<std::size_t>(-1)};  ///< clamp for this send
    int pause_us{0};                                  ///< sleep before sending
  };
  /// Decision for one send call over `remaining` unsent bytes.
  [[nodiscard]] WritePlan plan_write(std::size_t remaining);

  /// Milliseconds to stall before accepting the next connection (0 = none).
  [[nodiscard]] int accept_stall_ms();

  /// Milliseconds to sleep before a pool worker computes (0 = none).
  [[nodiscard]] int dispatch_delay_ms();

  /// Total decisions drawn / faults injected at `site` so far.
  [[nodiscard]] std::uint64_t decisions(FaultSite site) const;
  [[nodiscard]] std::uint64_t injected(FaultSite site) const;
  [[nodiscard]] std::uint64_t injected_total() const;

  /// The chaosz payload fragment: {"seed":...,"spec":"...","sites":{...}}.
  void write_json(std::ostream& os) const;

 private:
  /// Draws the next ticket for `site`; returns true (inject) with
  /// probability `p`.  `*draw` receives independent uniform bits for
  /// sizing the fault.
  bool roll(FaultSite site, double p, std::uint64_t* draw = nullptr);

  FaultSpec spec_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> seq_{};
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> hits_{};
};

}  // namespace lamps
