#include "util/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/metrics.hpp"

namespace lamps {

namespace {

// Shared across pools (the registry aggregates); 1 µs .. ~4 s buckets
// cover everything from a phase-2 gap-only probe to a full experiment
// instance.
obs::Histogram& wait_hist() {
  static obs::Histogram& h = obs::histogram(
      "threadpool.task_wait_seconds", obs::Histogram::exponential_bounds(1e-6, 4.0, 12));
  return h;
}
obs::Histogram& run_hist() {
  static obs::Histogram& h = obs::histogram(
      "threadpool.task_run_seconds", obs::Histogram::exponential_bounds(1e-6, 4.0, 12));
  return h;
}
obs::Gauge& queue_gauge() {
  static obs::Gauge& g = obs::gauge("threadpool.queue_depth");
  return g;
}
obs::Gauge& active_gauge() {
  static obs::Gauge& g = obs::gauge("threadpool.active_workers");
  return g;
}
obs::Counter& submitted_counter() {
  static obs::Counter& c = obs::counter("threadpool.tasks_submitted");
  return c;
}

double seconds_between(std::chrono::steady_clock::time_point a,
                       std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::queued() const {
  std::scoped_lock lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::active() const {
  std::scoped_lock lock(mutex_);
  return in_flight_;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  std::promise<void> done;
  std::future<void> fut = done.get_future();
  {
    std::scoped_lock lock(mutex_);
    if (stopping_)
      throw std::logic_error("ThreadPool::submit after shutdown (workers=" +
                             std::to_string(workers_.size()) +
                             ", queued=" + std::to_string(queue_.size()) +
                             ", active=" + std::to_string(in_flight_) + ")");
    queue_.push_back(
        QueuedTask{std::move(task), std::move(done), std::chrono::steady_clock::now()});
    queue_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  submitted_counter().inc();
  cv_work_.notify_one();
  return fut;
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_gauge().set(static_cast<std::int64_t>(queue_.size()));
      ++in_flight_;
    }
    const auto started = std::chrono::steady_clock::now();
    wait_hist().observe(seconds_between(task.enqueued, started));
    active_gauge().add(1);
    // Exceptions are captured into the submitting future, not swallowed:
    // the worker survives, and the caller sees the original exception.
    try {
      task.fn();
      task.done.set_value();
    } catch (...) {
      task.done.set_exception(std::current_exception());
    }
    active_gauge().add(-1);
    run_hist().observe(seconds_between(started, std::chrono::steady_clock::now()));
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i)
    futures.push_back(pool.submit([&body, i] { body(i); }));
  pool.wait_idle();
  // All indices have run; surface the lowest failed index's exception so
  // the outcome is deterministic at any thread count.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace lamps
