#include "util/thread_pool.hpp"

#include <algorithm>

namespace lamps {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  cv_work_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  {
    std::scoped_lock lock(mutex_);
    if (stopping_) throw std::logic_error("ThreadPool::submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_work_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::scoped_lock lock(mutex_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

void parallel_for_index(ThreadPool& pool, std::size_t count,
                        const std::function<void(std::size_t)>& body) {
  for (std::size_t i = 0; i < count; ++i) pool.submit([&body, i] { body(i); });
  pool.wait_idle();
}

}  // namespace lamps
