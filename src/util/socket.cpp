#include "util/socket.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/errors.hpp"
#include "util/faultinject.hpp"

namespace lamps {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), fault_(std::exchange(other.fault_, nullptr)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    fault_ = std::exchange(other.fault_, nullptr);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

// Milliseconds left until `deadline` (clamped to >= 0).  Shared by the
// deadline-aware send/poll loops below so EINTR and partial progress
// always re-arm with the *remaining* budget, never a fresh one.
int remaining_ms(std::chrono::steady_clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - std::chrono::steady_clock::now())
                        .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, 1000 * 60 * 60 * 24));
}

}  // namespace

Socket::SendStatus Socket::send_all_deadline(std::string_view data,
                                             int timeout_ms) const {
  // The deadline is cumulative: anchored once here, not per chunk.  A
  // peer draining one byte per poll window makes progress but must still
  // finish the whole buffer inside the budget.
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    std::size_t chunk = left;
    if (fault_ != nullptr) {
      const FaultInjector::WritePlan plan = fault_->plan_write(left);
      if (plan.reset) {
        errno = EPIPE;
        return SendStatus::kError;
      }
      chunk = std::min(left, plan.chunk);
      if (plan.pause_us > 0)
        std::this_thread::sleep_for(std::chrono::microseconds(plan.pause_us));
    }
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // daemon with SIGPIPE.  MSG_DONTWAIT + poll bounds how long a full
    // peer receive window may stall us.
    const ssize_t n = ::send(fd_, p, chunk, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        int wait_ms = -1;
        if (bounded) {
          wait_ms = remaining_ms(deadline);
          if (wait_ms == 0) return SendStatus::kTimeout;
        }
        if (!poll_writable(fd_, wait_ms)) return SendStatus::kTimeout;
        continue;
      }
      return SendStatus::kError;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return SendStatus::kOk;
}

Socket::IoStatus Socket::send_some(std::string_view data, std::size_t* sent) const {
  *sent = 0;
  if (data.empty()) return IoStatus::kOk;
  std::size_t chunk = data.size();
  if (fault_ != nullptr) {
    const FaultInjector::WritePlan plan = fault_->plan_write(data.size());
    if (plan.reset) {
      errno = EPIPE;
      return IoStatus::kError;
    }
    chunk = std::min(chunk, plan.chunk);
    if (plan.pause_us > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(plan.pause_us));
  }
  for (;;) {
    const ssize_t n = ::send(fd_, data.data(), chunk, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n >= 0) {
      *sent = static_cast<std::size_t>(n);
      return IoStatus::kOk;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::kWouldBlock;
    return IoStatus::kError;
  }
}

bool Socket::set_nonblocking(bool on) const {
  const int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) return false;
  const int next = on ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  return ::fcntl(fd_, F_SETFL, next) == 0;
}

void Socket::shutdown_write() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Socket::shutdown_both() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

ListenSocket::ListenSocket(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw InternalError(ErrorCode::kIo, "cannot create socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("cannot bind port: ") + std::strerror(errno),
                        "port " + std::to_string(port));
  if (::listen(fd, backlog) != 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("cannot listen: ") + std::strerror(errno));

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw InternalError(ErrorCode::kIo, "cannot read bound address");
  port_ = ntohs(addr.sin_port);
  socket_ = std::move(sock);
}

std::optional<Socket> ListenSocket::accept() const {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  // Responses are one small JSON line each; Nagle would add 40 ms stalls.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

std::optional<Socket> try_connect_tcp(std::uint16_t port, const std::string& host,
                                      int timeout_ms, std::string* error) {
  const auto fail = [&](const std::string& what) -> std::optional<Socket> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return fail("cannot create socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    return fail("invalid IPv4 address: " + host);

  // A failed F_GETFL must not poison the restore below: fall back to 0 so
  // the final F_SETFL still clears O_NONBLOCK instead of writing garbage.
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) flags = 0;
  if (timeout_ms >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  if (rc != 0 && errno == EINPROGRESS && timeout_ms >= 0) {
    if (!poll_writable(fd, timeout_ms))
      return fail("connect timed out after " + std::to_string(timeout_ms) + " ms");
    int so_error = 0;
    socklen_t len = sizeof so_error;
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 || so_error != 0)
      return fail(std::string("cannot connect: ") +
                  std::strerror(so_error != 0 ? so_error : errno));
    rc = 0;
  }
  if (rc != 0) return fail(std::string("cannot connect: ") + std::strerror(errno));
  if (timeout_ms >= 0) ::fcntl(fd, F_SETFL, flags & ~O_NONBLOCK);  // back to blocking

  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

Socket connect_tcp(std::uint16_t port, const std::string& host) {
  std::string error;
  std::optional<Socket> sock = try_connect_tcp(port, host, -1, &error);
  if (!sock.has_value())
    throw InternalError(ErrorCode::kIo, error, host + ":" + std::to_string(port));
  return std::move(*sock);
}

unsigned poll_readable(int fd1, int fd2, int timeout_ms) {
  pollfd fds[2];
  nfds_t n = 0;
  fds[n++] = pollfd{fd1, POLLIN, 0};
  if (fd2 >= 0) fds[n++] = pollfd{fd2, POLLIN, 0};
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  int wait_ms = timeout_ms;
  for (;;) {
    fds[0].revents = 0;
    if (n > 1) fds[1].revents = 0;
    const int rc = ::poll(fds, n, wait_ms);
    if (rc > 0) {
      unsigned mask = 0;
      if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) mask |= 1u;
      if (n > 1 && (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) mask |= 2u;
      return mask;
    }
    if (rc == 0) return 0;              // genuine timeout
    if (errno != EINTR) return 0;       // hard poll failure: nothing ready
    if (bounded) {
      wait_ms = remaining_ms(deadline);  // EINTR: retry with what's left
      if (wait_ms == 0) return 0;
    }
  }
}

bool poll_writable(int fd, int timeout_ms) {
  pollfd pfd{fd, POLLOUT, 0};
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  int wait_ms = timeout_ms;
  for (;;) {
    pfd.revents = 0;
    const int rc = ::poll(&pfd, 1, wait_ms);
    if (rc > 0) return (pfd.revents & (POLLOUT | POLLHUP | POLLERR)) != 0;
    if (rc == 0) return false;          // genuine timeout
    if (errno != EINTR) return false;   // hard poll failure
    if (bounded) {
      wait_ms = remaining_ms(deadline);  // EINTR: retry with what's left
      if (wait_ms == 0) return false;
    }
  }
}

bool LineReader::has_buffered_line() const {
  return buffer_.find('\n') != std::string::npos;
}

bool LineReader::has_partial_line() const {
  return !buffer_.empty() && !has_buffered_line();
}

LineReader::Status LineReader::next_line(std::string& out) {
  if (overflow_pending_) {
    overflow_pending_ = false;
    return Status::kOverflow;
  }
  const auto pos = buffer_.find('\n');
  if (pos != std::string::npos) {
    // A complete line can exceed the cap too (it may have arrived whole
    // in one recv, never tripping fill()'s tail check).
    if (max_line_bytes_ > 0 && pos > max_line_bytes_) {
      buffer_.erase(0, pos + 1);
      return Status::kOverflow;
    }
    out.assign(buffer_, 0, pos);
    buffer_.erase(0, pos + 1);
    return Status::kLine;
  }
  if (eof_) {
    if (buffer_.empty() || discarding_) return Status::kEof;
    if (max_line_bytes_ > 0 && buffer_.size() > max_line_bytes_) {
      buffer_.clear();
      return Status::kOverflow;
    }
    out = std::move(buffer_);  // final unterminated line
    buffer_.clear();
    return Status::kLine;
  }
  return Status::kAgain;
}

LineReader::Status LineReader::fill() {
  if (eof_) return Status::kEof;
  char chunk[4096];
  std::size_t want = sizeof chunk;
  if (fault_ != nullptr) {
    const FaultInjector::ReadPlan plan = fault_->plan_read();
    if (plan.reset) {
      errno = ECONNRESET;
      return Status::kError;
    }
    want = std::min(want, plan.max_bytes);
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, want, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::kWouldBlock;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      return Status::kEof;
    }
    if (discarding_) {
      // Resynchronize: drop everything through the oversize line's '\n'.
      const char* nl = static_cast<const char*>(
          std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
      if (nl != nullptr) {
        discarding_ = false;
        buffer_.append(nl + 1, static_cast<std::size_t>(chunk + n - (nl + 1)));
      }
    } else {
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    // The cap applies to an unterminated tail only — complete lines are
    // already poppable and callers drain them before filling again.
    if (max_line_bytes_ > 0 && !discarding_ && buffer_.size() > max_line_bytes_ &&
        !has_buffered_line()) {
      buffer_.clear();
      discarding_ = true;
      overflow_pending_ = true;
    }
    return Status::kAgain;
  }
}

LineReader::Status LineReader::read_line(std::string& out) {
  for (;;) {
    const Status popped = next_line(out);
    if (popped != Status::kAgain) return popped;
    const Status filled = fill();
    if (filled == Status::kError) return filled;
    // A non-blocking fd would spin here; park in poll until readable so
    // read_line keeps its blocking contract either way.
    if (filled == Status::kWouldBlock) (void)poll_readable(fd_, -1, -1);
    // kEof loops once more so next_line can flush the final line.
  }
}

}  // namespace lamps
