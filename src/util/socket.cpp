#include "util/socket.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/errors.hpp"

namespace lamps {

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::send_all(std::string_view data) const {
  const char* p = data.data();
  std::size_t left = data.size();
  while (left > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not kill the
    // daemon with SIGPIPE.
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void Socket::shutdown_write() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

ListenSocket::ListenSocket(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw InternalError(ErrorCode::kIo, "cannot create socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("cannot bind port: ") + std::strerror(errno),
                        "port " + std::to_string(port));
  if (::listen(fd, backlog) != 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("cannot listen: ") + std::strerror(errno));

  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0)
    throw InternalError(ErrorCode::kIo, "cannot read bound address");
  port_ = ntohs(addr.sin_port);
  socket_ = std::move(sock);
}

std::optional<Socket> ListenSocket::accept() const {
  const int fd = ::accept(socket_.fd(), nullptr, nullptr);
  if (fd < 0) return std::nullopt;
  const int one = 1;
  // Responses are one small JSON line each; Nagle would add 40 ms stalls.
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return Socket(fd);
}

Socket connect_tcp(std::uint16_t port, const std::string& host) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw InternalError(ErrorCode::kIo, "cannot create socket");
  Socket sock(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw InternalError(ErrorCode::kIo, "invalid IPv4 address", host);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw InternalError(ErrorCode::kIo,
                        std::string("cannot connect: ") + std::strerror(errno),
                        host + ":" + std::to_string(port));
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return sock;
}

unsigned poll_readable(int fd1, int fd2, int timeout_ms) {
  pollfd fds[2];
  nfds_t n = 0;
  fds[n++] = pollfd{fd1, POLLIN, 0};
  if (fd2 >= 0) fds[n++] = pollfd{fd2, POLLIN, 0};
  const int rc = ::poll(fds, n, timeout_ms);
  if (rc <= 0) return 0;  // timeout or EINTR
  unsigned mask = 0;
  if ((fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0) mask |= 1u;
  if (n > 1 && (fds[1].revents & (POLLIN | POLLHUP | POLLERR)) != 0) mask |= 2u;
  return mask;
}

bool LineReader::has_buffered_line() const {
  return buffer_.find('\n') != std::string::npos;
}

LineReader::Status LineReader::read_line(std::string& out) {
  for (;;) {
    const auto pos = buffer_.find('\n');
    if (pos != std::string::npos) {
      out.assign(buffer_, 0, pos);
      buffer_.erase(0, pos + 1);
      return Status::kLine;
    }
    if (eof_) {
      if (buffer_.empty()) return Status::kEof;
      out = std::move(buffer_);  // final unterminated line
      buffer_.clear();
      return Status::kLine;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      continue;
    }
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace lamps
