// Monotonic per-request arena for hot-path scratch storage.
//
// The scheduling core carves all of its per-run scratch arrays (ready/free
// bitmaps, missing-predecessor counters, calendar event slots) out of one
// of these instead of holding a dozen separately-allocated vectors: a
// reset() + sequence of make<T>() calls lays the arrays out back to back
// in a single block, so the event loop's working set is contiguous and —
// once the arena has grown to the request's high-water mark — completely
// allocation-free.
//
// Properties:
//   * make<T>(n) returns an *uninitialized* span (trivial T only); callers
//     fill it.  Blocks never move, so spans stay valid until reset().
//   * reset() rewinds without freeing.  When a run overflowed into
//     multiple blocks, the next reset() coalesces them into one block
//     sized for the observed total, restoring contiguity.
//   * Not thread-safe; the scheduler keeps one arena per workspace and
//     one workspace per thread.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace lamps::util {

class Arena {
 public:
  Arena() = default;

  /// Rewinds the arena; previously returned spans become invalid.  Keeps
  /// (or coalesces) capacity so steady-state request handling allocates
  /// nothing.
  void reset() {
    if (blocks_.size() > 1) {
      // The last run spilled over: replace the fragments with one block
      // big enough for everything they held together.
      std::size_t total = 0;
      for (const Block& b : blocks_) total += b.size;
      blocks_.clear();
      blocks_.push_back(Block{std::make_unique<std::byte[]>(total), total});
    }
    block_ = 0;
    offset_ = 0;
  }

  /// Carves `n` objects of trivial type T (uninitialized).
  template <typename T>
  [[nodiscard]] std::span<T> make(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T> &&
                  std::is_trivially_default_constructible_v<T>);
    if (n == 0) return {};
    return {static_cast<T*>(raw(n * sizeof(T), alignof(T))), n};
  }

  /// Bytes currently reserved across all blocks (diagnostics).
  [[nodiscard]] std::size_t capacity() const {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size{0};
  };

  void* raw(std::size_t bytes, std::size_t align) {
    for (;;) {
      if (block_ < blocks_.size()) {
        Block& b = blocks_[block_];
        const std::size_t aligned = (offset_ + align - 1) & ~(align - 1);
        if (aligned + bytes <= b.size) {
          offset_ = aligned + bytes;
          return b.data.get() + aligned;
        }
        // Current block exhausted: move on (its tail is wasted until the
        // next reset() coalesces).
        ++block_;
        offset_ = 0;
        continue;
      }
      // Need a fresh block: geometric growth over the largest block so a
      // ramp of graph sizes settles quickly.
      std::size_t grow = kMinBlock;
      for (const Block& b : blocks_) grow = std::max(grow, 2 * b.size);
      grow = std::max(grow, bytes + align);
      blocks_.push_back(Block{std::make_unique<std::byte[]>(grow), grow});
    }
  }

  static constexpr std::size_t kMinBlock = 4096;

  std::vector<Block> blocks_;
  std::size_t block_{0};
  std::size_t offset_{0};
};

}  // namespace lamps::util
