// Online execution simulation with runtime slack reclamation.
//
// The static strategies plan with worst-case execution times (WCETs).  At
// runtime tasks typically finish early; Zhu, Melhem & Childers (the
// paper's reference [1], named again in its future-work section) showed
// that the freed slack can be reclaimed online by slowing down not-yet-run
// tasks.  This module simulates exactly that:
//
//   * actual execution cycles are WCET x U[bcet_ratio, 1], seeded,
//   * the static plan fixes the task-to-processor mapping and per-processor
//     order (and the static DVS level),
//   * a backward pass over the augmented DAG (graph + processor-order
//     edges), reserving each task's WCET at the *static* level, yields
//     latest-finish times LF(v) that guarantee the deadline,
//   * with reclamation enabled, each task is dispatched as soon as its
//     (actual) predecessors finish and runs at the slowest discrete level
//     with start + WCET/f <= LF(v), floored at the critical level; without
//     reclamation it runs at the static level,
//   * idle gaps are charged at the static level's idle power, with the
//     usual breakeven shutdown rule (gap lengths are known to the
//     simulator; a real system would predict them — same oracle assumption
//     the analytic evaluator makes).
//
// Feasibility is inductive as in core/multifreq.hpp: finishing every task
// by its LF leaves every successor at least its reserved window.
#pragma once

#include <cstdint>
#include <vector>

#include "energy/evaluator.hpp"
#include "graph/task_graph.hpp"
#include "power/dvs_ladder.hpp"
#include "power/sleep_model.hpp"
#include "sched/schedule.hpp"

namespace lamps::sim {

struct OnlineOptions {
  /// Actual cycles = WCET * uniform(bcet_ratio, 1).  1.0 = no variability.
  double bcet_ratio{1.0};
  std::uint64_t seed{1};
  /// Reclaim slack online (slow down future tasks); false = always run at
  /// the static level (early finishes only lengthen idle gaps).
  bool reclaim{true};
  /// Shut down idle gaps beyond the breakeven length.
  bool ps{true};
  bool ps_allow_leading_gaps{true};
  /// Energy per DVS level change between consecutive tasks on a processor
  /// (0 = free transitions, the paper's model).
  Joules transition_energy{0.0};
};

struct OnlineTaskRecord {
  graph::TaskId task{graph::kInvalidTask};
  sched::ProcId proc{0};
  std::size_t level_index{0};
  Cycles actual_cycles{0};
  Seconds start{0.0};
  Seconds finish{0.0};
  Seconds latest_finish{0.0};
};

struct OnlineResult {
  bool met_deadline{false};
  Seconds completion{0.0};
  energy::EnergyBreakdown breakdown{};
  std::vector<OnlineTaskRecord> tasks;  ///< indexed by task id
};

/// Simulates one run of `plan` (produced at `static_level`) under the given
/// options.  `deadline` is the global deadline; explicit per-task deadlines
/// carried by the graph are honored in the LF pass.  Throws
/// std::invalid_argument when the plan itself misses a deadline at the
/// static level (nothing to reclaim from an infeasible plan).
[[nodiscard]] OnlineResult simulate_online(const sched::Schedule& plan,
                                           const graph::TaskGraph& g,
                                           const power::DvsLadder& ladder,
                                           const power::DvsLevel& static_level,
                                           Seconds deadline,
                                           const power::SleepModel& sleep,
                                           const OnlineOptions& opts = {});

}  // namespace lamps::sim
