#include "sim/power_trace.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

namespace lamps::sim {

const char* to_string(ProcState s) {
  switch (s) {
    case ProcState::kOff:
      return "off";
    case ProcState::kPoweredIdle:
      return "idle";
    case ProcState::kExecuting:
      return "exec";
    case ProcState::kSleeping:
      return "sleep";
  }
  return "?";
}

Joules PowerTrace::total_energy() const {
  Joules e = wakeup_energy;
  for (const TraceSegment& seg : segments) e += seg.energy();
  return e;
}

Joules PowerTrace::energy_in_state(ProcState s) const {
  Joules e{0.0};
  for (const TraceSegment& seg : segments)
    if (seg.state == s) e += seg.energy();
  return e;
}

Watts PowerTrace::power_at(Seconds t) const {
  Watts p{0.0};
  for (const TraceSegment& seg : segments)
    if (seg.begin <= t && t < seg.end) p += seg.power;
  return p;
}

std::vector<std::pair<Seconds, Watts>> PowerTrace::sample_power(std::size_t samples) const {
  std::vector<std::pair<Seconds, Watts>> out;
  if (samples == 0) return out;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const Seconds t = horizon * (static_cast<double>(i) / static_cast<double>(samples));
    out.emplace_back(t, power_at(t));
  }
  return out;
}

PowerTrace simulate(const sched::Schedule& s, const graph::TaskGraph& g,
                    const power::DvsLevel& lvl, Seconds horizon,
                    const power::SleepModel& sleep, const energy::PsOptions& ps) {
  if (cycles_to_time(s.makespan(), lvl.f).value() > horizon.value() * (1.0 + 1e-12) + 1e-15)
    throw std::invalid_argument("simulate: schedule does not fit in horizon");
  if (s.num_tasks() != g.num_tasks())
    throw std::invalid_argument("simulate: schedule/graph task count mismatch");

  PowerTrace trace;
  trace.horizon = horizon;

  for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
    Seconds cursor{0.0};
    bool leading = true;
    const auto emit_gap = [&](Seconds gap_end) {
      const Seconds gap = gap_end - cursor;
      if (gap.value() <= 0.0) return;
      const bool may_sleep = ps.enabled && (ps.allow_leading_gaps || !leading);
      const bool sleep_it = may_sleep && sleep.decide(gap, lvl.idle).shutdown;
      if (sleep_it) {
        trace.segments.push_back(TraceSegment{p, ProcState::kSleeping, cursor, gap_end,
                                              sleep.sleep_power(), graph::kInvalidTask});
        ++trace.wakeups;
        trace.wakeup_energy += sleep.wakeup_energy();
      } else {
        trace.segments.push_back(TraceSegment{p, ProcState::kPoweredIdle, cursor, gap_end,
                                              lvl.idle, graph::kInvalidTask});
      }
    };

    for (const sched::Placement& pl : s.on_proc(p)) {
      const Seconds start = cycles_to_time(pl.start, lvl.f);
      const Seconds finish = cycles_to_time(pl.finish, lvl.f);
      emit_gap(start);
      if (finish > start)
        trace.segments.push_back(TraceSegment{p, ProcState::kExecuting, start, finish,
                                              lvl.active.total(), pl.task});
      cursor = finish;
      leading = false;
    }
    emit_gap(horizon);
  }
  return trace;
}

void write_trace_csv(const PowerTrace& trace, std::ostream& os) {
  os << "proc,state,begin_s,end_s,power_w,task\n";
  for (const TraceSegment& seg : trace.segments) {
    os << seg.proc << ',' << to_string(seg.state) << ',' << seg.begin.value() << ','
       << seg.end.value() << ',' << seg.power.value() << ',';
    if (seg.task != graph::kInvalidTask) os << seg.task;
    os << '\n';
  }
}

}  // namespace lamps::sim
