#include "sim/online.hpp"

#include <algorithm>
#include <queue>
#include <stdexcept>

#include "util/rng.hpp"

namespace lamps::sim {

namespace {

/// Augmented successors (graph + processor order) and a topological order
/// over them, mirroring core/multifreq.cpp's construction.
struct AugmentedDag {
  std::vector<std::vector<graph::TaskId>> succs;
  std::vector<graph::TaskId> topo;

  AugmentedDag(const sched::Schedule& s, const graph::TaskGraph& g) : succs(g.num_tasks()) {
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const auto gs = g.successors(v);
      succs[v].assign(gs.begin(), gs.end());
    }
    for (sched::ProcId p = 0; p < s.num_procs(); ++p) {
      const auto row = s.on_proc(p);
      for (std::size_t i = 0; i + 1 < row.size(); ++i)
        succs[row[i].task].push_back(row[i + 1].task);
    }
    std::vector<std::size_t> in_deg(g.num_tasks(), 0);
    for (const auto& ss : succs)
      for (const graph::TaskId t : ss) ++in_deg[t];
    std::priority_queue<graph::TaskId, std::vector<graph::TaskId>, std::greater<>> ready;
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
      if (in_deg[v] == 0) ready.push(v);
    topo.reserve(g.num_tasks());
    while (!ready.empty()) {
      const graph::TaskId v = ready.top();
      ready.pop();
      topo.push_back(v);
      for (const graph::TaskId t : succs[v])
        if (--in_deg[t] == 0) ready.push(t);
    }
  }
};

}  // namespace

OnlineResult simulate_online(const sched::Schedule& plan, const graph::TaskGraph& g,
                             const power::DvsLadder& ladder,
                             const power::DvsLevel& static_level, Seconds deadline,
                             const power::SleepModel& sleep, const OnlineOptions& opts) {
  if (plan.num_tasks() != g.num_tasks())
    throw std::invalid_argument("simulate_online: plan/graph task count mismatch");
  if (opts.bcet_ratio <= 0.0 || opts.bcet_ratio > 1.0)
    throw std::invalid_argument("simulate_online: bcet_ratio must be in (0, 1]");

  const std::size_t n = g.num_tasks();
  const double f_static = static_level.f.value();
  const AugmentedDag dag(plan, g);

  // Backward LF pass, reserving WCET at the static level.
  std::vector<double> lf(n, deadline.value());
  for (auto it = dag.topo.rbegin(); it != dag.topo.rend(); ++it) {
    const graph::TaskId v = *it;
    if (const auto own = g.explicit_deadline(v)) lf[v] = std::min(lf[v], own->value());
    for (const graph::TaskId t : dag.succs[v])
      lf[v] = std::min(lf[v], lf[t] - static_cast<double>(g.weight(t)) / f_static);
    if (lf[v] < static_cast<double>(g.weight(v)) / f_static - 1e-12)
      throw std::invalid_argument(
          "simulate_online: plan misses a deadline at the static level");
  }

  // Draw actual execution cycles (id-indexed so results are independent of
  // execution interleaving).
  Rng rng(opts.seed);
  std::vector<Cycles> actual(n);
  for (graph::TaskId v = 0; v < n; ++v) {
    const double frac = opts.bcet_ratio >= 1.0
                            ? 1.0
                            : rng.uniform_real(opts.bcet_ratio, 1.0);
    actual[v] = std::max<Cycles>(g.weight(v) == 0 ? 0 : 1,
                                 static_cast<Cycles>(static_cast<double>(g.weight(v)) * frac));
  }

  OnlineResult result;
  result.tasks.resize(n);

  // Forward execution in augmented topological order: start = max over
  // augmented predecessors' actual finishes (the augmented relation encodes
  // both the precedence and the per-processor order).
  std::vector<double> ready_at(n, 0.0);
  for (const graph::TaskId v : dag.topo) {
    OnlineTaskRecord& rec = result.tasks[v];
    rec.task = v;
    rec.proc = plan.placement(v).proc;
    rec.start = Seconds{ready_at[v]};
    rec.latest_finish = Seconds{lf[v]};
    rec.actual_cycles = actual[v];

    std::size_t level_idx = static_level.index;
    if (opts.reclaim && g.weight(v) > 0) {
      // Slowest level finishing the WCET by LF; induction gives
      // start <= LF - WCET/f_static, so f_static always qualifies.
      const Hertz f_need = required_frequency(g.weight(v), rec.latest_finish - rec.start);
      const power::DvsLevel* lvl =
          ladder.lowest_level_at_least(Hertz{f_need.value() * (1.0 - 1e-12)});
      if (lvl == nullptr) lvl = &static_level;  // numerical corner: stay static
      // Floor at the critical level: below it every cycle costs more.  The
      // induction start <= LF - WCET/f_static guarantees the chosen level
      // never exceeds max(static, critical).
      level_idx = std::max(lvl->index, ladder.critical_level().index);
    }
    rec.level_index = level_idx;
    rec.finish = rec.start + cycles_to_time(actual[v], ladder.level(level_idx).f);

    result.completion = std::max(result.completion, rec.finish);
    for (const graph::TaskId t : dag.succs[v])
      ready_at[t] = std::max(ready_at[t], rec.finish.value());
  }
  result.met_deadline = result.completion.value() <= deadline.value() * (1.0 + 1e-9);

  // Energy: active at each task's level; per-processor idle gaps at the
  // static level's idle power, with breakeven shutdown when allowed.
  energy::EnergyBreakdown& e = result.breakdown;
  for (const OnlineTaskRecord& rec : result.tasks) {
    const power::DvsLevel& lvl = ladder.level(rec.level_index);
    const Seconds dur = rec.finish - rec.start;
    e.dynamic += lvl.active.dynamic * dur;
    e.leakage += lvl.active.leakage * dur;
    e.intrinsic += lvl.active.intrinsic * dur;
  }
  std::vector<std::vector<const OnlineTaskRecord*>> rows(plan.num_procs());
  for (const OnlineTaskRecord& rec : result.tasks) rows[rec.proc].push_back(&rec);
  for (auto& row : rows)
    std::sort(row.begin(), row.end(),
              [](const OnlineTaskRecord* a, const OnlineTaskRecord* b) {
                return a->start < b->start;
              });
  const auto charge_gap = [&](Seconds gap, bool leading) {
    if (gap.value() <= 0.0) return;
    const bool may_sleep = opts.ps && (opts.ps_allow_leading_gaps || !leading);
    if (may_sleep && sleep.decide(gap, static_level.idle).shutdown) {
      e.sleep += sleep.sleep_power() * gap;
      e.wakeup += sleep.wakeup_energy();
      ++e.shutdowns;
      return;
    }
    e.leakage += static_level.active.leakage * gap;
    e.intrinsic += static_level.active.intrinsic * gap;
  };
  for (const auto& row : rows) {
    Seconds cursor{0.0};
    bool leading = true;
    const OnlineTaskRecord* prev = nullptr;
    for (const OnlineTaskRecord* rec : row) {
      charge_gap(rec->start - cursor, leading);
      if (prev != nullptr && prev->level_index != rec->level_index) {
        e.transition += opts.transition_energy;
        ++e.transitions;
      }
      prev = rec;
      cursor = rec->finish;
      leading = false;
    }
    charge_gap(deadline - cursor, leading);
  }
  return result;
}

}  // namespace lamps::sim
