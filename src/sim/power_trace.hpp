// Discrete-event execution simulator: replays a schedule as a per-processor
// power-state machine and produces a time-resolved power trace.
//
// The analytic evaluator (energy/evaluator.hpp) computes the same energies
// in closed form; this simulator exists to (a) cross-validate the closed
// form by numerical integration over the actual event timeline — the
// property tests assert they agree to double precision — and (b) produce
// traces for inspection/plotting (per-processor state timelines, total
// power over time).
//
// States: Executing (P_AC + P_DC + P_on at the operating point), PoweredIdle
// (P_DC + P_on), Sleeping (P_sleep; entering the state books the wake
// energy), and Off (unused processor, zero power).
#pragma once

#include <iosfwd>
#include <vector>

#include "energy/evaluator.hpp"
#include "power/dvs_ladder.hpp"
#include "power/sleep_model.hpp"
#include "sched/schedule.hpp"

namespace lamps::sim {

enum class ProcState { kOff, kPoweredIdle, kExecuting, kSleeping };

[[nodiscard]] const char* to_string(ProcState s);

/// One state interval on one processor.
struct TraceSegment {
  sched::ProcId proc{0};
  ProcState state{ProcState::kOff};
  Seconds begin{0.0};
  Seconds end{0.0};
  /// Power drawn during the segment.
  Watts power{0.0};
  /// Executing segments name the task; kInvalidTask otherwise.
  graph::TaskId task{graph::kInvalidTask};

  [[nodiscard]] Seconds duration() const { return end - begin; }
  [[nodiscard]] Joules energy() const { return power * duration(); }
};

struct PowerTrace {
  std::vector<TraceSegment> segments;  ///< sorted by (proc, begin)
  Seconds horizon{0.0};
  std::size_t wakeups{0};
  Joules wakeup_energy{0.0};

  /// Total energy: integral of the trace plus the booked wake events.
  [[nodiscard]] Joules total_energy() const;

  /// Integrated energy per state (wake events reported separately).
  [[nodiscard]] Joules energy_in_state(ProcState s) const;

  /// Instantaneous total power at time t (sum over processors; wake-event
  /// energy is impulsive and not included).
  [[nodiscard]] Watts power_at(Seconds t) const;

  /// Samples total power on a uniform grid: `samples` rows of (t, P).
  [[nodiscard]] std::vector<std::pair<Seconds, Watts>> sample_power(
      std::size_t samples) const;
};

/// Replays `s` at the single operating point `lvl` with the given PS
/// policy (the exact setting the analytic evaluator models).  Gaps are
/// slept iff the sleep model says shutdown is cheaper, same tie-breaking as
/// the evaluator.  Requires the schedule to fit the horizon.
[[nodiscard]] PowerTrace simulate(const sched::Schedule& s, const graph::TaskGraph& g,
                                  const power::DvsLevel& lvl, Seconds horizon,
                                  const power::SleepModel& sleep,
                                  const energy::PsOptions& ps = {});

/// Writes the trace as CSV: proc,state,begin,end,power,task.
void write_trace_csv(const PowerTrace& trace, std::ostream& os);

}  // namespace lamps::sim
