#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace lamps::obs {

namespace {

/// Round-trip decimal for the CSV export, which has no token grammar to
/// violate: non-finite values print as the platform's "inf"/"nan".  The
/// JSON export goes through write_json_double (null for non-finite).
std::string fmt_double(double v) {
  std::ostringstream ss;
  ss.precision(17);
  ss << v;
  return ss.str();
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()))
    throw std::invalid_argument("Histogram: bounds must be ascending");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::size_t Histogram::bucket_index(double v) const noexcept {
  // NaN compares false against every bound, which would let lower_bound
  // file it anywhere its branch order happens to land (bucket 0 in
  // practice) — pin it to the overflow bucket explicitly.
  if (std::isnan(v)) return bounds_.size();
  return static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
}

void Histogram::observe(double v) noexcept {
  counts_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  // NaN is excluded from the sum: one poisoned observation would turn the
  // whole aggregate into NaN forever.  ±inf observations do flow into the
  // sum (they are "real" extreme values); the JSON export renders a
  // non-finite sum as null so the document still parses strictly.
  if (!std::isnan(v)) sum_.fetch_add(v, std::memory_order_relaxed);
}

double Histogram::upper_bound(std::size_t i) const noexcept {
  return i < bounds_.size() ? bounds_[i] : std::numeric_limits<double>::infinity();
}

double Histogram::quantile_upper_bound(double q) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      std::ceil(clamped * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < num_buckets(); ++i) {
    cum += bucket_count(i);
    if (cum >= target) return upper_bound(i);
  }
  return std::numeric_limits<double>::infinity();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  total_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::vector<double> Histogram::exponential_bounds(double start, double factor,
                                                  std::size_t n) {
  if (start <= 0.0 || factor <= 1.0)
    throw std::invalid_argument("Histogram::exponential_bounds: need start > 0, factor > 1");
  std::vector<double> out;
  out.reserve(n);
  double b = start;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(b);
    b *= factor;
  }
  return out;
}

Registry& Registry::global() {
  // Leaked for the same reason as the trace registry: worker threads may
  // touch metrics during static destruction.
  static Registry* r = new Registry;
  return *r;
}

Counter& Registry::counter(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::scoped_lock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  std::scoped_lock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(std::move(upper_bounds));
  return *slot;
}

std::uint64_t Registry::counter_value(const std::string& name) const {
  std::scoped_lock lock(mutex_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->value();
}

std::map<std::string, std::uint64_t> Registry::counter_snapshot() const {
  std::scoped_lock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out.emplace(name, c->value());
  return out;
}

void Registry::reset_values() {
  std::scoped_lock lock(mutex_);
  for (auto& kv : counters_) kv.second->reset();
  for (auto& kv : gauges_) kv.second->reset();
  for (auto& kv : histograms_) kv.second->reset();
}

void Registry::reset_gauge_maxes() {
  std::scoped_lock lock(mutex_);
  for (auto& kv : gauges_) kv.second->reset_max();
}

namespace {

/// Shared body of the pretty and compact JSON exports.  `nl`/`ind`/`sp`
/// are the newline, per-level indent and post-colon space — empty in
/// compact mode, so both flavors stay byte-equivalent after whitespace
/// stripping.
struct JsonLayout {
  const char* nl;
  const char* ind;
  const char* sp;
};

void write_registry_json(std::ostream& os, const JsonLayout& L,
                         const std::map<std::string, std::unique_ptr<Counter>>& counters,
                         const std::map<std::string, std::unique_ptr<Gauge>>& gauges,
                         const std::map<std::string, std::unique_ptr<Histogram>>& histograms) {
  os << '{' << L.nl << L.ind << "\"counters\":" << L.sp << '{';
  const char* sep = "";
  for (const auto& [name, c] : counters) {
    os << sep << L.nl << L.ind << L.ind << '"';
    write_json_escaped(os, name);
    os << "\":" << L.sp << c->value();
    sep = ",";
  }
  if (!counters.empty()) os << L.nl << L.ind;
  os << "}," << L.nl << L.ind << "\"gauges\":" << L.sp << '{';
  sep = "";
  for (const auto& [name, g] : gauges) {
    os << sep << L.nl << L.ind << L.ind << '"';
    write_json_escaped(os, name);
    os << "\":" << L.sp << "{\"value\":" << L.sp << g->value() << "," << L.sp
       << "\"max\":" << L.sp << g->max_value() << '}';
    sep = ",";
  }
  if (!gauges.empty()) os << L.nl << L.ind;
  os << "}," << L.nl << L.ind << "\"histograms\":" << L.sp << '{';
  sep = "";
  for (const auto& [name, h] : histograms) {
    os << sep << L.nl << L.ind << L.ind << '"';
    write_json_escaped(os, name);
    os << "\":" << L.sp << "{\"count\":" << L.sp << h->count() << "," << L.sp
       << "\"sum\":" << L.sp;
    write_json_double(os, h->sum());
    os << "," << L.sp << "\"buckets\":" << L.sp << '[';
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      if (i != 0) os << ',' << L.sp;
      os << "{\"le\":" << L.sp;
      if (i + 1 == h->num_buckets())
        os << "\"inf\"";
      else
        write_json_double(os, h->upper_bound(i));
      os << "," << L.sp << "\"count\":" << L.sp << h->bucket_count(i) << '}';
    }
    os << "]}";
    sep = ",";
  }
  if (!histograms.empty()) os << L.nl << L.ind;
  os << '}' << L.nl << '}';
}

}  // namespace

void Registry::write_json(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  write_registry_json(os, JsonLayout{"\n", "  ", " "}, counters_, gauges_, histograms_);
  os << '\n';
}

void Registry::write_json_compact(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  write_registry_json(os, JsonLayout{"", "", ""}, counters_, gauges_, histograms_);
}

void Registry::write_csv(std::ostream& os) const {
  std::scoped_lock lock(mutex_);
  os << "kind,name,field,value\n";
  for (const auto& [name, c] : counters_)
    os << "counter," << name << ",value," << c->value() << '\n';
  for (const auto& [name, g] : gauges_) {
    os << "gauge," << name << ",value," << g->value() << '\n';
    os << "gauge," << name << ",max," << g->max_value() << '\n';
  }
  for (const auto& [name, h] : histograms_) {
    os << "histogram," << name << ",count," << h->count() << '\n';
    os << "histogram," << name << ",sum," << fmt_double(h->sum()) << '\n';
    for (std::size_t i = 0; i < h->num_buckets(); ++i) {
      os << "histogram," << name << ",le_";
      if (i + 1 == h->num_buckets())
        os << "inf";
      else
        os << fmt_double(h->upper_bound(i));
      os << ',' << h->bucket_count(i) << '\n';
    }
  }
}

Counter& counter(const std::string& name) { return Registry::global().counter(name); }
Gauge& gauge(const std::string& name) { return Registry::global().gauge(name); }
Histogram& histogram(const std::string& name, std::vector<double> upper_bounds) {
  return Registry::global().histogram(name, std::move(upper_bounds));
}

bool write_metrics_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  if (path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0)
    Registry::global().write_csv(os);
  else
    Registry::global().write_json(os);
  return os.good();
}

}  // namespace lamps::obs
