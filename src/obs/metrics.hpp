// Named counters, gauges and histograms for the scheduling pipeline.
//
// All metric mutations are lock-free relaxed atomics: observation-only,
// cheap enough to stay on in the configuration-search hot paths, and safe
// to call from any thread (including thread-pool workers).  Call sites
// resolve their metric once and keep the reference:
//
//   static obs::Counter& hits = obs::counter("schedule_cache.schedule_hit");
//   hits.inc();
//
// Export is JSON or CSV via the global Registry; the metric catalog lives
// in docs/observability.md.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lamps::obs {

/// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Instantaneous level (queue depth, active workers) with a high-water
/// mark, since the instantaneous value is usually back to zero by the time
/// the registry is exported.
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_max(v);
  }
  void add(std::int64_t d) noexcept {
    const std::int64_t v = value_.fetch_add(d, std::memory_order_relaxed) + d;
    raise_max(v);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t max_value() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }
  /// Re-arms the high-water mark at the *current* value without touching
  /// the value itself, so periodic scrapes can report per-interval peaks
  /// of a live level (queue depth, in-flight requests) that is rarely
  /// zero.  reset() would lie: a gauge holding 7 would report max=0 even
  /// though the level never dropped below 7.
  void reset_max() noexcept {
    max_.store(value_.load(std::memory_order_relaxed), std::memory_order_relaxed);
  }

 private:
  void raise_max(std::int64_t v) noexcept {
    std::int64_t cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Fixed-bucket histogram: `upper_bounds` are the ascending inclusive
/// bucket tops, plus one implicit overflow bucket (+inf).  observe() is a
/// binary search and two relaxed atomic adds.
///
/// Non-finite observations (policy, see docs/observability.md): NaN is
/// counted in the overflow bucket and excluded from sum(), so a single
/// poisoned measurement can neither vanish nor corrupt the aggregate;
/// +inf counts in the overflow bucket, -inf in bucket 0, both flow into
/// sum().  The JSON export emits `null` for a non-finite sum as a
/// backstop, keeping the document strictly parseable.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_bounds);

  void observe(double v) noexcept;

  /// Index of the bucket `v` falls into: the first i with
  /// v <= upper_bounds[i], else the overflow bucket.
  [[nodiscard]] std::size_t bucket_index(double v) const noexcept;

  [[nodiscard]] std::size_t num_buckets() const noexcept { return bounds_.size() + 1; }
  /// Inclusive top of bucket i (+inf for the overflow bucket).
  [[nodiscard]] double upper_bound(std::size_t i) const noexcept;
  [[nodiscard]] std::uint64_t bucket_count(std::size_t i) const noexcept {
    return counts_[i].load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return total_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept { return sum_.load(std::memory_order_relaxed); }

  /// Upper-bound estimate of the q-quantile (0 < q <= 1): the inclusive
  /// top of the first bucket whose cumulative count reaches ceil(q * n).
  /// +inf when it lands in the overflow bucket; NaN-free, 0 when empty.
  [[nodiscard]] double quantile_upper_bound(double q) const noexcept;

  void reset() noexcept;

  /// n bounds: start, start*factor, start*factor^2, ...
  [[nodiscard]] static std::vector<double> exponential_bounds(double start, double factor,
                                                              std::size_t n);

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0.0};
};

/// Name -> metric map with stable references (metrics are never removed;
/// lookup locks, the returned reference never does).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& global();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `upper_bounds` is consulted only when `name` is first created.
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Current value of a counter, 0 if it was never registered.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;

  /// Point-in-time snapshot of every counter — the statsz endpoint and the
  /// periodic flusher diff two of these to report deltas per scrape.
  [[nodiscard]] std::map<std::string, std::uint64_t> counter_snapshot() const;

  /// Zeroes every metric (registrations are kept).
  void reset_values();

  /// Gauge::reset_max() on every gauge: the periodic flusher calls this
  /// after exporting so each JSONL sample carries the peak *since the
  /// previous sample* while live values stay untouched.
  void reset_gauge_maxes();

  void write_json(std::ostream& os) const;
  /// Same document as write_json on a single line with no whitespace —
  /// for JSON-lines consumers (statsz responses, the metrics time series).
  void write_json_compact(std::ostream& os) const;
  void write_csv(std::ostream& os) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Shorthands over Registry::global().
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

/// Writes the global registry to `path`: CSV when the path ends in ".csv",
/// JSON otherwise.  Returns false if the file cannot be written.
[[nodiscard]] bool write_metrics_file(const std::string& path);

}  // namespace lamps::obs
