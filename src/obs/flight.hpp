// Request flight recorder: a fixed-size lock-free ring of per-request
// telemetry records for the serve daemon.
//
// Every request that touches `lamps serve` leaves one FlightRecord — the
// request id and digest, the monotonic timestamps of each lifecycle phase
// (arrival, admission, compute start/end, completion, socket write), the
// cache outcome and the response size.  The ring keeps the newest
// `capacity` records; `flightz` (docs/observability.md) returns the last
// N so an operator can see *which* requests are slow and *where* (queue
// vs compute vs write) while the daemon is live, without any log volume
// in the steady state.
//
// Concurrency: writers claim a slot with one fetch_add and publish
// through a per-slot seqlock (odd = being written).  Writers never block
// — a writer that catches a slot mid-write (only possible when more than
// `capacity` requests complete simultaneously) drops its record and
// counts `flight.dropped_records`.  Readers (the flightz scrape) copy
// slots optimistically and skip any that change underneath them, so a
// scrape can never stall the request path.
//
// Slow-request promotion: records whose arrival->write latency reaches
// `slow_threshold_s` are promoted to a full span dump — one structured
// warn-level log record carrying the whole phase breakdown — and counted
// in `serve.slow_requests`, so tail outliers surface even when nobody is
// watching flightz.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <type_traits>
#include <vector>

namespace lamps::obs {

enum class FlightOutcome : std::uint8_t {
  kComputed = 0,     ///< leader: a pool worker ran the search
  kCacheHit = 1,     ///< answered inline from the completed-result LRU
  kCoalesced = 2,    ///< single-flight join onto an in-flight leader
  kBadRequest = 3,   ///< malformed line, no computation
  kOverloaded = 4,   ///< shed at admission
  kInternalError = 5,///< the search threw
  kDeadlineExceeded = 6, ///< the request's deadline_ms budget expired
  kTooLarge = 7      ///< the request line exceeded max_request_bytes
};

[[nodiscard]] const char* to_string(FlightOutcome outcome);

/// Plain data on purpose: records are copied through a seqlock, so they
/// must stay trivially copyable (no strings, no pointers).
struct FlightRecord {
  std::uint64_t request_id{0};
  std::uint64_t digest{0};          ///< 0 for requests that never parsed
  std::int64_t arrival_ns{0};       ///< obs::monotonic_ns at line receipt
  std::int64_t admit_ns{0};         ///< passed admission (0 = never admitted)
  std::int64_t compute_start_ns{0}; ///< pool worker began (0 = not computed)
  std::int64_t compute_end_ns{0};
  std::int64_t finish_ns{0};        ///< response payload resolved
  std::int64_t write_ns{0};         ///< response bytes handed to the socket
  std::uint32_t response_bytes{0};
  FlightOutcome outcome{FlightOutcome::kComputed};
};
static_assert(std::is_trivially_copyable_v<FlightRecord>);

class FlightRecorder {
 public:
  /// `capacity` is clamped to >= 1.  `slow_threshold_s <= 0` disables
  /// slow-request promotion.
  explicit FlightRecorder(std::size_t capacity, double slow_threshold_s = 0.0);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Appends one completed record (and promotes it when slow).  Wait-free
  /// apart from the slow-path log write.
  void record(const FlightRecord& rec);

  /// The most recent `n` consistently-readable records, newest first.
  [[nodiscard]] std::vector<FlightRecord> last(std::size_t n) const;

  /// Records ever offered to record() (monotonic; >= capacity() means the
  /// ring has wrapped).
  [[nodiscard]] std::uint64_t total_recorded() const {
    return next_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] double slow_threshold_s() const { return slow_threshold_s_; }

  /// One record as a flat JSON object (the flightz wire format): ids,
  /// outcome, and the phase breakdown in milliseconds.
  static void write_json(std::ostream& os, const FlightRecord& rec);

 private:
  struct Slot {
    /// Seqlock: even = stable, odd = write in progress; bumped twice per
    /// publish so readers detect torn copies.
    std::atomic<std::uint64_t> seq{0};
    FlightRecord rec;
  };

  std::size_t capacity_;
  double slow_threshold_s_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace lamps::obs
