// Search-telemetry record for the configuration searches (LAMPS,
// LAMPS+PS, S&S, S&S+PS): every probed processor count, why it was
// decided the way it was (Graham-bound short-circuit, gap-only profile
// probe, full schedule, cache reuse), the verdict, and the chosen
// configuration with its final energy breakdown.
//
// Recording is opt-in and observation-only: a strategy records iff the
// caller hangs a SearchTelemetry off core::Problem::telemetry, and the
// record never feeds back into any decision.  The parallel phase-2 scan
// writes its probes by slot index, so the record is bit-identical at any
// search_threads setting.
//
// This header is dependency-free on purpose (obs sits below util in the
// module stack): processor counts and makespans are plain integers here,
// not the core/graph domain types.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace lamps::obs {

/// One probed processor count.
struct SearchProbe {
  std::uint64_t num_procs{0};
  /// Search stage: "phase1" (LAMPS minimal-count binary search),
  /// "speedup" (S&S / phase-2-bound binary search), "phase2" (LAMPS
  /// energy scan).
  const char* phase{""};
  /// How the verdict was reached:
  ///   "graham-upper"        short-circuit, Graham upper bound decided it
  ///   "graham-lower"        short-circuit, Graham/work lower bound decided it
  ///   "profile-probe"       gap-only scheduler run (no placements kept)
  ///   "schedule-probe"      full schedule computed (explicit deadlines)
  ///   "cached-schedule-eval" phase-2 energy eval of a memoized schedule
  ///   "cached-profile-eval"  phase-2 energy eval of a memoized gap profile
  ///   "profile-eval"        phase-2 energy eval of a fresh gap-only run
  ///   "schedule-eval"       phase-2 energy eval of a fresh full schedule
  ///   "materialize"         winner's schedule re-run for placements
  const char* action{""};
  /// Makespan in cycles; -1 when the probe was short-circuited without one.
  std::int64_t makespan{-1};
  /// Probe verdict (1/0): deadline feasibility in phase1/phase2, "reaches
  /// the minimal makespan" in the speedup search; -1 when not judged.
  int feasible{-1};
  /// Chosen DVS level index for evaluated probes; -1 otherwise.
  std::int64_t level_index{-1};
  /// Total energy for evaluated feasible probes; < 0 otherwise.
  double energy_j{-1.0};
  /// True on the probe the search finally selected.
  bool chosen{false};
};

/// One strategy's full search record.
struct SearchTelemetry {
  std::string strategy;
  std::vector<SearchProbe> probes;

  bool feasible{false};
  std::uint64_t chosen_procs{0};
  std::uint64_t chosen_level{0};
  double energy_total_j{0.0};
  double energy_dynamic_j{0.0};
  double energy_leakage_j{0.0};
  double energy_intrinsic_j{0.0};
  double energy_sleep_j{0.0};
  double energy_wakeup_j{0.0};
  std::uint64_t shutdowns{0};
  /// List-scheduler invocations actually performed (cache-discounted).
  std::uint64_t schedules_computed{0};

  void write_json(std::ostream& os) const;
};

/// JSON array of records (the `lamps schedule --telemetry-out` format).
void write_telemetry_json(std::ostream& os, const std::vector<SearchTelemetry>& records);

/// write_telemetry_json to `path`; false if the file cannot be written.
[[nodiscard]] bool write_telemetry_file(const std::string& path,
                                        const std::vector<SearchTelemetry>& records);

}  // namespace lamps::obs
