// Scoped-span tracing with Chrome trace-event JSON export.
//
// Design goals, in order:
//   1. observation-only — spans carry no data into the algorithms, so
//      recording them can never change a scheduling result;
//   2. near-zero cost when disabled at runtime — constructing a Span is
//      one relaxed atomic load and a branch: no clock read, no allocation,
//      no lock;
//   3. thread-safe without cross-thread contention — each thread appends
//      completed spans to its own buffer (registered once, kept alive
//      past thread exit); the exporter takes a buffer's mutex only while
//      copying it out.
//
// Span names must be string literals (or otherwise outlive the trace):
// the buffer stores the pointer, not a copy, so the enabled-path cost is
// two steady_clock reads plus one vector push_back.
//
// The exported JSON is the Chrome trace-event format ("X" complete
// events); open it in chrome://tracing or https://ui.perfetto.dev.
// Naming convention: "module/what" (e.g. "lamps/phase2", "exp/sweep");
// see docs/observability.md for the catalog.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

namespace lamps::obs {

namespace detail {

extern std::atomic<bool> g_tracing_enabled;

/// Nanoseconds since the process-wide trace epoch (steady clock).
[[nodiscard]] std::int64_t trace_now_ns();

/// Appends one completed span to the calling thread's buffer.
void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns);

}  // namespace detail

[[nodiscard]] inline bool tracing_enabled() {
  return detail::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Monotonic nanoseconds on the process-wide trace clock — the shared
/// time axis of spans, structured log records (obs/log) and metric
/// samples (obs/flush), so all three correlate without conversion.
[[nodiscard]] inline std::int64_t monotonic_ns() { return detail::trace_now_ns(); }

/// Turns span recording on or off process-wide.  A span opened while
/// enabled is still recorded at close if tracing was disabled in between
/// (so disabling just before export never loses the enclosing spans).
void set_tracing_enabled(bool enabled);

/// Discards every recorded span (thread buffers stay registered).
void clear_trace();

/// Per-thread span buffer bound (default 65536 spans).  Long-running
/// daemons record unboundedly otherwise; once a thread's buffer is full
/// the oldest span is overwritten and the `trace.dropped_spans` counter
/// increments, so `--trace-out` in `lamps serve` keeps the *latest*
/// window instead of growing without limit.  Takes effect per thread the
/// next time that thread's buffer would grow.
void set_trace_capacity(std::size_t spans_per_thread);
[[nodiscard]] std::size_t trace_capacity();

/// Number of spans recorded so far, across all threads.
[[nodiscard]] std::size_t trace_span_count();

/// Writes the Chrome trace-event JSON: "X" complete events with
/// microsecond timestamps relative to the trace epoch, one tid per
/// recording thread, sorted by start time (enclosing spans first).
void write_chrome_trace(std::ostream& os);

/// write_chrome_trace to `path`; returns false if the file cannot be
/// opened or written.
[[nodiscard]] bool write_chrome_trace_file(const std::string& path);

/// RAII span covering [construction, destruction) on the calling thread.
/// `name` must be a string literal (stored by pointer, see file header).
class Span {
 public:
  explicit Span(const char* name) {
    if (tracing_enabled()) {
      name_ = name;
      start_ns_ = detail::trace_now_ns();
    }
  }
  ~Span() {
    if (name_ != nullptr) detail::record_span(name_, start_ns_, detail::trace_now_ns());
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_{nullptr};
  std::int64_t start_ns_{0};
};

}  // namespace lamps::obs
