#include "obs/telemetry.hpp"

#include <fstream>
#include <ostream>

#include "util/json.hpp"

namespace lamps::obs {

namespace {

// Energy values are finite by construction, but a strategy bug must not
// yield an unparseable telemetry file — route every double through the
// null-for-non-finite JSON formatter.
std::string fmt_double(double v) { return json_double(v); }

}  // namespace

void SearchTelemetry::write_json(std::ostream& os) const {
  os << "{\"strategy\": \"";
  write_json_escaped(os, strategy);
  os << "\",\n \"feasible\": " << (feasible ? "true" : "false")
     << ", \"chosen_procs\": " << chosen_procs << ", \"chosen_level\": " << chosen_level
     << ",\n \"energy_j\": {\"total\": " << fmt_double(energy_total_j)
     << ", \"dynamic\": " << fmt_double(energy_dynamic_j)
     << ", \"leakage\": " << fmt_double(energy_leakage_j)
     << ", \"intrinsic\": " << fmt_double(energy_intrinsic_j)
     << ", \"sleep\": " << fmt_double(energy_sleep_j)
     << ", \"wakeup\": " << fmt_double(energy_wakeup_j) << "}"
     << ",\n \"shutdowns\": " << shutdowns
     << ", \"schedules_computed\": " << schedules_computed << ",\n \"probes\": [";
  const char* sep = "\n";
  for (const SearchProbe& p : probes) {
    os << sep << "  {\"procs\": " << p.num_procs << ", \"phase\": \"" << p.phase
       << "\", \"action\": \"" << p.action << "\", \"makespan\": " << p.makespan
       << ", \"feasible\": " << p.feasible << ", \"level\": " << p.level_index
       << ", \"energy_j\": " << fmt_double(p.energy_j)
       << ", \"chosen\": " << (p.chosen ? "true" : "false") << '}';
    sep = ",\n";
  }
  os << "\n ]}";
}

void write_telemetry_json(std::ostream& os, const std::vector<SearchTelemetry>& records) {
  os << '[';
  const char* sep = "\n";
  for (const SearchTelemetry& r : records) {
    os << sep;
    r.write_json(os);
    sep = ",\n";
  }
  os << "\n]\n";
}

bool write_telemetry_file(const std::string& path,
                          const std::vector<SearchTelemetry>& records) {
  std::ofstream os(path);
  if (!os) return false;
  write_telemetry_json(os, records);
  return os.good();
}

}  // namespace lamps::obs
