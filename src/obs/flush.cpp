#include "obs/flush.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace lamps::obs {

MetricsFlusher::MetricsFlusher(Options opts) : opts_(std::move(opts)) {
  opts_.interval_s = std::max(opts_.interval_s, 0.01);
}

MetricsFlusher::~MetricsFlusher() { stop(); }

void MetricsFlusher::start() {
  std::scoped_lock lock(mutex_);
  if (started_) return;
  if (!opts_.path.empty()) {
    out_.open(opts_.path, std::ios::app);
    if (!out_)
      throw std::runtime_error("cannot open metrics time series: " + opts_.path);
  }
  prev_counters_ = Registry::global().counter_snapshot();
  started_ = true;
  stopping_ = false;
  thread_ = std::thread([this] { run_loop(); });
}

void MetricsFlusher::stop() {
  {
    std::scoped_lock lock(mutex_);
    if (!started_ || stopping_) {
      if (thread_.joinable()) thread_.join();
      return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final sample after the thread is quiet, so the series always ends
  // with the drained state.
  std::scoped_lock lock(mutex_);
  emit_sample_locked();
  if (out_.is_open()) out_.close();
  started_ = false;
}

std::size_t MetricsFlusher::samples() const {
  std::scoped_lock lock(mutex_);
  return samples_;
}

void MetricsFlusher::run_loop() {
  std::unique_lock lock(mutex_);
  const auto interval = std::chrono::duration<double>(opts_.interval_s);
  while (!stopping_) {
    if (cv_.wait_for(lock, interval, [this] { return stopping_; })) break;
    emit_sample_locked();
  }
}

void MetricsFlusher::emit_sample_locked() {
  Registry& reg = Registry::global();
  std::map<std::string, std::uint64_t> counters = reg.counter_snapshot();

  std::ostringstream os;
  os << "{\"ts_ns\":" << monotonic_ns() << ",\"seq\":" << samples_ << ",\"deltas\":{";
  const char* sep = "";
  for (const auto& [name, value] : counters) {
    const auto it = prev_counters_.find(name);
    const std::uint64_t prev = it == prev_counters_.end() ? 0 : it->second;
    if (value <= prev) continue;  // quiet (or reset) counters stay off the line
    os << sep;
    write_json_string(os, name);
    os << ':' << (value - prev);
    sep = ",";
  }
  os << "},\"metrics\":";
  reg.write_json_compact(os);
  os << '}';
  prev_counters_ = std::move(counters);
  // Each sample's gauge max is the peak within its own interval.
  reg.reset_gauge_maxes();

  const std::string line = os.str();
  if (out_.is_open()) {
    out_ << line << '\n';
    out_.flush();
  }
  if (opts_.hook) opts_.hook(line);
  ++samples_;
}

}  // namespace lamps::obs
