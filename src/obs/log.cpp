#include "obs/log.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace lamps::obs {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kInfo)};
std::atomic<bool> g_structured{false};
std::atomic<std::ostream*> g_sink{nullptr};
std::atomic<std::uint64_t> g_request_id{0};

// Intentionally leaked (like the metric/trace registries) so worker
// threads may log during static destruction.
std::mutex& sink_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}

void write_line(const std::string& line) {
  std::ostream* os = g_sink.load(std::memory_order_acquire);
  std::scoped_lock lock(sink_mutex());
  if (os == nullptr) os = &std::cerr;
  *os << line << '\n';
  os->flush();
}

}  // namespace

const char* severity_name(LogSeverity s) {
  switch (s) {
    case LogSeverity::kDebug:
      return "debug";
    case LogSeverity::kInfo:
      return "info";
    case LogSeverity::kWarn:
      return "warn";
    case LogSeverity::kError:
      return "error";
  }
  return "?";
}

void set_min_severity(LogSeverity s) {
  g_min_severity.store(static_cast<int>(s), std::memory_order_relaxed);
}

LogSeverity min_severity() {
  return static_cast<LogSeverity>(g_min_severity.load(std::memory_order_relaxed));
}

void set_structured_logging(bool on) { g_structured.store(on, std::memory_order_relaxed); }

bool structured_logging() { return g_structured.load(std::memory_order_relaxed); }

void set_log_sink(std::ostream* sink) { g_sink.store(sink, std::memory_order_release); }

void emit_plain(LogSeverity s, std::string_view message) {
  if (static_cast<int>(s) < g_min_severity.load(std::memory_order_relaxed)) return;
  std::ostringstream os;
  if (structured_logging()) {
    os << "{\"ts_ns\":" << monotonic_ns() << ",\"level\":\"" << severity_name(s)
       << "\",\"event\":\"log\",\"msg\":";
    write_json_string(os, message);
    os << '}';
  } else {
    os << '[' << severity_name(s) << "] " << message;
  }
  write_line(os.str());
}

std::uint64_t next_request_id() {
  return g_request_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

LogEvent::LogEvent(LogSeverity severity, std::string_view event) : severity_(severity) {
  if (static_cast<int>(severity) < g_min_severity.load(std::memory_order_relaxed)) return;
  body_.emplace();
  *body_ << "{\"ts_ns\":" << monotonic_ns() << ",\"level\":\"" << severity_name(severity)
         << "\",\"event\":";
  write_json_string(*body_, event);
}

LogEvent::~LogEvent() {
  if (!body_.has_value()) return;
  *body_ << '}';
  write_line(body_->str());
}

LogEvent& LogEvent::str(std::string_view key, std::string_view value) {
  if (body_.has_value()) {
    *body_ << ',';
    write_json_string(*body_, key);
    *body_ << ':';
    write_json_string(*body_, value);
  }
  return *this;
}

LogEvent& LogEvent::num(std::string_view key, double value) {
  if (body_.has_value()) {
    *body_ << ',';
    write_json_string(*body_, key);
    *body_ << ':' << json_double(value);
  }
  return *this;
}

LogEvent& LogEvent::u64(std::string_view key, std::uint64_t value) {
  if (body_.has_value()) {
    *body_ << ',';
    write_json_string(*body_, key);
    *body_ << ':' << value;
  }
  return *this;
}

LogEvent& LogEvent::i64(std::string_view key, std::int64_t value) {
  if (body_.has_value()) {
    *body_ << ',';
    write_json_string(*body_, key);
    *body_ << ':' << value;
  }
  return *this;
}

LogEvent& LogEvent::boolean(std::string_view key, bool value) {
  if (body_.has_value()) {
    *body_ << ',';
    write_json_string(*body_, key);
    *body_ << ':' << (value ? "true" : "false");
  }
  return *this;
}

}  // namespace lamps::obs
