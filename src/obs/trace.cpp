#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace lamps::obs {

namespace {

struct SpanEvent {
  const char* name;
  std::int64_t start_ns;
  std::int64_t dur_ns;
};

/// One per recording thread.  shared_ptr-owned by both the thread_local
/// handle and the registry, so spans survive their thread's exit (thread
/// pool workers die before the CLI exports the trace).
struct ThreadBuffer {
  std::mutex mutex;
  /// A ring once `events` reaches the process-wide capacity: the oldest
  /// entry (at `overwrite_idx`) is replaced and `trace.dropped_spans`
  /// counts the loss.  Export order does not matter — the writer sorts by
  /// start time.
  std::vector<SpanEvent> events;
  std::size_t overwrite_idx{0};
  std::uint32_t tid{0};
};

std::atomic<std::size_t> g_trace_capacity{65536};

struct TraceRegistry {
  std::mutex mutex;
  std::vector<std::shared_ptr<ThreadBuffer>> buffers;
  std::uint32_t next_tid{1};
};

TraceRegistry& registry() {
  // Intentionally leaked: detached/pool threads may record past the end of
  // static destruction.
  static TraceRegistry* r = new TraceRegistry;
  return *r;
}

ThreadBuffer& thread_buffer() {
  thread_local std::shared_ptr<ThreadBuffer> buf = [] {
    auto b = std::make_shared<ThreadBuffer>();
    TraceRegistry& r = registry();
    std::scoped_lock lock(r.mutex);
    b->tid = r.next_tid++;
    r.buffers.push_back(b);
    return b;
  }();
  return *buf;
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Nanosecond count as a microsecond decimal ("1234.567") — fixed
/// formatting, independent of the stream's float state.
void write_us(std::ostream& os, std::int64_t ns) {
  os << ns / 1000 << '.' << std::setw(3) << std::setfill('0') << ns % 1000
     << std::setfill(' ');
}

}  // namespace

namespace detail {

std::atomic<bool> g_tracing_enabled{false};

std::int64_t trace_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - trace_epoch())
      .count();
}

void record_span(const char* name, std::int64_t start_ns, std::int64_t end_ns) {
  static Counter& dropped = counter("trace.dropped_spans");
  const std::size_t capacity =
      std::max<std::size_t>(1, g_trace_capacity.load(std::memory_order_relaxed));
  ThreadBuffer& buf = thread_buffer();
  std::scoped_lock lock(buf.mutex);
  if (buf.events.size() < capacity) {
    buf.events.push_back(SpanEvent{name, start_ns, end_ns - start_ns});
    return;
  }
  // Full (or over-full after a capacity shrink): recycle the oldest slot.
  buf.events[buf.overwrite_idx] = SpanEvent{name, start_ns, end_ns - start_ns};
  buf.overwrite_idx = (buf.overwrite_idx + 1) % buf.events.size();
  dropped.inc();
}

}  // namespace detail

void set_tracing_enabled(bool enabled) {
  if (enabled) (void)trace_epoch();  // pin the epoch before the first span
  detail::g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

void clear_trace() {
  TraceRegistry& r = registry();
  std::scoped_lock lock(r.mutex);
  for (const auto& b : r.buffers) {
    std::scoped_lock block(b->mutex);
    b->events.clear();
    b->overwrite_idx = 0;
  }
}

void set_trace_capacity(std::size_t spans_per_thread) {
  g_trace_capacity.store(std::max<std::size_t>(1, spans_per_thread),
                         std::memory_order_relaxed);
}

std::size_t trace_capacity() { return g_trace_capacity.load(std::memory_order_relaxed); }

std::size_t trace_span_count() {
  TraceRegistry& r = registry();
  std::scoped_lock lock(r.mutex);
  std::size_t n = 0;
  for (const auto& b : r.buffers) {
    std::scoped_lock block(b->mutex);
    n += b->events.size();
  }
  return n;
}

void write_chrome_trace(std::ostream& os) {
  struct Row {
    std::uint32_t tid;
    SpanEvent ev;
  };
  std::vector<Row> rows;
  {
    TraceRegistry& r = registry();
    std::scoped_lock lock(r.mutex);
    for (const auto& b : r.buffers) {
      std::scoped_lock block(b->mutex);
      for (const SpanEvent& ev : b->events) rows.push_back(Row{b->tid, ev});
    }
  }
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a.ev.start_ns != b.ev.start_ns) return a.ev.start_ns < b.ev.start_ns;
    if (a.tid != b.tid) return a.tid < b.tid;
    if (a.ev.dur_ns != b.ev.dur_ns) return a.ev.dur_ns > b.ev.dur_ns;  // outer first
    return std::strcmp(a.ev.name, b.ev.name) < 0;
  });

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  const char* sep = "\n";
  for (const Row& row : rows) {
    os << sep << "{\"name\":\"";
    write_json_escaped(os, row.ev.name);
    os << "\",\"cat\":\"lamps\",\"ph\":\"X\",\"pid\":1,\"tid\":" << row.tid << ",\"ts\":";
    write_us(os, row.ev.start_ns);
    os << ",\"dur\":";
    write_us(os, row.ev.dur_ns);
    os << '}';
    sep = ",\n";
  }
  os << "\n]}\n";
}

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream os(path);
  if (!os) return false;
  write_chrome_trace(os);
  return os.good();
}

}  // namespace lamps::obs
