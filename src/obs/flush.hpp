// Periodic metrics export: a background thread that appends one compact
// registry snapshot per interval to a JSONL time series.
//
// The offline exporters (--metrics-out) only show the end state of a run;
// a long-running daemon needs the *trajectory* — when did the cache warm
// up, when did the queue back up, when did tail latency spike.  Each
// sample is one line:
//
//   {"ts_ns":<monotonic>,"seq":3,"deltas":{"serve.requests_ok":412,...},
//    "metrics":{...full compact registry...}}
//
// `deltas` carries every counter that moved since the previous sample
// (per-interval rates fall out by dividing by the interval), and gauges'
// high-water marks are re-armed after each sample
// (Registry::reset_gauge_maxes), so each line's gauge `max` is the peak
// *within that interval* while live values are untouched.  `ts_ns` is the
// shared trace clock (obs::monotonic_ns), so samples line up with spans
// and log records.
//
// Samples can go to a file (append), to a callback (lamps_loadgen embeds
// them in its benchmark report), or both.  stop() emits one final sample
// so the series always covers the full lifetime.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <fstream>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace lamps::obs {

class MetricsFlusher {
 public:
  using SampleHook = std::function<void(const std::string& json_line)>;

  struct Options {
    double interval_s{1.0};  ///< clamped to >= 0.01
    std::string path;        ///< JSONL file to append to ("" = hook only)
    SampleHook hook;         ///< also invoked with each sample line
  };

  explicit MetricsFlusher(Options opts);
  ~MetricsFlusher();

  MetricsFlusher(const MetricsFlusher&) = delete;
  MetricsFlusher& operator=(const MetricsFlusher&) = delete;

  /// Opens the output and starts the flusher thread.  Throws
  /// std::runtime_error when the path cannot be opened.
  void start();

  /// Emits one final sample, then joins the thread.  Idempotent.
  void stop();

  [[nodiscard]] std::size_t samples() const;

 private:
  void run_loop();
  void emit_sample_locked();

  Options opts_;
  std::ofstream out_;
  std::thread thread_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_{false};
  bool started_{false};
  std::size_t samples_{0};
  std::map<std::string, std::uint64_t> prev_counters_;
};

}  // namespace lamps::obs
