#include "obs/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"

namespace lamps::obs {

namespace {

double ms_between(std::int64_t from_ns, std::int64_t to_ns) {
  if (from_ns <= 0 || to_ns <= 0 || to_ns < from_ns) return 0.0;
  return static_cast<double>(to_ns - from_ns) * 1e-6;
}

/// arrival -> last stamped phase, the latency the slow threshold judges.
std::int64_t end_ns(const FlightRecord& rec) {
  if (rec.write_ns > 0) return rec.write_ns;
  if (rec.finish_ns > 0) return rec.finish_ns;
  return rec.arrival_ns;
}

}  // namespace

const char* to_string(FlightOutcome outcome) {
  switch (outcome) {
    case FlightOutcome::kComputed:
      return "computed";
    case FlightOutcome::kCacheHit:
      return "cache_hit";
    case FlightOutcome::kCoalesced:
      return "coalesced";
    case FlightOutcome::kBadRequest:
      return "bad_request";
    case FlightOutcome::kOverloaded:
      return "overloaded";
    case FlightOutcome::kInternalError:
      return "internal_error";
    case FlightOutcome::kDeadlineExceeded:
      return "deadline_exceeded";
    case FlightOutcome::kTooLarge:
      return "too_large";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity, double slow_threshold_s)
    : capacity_(std::max<std::size_t>(1, capacity)),
      slow_threshold_s_(slow_threshold_s),
      slots_(new Slot[capacity_]) {}

void FlightRecorder::record(const FlightRecord& rec) {
  static Counter& dropped = counter("flight.dropped_records");
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_acq_rel);
  Slot& slot = slots_[ticket % capacity_];
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  // Lock-free publish: an odd seq (or a lost CAS) means another writer
  // lapped the whole ring and owns this slot right now — newer data, so
  // dropping ours is the correct resolution.
  if ((seq & 1U) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1, std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    dropped.inc();
    return;
  }
  slot.rec = rec;
  slot.seq.store(seq + 2, std::memory_order_release);

  const double total_s = ms_between(rec.arrival_ns, end_ns(rec)) * 1e-3;
  if (slow_threshold_s_ > 0.0 && total_s >= slow_threshold_s_) {
    static Counter& slow = counter("serve.slow_requests");
    slow.inc();
    // Promotion to a full span dump: the whole phase breakdown in one
    // structured record, emitted even when nobody polls flightz.
    LogEvent(LogSeverity::kWarn, "serve.slow_request")
        .u64("req", rec.request_id)
        .u64("digest", rec.digest)
        .str("outcome", to_string(rec.outcome))
        .num("total_ms", total_s * 1e3)
        .num("queue_ms", ms_between(rec.admit_ns, rec.compute_start_ns))
        .num("compute_ms", ms_between(rec.compute_start_ns, rec.compute_end_ns))
        .num("write_ms", ms_between(rec.finish_ns, rec.write_ns))
        .u64("bytes", rec.response_bytes);
  }
}

std::vector<FlightRecord> FlightRecorder::last(std::size_t n) const {
  const std::uint64_t total = next_.load(std::memory_order_acquire);
  const std::uint64_t available = std::min<std::uint64_t>(total, capacity_);
  std::vector<FlightRecord> out;
  out.reserve(std::min<std::uint64_t>(n, available));
  for (std::uint64_t back = 0; back < available && out.size() < n; ++back) {
    const Slot& slot = slots_[(total - 1 - back) % capacity_];
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before == 0 || (before & 1U) != 0) continue;  // empty or mid-write
    FlightRecord copy = slot.rec;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != before) continue;  // torn
    out.push_back(copy);
  }
  return out;
}

void FlightRecorder::write_json(std::ostream& os, const FlightRecord& rec) {
  // The digest is a full 64-bit FNV value; JSON numbers are doubles, so it
  // goes out as a hex string to survive every strict parser bit-exactly.
  char digest_hex[17];
  std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                static_cast<unsigned long long>(rec.digest));
  os << "{\"req\":" << rec.request_id << ",\"digest\":\"" << digest_hex
     << "\",\"outcome\":\"" << to_string(rec.outcome) << "\",\"arrival_ns\":"
     << rec.arrival_ns << ",\"total_ms\":"
     << json_double(ms_between(rec.arrival_ns, end_ns(rec))) << ",\"queue_ms\":"
     << json_double(ms_between(rec.admit_ns, rec.compute_start_ns))
     << ",\"compute_ms\":"
     << json_double(ms_between(rec.compute_start_ns, rec.compute_end_ns))
     << ",\"write_ms\":" << json_double(ms_between(rec.finish_ns, rec.write_ns))
     << ",\"bytes\":" << rec.response_bytes << '}';
}

}  // namespace lamps::obs
