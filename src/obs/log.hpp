// Structured JSON-lines logging for the long-running pieces (the serve
// daemon, the load generator, the experiment pipeline).
//
// One log record is one JSON object on one line:
//
//   {"ts_ns":182734091,"level":"info","event":"serve.listening",
//    "port":4500,"threads":8}
//
// `ts_ns` is monotonic nanoseconds on the *trace clock*
// (obs::monotonic_ns(), same epoch as --trace-out spans), so log records,
// spans and metric samples correlate on a single time axis.  Records are
// written atomically under one sink mutex — lines never interleave — and
// filtered by the same process-wide level that util/log.hpp exposes; the
// canonical level storage lives here so the plain and structured paths
// can never disagree.
//
// LogEvent is a build-then-emit helper: construct with a severity and an
// event name, chain typed fields, and the record is written when the
// object goes out of scope.  Below the level filter the constructor does
// no formatting at all, so debug-level per-request events are one branch
// when disabled:
//
//   obs::LogEvent(obs::LogSeverity::kDebug, "serve.request")
//       .u64("req", id).str("outcome", "computed");
//
// The plain-text logger (util/log.hpp log_info etc.) keeps its "[level]
// message" stderr format by default; set_structured_logging(true)
// (--log-json on the CLIs) re-routes those lines through this sink as
// {"event":"log","msg":...} records so *all* diagnostic output becomes
// machine-parseable.  docs/observability.md documents the record schema.
#pragma once

#include <cstdint>
#include <optional>
#include <sstream>
#include <string_view>

namespace lamps::obs {

enum class LogSeverity : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

[[nodiscard]] const char* severity_name(LogSeverity s);

/// Process-wide minimum severity (default kInfo).  util/log.hpp's
/// set_log_level/log_level delegate here.
void set_min_severity(LogSeverity s);
[[nodiscard]] LogSeverity min_severity();

/// When on, plain util/log.hpp lines are wrapped as structured records
/// instead of "[level] message" text.  LogEvent always emits JSON.
void set_structured_logging(bool on);
[[nodiscard]] bool structured_logging();

/// Redirects all log output (tests, or a daemon log file).  nullptr
/// restores stderr.  The sink must outlive every log call.
void set_log_sink(std::ostream* sink);

/// Emits a plain "[level] message" line (or its structured wrapping, see
/// set_structured_logging) honoring the level filter.  This is the
/// backend of util/log.hpp's log_line.
void emit_plain(LogSeverity s, std::string_view message);

/// Process-wide request-id source for the serve daemon: monotonically
/// increasing from 1, threaded reader -> pool -> writer so every log
/// record and flight-recorder entry of one request shares one id.
[[nodiscard]] std::uint64_t next_request_id();

class LogEvent {
 public:
  LogEvent(LogSeverity severity, std::string_view event);
  ~LogEvent();
  LogEvent(const LogEvent&) = delete;
  LogEvent& operator=(const LogEvent&) = delete;

  /// True when the record passes the level filter (fields will be kept).
  [[nodiscard]] bool enabled() const { return body_.has_value(); }

  LogEvent& str(std::string_view key, std::string_view value);
  LogEvent& num(std::string_view key, double value);
  LogEvent& u64(std::string_view key, std::uint64_t value);
  LogEvent& i64(std::string_view key, std::int64_t value);
  LogEvent& boolean(std::string_view key, bool value);

 private:
  LogSeverity severity_{LogSeverity::kInfo};
  /// The partial record "{"ts_ns":...,"level":...,"event":...  — engaged
  /// only when the event passes the filter.
  std::optional<std::ostringstream> body_;
};

}  // namespace lamps::obs
