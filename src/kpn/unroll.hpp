// KPN -> DAG unrolling (paper section 3.1, Fig 1).
//
// The network is copied once per iteration; a channel (a -> b, delay d)
// becomes edges a^j -> b^(j+d); each process is serialized across copies by
// edges p^j -> p^(j+1) ("not all inputs are available at time zero"); and
// the network's output processes receive explicit deadlines
//   deadline(copy j) = first_deadline + j / throughput.
#pragma once

#include "graph/task_graph.hpp"
#include "kpn/kpn.hpp"

namespace lamps::kpn {

struct UnrollOptions {
  /// Number of network copies (iterations) in the DAG.
  std::size_t copies{1};
  /// Deadline of the first copy's outputs ("arbitrary but reasonable").
  Seconds first_deadline{0.0};
  /// Required throughput in iterations per second; successive copies'
  /// deadlines are spaced by its reciprocal.
  double throughput{0.0};
};

/// Unrolls the KPN.  Task v of copy j gets label "<proc>#<j>".  Throws
/// std::invalid_argument when copies == 0, the deadline/throughput are not
/// positive, or the zero-delay channel subgraph is cyclic (no valid firing
/// order exists within an iteration).
[[nodiscard]] graph::TaskGraph unroll(const Kpn& net, const UnrollOptions& opts);

}  // namespace lamps::kpn
