// Kahn Process Networks (paper section 3.1, Fig 1).
//
// A KPN is a network of sequential processes connected by FIFO channels.
// Each process fires repeatedly: it reads its inputs, computes for a fixed
// number of cycles, and writes its outputs.  Throughput-constrained KPNs
// are converted to deadline-constrained DAGs by unrolling: copy the network
// once per iteration, translate channels into edges between copies, chain
// successive copies of the same process, and assign each copy's output
// tasks a deadline spaced by the reciprocal throughput (see unroll.hpp).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace lamps::kpn {

using ProcessId = std::uint32_t;

struct Process {
  std::string name;
  Cycles work{0};  ///< cycles per firing
};

/// Channel `from -> to` with `delay` tokens initially queued: firing j of
/// `to` consumes the output of firing j - delay of `from`.  delay = 0 is a
/// plain same-iteration dependence; delay >= 1 models pipelining (the
/// T2 -> T3 channel of the paper's Fig 1 has delay 1: T3 combines input
/// J_{i+1} with the i-th output of T2).
struct Channel {
  ProcessId from{0};
  ProcessId to{0};
  std::uint32_t delay{0};
};

class Kpn {
 public:
  explicit Kpn(std::string name = "kpn") : name_(std::move(name)) {}

  ProcessId add_process(std::string name, Cycles work);

  /// Adds a channel.  Self-channels require delay >= 1 (a process cannot
  /// consume its own same-iteration output).
  void add_channel(ProcessId from, ProcessId to, std::uint32_t delay = 0);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_processes() const { return processes_.size(); }
  [[nodiscard]] const Process& process(ProcessId p) const { return processes_.at(p); }
  [[nodiscard]] const std::vector<Channel>& channels() const { return channels_; }

  /// Processes with no outgoing channels: the network's outputs, which
  /// receive the per-iteration deadlines when unrolling.
  [[nodiscard]] std::vector<ProcessId> output_processes() const;

 private:
  std::string name_;
  std::vector<Process> processes_;
  std::vector<Channel> channels_;
};

}  // namespace lamps::kpn
