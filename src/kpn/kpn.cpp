#include "kpn/kpn.hpp"

#include <stdexcept>

namespace lamps::kpn {

ProcessId Kpn::add_process(std::string name, Cycles work) {
  processes_.push_back(Process{std::move(name), work});
  return static_cast<ProcessId>(processes_.size() - 1);
}

void Kpn::add_channel(ProcessId from, ProcessId to, std::uint32_t delay) {
  if (from >= processes_.size() || to >= processes_.size())
    throw std::out_of_range("Kpn::add_channel: unknown process");
  if (from == to && delay == 0)
    throw std::invalid_argument("Kpn::add_channel: zero-delay self channel");
  channels_.push_back(Channel{from, to, delay});
}

std::vector<ProcessId> Kpn::output_processes() const {
  std::vector<bool> has_out(processes_.size(), false);
  for (const Channel& c : channels_)
    if (c.from != c.to) has_out[c.from] = true;
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < processes_.size(); ++p)
    if (!has_out[p]) out.push_back(p);
  return out;
}

}  // namespace lamps::kpn
