#include "kpn/unroll.hpp"

#include <stdexcept>

namespace lamps::kpn {

graph::TaskGraph unroll(const Kpn& net, const UnrollOptions& opts) {
  if (opts.copies == 0) throw std::invalid_argument("unroll: need at least one copy");
  if (opts.first_deadline.value() <= 0.0 || opts.throughput <= 0.0)
    throw std::invalid_argument("unroll: deadline and throughput must be positive");

  const std::size_t p = net.num_processes();
  graph::TaskGraphBuilder b(net.name() + "-unrolled");

  const auto task_of = [p](std::size_t copy, ProcessId proc) {
    return static_cast<graph::TaskId>(copy * p + proc);
  };

  for (std::size_t j = 0; j < opts.copies; ++j)
    for (ProcessId q = 0; q < p; ++q)
      (void)b.add_task(net.process(q).work, net.process(q).name + "#" + std::to_string(j));

  for (std::size_t j = 0; j < opts.copies; ++j) {
    for (const Channel& c : net.channels()) {
      const std::size_t target_copy = j + c.delay;
      if (target_copy >= opts.copies) continue;
      if (c.from == c.to && c.delay == 0) continue;  // rejected at add_channel
      b.add_edge(task_of(j, c.from), task_of(target_copy, c.to));
    }
    if (j + 1 < opts.copies)
      for (ProcessId q = 0; q < p; ++q) b.add_edge(task_of(j, q), task_of(j + 1, q));
  }

  const Seconds period{1.0 / opts.throughput};
  for (const ProcessId out : net.output_processes())
    for (std::size_t j = 0; j < opts.copies; ++j)
      b.set_deadline(task_of(j, out),
                     opts.first_deadline + period * static_cast<double>(j));

  // build() performs the acyclicity check; a zero-delay cycle inside one
  // copy is the only way it can fail and yields a clear error.
  return b.build();
}

}  // namespace lamps::kpn
