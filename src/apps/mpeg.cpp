#include "apps/mpeg.hpp"

#include <stdexcept>
#include <vector>

namespace lamps::apps {

graph::TaskGraph mpeg1_gop_graph(const MpegConfig& cfg) {
  if (cfg.gop.empty()) throw std::invalid_argument("mpeg1_gop_graph: empty GOP pattern");

  graph::TaskGraphBuilder b("mpeg1-gop");
  std::vector<graph::TaskId> frame(cfg.gop.size());
  for (std::size_t i = 0; i < cfg.gop.size(); ++i) {
    Cycles w = 0;
    switch (cfg.gop[i]) {
      case 'I':
        w = cfg.i_frame_cycles;
        break;
      case 'P':
        w = cfg.p_frame_cycles;
        break;
      case 'B':
        w = cfg.b_frame_cycles;
        break;
      default:
        throw std::invalid_argument("mpeg1_gop_graph: unknown frame type in GOP pattern");
    }
    frame[i] = b.add_task(w, std::string(1, cfg.gop[i]) + std::to_string(i));
  }

  // Reference chain: each P depends on the previous reference frame; B
  // frames depend on the surrounding references (prev ref and, if one
  // exists inside the GOP, the next ref).
  std::vector<std::size_t> ref_positions;
  for (std::size_t i = 0; i < cfg.gop.size(); ++i)
    if (cfg.gop[i] != 'B') ref_positions.push_back(i);
  if (ref_positions.empty() || cfg.gop[0] == 'P')
    throw std::invalid_argument("mpeg1_gop_graph: GOP needs a leading I frame");

  std::size_t ref_idx = 0;  // index into ref_positions of the last ref at or before i
  for (std::size_t i = 0; i < cfg.gop.size(); ++i) {
    if (cfg.gop[i] == 'I') continue;  // intra-coded: no dependences
    if (cfg.gop[i] == 'P') {
      // Previous reference: the ref strictly before this position.
      while (ref_idx + 1 < ref_positions.size() && ref_positions[ref_idx + 1] < i) ++ref_idx;
      if (ref_positions[ref_idx] >= i)
        throw std::invalid_argument("mpeg1_gop_graph: P frame before any reference");
      b.add_edge(frame[ref_positions[ref_idx]], frame[i]);
      continue;
    }
    // B frame: previous and (if any) next reference.
    std::size_t prev = cfg.gop.size();
    std::size_t next = cfg.gop.size();
    for (const std::size_t r : ref_positions) {
      if (r < i) prev = r;
      if (r > i && next == cfg.gop.size()) next = r;
    }
    if (prev == cfg.gop.size())
      throw std::invalid_argument("mpeg1_gop_graph: B frame before any reference");
    b.add_edge(frame[prev], frame[i]);
    if (next != cfg.gop.size()) b.add_edge(frame[next], frame[i]);
  }
  return b.build();
}

}  // namespace lamps::apps
