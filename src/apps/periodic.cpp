#include "apps/periodic.hpp"

#include <cmath>
#include <numeric>
#include <stdexcept>

namespace lamps::apps {

namespace {

/// Periods on a 1 us grid keep the hyperperiod lcm exact in integers.
constexpr double kGrid = 1e-6;

std::uint64_t to_grid(Seconds t, const char* what) {
  const double ticks = t.value() / kGrid;
  const double rounded = std::round(ticks);
  if (ticks <= 0.0 || std::abs(ticks - rounded) > 1e-6)
    throw std::invalid_argument(std::string("PeriodicTaskSet: ") + what +
                                " must be a positive multiple of 1 us");
  return static_cast<std::uint64_t>(rounded);
}

}  // namespace

std::size_t PeriodicTaskSet::add_task(PeriodicTask task) {
  if (task.period.value() <= 0.0)
    throw std::invalid_argument("PeriodicTaskSet: period must be positive");
  if (task.relative_deadline.value() == 0.0) task.relative_deadline = task.period;
  if (task.relative_deadline.value() < 0.0 ||
      task.relative_deadline.value() > task.period.value() * (1.0 + 1e-12))
    throw std::invalid_argument(
        "PeriodicTaskSet: relative deadline must lie in (0, period]");
  if (task.phase.value() < 0.0)
    throw std::invalid_argument("PeriodicTaskSet: negative phase");
  (void)to_grid(task.period, "period");  // validate grid alignment early
  tasks_.push_back(std::move(task));
  return tasks_.size() - 1;
}

void PeriodicTaskSet::add_dependence(std::size_t from, std::size_t to) {
  if (from >= tasks_.size() || to >= tasks_.size())
    throw std::out_of_range("PeriodicTaskSet: unknown task in dependence");
  if (from == to) throw std::invalid_argument("PeriodicTaskSet: self dependence");
  const std::uint64_t pf = to_grid(tasks_[from].period, "period");
  const std::uint64_t pt = to_grid(tasks_[to].period, "period");
  if (pf % pt != 0 && pt % pf != 0)
    throw std::invalid_argument(
        "PeriodicTaskSet: dependent tasks need harmonic periods");
  deps_.push_back(TaskDependence{from, to});
}

Seconds PeriodicTaskSet::hyperperiod() const {
  if (tasks_.empty()) return Seconds{0.0};
  std::uint64_t l = 1;
  for (const PeriodicTask& t : tasks_) l = std::lcm(l, to_grid(t.period, "period"));
  return Seconds{static_cast<double>(l) * kGrid};
}

double PeriodicTaskSet::utilization(Hertz f_ref) const {
  double u = 0.0;
  for (const PeriodicTask& t : tasks_)
    u += static_cast<double>(t.wcet) / (t.period.value() * f_ref.value());
  return u;
}

graph::TaskGraph PeriodicTaskSet::to_task_graph(std::size_t frames) const {
  if (frames == 0) throw std::invalid_argument("PeriodicTaskSet: frames must be >= 1");
  if (tasks_.empty()) return graph::TaskGraphBuilder("periodic").build();

  const double horizon = hyperperiod().value() * static_cast<double>(frames);
  graph::TaskGraphBuilder b("periodic");

  // Job table: jobs_[i][k] = node of task i's k-th job.
  std::vector<std::vector<graph::TaskId>> jobs(tasks_.size());
  std::vector<std::vector<double>> releases(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    const PeriodicTask& t = tasks_[i];
    for (double r = t.phase.value(); r < horizon - 1e-12; r += t.period.value()) {
      const graph::TaskId job =
          b.add_task(t.wcet, t.name + "@" + std::to_string(jobs[i].size()));
      b.set_deadline(job, Seconds{r + t.relative_deadline.value()});
      if (!jobs[i].empty()) b.add_edge(jobs[i].back(), job);  // job-order chain
      jobs[i].push_back(job);
      releases[i].push_back(r);
    }
  }

  // Data dependences: job of `to` released at r waits for the latest job
  // of `from` released at or before r.
  for (const TaskDependence& d : deps_) {
    for (std::size_t k = 0; k < jobs[d.to].size(); ++k) {
      const double r = releases[d.to][k];
      std::size_t best = jobs[d.from].size();
      for (std::size_t j = 0; j < jobs[d.from].size(); ++j)
        if (releases[d.from][j] <= r + 1e-12) best = j;
      if (best < jobs[d.from].size()) b.add_edge(jobs[d.from][best], jobs[d.to][k]);
    }
  }
  return b.build();
}

}  // namespace lamps::apps
