// Frame-based translation of periodic task sets into deadline-annotated
// DAGs (paper section 3.1: "real-time applications with periodic tasks can
// be translated to DAGs using the frame-based scheduling paradigm", after
// Liberato et al. [25]).
//
// A periodic task (period T, WCET C, relative deadline D <= T, optional
// phase) releases one job per period.  Over the hyperperiod
// H = lcm(T_1..T_n) every job becomes a DAG node with an explicit absolute
// deadline (release + D); successive jobs of the same task are chained
// (job k must precede job k+1), and data dependences between tasks become
// edges between the jobs of one frame.  The resulting graph drops straight
// into the Problem/strategy machinery via the explicit-deadline support.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/task_graph.hpp"

namespace lamps::apps {

struct PeriodicTask {
  std::string name;
  Cycles wcet{0};
  /// Period in seconds.
  Seconds period{0.0};
  /// Relative deadline; 0 selects the period (implicit deadline).
  Seconds relative_deadline{0.0};
  /// Release offset of the first job.
  Seconds phase{0.0};
};

/// Same-frame data dependence: every job of `to` released at time t also
/// waits for the latest job of `from` released at or before t.  (Only
/// meaningful when from's period divides to's period or vice versa;
/// validated on use.)
struct TaskDependence {
  std::size_t from{0};
  std::size_t to{0};
};

class PeriodicTaskSet {
 public:
  /// Adds a task; returns its index.  Throws on non-positive period/WCET
  /// misuse (zero WCET is allowed for pure synchronization tasks) or
  /// deadline > period.
  std::size_t add_task(PeriodicTask task);

  /// Declares a producer -> consumer dependence between two tasks.
  void add_dependence(std::size_t from, std::size_t to);

  [[nodiscard]] std::size_t num_tasks() const { return tasks_.size(); }
  [[nodiscard]] const PeriodicTask& task(std::size_t i) const { return tasks_.at(i); }
  [[nodiscard]] const std::vector<TaskDependence>& dependences() const { return deps_; }

  /// Hyperperiod in seconds (periods are reduced over a 1 us grid to make
  /// the lcm exact; throws if any period is not a multiple of 1 us).
  [[nodiscard]] Seconds hyperperiod() const;

  /// Utilization bound sum(C_i / (T_i * f_ref)) at a reference frequency.
  [[nodiscard]] double utilization(Hertz f_ref) const;

  /// Unrolls `frames` hyperperiods into a DAG with explicit per-job
  /// deadlines.  Labels are "<name>@<job>".
  [[nodiscard]] graph::TaskGraph to_task_graph(std::size_t frames = 1) const;

 private:
  std::vector<PeriodicTask> tasks_;
  std::vector<TaskDependence> deps_;
};

}  // namespace lamps::apps
