// Uniprocessor critical-speed DVS for periodic task sets — the algorithm
// of Jejurikar, Pereira & Gupta (DAC'04), the paper's reference [13] and
// the source of its power model.  The reproduced paper generalizes this
// idea (run at the energy-optimal "critical speed" unless the deadline
// forces faster) from one processor with independent periodic tasks to
// multiprocessors with task graphs; this module provides the original
// single-processor setting so the two can be compared on the same task
// sets.
//
// Under EDF a periodic set is schedulable at a uniform slowdown when its
// density sum(C_i / (min(D_i, T_i) * f)) stays at most 1.  The
// energy-optimal uniform level is then the slowest feasible level at or
// above the critical speed; with PS the per-hyperperiod idle time is slept
// when it beats the breakeven.
#pragma once

#include "apps/periodic.hpp"
#include "energy/evaluator.hpp"
#include "power/dvs_ladder.hpp"
#include "power/power_model.hpp"

namespace lamps::apps {

struct UniprocDvsResult {
  /// False when even the maximum frequency cannot meet the density bound.
  bool feasible{false};
  std::size_t level_index{0};
  /// Density at the maximum frequency (feasibility requires <= 1).
  double density_fmax{0.0};
  /// Energy for one hyperperiod at the chosen operating point.
  energy::EnergyBreakdown breakdown{};
  /// True when the idle residue of the hyperperiod is slept (PS).
  bool sleeps_idle{false};

  [[nodiscard]] Joules energy() const { return breakdown.total(); }
};

/// Selects the energy-optimal uniform DVS level for the task set on one
/// processor.  With `ps` the hyperperiod's idle residue may be shut down
/// under the usual breakeven rule (one gap per hyperperiod — the EDF busy
/// intervals are not modeled individually, matching [13]'s aggregate
/// analysis).  Throws on an empty task set.
[[nodiscard]] UniprocDvsResult uniproc_critical_speed_dvs(const PeriodicTaskSet& ts,
                                                          const power::PowerModel& model,
                                                          const power::DvsLadder& ladder,
                                                          bool ps = true);

}  // namespace lamps::apps
