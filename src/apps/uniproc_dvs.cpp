#include "apps/uniproc_dvs.hpp"

#include <algorithm>
#include <stdexcept>

#include "power/sleep_model.hpp"

namespace lamps::apps {

UniprocDvsResult uniproc_critical_speed_dvs(const PeriodicTaskSet& ts,
                                            const power::PowerModel& model,
                                            const power::DvsLadder& ladder, bool ps) {
  if (ts.num_tasks() == 0)
    throw std::invalid_argument("uniproc_critical_speed_dvs: empty task set");

  UniprocDvsResult r;
  // Density at f_max: sum C_i / (min(D_i, T_i) * f_max).
  const double f_max = model.max_frequency().value();
  double density_hz = 0.0;  // sum C_i / min(D_i, T_i) — a frequency demand
  for (std::size_t i = 0; i < ts.num_tasks(); ++i) {
    const PeriodicTask& t = ts.task(i);
    const double window = std::min(t.relative_deadline.value(), t.period.value());
    density_hz += static_cast<double>(t.wcet) / window;
  }
  r.density_fmax = density_hz / f_max;
  if (r.density_fmax > 1.0 + 1e-12) return r;  // overloaded even at f_max

  // Slowest feasible level: f >= density demand; floor at the critical
  // level ([13]'s critical speed: below it every cycle costs more).
  const power::DvsLevel* lo =
      ladder.lowest_level_at_least(Hertz{density_hz * (1.0 - 1e-12)});
  if (lo == nullptr) return r;
  const std::size_t lvl_idx = std::max(lo->index, ladder.critical_level().index);
  const power::DvsLevel& lvl = ladder.level(lvl_idx);

  // Per-hyperperiod accounting: work = sum of job WCETs over H.
  const Seconds hyper = ts.hyperperiod();
  double work_cycles = 0.0;
  for (std::size_t i = 0; i < ts.num_tasks(); ++i) {
    const PeriodicTask& t = ts.task(i);
    work_cycles += static_cast<double>(t.wcet) * (hyper.value() / t.period.value());
  }
  const Seconds busy{work_cycles / lvl.f.value()};
  if (busy.value() > hyper.value() * (1.0 + 1e-9)) return r;  // inconsistent set
  const Seconds idle = hyper - busy;

  r.feasible = true;
  r.level_index = lvl_idx;
  r.breakdown.dynamic = lvl.active.dynamic * busy;
  r.breakdown.leakage = lvl.active.leakage * busy;
  r.breakdown.intrinsic = lvl.active.intrinsic * busy;

  const power::SleepModel sleep(model);
  if (ps && sleep.decide(idle, lvl.idle).shutdown) {
    r.sleeps_idle = true;
    r.breakdown.sleep = sleep.sleep_power() * idle;
    r.breakdown.wakeup = sleep.wakeup_energy();
    r.breakdown.shutdowns = 1;
  } else {
    r.breakdown.leakage += lvl.active.leakage * idle;
    r.breakdown.intrinsic += lvl.active.intrinsic * idle;
  }
  return r;
}

}  // namespace lamps::apps
