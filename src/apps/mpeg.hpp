// MPEG-1 encoding task graph (paper section 5.1 / 5.3, Fig 9).
//
// The benchmark encodes one 15-frame group of pictures
// (I B B P B B P B B P B B P B B) with the per-frame-type cycle counts
// from Zhu et al.'s Tennis-sequence measurements, scaled to a 3.1 GHz
// clock, exactly as the Fig 9 caption states.  Dependences follow MPEG
// motion-compensation: a P frame needs the previous reference (I or P)
// frame; a B frame needs both surrounding references, except the trailing
// B frames of the GOP which only have the preceding reference.
// The real-time requirement of 30 frames/s puts the GOP deadline at 0.5 s.
#pragma once

#include <string>

#include "graph/task_graph.hpp"

namespace lamps::apps {

struct MpegConfig {
  /// Frame-type pattern of one GOP ('I', 'P', 'B').
  std::string gop{"IBBPBBPBBPBBPBB"};
  /// Encoding cost per frame type, cycles (Fig 9 caption).
  Cycles i_frame_cycles{36'700'900};
  Cycles b_frame_cycles{178'259'300};
  Cycles p_frame_cycles{73'401'800};
  /// Real-time deadline for the whole GOP: 15 frames at 30 frames/s.
  Seconds deadline{0.5};
};

/// Builds the dependence graph for one GOP.  Task labels are "I0", "B1",
/// "P3", ... as in the paper's figure.  Throws std::invalid_argument on a
/// malformed pattern (unknown frame letter, or a P/B frame before any
/// reference frame exists).
[[nodiscard]] graph::TaskGraph mpeg1_gop_graph(const MpegConfig& cfg = {});

}  // namespace lamps::apps
