// Discrete DVS operating points (paper: 0.05 V supply-voltage steps).
//
// All scheduling strategies choose from this ladder; the only consumer of
// the continuous model is the LIMIT-MF bound when configured for the
// continuous critical speed.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "power/power_model.hpp"

namespace lamps::power {

/// One discrete operating point, fully precomputed.
struct DvsLevel {
  std::size_t index{};       ///< Position in the ladder, 0 = slowest.
  Volts vdd;                 ///< Supply voltage.
  Hertz f;                   ///< Operating frequency.
  double f_norm{};           ///< f / f_max.
  PowerBreakdown active;     ///< Power while executing.
  Watts idle;                ///< Power while powered-on but not executing.
  Joules energy_per_cycle;   ///< active.total() / f.
};

class DvsLadder {
 public:
  /// Builds the ladder from tech.vdd_nominal down to tech.vdd_min in
  /// tech.vdd_step decrements (voltages below the delay-model floor are
  /// dropped).  Levels are stored in increasing-frequency order.
  explicit DvsLadder(const PowerModel& model);

  [[nodiscard]] std::span<const DvsLevel> levels() const { return levels_; }
  [[nodiscard]] std::size_t size() const { return levels_.size(); }
  [[nodiscard]] const DvsLevel& level(std::size_t idx) const { return levels_.at(idx); }

  /// Fastest operating point (nominal voltage).
  [[nodiscard]] const DvsLevel& max_level() const { return levels_.back(); }

  /// Ladder point with minimal energy-per-cycle (the discrete critical
  /// speed: 0.7 V / ~0.41 f_max in the 70 nm configuration).
  [[nodiscard]] const DvsLevel& critical_level() const { return levels_[critical_idx_]; }

  /// Slowest level with frequency >= f ("stretch" selection: run as slowly
  /// as the deadline permits).  Returns nullptr if even the maximum level
  /// is too slow.
  [[nodiscard]] const DvsLevel* lowest_level_at_least(Hertz f) const;

 private:
  std::vector<DvsLevel> levels_;
  std::size_t critical_idx_{0};
};

}  // namespace lamps::power
