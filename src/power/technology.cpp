#include "power/technology.hpp"

#include <cmath>
#include <stdexcept>

namespace lamps::power {

Technology technology_scaled(unsigned generations, double leakage_growth,
                             double dynamic_shrink) {
  if (leakage_growth < 1.0 || dynamic_shrink <= 0.0 || dynamic_shrink > 1.0)
    throw std::invalid_argument("technology_scaled: implausible scaling factors");
  Technology t = technology_70nm();
  const double lg = std::pow(leakage_growth, static_cast<double>(generations));
  const double dy = std::pow(dynamic_shrink, static_cast<double>(generations));
  t.k3 *= lg;   // sub-threshold leakage current per gate
  t.ij *= lg;   // junction leakage per gate
  t.ceff *= dy; // switched capacitance
  return t;
}

}  // namespace lamps::power
