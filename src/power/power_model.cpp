#include "power/power_model.hpp"

#include <cmath>
#include <stdexcept>

namespace lamps::power {

PowerModel::PowerModel(const Technology& tech) : tech_(tech) {
  // f > 0 requires Vdd - Vth > 0, i.e. Vdd*(1+K1) > Vth1 - K2*Vbs.
  vdd_floor_ = Volts{(tech_.vth1.value() - tech_.k2 * tech_.vbs.value()) / (1.0 + tech_.k1)};
  if (tech_.vdd_nominal <= vdd_floor_)
    throw std::invalid_argument("PowerModel: nominal Vdd below the delay-model floor");
  f_max_ = frequency(tech_.vdd_nominal);
}

Volts PowerModel::threshold_voltage(Volts vdd) const {
  return Volts{tech_.vth1.value() - tech_.k1 * vdd.value() - tech_.k2 * tech_.vbs.value()};
}

Hertz PowerModel::frequency(Volts vdd) const {
  const double overdrive = vdd.value() - threshold_voltage(vdd).value();
  if (overdrive <= 0.0)
    throw std::domain_error("PowerModel::frequency: Vdd at or below delay-model floor");
  return Hertz{std::pow(overdrive, tech_.alpha) / (tech_.ld * tech_.k6)};
}

Volts PowerModel::vdd_for_frequency(Hertz f) const {
  if (f.value() <= 0.0) throw std::domain_error("PowerModel::vdd_for_frequency: f must be > 0");
  // overdrive = (f * Ld * K6)^(1/alpha); Vdd*(1+K1) = overdrive + Vth1 - K2*Vbs.
  const double overdrive = std::pow(f.value() * tech_.ld * tech_.k6, 1.0 / tech_.alpha);
  return Volts{(overdrive + tech_.vth1.value() - tech_.k2 * tech_.vbs.value()) /
               (1.0 + tech_.k1)};
}

PowerBreakdown PowerModel::active_power(Volts vdd) const {
  const Hertz f = frequency(vdd);
  const double isubn = tech_.k3 * std::exp(tech_.k4 * vdd.value()) *
                       std::exp(tech_.k5 * tech_.vbs.value());
  const Watts p_ac{tech_.activity * tech_.ceff * vdd.value() * vdd.value() * f.value()};
  const Watts p_dc{tech_.lg *
                   (vdd.value() * isubn + std::abs(tech_.vbs.value()) * tech_.ij)};
  return PowerBreakdown{p_ac, p_dc, tech_.p_on};
}

Watts PowerModel::idle_power(Volts vdd) const {
  const PowerBreakdown p = active_power(vdd);
  return p.leakage + p.intrinsic;
}

Joules PowerModel::energy_per_cycle(Volts vdd) const {
  return Joules{active_power(vdd).total().value() / frequency(vdd).value()};
}

Volts PowerModel::critical_vdd() const {
  // Ternary search for the unimodal minimum of energy_per_cycle.  A small
  // epsilon above the floor avoids the f -> 0 singularity.
  double lo = vdd_floor_.value() + 1e-6;
  double hi = tech_.vdd_nominal.value();
  for (int iter = 0; iter < 200; ++iter) {
    const double m1 = lo + (hi - lo) / 3.0;
    const double m2 = hi - (hi - lo) / 3.0;
    if (energy_per_cycle(Volts{m1}) < energy_per_cycle(Volts{m2}))
      hi = m2;
    else
      lo = m1;
  }
  return Volts{(lo + hi) / 2.0};
}

Hertz PowerModel::critical_frequency() const { return frequency(critical_vdd()); }

}  // namespace lamps::power
