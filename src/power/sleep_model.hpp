// Processor-shutdown (deep sleep) cost model (paper section 3.4, Fig 3).
//
// Shutting a core down during an idle gap trades the powered-idle energy
// P_idle * t against E_wake + P_sleep * t.  The breakeven gap length is
//
//     t* = E_wake / (P_idle - P_sleep),
//
// so PS only pays off for gaps longer than t* — about 1.7 million idle
// cycles at half the maximum frequency in the 70 nm configuration.
#pragma once

#include <limits>

#include "power/dvs_ladder.hpp"
#include "util/units.hpp"

namespace lamps::power {

class SleepModel {
 public:
  SleepModel(Watts p_sleep, Joules e_wake);

  /// Convenience: pull the sleep parameters out of a PowerModel.
  explicit SleepModel(const PowerModel& model)
      : SleepModel(model.sleep_power(), model.wakeup_energy()) {}

  [[nodiscard]] Watts sleep_power() const { return p_sleep_; }
  [[nodiscard]] Joules wakeup_energy() const { return e_wake_; }

  /// Idle duration above which shutdown saves energy, given the powered-on
  /// idle power.  Returns +infinity seconds when p_idle <= p_sleep (then
  /// shutdown can never pay off).
  [[nodiscard]] Seconds breakeven_time(Watts p_idle) const;

  /// breakeven_time expressed in clock cycles at frequency f (the quantity
  /// plotted in the paper's Fig 3).
  [[nodiscard]] double breakeven_cycles(Watts p_idle, Hertz f) const;

  /// Outcome of the per-gap decision.
  struct GapDecision {
    bool shutdown{false};  ///< true: sleep through the gap, pay wake cost.
    Joules energy;         ///< energy actually spent over the gap.
    Joules saved;          ///< energy saved relative to staying powered on.
  };

  /// Picks the cheaper of {stay powered-idle, shutdown} for a gap of the
  /// given duration.  Ties prefer staying on (no state loss for free).
  [[nodiscard]] GapDecision decide(Seconds gap, Watts p_idle) const;

 private:
  Watts p_sleep_;
  Joules e_wake_;
};

}  // namespace lamps::power
