// Analytic CMOS power/delay model (paper section 3.2).
//
//   P       = P_AC + P_DC + P_on
//   P_AC    = a * Ceff * Vdd^2 * f                         (switching)
//   P_DC    = Lg * (Vdd * Isubn + |Vbs| * Ij)              (leakage)
//   Isubn   = K3 * e^(K4*Vdd) * e^(K5*Vbs)
//   f       = (Vdd - Vth)^alpha / (Ld * K6)
//   Vth     = Vth1 - K1*Vdd - K2*Vbs
//
// Because Vth is linear in Vdd the delay relation inverts in closed form,
// which the DVS machinery uses to map frequencies back to supply voltages.
#pragma once

#include "power/technology.hpp"
#include "util/units.hpp"

namespace lamps::power {

/// Additive decomposition of core power at one operating point.
struct PowerBreakdown {
  Watts dynamic;    ///< P_AC
  Watts leakage;    ///< P_DC
  Watts intrinsic;  ///< P_on

  [[nodiscard]] Watts total() const { return dynamic + leakage + intrinsic; }
};

class PowerModel {
 public:
  explicit PowerModel(const Technology& tech = technology_70nm());

  [[nodiscard]] const Technology& tech() const { return tech_; }

  /// Threshold voltage at the given supply voltage (fixed Vbs).
  [[nodiscard]] Volts threshold_voltage(Volts vdd) const;

  /// Operating frequency the core sustains at `vdd`.  Requires
  /// vdd > min_meaningful_vdd().
  [[nodiscard]] Hertz frequency(Volts vdd) const;

  /// Closed-form inverse of frequency(): the supply voltage at which the
  /// delay model yields exactly `f`.  Requires 0 < f <= max_frequency().
  [[nodiscard]] Volts vdd_for_frequency(Hertz f) const;

  /// Frequency at the nominal supply voltage (= 3.1 GHz for the 70 nm
  /// configuration).
  [[nodiscard]] Hertz max_frequency() const { return f_max_; }

  /// Supply voltage below which the delay model breaks down (frequency
  /// would be <= 0).
  [[nodiscard]] Volts min_meaningful_vdd() const { return vdd_floor_; }

  /// Power of a core executing instructions at `vdd`.
  [[nodiscard]] PowerBreakdown active_power(Volts vdd) const;

  /// Power of a powered-on core that is NOT executing (no switching
  /// activity): leakage + intrinsic only.
  [[nodiscard]] Watts idle_power(Volts vdd) const;

  /// Power in the deep-sleep state (voltage-independent).
  [[nodiscard]] Watts sleep_power() const { return tech_.p_sleep; }

  /// One shutdown + wakeup energy cost.
  [[nodiscard]] Joules wakeup_energy() const { return tech_.e_wake; }

  /// Energy to retire one cycle while active at `vdd`:
  /// total_power(vdd) / frequency(vdd).
  [[nodiscard]] Joules energy_per_cycle(Volts vdd) const;

  /// Supply voltage minimizing energy_per_cycle over the continuous range
  /// (paper: the "critical speed"; ~0.38 * f_max for 70 nm).  Computed by
  /// ternary search; energy-per-cycle is unimodal in Vdd.
  [[nodiscard]] Volts critical_vdd() const;

  /// frequency(critical_vdd()).
  [[nodiscard]] Hertz critical_frequency() const;

 private:
  Technology tech_;
  Volts vdd_floor_;
  Hertz f_max_;
};

}  // namespace lamps::power
