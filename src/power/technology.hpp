// 70 nm technology constants (paper Table 1, originally from Martin et al.,
// ICCAD'02, as used by Jejurikar et al., DAC'04).
#pragma once

#include "util/units.hpp"

namespace lamps::power {

/// All constants of the analytic power/delay model.  The defaults are the
/// exact Table 1 values; tests pin the derived quantities (max frequency,
/// critical frequency, breakeven idle time) to the paper's numbers.
struct Technology {
  // Threshold-voltage model: Vth = Vth1 - K1*Vdd - K2*Vbs.
  double k1 = 0.063;
  double k2 = 0.153;
  // Sub-threshold leakage: Isubn = K3 * e^(K4*Vdd) * e^(K5*Vbs)  [A/gate].
  double k3 = 5.38e-7;
  double k4 = 1.83;
  double k5 = 4.19;
  // Delay model: f = (Vdd - Vth)^alpha / (Ld * K6).
  double k6 = 5.26e-12;
  // Body-bias helper constant from Martin et al. (listed in Table 1 for
  // completeness; unused when Vbs is held fixed, as in the paper).
  double k7 = -0.144;

  /// Nominal (maximum) supply voltage [V].
  Volts vdd_nominal{1.0};
  /// Body-source bias voltage, held constant at -0.7 V.
  Volts vbs{-0.7};
  /// Velocity-saturation exponent.
  double alpha = 1.5;
  /// Zero-bias threshold voltage [V].
  Volts vth1{0.244};
  /// Reverse-bias junction current [A/gate].
  double ij = 4.8e-10;
  /// Effective switched capacitance [F] (activity factor folded in).
  double ceff = 0.43e-9;
  /// Logic depth (delay model).
  double ld = 37.0;
  /// Number of gates (scales per-gate leakage currents to the whole core).
  double lg = 4.0e6;

  /// Switching activity factor `a` in P_AC = a*Ceff*Vdd^2*f.
  double activity = 1.0;
  /// Intrinsic power needed to keep a core powered on [W].
  Watts p_on{0.1};

  /// Deep-sleep state power [W] (Jejurikar et al. estimate: 50 uW).
  Watts p_sleep{50e-6};
  /// Energy overhead of one shutdown+wakeup, including re-warming caches
  /// and predictors [J] (483 uJ).
  Joules e_wake{483e-6};

  /// Lowest supply voltage exposed on the DVS ladder [V].  Must keep
  /// Vdd > (Vth1 - K2*Vbs) / (1 + K1) so that the delay model yields a
  /// positive frequency; 0.35 V leaves comfortable margin.
  Volts vdd_min{0.35};
  /// DVS ladder step (paper: "discrete voltage level steps of 0.05 V").
  Volts vdd_step{0.05};
};

/// The paper's exact configuration.
[[nodiscard]] constexpr Technology technology_70nm() { return Technology{}; }

/// Projected future nodes under the paper's own motivating assumption
/// (section 1, after Borkar): the leakage current grows by about 5x per
/// technology generation while the dynamic energy per operation shrinks.
/// `generations` counts steps past 70 nm (1 ~ 50 nm, 2 ~ 35 nm, ...).
/// Leakage scaling is applied to the per-gate currents (K3, Ij); dynamic
/// scaling shrinks Ceff by `dynamic_shrink` per generation (default 0.7,
/// the classic ~0.7x capacitance-per-node rule).  The delay model is kept
/// fixed so that frequencies/ladders stay comparable across nodes — the
/// point of the projection is the static/dynamic *ratio*, which is what
/// flips the S&S-vs-LAMPS trade-off.
[[nodiscard]] Technology technology_scaled(unsigned generations,
                                           double leakage_growth = 5.0,
                                           double dynamic_shrink = 0.7);

}  // namespace lamps::power
