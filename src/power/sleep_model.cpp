#include "power/sleep_model.hpp"

#include <stdexcept>

namespace lamps::power {

SleepModel::SleepModel(Watts p_sleep, Joules e_wake) : p_sleep_(p_sleep), e_wake_(e_wake) {
  if (p_sleep.value() < 0.0 || e_wake.value() < 0.0)
    throw std::invalid_argument("SleepModel: negative sleep power or wake energy");
}

Seconds SleepModel::breakeven_time(Watts p_idle) const {
  const double denom = p_idle.value() - p_sleep_.value();
  if (denom <= 0.0) return Seconds{std::numeric_limits<double>::infinity()};
  return Seconds{e_wake_.value() / denom};
}

double SleepModel::breakeven_cycles(Watts p_idle, Hertz f) const {
  return breakeven_time(p_idle) * f;
}

SleepModel::GapDecision SleepModel::decide(Seconds gap, Watts p_idle) const {
  if (gap.value() < 0.0) throw std::invalid_argument("SleepModel::decide: negative gap");
  const Joules stay_on = p_idle * gap;
  const Joules shut = e_wake_ + p_sleep_ * gap;
  if (shut < stay_on) return GapDecision{true, shut, stay_on - shut};
  return GapDecision{false, stay_on, Joules{0.0}};
}

}  // namespace lamps::power
