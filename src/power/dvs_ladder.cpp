#include "power/dvs_ladder.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace lamps::power {

DvsLadder::DvsLadder(const PowerModel& model) {
  const Technology& tech = model.tech();
  if (tech.vdd_step.value() <= 0.0)
    throw std::invalid_argument("DvsLadder: vdd_step must be positive");

  // Enumerate nominal, nominal-step, ... >= vdd_min; build ascending by f
  // afterwards.  Work in integer step counts to avoid FP drift in the grid.
  const auto max_steps = static_cast<std::size_t>(std::floor(
      (tech.vdd_nominal.value() - tech.vdd_min.value()) / tech.vdd_step.value() + 1e-9));
  for (std::size_t s = 0; s <= max_steps; ++s) {
    const Volts vdd{tech.vdd_nominal.value() - static_cast<double>(s) * tech.vdd_step.value()};
    if (vdd <= model.min_meaningful_vdd()) break;
    DvsLevel lvl;
    lvl.vdd = vdd;
    lvl.f = model.frequency(vdd);
    lvl.active = model.active_power(vdd);
    lvl.idle = model.idle_power(vdd);
    lvl.energy_per_cycle = model.energy_per_cycle(vdd);
    levels_.push_back(lvl);
  }
  if (levels_.empty()) throw std::invalid_argument("DvsLadder: no valid levels");

  std::reverse(levels_.begin(), levels_.end());  // ascending frequency
  const Hertz f_max = levels_.back().f;
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    levels_[i].index = i;
    levels_[i].f_norm = levels_[i].f / f_max;
    if (levels_[i].energy_per_cycle < levels_[critical_idx_].energy_per_cycle) critical_idx_ = i;
  }
}

const DvsLevel* DvsLadder::lowest_level_at_least(Hertz f) const {
  const auto it = std::lower_bound(
      levels_.begin(), levels_.end(), f,
      [](const DvsLevel& lvl, Hertz target) { return lvl.f < target; });
  return it == levels_.end() ? nullptr : &*it;
}

}  // namespace lamps::power
