// Tests for the per-task DVS extension (LAMPS+MF slack reclamation).
#include <gtest/gtest.h>

#include "core/limits.hpp"
#include "core/multifreq.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/suite.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;

class MultiFreqFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  [[nodiscard]] Problem make_problem(const TaskGraph& g, double factor) const {
    Problem p;
    p.graph = &g;
    p.model = &model;
    p.ladder = &ladder;
    p.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                         model.max_frequency().value() * factor};
    return p;
  }

  [[nodiscard]] static TaskGraph unbalanced_graph() {
    // Two parallel chains of very different length: the short chain has a
    // huge per-task window and must be slowed to the critical level while
    // the long chain stays fast — the case uniform stretching cannot serve.
    TaskGraphBuilder b("unbalanced");
    graph::TaskId prev_long = b.add_task(10'000'000);
    for (int i = 0; i < 4; ++i) {
      const graph::TaskId next = b.add_task(10'000'000);
      b.add_edge(prev_long, next);
      prev_long = next;
    }
    (void)b.add_task(2'000'000);  // the short "chain"
    return b.build();
  }
};

TEST_F(MultiFreqFixture, AssignmentsRespectWindows) {
  const TaskGraph g = unbalanced_graph();
  const Problem prob = make_problem(g, 1.2);
  const sched::Schedule s = sched::list_schedule_edf(g, 2, prob.deadline_cycles_at_fmax());
  const auto assignments = reclaim_slack(s, prob);
  ASSERT_EQ(assignments.size(), g.num_tasks());
  for (const TaskAssignment& a : assignments) {
    EXPECT_LE(a.finish.value(), a.window_end.value() * (1.0 + 1e-12)) << "task " << a.task;
    EXPECT_LE(a.window_end.value(), prob.deadline.value() * (1.0 + 1e-12));
    EXPECT_GE(a.level_index, ladder.critical_level().index);
    // Precedence: finish before every successor's frozen start.
    for (const graph::TaskId succ : g.successors(a.task))
      EXPECT_LE(a.finish.value(), assignments[succ].start.value() * (1.0 + 1e-12));
  }
}

TEST_F(MultiFreqFixture, ShortChainSlowsLongChainStaysFast) {
  const TaskGraph g = unbalanced_graph();
  const Problem prob = make_problem(g, 1.1);  // tight: the long chain has no slack
  const sched::Schedule s = sched::list_schedule_edf(g, 2, prob.deadline_cycles_at_fmax());
  const auto assignments = reclaim_slack(s, prob);
  ASSERT_FALSE(assignments.empty());
  // The independent short task (id 5) has the whole deadline as its window:
  // it must sit at the critical level, strictly slower than the chain tasks.
  const std::size_t crit = ladder.critical_level().index;
  EXPECT_EQ(assignments[5].level_index, crit);
  EXPECT_GT(assignments[0].level_index, crit);
}

TEST_F(MultiFreqFixture, FeasibleAndAboveLimitMf) {
  for (const double factor : {1.5, 2.0, 4.0, 8.0}) {
    const TaskGraph g = unbalanced_graph();
    const Problem prob = make_problem(g, factor);
    const MultiFreqResult r = lamps_multifreq(prob);
    ASSERT_TRUE(r.feasible) << factor;
    EXPECT_LE(r.completion.value(), prob.deadline.value() * (1.0 + 1e-9));
    // LIMIT-MF is an absolute lower bound, also for per-task frequencies.
    EXPECT_GE(r.energy().value(),
              limit_mf(prob).energy().value() * (1.0 - 1e-12));
  }
}

TEST_F(MultiFreqFixture, ComparableToLampsPsOnSuiteSample) {
  // Per-task DVS is a different heuristic, not a strict refinement of
  // uniform stretching (its greedy slack assignment can front-load slack),
  // but it must stay bracketed: never below the absolute LIMIT-MF bound and
  // competitive with LAMPS+PS on ordinary instances (the paper's section 6
  // expectation is that it buys little for coarse-grain graphs).
  for (std::size_t variant = 0; variant < 4; ++variant) {
    const auto specs = stg::random_group_specs(60, variant + 1);
    const TaskGraph g = graph::scale_weights(stg::generate_random(specs[variant]),
                                             stg::kCoarseGrainCyclesPerUnit);
    const Problem prob = make_problem(g, 2.0);
    const MultiFreqResult mf = lamps_multifreq(prob);
    const StrategyResult ps = lamps_schedule_ps(prob);
    const StrategyResult sns = schedule_and_stretch(prob);
    const StrategyResult lmf = limit_mf(prob);
    ASSERT_TRUE(mf.feasible && ps.feasible && sns.feasible);
    EXPECT_GE(mf.energy().value(), lmf.energy().value() * (1.0 - 1e-12)) << variant;
    EXPECT_LE(mf.energy().value(), sns.energy().value() * (1.0 + 1e-9)) << variant;
    EXPECT_LE(mf.energy().value(), ps.energy().value() * 1.15) << variant;
  }
}

TEST_F(MultiFreqFixture, EnergyComponentsSumAndAreNonNegative) {
  const TaskGraph g = unbalanced_graph();
  const Problem prob = make_problem(g, 3.0);
  const MultiFreqResult r = lamps_multifreq(prob);
  ASSERT_TRUE(r.feasible);
  const auto& e = r.breakdown;
  EXPECT_GE(e.dynamic.value(), 0.0);
  EXPECT_GE(e.leakage.value(), 0.0);
  EXPECT_GE(e.intrinsic.value(), 0.0);
  EXPECT_GE(e.sleep.value(), 0.0);
  EXPECT_GE(e.wakeup.value(), 0.0);
  EXPECT_NEAR(e.total().value(),
              e.dynamic.value() + e.leakage.value() + e.intrinsic.value() +
                  e.sleep.value() + e.wakeup.value(),
              e.total().value() * 1e-12);
}

TEST_F(MultiFreqFixture, PsOptionControlsShutdowns) {
  const TaskGraph g = unbalanced_graph();
  const Problem prob = make_problem(g, 8.0);  // big trailing slack
  MultiFreqOptions with_ps;
  with_ps.ps = true;
  MultiFreqOptions no_ps;
  no_ps.ps = false;
  const MultiFreqResult a = lamps_multifreq(prob, with_ps);
  const MultiFreqResult b = lamps_multifreq(prob, no_ps);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_GT(a.breakdown.shutdowns, 0u);
  EXPECT_EQ(b.breakdown.shutdowns, 0u);
  EXPECT_LE(a.energy().value(), b.energy().value() * (1.0 + 1e-12));
}

TEST_F(MultiFreqFixture, TransitionOverheadCountedAndCharged) {
  const TaskGraph g = unbalanced_graph();
  const Problem prob = make_problem(g, 1.1);  // mixed levels (tight chain + slack task)
  MultiFreqOptions free_t;
  MultiFreqOptions costly;
  costly.transition_energy = Joules{1e-3};
  const MultiFreqResult a = lamps_multifreq(prob, free_t);
  const MultiFreqResult b = lamps_multifreq(prob, costly);
  ASSERT_TRUE(a.feasible && b.feasible);
  EXPECT_DOUBLE_EQ(a.breakdown.transition.value(), 0.0);
  // With a per-transition cost the breakdown carries it whenever the chosen
  // configuration has adjacent tasks at different levels.
  if (b.breakdown.transitions > 0) {
    EXPECT_NEAR(b.breakdown.transition.value(),
                1e-3 * static_cast<double>(b.breakdown.transitions), 1e-15);
  }
  // Costly transitions can only increase (or equal) the optimal energy.
  EXPECT_GE(b.energy().value(), a.energy().value() * (1.0 - 1e-12));
}

TEST_F(MultiFreqFixture, InfeasibleDeadlineReported) {
  const TaskGraph g = unbalanced_graph();
  const Problem prob = make_problem(g, 0.5);
  EXPECT_FALSE(lamps_multifreq(prob).feasible);
}

TEST_F(MultiFreqFixture, EmptyGraphAndBadIdleLevel) {
  TaskGraphBuilder b;
  const TaskGraph g = b.build();
  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{1.0};
  EXPECT_FALSE(lamps_multifreq(prob).feasible);

  const TaskGraph g2 = unbalanced_graph();
  const Problem prob2 = make_problem(g2, 2.0);
  MultiFreqOptions bad;
  bad.idle_level_index = 999;
  EXPECT_FALSE(lamps_multifreq(prob2, bad).feasible);
}

TEST_F(MultiFreqFixture, ZeroWeightTasksHandled) {
  TaskGraphBuilder b;
  const auto src = b.add_task(0);
  const auto work = b.add_task(5'000'000);
  b.add_edge(src, work);
  const TaskGraph g = b.build();
  const Problem prob = make_problem(g, 2.0);
  const MultiFreqResult r = lamps_multifreq(prob);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.assignments[src].start.value(), r.assignments[src].finish.value());
}

}  // namespace
}  // namespace lamps::core
