// Schedule-statistics tests.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/analysis.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/stats.hpp"

namespace lamps::sched {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;

TaskGraph balanced_graph() {
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) (void)b.add_task(10);
  return b.build();
}

TEST(Stats, PerfectlyBalancedIndependentTasks) {
  const TaskGraph g = balanced_graph();
  const Schedule s = list_schedule_edf(g, 2, 100);
  const ScheduleStats st = compute_stats(s, g);
  EXPECT_EQ(st.num_procs, 2u);
  EXPECT_EQ(st.procs_used, 2u);
  EXPECT_EQ(st.makespan, 20u);
  EXPECT_EQ(st.total_work, 40u);
  EXPECT_DOUBLE_EQ(st.utilization, 1.0);
  EXPECT_DOUBLE_EQ(st.speedup, 2.0);
  EXPECT_DOUBLE_EQ(st.load_imbalance, 1.0);
  EXPECT_EQ(st.idle_cycles, 0u);
}

TEST(Stats, UnusedProcessorLowersUtilization) {
  const TaskGraph g = balanced_graph();
  const Schedule s = list_schedule_edf(g, 8, 100);
  const ScheduleStats st = compute_stats(s, g);
  EXPECT_EQ(st.procs_used, 4u);
  EXPECT_EQ(st.makespan, 10u);
  EXPECT_DOUBLE_EQ(st.utilization, 0.5);  // 40 work over 8 x 10 capacity
  EXPECT_EQ(st.idle_cycles, 4u * 10u);    // the 4 empty processors
}

TEST(Stats, ImbalanceAndGaps) {
  TaskGraphBuilder b;
  const auto a = b.add_task(30);
  const auto c = b.add_task(10);
  const auto d = b.add_task(10);
  b.add_edge(c, d);
  (void)a;
  const TaskGraph g = b.build();
  const Schedule s = list_schedule_edf(g, 2, 100);
  const ScheduleStats st = compute_stats(s, g);
  // One proc runs 30 cycles, the other 20: imbalance 30/25 = 1.2.
  EXPECT_NEAR(st.load_imbalance, 1.2, 1e-12);
  EXPECT_EQ(st.idle_cycles, 10u);
  EXPECT_EQ(st.longest_internal_gap, 10u);
}

TEST(Stats, EmptyScheduleIsZeroed) {
  TaskGraphBuilder b;
  const TaskGraph g = b.build();
  const Schedule s(3, 0);
  const ScheduleStats st = compute_stats(s, g);
  EXPECT_EQ(st.procs_used, 0u);
  EXPECT_DOUBLE_EQ(st.utilization, 0.0);
  EXPECT_DOUBLE_EQ(st.load_imbalance, 0.0);
}

TEST(Stats, GapHistogramBucketsByPowersOfTwo) {
  Schedule s(1, 2);
  s.place(0, 0, 5, 10);    // leading gap of 5 -> bucket 2 ([4,8))
  s.place(1, 0, 26, 30);   // internal gap of 16 -> bucket 4 ([16,32))
  const auto hist = gap_histogram(s);
  ASSERT_GE(hist.size(), 5u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[4], 1u);
  EXPECT_EQ(hist[0] + hist[1] + hist[3], 0u);
}

TEST(Stats, GapHistogramEmptyForEmptySchedule) {
  const Schedule s(2, 0);
  EXPECT_TRUE(gap_histogram(s).empty());
}

TEST(Stats, PrintStatsMentionsKeyNumbers) {
  const TaskGraph g = balanced_graph();
  const Schedule s = list_schedule_edf(g, 2, 100);
  std::ostringstream os;
  print_stats(compute_stats(s, g), os);
  EXPECT_NE(os.str().find("utilization: 1"), std::string::npos);
  EXPECT_NE(os.str().find("makespan: 20"), std::string::npos);
}

}  // namespace
}  // namespace lamps::sched
