// Schedule JSON round-trip tests.
#include <gtest/gtest.h>

#include <sstream>

#include "sched/list_scheduler.hpp"
#include "sched/schedule_io.hpp"
#include "stg/random_gen.hpp"

namespace lamps::sched {
namespace {

TEST(ScheduleIo, RoundTripPreservesEverything) {
  stg::RandomGraphSpec spec;
  spec.num_tasks = 40;
  spec.method = stg::GenMethod::kLayrPred;
  spec.seed = 9;
  const graph::TaskGraph g = stg::generate_random(spec);
  const Schedule a = list_schedule_edf(g, 4, 10 * g.total_work());

  std::stringstream ss;
  write_schedule_json(a, ss);
  const Schedule b = read_schedule_json(ss);

  ASSERT_EQ(b.num_procs(), a.num_procs());
  ASSERT_EQ(b.num_tasks(), a.num_tasks());
  EXPECT_EQ(b.makespan(), a.makespan());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(b.placement(v).proc, a.placement(v).proc);
    EXPECT_EQ(b.placement(v).start, a.placement(v).start);
    EXPECT_EQ(b.placement(v).finish, a.placement(v).finish);
  }
  EXPECT_EQ(validate_schedule(b, g), "");
}

TEST(ScheduleIo, EmptyScheduleRoundTrips) {
  const Schedule a(3, 0);
  std::stringstream ss;
  write_schedule_json(a, ss);
  const Schedule b = read_schedule_json(ss);
  EXPECT_EQ(b.num_procs(), 3u);
  EXPECT_EQ(b.num_tasks(), 0u);
  EXPECT_EQ(b.makespan(), 0u);
}

TEST(ScheduleIo, AcceptsReorderedPlacements) {
  std::istringstream is(
      R"({"num_procs": 2, "num_tasks": 2, "placements": [
           {"task": 1, "proc": 0, "start": 5, "finish": 9},
           {"task": 0, "proc": 0, "start": 0, "finish": 5}]})");
  const Schedule s = read_schedule_json(is);
  EXPECT_EQ(s.placement(0).start, 0u);
  EXPECT_EQ(s.placement(1).start, 5u);
}

TEST(ScheduleIo, RejectsMalformedInput) {
  const auto expect_fail = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW((void)read_schedule_json(is), std::runtime_error) << text;
  };
  expect_fail("");
  expect_fail("{}");  // num_procs missing
  expect_fail(R"({"num_procs": 0, "num_tasks": 0, "placements": []})");
  expect_fail(R"({"num_procs": 1, "bogus": 3})");
  expect_fail(R"({"num_procs": 1, "num_tasks": 1, "placements": [{"task": 0)");
  // Overlapping placements on one processor.
  expect_fail(
      R"({"num_procs": 1, "num_tasks": 2, "placements": [
           {"task": 0, "proc": 0, "start": 0, "finish": 5},
           {"task": 1, "proc": 0, "start": 3, "finish": 6}]})");
  // Duplicate task.
  expect_fail(
      R"({"num_procs": 2, "num_tasks": 1, "placements": [
           {"task": 0, "proc": 0, "start": 0, "finish": 5},
           {"task": 0, "proc": 1, "start": 0, "finish": 5}]})");
}

TEST(ScheduleIo, ToStringHelper) {
  Schedule s(1, 1);
  s.place(0, 0, 2, 4);
  const std::string json = to_schedule_json(s);
  EXPECT_NE(json.find("\"task\": 0"), std::string::npos);
  EXPECT_NE(json.find("\"start\": 2"), std::string::npos);
}

}  // namespace
}  // namespace lamps::sched
