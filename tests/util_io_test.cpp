// Coverage for the small util pieces not exercised elsewhere: logging,
// stopwatch, file-backed CSV output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "util/csv.hpp"
#include "util/errors.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace lamps {
namespace {

TEST(Log, LevelFilterGates) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Below-threshold messages are cheap no-ops; above-threshold ones write
  // to stderr — we only verify the filter state machine here, the actual
  // sink is stderr by design.
  log_debug("not shown ", 1);
  log_info("not shown ", 2);
  log_warn("shown ", 3);
  log_error("shown ", 4);
  set_log_level(saved);
}

TEST(Log, LevelsAreOrdered) {
  EXPECT_LT(static_cast<int>(LogLevel::kDebug), static_cast<int>(LogLevel::kInfo));
  EXPECT_LT(static_cast<int>(LogLevel::kInfo), static_cast<int>(LogLevel::kWarn));
  EXPECT_LT(static_cast<int>(LogLevel::kWarn), static_cast<int>(LogLevel::kError));
}

TEST(Log, ConcurrentLoggingDoesNotCrash) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);  // keep the test output quiet
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([t] {
      for (int i = 0; i < 50; ++i) log_warn("thread ", t, " line ", i);
    });
  for (auto& th : threads) th.join();
  set_log_level(saved);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  const double t0 = sw.elapsed_seconds();
  EXPECT_GE(t0, 0.0);
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  const double t1 = sw.elapsed_seconds();
  EXPECT_GT(t1, t0);
  EXPECT_GE(t1, 0.010);
  sw.reset();
  EXPECT_LT(sw.elapsed_seconds(), t1);
}

TEST(CsvFile, OpenWriteReadBack) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lamps_csv_test.csv").string();
  {
    std::ofstream os = open_csv(path);
    CsvWriter w(os);
    w.row("a", "b");
    w.row(1, 2.5);
  }
  std::ifstream is(path);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "a,b");
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "1,2.5");
  std::remove(path.c_str());
}

TEST(CsvFile, OpenFailureThrows) {
  EXPECT_THROW((void)open_csv("/nonexistent_dir_xyz/file.csv"), std::runtime_error);
}

TEST(FsyncPath, ReadOnlyFileDegradesToBestEffort) {
  // Regression: fsync_path opened files O_WRONLY, so a chmod 0444 artifact
  // (e.g. a journal committed after the operator locked the results tree
  // down) made the reopen fail with EACCES and the commit throw, even
  // though the bytes were fine and the rename would have been atomic.
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "lamps_fsync_ro.txt";
  {
    std::ofstream os(path);
    os << "locked down\n";
  }
  fs::permissions(path, fs::perms::owner_read, fs::perm_options::replace);
  EXPECT_NO_THROW(fsync_path(path.string(), /*directory=*/false));
  fs::permissions(path, fs::perms::owner_all, fs::perm_options::replace);
  fs::remove(path);
}

TEST(FsyncPath, MissingFileStillThrowsMissingDirectoryDoesNot) {
  EXPECT_THROW(fsync_path("/nonexistent_dir_xyz/file.txt", /*directory=*/false),
               InternalError);
  // Directory syncs are best-effort everywhere: they only harden the
  // rename's durability, never its atomicity.
  EXPECT_NO_THROW(fsync_path("/nonexistent_dir_xyz", /*directory=*/true));
}

TEST(AtomicFileTest, CommitIntoDirectoryWithReadOnlyTarget) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "lamps_atomic_ro_dir";
  fs::create_directories(dir);
  const fs::path target = dir / "out.txt";
  {
    std::ofstream os(target);
    os << "old\n";
  }
  // A read-only *previous* artifact must not block the atomic replace.
  fs::permissions(target, fs::perms::owner_read, fs::perm_options::replace);
  {
    AtomicFile f(target.string());
    f.stream() << "new\n";
    EXPECT_NO_THROW(f.commit());
  }
  std::ifstream is(target);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "new");
  is.close();
  fs::permissions(target, fs::perms::owner_all, fs::perm_options::replace);
  fs::remove_all(dir);
}

TEST(AtomicFileTest, UncommittedFileLeavesTargetUntouched) {
  namespace fs = std::filesystem;
  const fs::path path = fs::temp_directory_path() / "lamps_atomic_abandon.txt";
  {
    std::ofstream os(path);
    os << "original\n";
  }
  {
    AtomicFile f(path.string());
    f.stream() << "half-written\n";
    // no commit: destructor must discard the temp file
  }
  EXPECT_FALSE(fs::exists(path.string() + ".tmp"));
  std::ifstream is(path);
  std::string line;
  ASSERT_TRUE(std::getline(is, line));
  EXPECT_EQ(line, "original");
  fs::remove(path);
}

}  // namespace
}  // namespace lamps
