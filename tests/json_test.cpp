// JSON encoding/decoding regression tests: the shared escaper in
// util/json.hpp round-tripped through the strict parser in net/jsonv.hpp
// (each side validates the other), plus the strictness guarantees of the
// parser itself and the non-finite double policy of the exporters.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include "net/jsonv.hpp"
#include "obs/metrics.hpp"
#include "util/errors.hpp"
#include "util/json.hpp"

namespace lamps {
namespace {

std::string roundtrip(const std::string& original) {
  std::ostringstream ss;
  write_json_string(ss, original);
  return net::JsonValue::parse(ss.str()).as_string();
}

TEST(JsonEscape, QuotesAndBackslashes) {
  EXPECT_EQ(json_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(roundtrip("say \"hi\" to c:\\temp"), "say \"hi\" to c:\\temp");
}

TEST(JsonEscape, ControlCharactersUseShortFormsOrU00XX) {
  // Regression: the per-exporter escapers only handled `"` and `\`, so a
  // name carrying a tab or newline produced unparseable JSON documents.
  EXPECT_EQ(json_escape("a\tb\nc"), "a\\tb\\nc");
  EXPECT_EQ(json_escape("\b\f\r"), "\\b\\f\\r");
  EXPECT_EQ(json_escape(std::string("\x01\x1f", 2)), "\\u0001\\u001f");
  std::string all_controls;
  for (int c = 0; c < 0x20; ++c) all_controls.push_back(static_cast<char>(c));
  EXPECT_EQ(roundtrip(all_controls), all_controls);
}

TEST(JsonEscape, Utf8PassesThroughVerbatim) {
  const std::string s = "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x9a\x80";  // café € 🚀
  EXPECT_EQ(json_escape(s), s);
  EXPECT_EQ(roundtrip(s), s);
}

TEST(JsonDouble, FiniteValuesKeepFullPrecisionNonFiniteAreNull) {
  EXPECT_EQ(json_double(3.5), "3.5");
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
  const double v = 0.1234567890123456789;
  EXPECT_DOUBLE_EQ(net::JsonValue::parse(json_double(v)).as_number(), v);
}

TEST(JsonParser, ParsesScalarsArraysAndObjects) {
  const net::JsonValue doc = net::JsonValue::parse(
      R"({"s":"x","n":-1.5e2,"b":true,"z":null,"a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.get("s")->as_string(), "x");
  EXPECT_DOUBLE_EQ(doc.get("n")->as_number(), -150.0);
  EXPECT_TRUE(doc.get("b")->as_bool());
  EXPECT_TRUE(doc.get("z")->is_null());
  ASSERT_EQ(doc.get("a")->items().size(), 3U);
  EXPECT_DOUBLE_EQ(doc.get("a")->items()[2].as_number(), 3.0);
  EXPECT_EQ(doc.get("o")->get("k")->as_string(), "v");
  EXPECT_EQ(doc.get("missing"), nullptr);
  EXPECT_DOUBLE_EQ(doc.get_number("n", 0.0), -150.0);
  EXPECT_DOUBLE_EQ(doc.get_number("missing", 7.0), 7.0);
}

TEST(JsonParser, DecodesEscapesIncludingSurrogatePairs) {
  EXPECT_EQ(net::JsonValue::parse(R"("\u0041\n\t\"\\")").as_string(), "A\n\t\"\\");
  // U+1F680 (rocket) as a surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(net::JsonValue::parse(R"("\ud83d\ude80")").as_string(),
            "\xf0\x9f\x9a\x80");
}

TEST(JsonParser, RejectsMalformedDocuments) {
  const char* bad[] = {
      "",                 // empty
      "{",                // unterminated object
      "[1,]",             // trailing comma
      "{\"a\":1} x",      // trailing garbage
      "\"abc",            // unterminated string
      "\"a\nb\"",         // bare control character inside a string
      "01",               // leading zero
      "+1",               // leading plus
      "nul",              // truncated keyword
      R"("\ud83d")",      // unpaired high surrogate
      R"("\x41")",        // invalid escape
      "{\"a\" 1}",        // missing colon
  };
  for (const char* doc : bad) {
    EXPECT_THROW((void)net::JsonValue::parse(doc), InputError) << doc;
  }
}

TEST(JsonParser, TypeMismatchesThrow) {
  const net::JsonValue doc = net::JsonValue::parse(R"({"n":1,"s":"x"})");
  EXPECT_THROW((void)doc.get("n")->as_string(), InputError);
  EXPECT_THROW((void)doc.get("s")->as_number(), InputError);
  EXPECT_THROW((void)doc.get_number("s", 0.0), InputError);  // present but wrong type
}

TEST(JsonExporters, MetricsWithHostileNamesParseStrictly) {
  // End-to-end escaping regression: a metric name with a tab, quote and
  // newline must survive the registry's JSON export and strict parsing.
  const std::string evil = "evil\t\"name\"\nwith\x01controls";
  obs::Registry r;
  r.counter(evil).inc(3);
  obs::Histogram& h = r.histogram("lat\tency", {1.0});
  h.observe(std::numeric_limits<double>::quiet_NaN());
  h.observe(0.5);
  std::ostringstream ss;
  r.write_json(ss);
  const net::JsonValue doc = net::JsonValue::parse(ss.str());
  ASSERT_NE(doc.get("counters"), nullptr);
  ASSERT_NE(doc.get("counters")->get(evil), nullptr);
  EXPECT_DOUBLE_EQ(doc.get("counters")->get(evil)->as_number(), 3.0);
  const net::JsonValue* hist = doc.get("histograms")->get("lat\tency");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->get("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->get("sum")->as_number(), 0.5);  // NaN excluded
}

}  // namespace
}  // namespace lamps
