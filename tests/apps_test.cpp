// MPEG-1 GOP graph tests against the paper's Fig 9.
#include <gtest/gtest.h>

#include "apps/mpeg.hpp"
#include "graph/analysis.hpp"

namespace lamps::apps {
namespace {

using graph::TaskGraph;
using graph::TaskId;

TEST(Mpeg, DefaultGopMatchesFig9Statistics) {
  const TaskGraph g = mpeg1_gop_graph();
  EXPECT_EQ(g.num_tasks(), 15u);
  // 1 I + 10 B + 4 P frames.
  const Cycles expected_work =
      36'700'900ULL + 10ULL * 178'259'300ULL + 4ULL * 73'401'800ULL;
  EXPECT_EQ(g.total_work(), expected_work);
  // Critical path: I0 -> P3 -> P6 -> P9 -> P12 -> B13 (the heaviest tail).
  const Cycles expected_cpl =
      36'700'900ULL + 4ULL * 73'401'800ULL + 178'259'300ULL;
  EXPECT_EQ(graph::critical_path_length(g), expected_cpl);
}

TEST(Mpeg, ReferenceChain) {
  const TaskGraph g = mpeg1_gop_graph();
  // P3 <- I0, P6 <- P3, P9 <- P6, P12 <- P9.
  EXPECT_TRUE(graph::has_edge(g, 0, 3));
  EXPECT_TRUE(graph::has_edge(g, 3, 6));
  EXPECT_TRUE(graph::has_edge(g, 6, 9));
  EXPECT_TRUE(graph::has_edge(g, 9, 12));
}

TEST(Mpeg, BFramesDependOnSurroundingReferences) {
  const TaskGraph g = mpeg1_gop_graph();
  // B1, B2 between I0 and P3.
  for (const TaskId b : {TaskId{1}, TaskId{2}}) {
    EXPECT_TRUE(graph::has_edge(g, 0, b));
    EXPECT_TRUE(graph::has_edge(g, 3, b));
  }
  // B4, B5 between P3 and P6.
  for (const TaskId b : {TaskId{4}, TaskId{5}}) {
    EXPECT_TRUE(graph::has_edge(g, 3, b));
    EXPECT_TRUE(graph::has_edge(g, 6, b));
  }
  // Trailing B13, B14 only have the preceding reference P12.
  for (const TaskId b : {TaskId{13}, TaskId{14}}) {
    EXPECT_TRUE(graph::has_edge(g, 12, b));
    EXPECT_EQ(g.in_degree(b), 1u);
  }
}

TEST(Mpeg, LabelsMatchFigure) {
  const TaskGraph g = mpeg1_gop_graph();
  EXPECT_EQ(g.label(0), "I0");
  EXPECT_EQ(g.label(1), "B1");
  EXPECT_EQ(g.label(3), "P3");
  EXPECT_EQ(g.label(14), "B14");
}

TEST(Mpeg, FrameWeightsByType) {
  const MpegConfig cfg;
  const TaskGraph g = mpeg1_gop_graph(cfg);
  EXPECT_EQ(g.weight(0), cfg.i_frame_cycles);
  EXPECT_EQ(g.weight(1), cfg.b_frame_cycles);
  EXPECT_EQ(g.weight(3), cfg.p_frame_cycles);
}

TEST(Mpeg, ParallelismIsModest) {
  // W / CPL = 2112.9 / 508.6 ~ 4.15: the graph only profits from a handful
  // of processors — consistent with S&S using 7 and LAMPS choosing 3.
  const TaskGraph g = mpeg1_gop_graph();
  EXPECT_NEAR(graph::average_parallelism(g), 4.15, 0.05);
}

TEST(Mpeg, CustomGopPattern) {
  MpegConfig cfg;
  cfg.gop = "IBBP";
  const TaskGraph g = mpeg1_gop_graph(cfg);
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_TRUE(graph::has_edge(g, 0, 3));  // P3 <- I0
  EXPECT_TRUE(graph::has_edge(g, 3, 1));  // B1 <- P3 (next ref)
}

TEST(Mpeg, IOnlyGopHasNoEdges) {
  MpegConfig cfg;
  cfg.gop = "III";
  const TaskGraph g = mpeg1_gop_graph(cfg);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Mpeg, RejectsMalformedGop) {
  MpegConfig cfg;
  cfg.gop = "";
  EXPECT_THROW((void)mpeg1_gop_graph(cfg), std::invalid_argument);
  cfg.gop = "IXB";
  EXPECT_THROW((void)mpeg1_gop_graph(cfg), std::invalid_argument);
  cfg.gop = "PBB";  // P with no preceding reference
  EXPECT_THROW((void)mpeg1_gop_graph(cfg), std::invalid_argument);
  cfg.gop = "BIP";  // leading B with no preceding reference
  EXPECT_THROW((void)mpeg1_gop_graph(cfg), std::invalid_argument);
}

}  // namespace
}  // namespace lamps::apps
