// Incremental rescheduling must be invisible in results: a ScheduleBank
// reusing deadline-invariant schedules/profiles across requests has to
// produce StrategyResults — placements, energies, and even the
// schedules_computed diagnostic — bit-identical to scheduling every
// request from scratch.  These tests fuzz the dominant serve shapes
// (deadline sweeps over one graph, weight deltas that flip the priority
// order) across every strategy, plus the supporting pieces: the
// structure digest, the bank's LRU, the store-aware ScheduleCache
// accounting, and the workspace's shifted-keys ranking fast path.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <vector>

#include "core/incremental.hpp"
#include "core/request.hpp"
#include "core/schedule_cache.hpp"
#include "graph/analysis.hpp"
#include "graph/task_graph.hpp"
#include "power/power_model.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/priorities.hpp"
#include "stg/random_gen.hpp"

namespace lamps::core {
namespace {

graph::TaskGraph random_graph(std::size_t seed, std::size_t tasks) {
  stg::RandomGraphSpec spec;
  spec.name = "inc-test-" + std::to_string(seed);
  spec.num_tasks = tasks;
  spec.seed = seed;
  return stg::generate_random(spec);
}

/// Rebuilds `g` with each weight multiplied by a per-task fuzz factor.
/// Large enough deltas reorder bottom levels, i.e. flip the EDF/bottom-
/// level priority ranking — the hard case for any caching layer.
graph::TaskGraph perturb_weights(const graph::TaskGraph& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<Cycles> mul(1, 5);
  graph::TaskGraphBuilder b(std::string(g.name()));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    b.add_task(g.weight(v) * mul(rng), std::string(g.label(v)));
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    for (const graph::TaskId t : g.successors(v)) b.add_edge(v, t);
  return b.build();
}

ServiceRequest make_request(const graph::TaskGraph& g, const power::PowerModel& model,
                            double deadline_factor, StrategyKind strategy) {
  return ServiceRequest{g,
                        Seconds{deadline_factor *
                                static_cast<double>(graph::critical_path_length(g)) /
                                model.max_frequency().value()},
                        strategy};
}

void expect_identical(const StrategyResult& banked, const StrategyResult& scratch) {
  EXPECT_EQ(banked.feasible, scratch.feasible);
  EXPECT_EQ(banked.num_procs, scratch.num_procs);
  EXPECT_EQ(banked.level_index, scratch.level_index);
  EXPECT_EQ(banked.breakdown.dynamic.value(), scratch.breakdown.dynamic.value());
  EXPECT_EQ(banked.breakdown.leakage.value(), scratch.breakdown.leakage.value());
  EXPECT_EQ(banked.breakdown.intrinsic.value(), scratch.breakdown.intrinsic.value());
  EXPECT_EQ(banked.breakdown.sleep.value(), scratch.breakdown.sleep.value());
  EXPECT_EQ(banked.breakdown.wakeup.value(), scratch.breakdown.wakeup.value());
  EXPECT_EQ(banked.breakdown.shutdowns, scratch.breakdown.shutdowns);
  EXPECT_EQ(banked.completion.value(), scratch.completion.value());
  // The serve responses embed this diagnostic; the byte-exactness gate
  // needs it identical, not merely the energies.
  EXPECT_EQ(banked.schedules_computed, scratch.schedules_computed);
  ASSERT_EQ(banked.schedule.has_value(), scratch.schedule.has_value());
  if (!banked.schedule.has_value()) return;
  const sched::Schedule& a = *banked.schedule;
  const sched::Schedule& b = *scratch.schedule;
  ASSERT_EQ(a.num_procs(), b.num_procs());
  ASSERT_EQ(a.num_tasks(), b.num_tasks());
  EXPECT_EQ(a.makespan(), b.makespan());
  for (sched::ProcId p = 0; p < a.num_procs(); ++p) {
    const auto ra = a.on_proc(p);
    const auto rb = b.on_proc(p);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i) {
      EXPECT_EQ(ra[i].task, rb[i].task);
      EXPECT_EQ(ra[i].start, rb[i].start);
      EXPECT_EQ(ra[i].finish, rb[i].finish);
    }
  }
}

constexpr StrategyKind kAllStrategies[] = {StrategyKind::kSns, StrategyKind::kLamps,
                                           StrategyKind::kSnsPs, StrategyKind::kLampsPs};

TEST(Incremental, DeadlineSweepMatchesScratchBitForBit) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  ScheduleBank bank;
  std::mt19937_64 rng(0x1eaf);
  std::uniform_real_distribution<double> factor(1.02, 3.2);
  for (const std::size_t seed : {11U, 12U}) {
    const graph::TaskGraph g = random_graph(seed, seed == 11U ? 60 : 120);
    for (int round = 0; round < 6; ++round) {
      const double f = factor(rng);
      for (const StrategyKind strategy : kAllStrategies) {
        const ServiceRequest req = make_request(g, model, f, strategy);
        expect_identical(run_service_request(req, model, ladder, &bank),
                         run_service_request(req, model, ladder));
      }
    }
  }
  // One store per (graph structure, policy): both graphs leased theirs.
  EXPECT_EQ(bank.size(), 2U);
}

TEST(Incremental, WeightDeltasWithPriorityFlipsMatchScratch) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  ScheduleBank bank;
  const graph::TaskGraph base = random_graph(21, 48);
  for (std::uint64_t delta_seed = 1; delta_seed <= 4; ++delta_seed) {
    const graph::TaskGraph g = perturb_weights(base, delta_seed);
    for (const double f : {1.4, 2.1}) {
      for (const StrategyKind strategy : kAllStrategies) {
        const ServiceRequest req = make_request(g, model, f, strategy);
        expect_identical(run_service_request(req, model, ladder, &bank),
                         run_service_request(req, model, ladder));
      }
    }
  }
  // Every weight delta is a distinct structure, and artifacts must never
  // leak between structures.
  EXPECT_EQ(bank.size(), 4U);
}

TEST(Incremental, ExplicitDeadlineGraphsBypassTheBank) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  graph::TaskGraphBuilder b("explicit");
  const auto a = b.add_task(40);
  const auto c = b.add_task(60);
  const auto d = b.add_task(50);
  b.add_edge(a, c);
  b.add_edge(a, d);
  b.set_deadline(d, Seconds{1e-6});
  ServiceRequest req{b.build(), Seconds{2e-6}, StrategyKind::kLampsPs};
  ASSERT_TRUE(req.graph.has_explicit_deadlines());

  ScheduleBank bank;
  expect_identical(run_service_request(req, model, ladder, &bank),
                   run_service_request(req, model, ladder));
  // The EDF ranking of an explicit-deadline graph depends on the global
  // deadline, so no store may be leased for it.
  EXPECT_EQ(bank.size(), 0U);
}

TEST(Incremental, StructureDigestIgnoresDeadlineAndStrategyOnly) {
  const power::PowerModel model;
  const graph::TaskGraph g = random_graph(31, 30);
  const ServiceRequest a = make_request(g, model, 1.5, StrategyKind::kLamps);

  ServiceRequest b = a;
  b.deadline = Seconds{a.deadline.value() * 2.0};
  b.strategy = StrategyKind::kSnsPs;
  EXPECT_EQ(service_request_structure_digest(a), service_request_structure_digest(b));
  EXPECT_NE(service_request_digest(a), service_request_digest(b));

  ServiceRequest other_policy = a;
  other_policy.policy = sched::PriorityPolicy::kBottomLevel;
  EXPECT_NE(service_request_structure_digest(a),
            service_request_structure_digest(other_policy));

  ServiceRequest other_weights = a;
  other_weights.graph = perturb_weights(g, 7);
  EXPECT_NE(service_request_structure_digest(a),
            service_request_structure_digest(other_weights));
}

TEST(Incremental, BankEvictsLeastRecentlyLeased) {
  ScheduleBank bank(2);
  (void)bank.lease(1);
  (void)bank.lease(2);
  (void)bank.lease(1);  // refresh 1
  (void)bank.lease(3);  // evicts 2
  EXPECT_EQ(bank.size(), 2U);
  (void)bank.lease(2);  // re-created, evicting 1
  EXPECT_EQ(bank.size(), 2U);
}

TEST(Incremental, StoreBackedCacheCountsLikeCold) {
  const graph::TaskGraph g = random_graph(41, 80);
  const auto keys = sched::make_priority_keys(g, {});
  const std::size_t width =
      std::max<std::size_t>(1, std::min(g.num_tasks(), graph::asap_max_concurrency(g)));

  ProfileStore store;
  ScheduleCache first(g, keys, width, nullptr, &store);
  (void)first.profile_at(2);
  (void)first.at(3);
  EXPECT_EQ(first.computed(), 2U);
  EXPECT_EQ(first.fresh_runs(), 2U);
  EXPECT_EQ(first.store_hits(), 0U);

  // A later request's cache over the same store reports the same
  // computed() a cold cache would, without invoking the scheduler.
  ScheduleCache warm(g, keys, width, nullptr, &store);
  EXPECT_EQ(warm.profile_at(2).makespan(), first.profile_at(2).makespan());
  (void)warm.at(3);
  EXPECT_EQ(warm.computed(), 2U);
  EXPECT_EQ(warm.fresh_runs(), 0U);
  EXPECT_EQ(warm.store_hits(), 2U);

  ScheduleCache cold(g, keys, width);
  (void)cold.profile_at(2);
  (void)cold.at(3);
  EXPECT_EQ(cold.computed(), warm.computed());
}

TEST(Incremental, ShiftedPriorityKeysReuseTheCachedRanking) {
  const graph::TaskGraph g = random_graph(51, 64);
  const std::vector<std::int64_t> keys = sched::make_priority_keys(g, {});
  std::vector<std::int64_t> shifted(keys.begin(), keys.end());
  for (std::int64_t& k : shifted) k += 12345;  // a new global deadline

  sched::ListScheduleWorkspace ws;
  const sched::Schedule warm_up = sched::list_schedule(g, 4, keys, ws);
  // Same workspace, uniformly shifted keys: the ranking fast path must
  // still produce the exact schedule a fresh workspace computes.
  const sched::Schedule via_shift = sched::list_schedule(g, 4, shifted, ws);
  const sched::Schedule fresh = sched::list_schedule(g, 4, shifted);
  ASSERT_EQ(via_shift.num_tasks(), fresh.num_tasks());
  EXPECT_EQ(via_shift.makespan(), fresh.makespan());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
    EXPECT_EQ(via_shift.placement(v).proc, fresh.placement(v).proc);
    EXPECT_EQ(via_shift.placement(v).start, fresh.placement(v).start);
  }
  EXPECT_EQ(warm_up.makespan(), sched::list_schedule(g, 4, keys).makespan());
}

}  // namespace
}  // namespace lamps::core
