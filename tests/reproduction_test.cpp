// Reproduction lock: pins the headline numbers of the paper that this
// repository reproduces, so refactoring cannot silently drift the results.
// EXPERIMENTS.md documents the full comparison; these are the
// load-bearing checks in executable form.
#include <gtest/gtest.h>

#include <chrono>

#include "apps/mpeg.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "power/sleep_model.hpp"
#include "stg/suite.hpp"

namespace lamps {
namespace {

class Reproduction : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};
};

TEST_F(Reproduction, PowerModelHeadlineNumbers) {
  // Section 3.2/3.3: 3.1 GHz at 1 V; critical speed 0.38 (continuous),
  // 0.41 at 0.7 V (discrete).
  EXPECT_NEAR(model.max_frequency().value(), 3.086e9, 1e7);
  EXPECT_NEAR(model.critical_frequency() / model.max_frequency(), 0.382, 0.002);
  EXPECT_NEAR(ladder.critical_level().vdd.value(), 0.70, 1e-9);
  EXPECT_NEAR(ladder.critical_level().f_norm, 0.410, 0.002);
  // Section 3.4 / Fig 3: ~1.7 M idle cycles breakeven at half speed.
  const power::SleepModel sleep(model);
  const auto& half = ladder.level(ladder.critical_level().index + 1);  // 0.75 V, ~0.50
  ASSERT_NEAR(half.f_norm, 0.496, 0.01);
  EXPECT_NEAR(sleep.breakeven_cycles(half.idle, half.f) / 1e6, 1.68, 0.1);
}

TEST_F(Reproduction, MpegTable3) {
  // Paper Table 3 (their unit; ratios are the comparable quantity):
  //   S&S 18.116 (7 procs), LAMPS 13.290 (3), S&S+PS 10.949 (7),
  //   LAMPS+PS 10.947 (6), LIMIT-SF = LIMIT-MF = 10.940.
  const graph::TaskGraph g = apps::mpeg1_gop_graph();
  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{0.5};

  const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
  const auto lam = core::run_strategy(core::StrategyKind::kLamps, prob);
  const auto sps = core::run_strategy(core::StrategyKind::kSnsPs, prob);
  const auto lps = core::run_strategy(core::StrategyKind::kLampsPs, prob);
  const auto lsf = core::run_strategy(core::StrategyKind::kLimitSf, prob);
  const auto lmf = core::run_strategy(core::StrategyKind::kLimitMf, prob);
  ASSERT_TRUE(sns.feasible && lam.feasible && sps.feasible && lps.feasible &&
              lsf.feasible);

  // Our measured values (locked): S&S 1.768 J / 8 procs, LAMPS 1.328 / 3,
  // S&S+PS 1.105 / 8, LAMPS+PS 1.102 / 6, limits 1.0962.
  EXPECT_NEAR(sns.energy().value(), 1.7679, 0.01);
  EXPECT_NEAR(lam.energy().value(), 1.3278, 0.01);
  EXPECT_NEAR(sps.energy().value(), 1.1046, 0.01);
  EXPECT_NEAR(lps.energy().value(), 1.1021, 0.01);
  EXPECT_NEAR(lsf.energy().value(), 1.0962, 0.01);
  EXPECT_DOUBLE_EQ(lsf.energy().value(), lmf.energy().value());
  EXPECT_EQ(lam.num_procs, 3u);   // paper: 3
  EXPECT_EQ(lps.num_procs, 6u);   // paper: 6
  EXPECT_EQ(sns.num_procs, 8u);   // paper: 7 (tie-break difference, documented)

  // Paper ratios: LAMPS 73.4%, S&S+PS/LAMPS+PS/LIMIT 60.4% of S&S; ours
  // must stay within a few points.
  EXPECT_NEAR(lam.energy().value() / sns.energy().value(), 0.734, 0.03);
  EXPECT_NEAR(lps.energy().value() / sns.energy().value(), 0.604, 0.03);
  EXPECT_NEAR(lsf.energy().value() / sns.energy().value(), 0.604, 0.03);
}

TEST_F(Reproduction, CoarseGrainHeadroomAttainment) {
  // Section 5.2: "LAMPS+PS attains more than 94% of the possible energy
  // reduction with coarse-grain tasks, for all combinations".  Check on a
  // small but diverse sample: the three application graphs at 1.5x and 8x.
  for (const auto& app : stg::application_graphs()) {
    const graph::TaskGraph g =
        graph::scale_weights(app, stg::kCoarseGrainCyclesPerUnit);
    for (const double factor : {1.5, 8.0}) {
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * factor};
      const auto sns = core::run_strategy(core::StrategyKind::kSns, prob);
      const auto lps = core::run_strategy(core::StrategyKind::kLampsPs, prob);
      const auto lsf = core::run_strategy(core::StrategyKind::kLimitSf, prob);
      ASSERT_TRUE(sns.feasible && lps.feasible && lsf.feasible);
      const double headroom = sns.energy().value() - lsf.energy().value();
      ASSERT_GT(headroom, 0.0);
      const double attained = (sns.energy().value() - lps.energy().value()) / headroom;
      EXPECT_GT(attained, 0.94) << app.name() << " @" << factor;
    }
  }
}

TEST_F(Reproduction, LimitsCoincideAtLooseDeadlinesOnApps) {
  // Section 6: "For loose deadlines (4x or 8x the CPL), LIMIT-MF consumes
  // the same amount of energy as LIMIT-SF."
  for (const auto& app : stg::application_graphs()) {
    const graph::TaskGraph g =
        graph::scale_weights(app, stg::kCoarseGrainCyclesPerUnit);
    for (const double factor : {4.0, 8.0}) {
      core::Problem prob;
      prob.graph = &g;
      prob.model = &model;
      prob.ladder = &ladder;
      prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                              model.max_frequency().value() * factor};
      EXPECT_DOUBLE_EQ(core::limit_sf(prob).energy().value(),
                       core::limit_mf(prob).energy().value())
          << app.name() << " @" << factor;
    }
  }
}

TEST_F(Reproduction, Table2StatisticsExact) {
  // The synthetic application graphs must match Table 2 exactly — this is
  // the substitution contract of DESIGN.md section 6.
  struct Row {
    const char* name;
    std::size_t nodes, edges;
    Cycles cpl, work;
  };
  const Row rows[] = {{"fpppp", 334, 1196, 1062, 7113},
                      {"robot", 88, 130, 545, 2459},
                      {"sparse", 96, 128, 122, 1920}};
  const auto apps = stg::application_graphs();
  ASSERT_EQ(apps.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(apps[i].name(), rows[i].name);
    EXPECT_EQ(apps[i].num_tasks(), rows[i].nodes);
    EXPECT_EQ(apps[i].num_edges(), rows[i].edges);
    EXPECT_EQ(graph::critical_path_length(apps[i]), rows[i].cpl);
    EXPECT_EQ(apps[i].total_work(), rows[i].work);
  }
}

TEST_F(Reproduction, SchedulerRuntimeWithinPaperBound) {
  // Section 4.2: "finding the optimal configuration never took more than
  // 20 seconds on a 3 GHz Pentium 4".  Our LAMPS+PS on the biggest
  // application graph must be orders of magnitude inside that.
  const graph::TaskGraph g = graph::scale_weights(stg::application_graphs()[0],
                                                  stg::kCoarseGrainCyclesPerUnit);
  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                          model.max_frequency().value() * 2.0};
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = core::run_strategy(core::StrategyKind::kLampsPs, prob);
  const double secs = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
                          .count();
  EXPECT_TRUE(r.feasible);
  EXPECT_LT(secs, 20.0);
}

}  // namespace
}  // namespace lamps
