// STG substrate tests: file-format round trips, random-generator
// properties, Table 2 application-graph synthesis, suite registry.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/analysis.hpp"
#include "stg/app_synth.hpp"
#include "stg/format.hpp"
#include "stg/random_gen.hpp"
#include "stg/suite.hpp"

namespace lamps::stg {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;
using graph::TaskId;

// ----------------------------------------------------------------- format --

TEST(Format, ParsesMinimalFileWithDummies) {
  // 2 real tasks: 1 -> 2, dummy entry 0 and exit 3.
  const std::string text =
      "2\n"
      "0 0 0\n"
      "1 5 1 0\n"
      "2 7 1 1\n"
      "3 0 1 2\n";
  std::istringstream is(text);
  const TaskGraph g = read_stg(is);
  EXPECT_EQ(g.num_tasks(), 2u);
  EXPECT_EQ(g.weight(0), 5u);
  EXPECT_EQ(g.weight(1), 7u);
  EXPECT_TRUE(graph::has_edge(g, 0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Format, KeepDummiesOption) {
  const std::string text =
      "2\n"
      "0 0 0\n"
      "1 5 1 0\n"
      "2 7 1 1\n"
      "3 0 1 2\n";
  std::istringstream is(text);
  ParseOptions opts;
  opts.strip_dummies = false;
  const TaskGraph g = read_stg(is, opts);
  EXPECT_EQ(g.num_tasks(), 4u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.weight(0), 0u);
}

TEST(Format, SkipsCommentsAndBlankLines) {
  const std::string text =
      "# a comment\n"
      "1\n"
      "\n"
      "0 0 0\n"
      "# another\n"
      "1 9 1 0\n"
      "2 0 1 1\n";
  std::istringstream is(text);
  const TaskGraph g = read_stg(is);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_EQ(g.weight(0), 9u);
}

TEST(Format, RejectsMalformedInput) {
  const auto expect_fail = [](const std::string& text) {
    std::istringstream is(text);
    EXPECT_THROW((void)read_stg(is), std::runtime_error) << text;
  };
  expect_fail("");                           // empty
  expect_fail("1\n0 0 0\n1 5 1 0\n");        // missing exit line
  expect_fail("1\n0 0 0\n2 5 1 0\n3 0 0\n"); // non-consecutive ids
  expect_fail("1\n0 0 0\n1 5 2 0\n2 0 0\n"); // missing predecessor id
  expect_fail("1\n0 0 0\n1 -5 0\n2 0 0\n");  // negative weight
}

TEST(Format, WriteReadRoundTripPreservesStructure) {
  TaskGraphBuilder b("roundtrip");
  const TaskId a = b.add_task(3), c = b.add_task(4), d = b.add_task(5);
  b.add_edge(a, c);
  b.add_edge(a, d);
  b.add_edge(c, d);
  const TaskGraph g = b.build();

  std::stringstream ss;
  write_stg(g, ss);
  const TaskGraph h = read_stg(ss);
  ASSERT_EQ(h.num_tasks(), g.num_tasks());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_EQ(h.weight(v), g.weight(v));
  EXPECT_EQ(graph::critical_path_length(h), graph::critical_path_length(g));
}

TEST(Format, RoundTripOnGeneratedGraph) {
  RandomGraphSpec spec;
  spec.num_tasks = 60;
  spec.method = GenMethod::kLayrPred;
  spec.seed = 5;
  const TaskGraph g = generate_random(spec);
  std::stringstream ss;
  write_stg(g, ss);
  const TaskGraph h = read_stg(ss);
  EXPECT_EQ(h.num_tasks(), g.num_tasks());
  EXPECT_EQ(h.num_edges(), g.num_edges());
  EXPECT_EQ(h.total_work(), g.total_work());
  EXPECT_EQ(graph::critical_path_length(h), graph::critical_path_length(g));
}

// ------------------------------------------------------------- generators --

TEST(RandomGen, DeterministicInSeed) {
  RandomGraphSpec spec;
  spec.num_tasks = 80;
  spec.seed = 42;
  for (const GenMethod m : {GenMethod::kSameProb, GenMethod::kSamePred,
                            GenMethod::kLayrProb, GenMethod::kLayrPred}) {
    spec.method = m;
    const TaskGraph a = generate_random(spec);
    const TaskGraph b = generate_random(spec);
    EXPECT_EQ(a.num_edges(), b.num_edges());
    EXPECT_EQ(a.total_work(), b.total_work());
    EXPECT_EQ(graph::critical_path_length(a), graph::critical_path_length(b));
  }
}

TEST(RandomGen, WeightsWithinBounds) {
  RandomGraphSpec spec;
  spec.num_tasks = 200;
  spec.min_weight = 3;
  spec.max_weight = 17;
  for (const WeightDist d :
       {WeightDist::kUniform, WeightDist::kBimodal, WeightDist::kGeometric}) {
    spec.weight_dist = d;
    const TaskGraph g = generate_random(spec);
    for (TaskId v = 0; v < g.num_tasks(); ++v) {
      EXPECT_GE(g.weight(v), 3u);
      EXPECT_LE(g.weight(v), 17u);
    }
  }
}

TEST(RandomGen, SameProbMatchesTargetDegree) {
  RandomGraphSpec spec;
  spec.num_tasks = 2000;
  spec.method = GenMethod::kSameProb;
  spec.avg_degree = 3.0;
  spec.seed = 7;
  const TaskGraph g = generate_random(spec);
  const double avg_out = static_cast<double>(g.num_edges()) / 2000.0;
  EXPECT_NEAR(avg_out, 3.0, 0.3);
}

TEST(RandomGen, SamePredMatchesTargetDegree) {
  RandomGraphSpec spec;
  spec.num_tasks = 2000;
  spec.method = GenMethod::kSamePred;
  spec.avg_degree = 2.5;
  spec.seed = 8;
  const TaskGraph g = generate_random(spec);
  // Early tasks cannot reach the target (fewer candidates), so allow slack.
  const double avg_in = static_cast<double>(g.num_edges()) / 2000.0;
  EXPECT_NEAR(avg_in, 2.5, 0.3);
}

TEST(RandomGen, LayeredParallelismTracksLayerCount) {
  RandomGraphSpec spec;
  spec.num_tasks = 400;
  spec.method = GenMethod::kLayrPred;
  spec.avg_degree = 2.0;
  spec.seed = 9;

  spec.num_layers = 10;  // wide: ~40 tasks per layer
  const double wide = graph::average_parallelism(generate_random(spec));
  spec.num_layers = 100;  // narrow: ~4 tasks per layer
  const double narrow = graph::average_parallelism(generate_random(spec));
  EXPECT_GT(wide, narrow);
  EXPECT_GT(wide, 5.0);
  EXPECT_LT(narrow, 10.0);
}

TEST(RandomGen, LayrProbProducesAcyclicLayeredGraph) {
  RandomGraphSpec spec;
  spec.num_tasks = 300;
  spec.method = GenMethod::kLayrProb;
  spec.num_layers = 20;
  spec.avg_degree = 2.0;
  spec.seed = 10;
  const TaskGraph g = generate_random(spec);  // build() validates the DAG
  EXPECT_EQ(g.num_tasks(), 300u);
  EXPECT_GT(g.num_edges(), 100u);
}

TEST(RandomGen, SingleTaskGraph) {
  RandomGraphSpec spec;
  spec.num_tasks = 1;
  const TaskGraph g = generate_random(spec);
  EXPECT_EQ(g.num_tasks(), 1u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(RandomGen, RejectsDegenerateSpecs) {
  RandomGraphSpec spec;
  spec.num_tasks = 0;
  EXPECT_THROW((void)generate_random(spec), std::invalid_argument);
  spec.num_tasks = 10;
  spec.min_weight = 5;
  spec.max_weight = 2;
  EXPECT_THROW((void)generate_random(spec), std::invalid_argument);
  spec.min_weight = 0;
  spec.max_weight = 2;
  EXPECT_THROW((void)generate_random(spec), std::invalid_argument);
  spec.min_weight = 1;
  spec.avg_degree = -1.0;
  EXPECT_THROW((void)generate_random(spec), std::invalid_argument);
}

TEST(RandomGen, ExtremeDensitySaturates) {
  RandomGraphSpec spec;
  spec.num_tasks = 20;
  spec.method = GenMethod::kSameProb;
  spec.avg_degree = 1000.0;  // p clamps to 1: complete DAG
  const TaskGraph g = generate_random(spec);
  EXPECT_EQ(g.num_edges(), 20u * 19u / 2u);
  EXPECT_DOUBLE_EQ(graph::average_parallelism(g), 1.0);
}

// ----------------------------------------------------- application graphs --

struct AppCase {
  const char* name;
  AppGraphSpec (*spec)();
};

class AppSynthesis : public ::testing::TestWithParam<AppCase> {};

TEST_P(AppSynthesis, MatchesTable2Exactly) {
  const AppGraphSpec spec = GetParam().spec();
  const TaskGraph g = synthesize_app_graph(spec);
  EXPECT_EQ(g.name(), spec.name);
  EXPECT_EQ(g.num_tasks(), spec.nodes);
  EXPECT_EQ(g.num_edges(), spec.edges);
  EXPECT_EQ(g.total_work(), spec.work);
  EXPECT_EQ(graph::critical_path_length(g), spec.cpl);
}

INSTANTIATE_TEST_SUITE_P(Table2, AppSynthesis,
                         ::testing::Values(AppCase{"fpppp", fpppp_spec},
                                           AppCase{"robot", robot_spec},
                                           AppCase{"sparse", sparse_spec}),
                         [](const auto& pinfo) { return std::string(pinfo.param.name); });

TEST(AppSynthesis, ParallelismMatchesPaperDerivedValues) {
  // W/CPL from Table 2: fpppp 6.70, robot 4.51, sparse 15.74.
  EXPECT_NEAR(graph::average_parallelism(synthesize_app_graph(fpppp_spec())), 6.70, 0.01);
  EXPECT_NEAR(graph::average_parallelism(synthesize_app_graph(robot_spec())), 4.51, 0.01);
  EXPECT_NEAR(graph::average_parallelism(synthesize_app_graph(sparse_spec())), 15.74, 0.01);
}

TEST(AppSynthesis, RejectsImpossibleSpec) {
  AppGraphSpec bad;
  bad.name = "bad";
  bad.nodes = 10;
  bad.edges = 9;
  bad.cpl = 5;
  bad.work = 4;  // work < cpl
  EXPECT_THROW((void)synthesize_app_graph(bad), std::invalid_argument);

  bad.work = 100;
  bad.edges = 200;  // more edges than the construction can place on 10 nodes
  EXPECT_THROW((void)synthesize_app_graph(bad), std::invalid_argument);
}

TEST(AppSynthesis, GeneralSpecsSatisfiable) {
  AppGraphSpec spec;
  spec.name = "custom";
  spec.nodes = 40;
  spec.edges = 70;
  spec.cpl = 200;
  spec.work = 900;
  const TaskGraph g = synthesize_app_graph(spec);
  EXPECT_EQ(g.num_tasks(), 40u);
  EXPECT_EQ(g.num_edges(), 70u);
  EXPECT_EQ(g.total_work(), 900u);
  EXPECT_EQ(graph::critical_path_length(g), 200u);
}

// ------------------------------------------------------------------ suite --

TEST(Suite, GroupSpecsAreDeterministicAndStableUnderCount) {
  const auto a = random_group_specs(100, 8);
  const auto b = random_group_specs(100, 8);
  ASSERT_EQ(a.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].name, b[i].name);
  }
  // Prefix stability: a longer suite starts with the same graphs.
  const auto longer = random_group_specs(100, 16);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(longer[i].seed, a[i].seed);
}

TEST(Suite, CyclesAllFourMethods) {
  const auto specs = random_group_specs(50, 8);
  EXPECT_EQ(specs[0].method, GenMethod::kSameProb);
  EXPECT_EQ(specs[1].method, GenMethod::kSamePred);
  EXPECT_EQ(specs[2].method, GenMethod::kLayrProb);
  EXPECT_EQ(specs[3].method, GenMethod::kLayrPred);
  EXPECT_EQ(specs[4].method, GenMethod::kSameProb);
}

TEST(Suite, MakeRandomGroupProducesRequestedSizes) {
  const auto graphs = make_random_group(50, 12);
  ASSERT_EQ(graphs.size(), 12u);
  for (const TaskGraph& g : graphs) {
    EXPECT_EQ(g.num_tasks(), 50u);
    EXPECT_GT(g.total_work(), 0u);
  }
}

TEST(Suite, ParallelismSpreadCoversPaperRange) {
  // Figs 12/13 show parallelism from ~1 to ~50; a reasonable sample of the
  // suite must cover at least 2..25 for 1000-node graphs.
  const auto graphs = make_random_group(1000, 24);
  double lo = 1e9, hi = 0.0;
  for (const TaskGraph& g : graphs) {
    const double p = graph::average_parallelism(g);
    lo = std::min(lo, p);
    hi = std::max(hi, p);
  }
  EXPECT_LT(lo, 3.0);
  EXPECT_GT(hi, 20.0);
}

TEST(Suite, ApplicationGraphsComeInTable2Order) {
  const auto apps = application_graphs();
  ASSERT_EQ(apps.size(), 3u);
  EXPECT_EQ(apps[0].name(), "fpppp");
  EXPECT_EQ(apps[1].name(), "robot");
  EXPECT_EQ(apps[2].name(), "sparse");
}

TEST(Suite, GranularityConstantsMatchPaper) {
  // 1 ms and 10 us at 3.1 GHz.
  EXPECT_EQ(kCoarseGrainCyclesPerUnit, 3'100'000u);
  EXPECT_EQ(kFineGrainCyclesPerUnit, 31'000u);
  EXPECT_EQ(kCoarseGrainCyclesPerUnit / kFineGrainCyclesPerUnit, 100u);
}

TEST(Suite, FigureGroupSizesMatchPaper) {
  EXPECT_EQ(figure_group_sizes(),
            (std::vector<std::size_t>{50, 100, 500, 1000, 2000, 2500, 5000}));
}

}  // namespace
}  // namespace lamps::stg
