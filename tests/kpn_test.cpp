// KPN substrate tests: network construction and the Fig 1 unrolling
// transformation (structure, self-chaining, per-copy deadlines).
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "kpn/kpn.hpp"
#include "kpn/unroll.hpp"

namespace lamps::kpn {
namespace {

using graph::TaskGraph;

/// The paper's Fig 1a network: T1 -> T2, T3 -> T2 would be wrong — the
/// figure has T1 -> T2 and T3 receiving from T2 with a one-iteration delay
/// (T3 combines J_{i+1} with the i-th output of T2).
Kpn fig1_network() {
  Kpn net("fig1");
  const ProcessId t1 = net.add_process("T1", 100);
  const ProcessId t2 = net.add_process("T2", 200);
  const ProcessId t3 = net.add_process("T3", 150);
  net.add_channel(t1, t2, 0);
  net.add_channel(t2, t3, 1);
  return net;
}

TEST(Kpn, ConstructionAndAccessors) {
  const Kpn net = fig1_network();
  EXPECT_EQ(net.num_processes(), 3u);
  EXPECT_EQ(net.process(0).name, "T1");
  EXPECT_EQ(net.process(1).work, 200u);
  EXPECT_EQ(net.channels().size(), 2u);
  EXPECT_EQ(net.output_processes(), (std::vector<ProcessId>{2}));
}

TEST(Kpn, RejectsBadChannels) {
  Kpn net;
  const ProcessId a = net.add_process("a", 1);
  EXPECT_THROW(net.add_channel(a, 5), std::out_of_range);
  EXPECT_THROW(net.add_channel(a, a, 0), std::invalid_argument);
  EXPECT_NO_THROW(net.add_channel(a, a, 1));  // self-feedback with delay is legal
}

TEST(Unroll, Fig1StructureMatchesPaper) {
  const Kpn net = fig1_network();
  UnrollOptions opts;
  opts.copies = 3;
  opts.first_deadline = Seconds{1.0};
  opts.throughput = 10.0;
  const TaskGraph g = unroll(net, opts);

  ASSERT_EQ(g.num_tasks(), 9u);
  const auto id = [](std::size_t copy, std::size_t proc) {
    return static_cast<graph::TaskId>(copy * 3 + proc);
  };
  // Same-iteration channel T1 -> T2 in every copy.
  for (std::size_t j = 0; j < 3; ++j) EXPECT_TRUE(graph::has_edge(g, id(j, 0), id(j, 1)));
  // Delayed channel T2^j -> T3^{j+1}.
  EXPECT_TRUE(graph::has_edge(g, id(0, 1), id(1, 2)));
  EXPECT_TRUE(graph::has_edge(g, id(1, 1), id(2, 2)));
  EXPECT_FALSE(graph::has_edge(g, id(0, 1), id(0, 2)));
  // Self-chaining T_i^j -> T_i^{j+1} ("not all inputs available at zero").
  for (std::size_t p = 0; p < 3; ++p)
    for (std::size_t j = 0; j + 1 < 3; ++j)
      EXPECT_TRUE(graph::has_edge(g, id(j, p), id(j + 1, p)));
  // Labels carry process and copy.
  EXPECT_EQ(g.label(id(1, 2)), "T3#1");
}

TEST(Unroll, DeadlinesSpacedByReciprocalThroughput) {
  const Kpn net = fig1_network();
  UnrollOptions opts;
  opts.copies = 4;
  opts.first_deadline = Seconds{0.5};
  opts.throughput = 4.0;  // period 0.25 s
  const TaskGraph g = unroll(net, opts);
  for (std::size_t j = 0; j < 4; ++j) {
    const auto d = g.explicit_deadline(static_cast<graph::TaskId>(j * 3 + 2));
    ASSERT_TRUE(d.has_value());
    EXPECT_NEAR(d->value(), 0.5 + 0.25 * static_cast<double>(j), 1e-12);
  }
  // Non-output tasks carry no explicit deadline.
  EXPECT_FALSE(g.explicit_deadline(0).has_value());
  EXPECT_FALSE(g.explicit_deadline(1).has_value());
}

TEST(Unroll, WorkScalesWithCopies) {
  const Kpn net = fig1_network();
  UnrollOptions opts;
  opts.copies = 5;
  opts.first_deadline = Seconds{1.0};
  opts.throughput = 1.0;
  const TaskGraph g = unroll(net, opts);
  EXPECT_EQ(g.total_work(), 5u * 450u);
  // The self-chain makes the per-process work a path: CPL >= 5 copies of
  // the heaviest process.
  EXPECT_GE(graph::critical_path_length(g), 5u * 200u);
}

TEST(Unroll, SingleCopyHasNoCrossCopyEdges) {
  const Kpn net = fig1_network();
  UnrollOptions opts;
  opts.copies = 1;
  opts.first_deadline = Seconds{1.0};
  opts.throughput = 1.0;
  const TaskGraph g = unroll(net, opts);
  EXPECT_EQ(g.num_tasks(), 3u);
  EXPECT_EQ(g.num_edges(), 1u);  // only T1 -> T2 (the delayed channel drops)
}

TEST(Unroll, RejectsBadOptions) {
  const Kpn net = fig1_network();
  UnrollOptions opts;
  opts.copies = 0;
  opts.first_deadline = Seconds{1.0};
  opts.throughput = 1.0;
  EXPECT_THROW((void)unroll(net, opts), std::invalid_argument);
  opts.copies = 2;
  opts.throughput = 0.0;
  EXPECT_THROW((void)unroll(net, opts), std::invalid_argument);
  opts.throughput = 1.0;
  opts.first_deadline = Seconds{0.0};
  EXPECT_THROW((void)unroll(net, opts), std::invalid_argument);
}

TEST(Unroll, ZeroDelayCycleDetected) {
  Kpn net("cyclic");
  const ProcessId a = net.add_process("a", 1);
  const ProcessId b = net.add_process("b", 1);
  net.add_channel(a, b, 0);
  net.add_channel(b, a, 0);  // same-iteration cycle: no firing order exists
  UnrollOptions opts;
  opts.copies = 2;
  opts.first_deadline = Seconds{1.0};
  opts.throughput = 1.0;
  EXPECT_THROW((void)unroll(net, opts), std::invalid_argument);
}

TEST(Unroll, FeedbackWithDelayIsFine) {
  Kpn net("feedback");
  const ProcessId a = net.add_process("a", 1);
  const ProcessId b = net.add_process("b", 1);
  net.add_channel(a, b, 0);
  net.add_channel(b, a, 1);  // pipelined feedback
  UnrollOptions opts;
  opts.copies = 3;
  opts.first_deadline = Seconds{1.0};
  opts.throughput = 1.0;
  const TaskGraph g = unroll(net, opts);
  EXPECT_EQ(g.num_tasks(), 6u);
  EXPECT_TRUE(graph::has_edge(g, 1, 2));  // b^0 -> a^1
}

}  // namespace
}  // namespace lamps::kpn
