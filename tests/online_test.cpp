// Online-execution simulator tests: WCET runs match the static plan,
// reclamation honors deadlines and saves energy under variability.
#include <gtest/gtest.h>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sim/online.hpp"
#include "stg/random_gen.hpp"

namespace lamps::sim {
namespace {

using graph::TaskGraph;

class OnlineFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};
  power::SleepModel sleep{model};

  struct Plan {
    TaskGraph graph;
    sched::Schedule schedule;
    const power::DvsLevel* level;
    Seconds deadline;
  };

  [[nodiscard]] Plan make_plan(std::uint64_t seed, double deadline_factor) const {
    stg::RandomGraphSpec spec;
    spec.num_tasks = 50;
    spec.method = stg::GenMethod::kLayrPred;
    spec.num_layers = 10;
    spec.max_weight = 20;
    spec.seed = seed;
    TaskGraph g = graph::scale_weights(stg::generate_random(spec), 3'100'000);

    core::Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * deadline_factor};
    core::StrategyResult r = core::lamps_schedule_ps(prob);
    EXPECT_TRUE(r.feasible);
    return Plan{std::move(g), std::move(*r.schedule), &ladder.level(r.level_index),
                prob.deadline};
  }
};

TEST_F(OnlineFixture, WcetRunWithoutReclamationReproducesStaticTiming) {
  const Plan plan = make_plan(3, 2.0);
  OnlineOptions opts;
  opts.bcet_ratio = 1.0;  // every task takes its WCET
  opts.reclaim = false;
  const OnlineResult r = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                         plan.deadline, sleep, opts);
  EXPECT_TRUE(r.met_deadline);
  // Every task starts/finishes exactly where the static schedule put it.
  for (graph::TaskId v = 0; v < plan.graph.num_tasks(); ++v) {
    const auto& pl = plan.schedule.placement(v);
    EXPECT_NEAR(r.tasks[v].start.value(),
                cycles_to_time(pl.start, plan.level->f).value(), 1e-12);
    EXPECT_NEAR(r.tasks[v].finish.value(),
                cycles_to_time(pl.finish, plan.level->f).value(), 1e-12);
    EXPECT_EQ(r.tasks[v].level_index, plan.level->index);
  }
}

TEST_F(OnlineFixture, EarlyFinishesNeverMissDeadline) {
  const Plan plan = make_plan(4, 1.5);
  for (const double ratio : {0.9, 0.5, 0.2}) {
    for (const bool reclaim : {false, true}) {
      OnlineOptions opts;
      opts.bcet_ratio = ratio;
      opts.reclaim = reclaim;
      opts.seed = 77;
      const OnlineResult r = simulate_online(plan.schedule, plan.graph, ladder,
                                             *plan.level, plan.deadline, sleep, opts);
      EXPECT_TRUE(r.met_deadline) << "ratio " << ratio << " reclaim " << reclaim;
      // Precedence still holds on realized times.
      for (graph::TaskId v = 0; v < plan.graph.num_tasks(); ++v)
        for (const graph::TaskId s : plan.graph.successors(v))
          EXPECT_LE(r.tasks[v].finish.value(),
                    r.tasks[s].start.value() * (1.0 + 1e-12));
    }
  }
}

TEST_F(OnlineFixture, ReclamationSavesEnergyUnderVariability) {
  const Plan plan = make_plan(5, 1.5);
  OnlineOptions base;
  base.bcet_ratio = 0.4;
  base.seed = 11;
  base.reclaim = false;
  OnlineOptions reclaim = base;
  reclaim.reclaim = true;
  const OnlineResult r0 = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                          plan.deadline, sleep, base);
  const OnlineResult r1 = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                          plan.deadline, sleep, reclaim);
  EXPECT_LT(r1.breakdown.total().value(), r0.breakdown.total().value());
}

TEST_F(OnlineFixture, NoVariabilityReclamationNeverRunsBelowCritical) {
  const Plan plan = make_plan(6, 8.0);
  OnlineOptions opts;
  opts.reclaim = true;
  const OnlineResult r = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                         plan.deadline, sleep, opts);
  const std::size_t crit = ladder.critical_level().index;
  for (const auto& t : r.tasks) EXPECT_GE(t.level_index, crit);
}

TEST_F(OnlineFixture, DeterministicInSeed) {
  const Plan plan = make_plan(7, 2.0);
  OnlineOptions opts;
  opts.bcet_ratio = 0.5;
  opts.seed = 123;
  const OnlineResult a = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                         plan.deadline, sleep, opts);
  const OnlineResult b = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                         plan.deadline, sleep, opts);
  EXPECT_DOUBLE_EQ(a.breakdown.total().value(), b.breakdown.total().value());
  opts.seed = 124;
  const OnlineResult c = simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                         plan.deadline, sleep, opts);
  EXPECT_NE(a.breakdown.total().value(), c.breakdown.total().value());
}

TEST_F(OnlineFixture, TransitionCostChargedPerLevelChange) {
  const Plan plan = make_plan(9, 1.5);
  OnlineOptions opts;
  opts.bcet_ratio = 0.3;  // strong variability => reclamation mixes levels
  opts.seed = 5;
  opts.reclaim = true;
  const OnlineResult free_t = simulate_online(plan.schedule, plan.graph, ladder,
                                              *plan.level, plan.deadline, sleep, opts);
  opts.transition_energy = Joules{1e-4};
  const OnlineResult costly = simulate_online(plan.schedule, plan.graph, ladder,
                                              *plan.level, plan.deadline, sleep, opts);
  EXPECT_DOUBLE_EQ(free_t.breakdown.transition.value(), 0.0);
  EXPECT_EQ(costly.breakdown.transitions, free_t.breakdown.transitions);
  EXPECT_NEAR(costly.breakdown.transition.value(),
              1e-4 * static_cast<double>(costly.breakdown.transitions), 1e-15);
  EXPECT_NEAR(costly.breakdown.total().value(),
              free_t.breakdown.total().value() +
                  1e-4 * static_cast<double>(costly.breakdown.transitions),
              1e-12);
}

TEST_F(OnlineFixture, RejectsBadInputs) {
  const Plan plan = make_plan(8, 2.0);
  OnlineOptions opts;
  opts.bcet_ratio = 0.0;
  EXPECT_THROW((void)simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                     plan.deadline, sleep, opts),
               std::invalid_argument);
  opts.bcet_ratio = 0.5;
  // Plan that misses the deadline at the static level: shrink the deadline.
  EXPECT_THROW((void)simulate_online(plan.schedule, plan.graph, ladder, *plan.level,
                                     plan.deadline * 0.1, sleep, opts),
               std::invalid_argument);
}

}  // namespace
}  // namespace lamps::sim
