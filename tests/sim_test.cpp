// Power-trace simulator tests, including the key cross-validation: the
// discrete-event trace integrates to exactly the analytic evaluator's
// energy for the same (schedule, level, PS policy).
#include <gtest/gtest.h>

#include <sstream>

#include "energy/evaluator.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"
#include "sim/power_trace.hpp"
#include "stg/random_gen.hpp"

namespace lamps::sim {
namespace {

using energy::PsOptions;
using graph::TaskGraph;
using graph::TaskGraphBuilder;

class SimFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};
  power::SleepModel sleep{model};

  [[nodiscard]] static TaskGraph two_proc_graph() {
    TaskGraphBuilder b("g");
    const auto a = b.add_task(4'000'000, "A");
    const auto c = b.add_task(9'000'000, "C");
    const auto d = b.add_task(2'000'000, "D");
    b.add_edge(a, d);
    (void)c;
    return b.build();
  }
};

TEST_F(SimFixture, SegmentsTileTheHorizonPerProcessor) {
  const TaskGraph g = two_proc_graph();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 20'000'000);
  const auto& lvl = ladder.max_level();
  const Seconds horizon = cycles_to_time(s.makespan(), lvl.f) * 2.0;
  const PowerTrace trace = simulate(s, g, lvl, horizon, sleep);

  std::vector<double> covered(s.num_procs(), 0.0);
  for (const TraceSegment& seg : trace.segments) {
    EXPECT_GE(seg.duration().value(), 0.0);
    EXPECT_GE(seg.power.value(), 0.0);
    covered[seg.proc] += seg.duration().value();
  }
  for (const double c : covered) EXPECT_NEAR(c, horizon.value(), horizon.value() * 1e-12);
}

TEST_F(SimFixture, ExecutingSegmentsMatchPlacements) {
  const TaskGraph g = two_proc_graph();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 20'000'000);
  const auto& lvl = ladder.critical_level();
  const Seconds horizon = cycles_to_time(s.makespan(), lvl.f);
  const PowerTrace trace = simulate(s, g, lvl, horizon, sleep);

  std::size_t exec_segments = 0;
  for (const TraceSegment& seg : trace.segments)
    if (seg.state == ProcState::kExecuting) {
      ++exec_segments;
      ASSERT_NE(seg.task, graph::kInvalidTask);
      const sched::Placement& pl = s.placement(seg.task);
      EXPECT_NEAR(seg.begin.value(), cycles_to_time(pl.start, lvl.f).value(), 1e-15);
      EXPECT_NEAR(seg.end.value(), cycles_to_time(pl.finish, lvl.f).value(), 1e-15);
      EXPECT_DOUBLE_EQ(seg.power.value(), lvl.active.total().value());
    }
  EXPECT_EQ(exec_segments, g.num_tasks());
}

TEST_F(SimFixture, TraceEnergyEqualsAnalyticEvaluator) {
  // The decisive property, across levels x PS settings x random graphs.
  stg::RandomGraphSpec spec;
  spec.num_tasks = 60;
  spec.method = stg::GenMethod::kLayrPred;
  spec.seed = 21;
  const TaskGraph g =
      graph::scale_weights(stg::generate_random(spec), 3'100'000);
  const sched::Schedule s = sched::list_schedule_edf(g, 4, 10 * g.total_work());

  for (const std::size_t lvl_idx : {std::size_t{0}, ladder.critical_level().index,
                                    ladder.size() - 1}) {
    const auto& lvl = ladder.level(lvl_idx);
    const Seconds horizon = cycles_to_time(s.makespan(), lvl.f) * 2.5;
    for (const bool ps : {false, true}) {
      const PsOptions po{ps, true};
      const auto analytic = energy::evaluate_energy(s, lvl, horizon, sleep, po);
      const PowerTrace trace = simulate(s, g, lvl, horizon, sleep, po);
      EXPECT_NEAR(trace.total_energy().value(), analytic.total().value(),
                  analytic.total().value() * 1e-12)
          << "level " << lvl_idx << " ps " << ps;
      EXPECT_EQ(trace.wakeups, analytic.shutdowns);
      EXPECT_NEAR(trace.energy_in_state(ProcState::kSleeping).value(),
                  analytic.sleep.value(), analytic.total().value() * 1e-12);
    }
  }
}

TEST_F(SimFixture, SleepSegmentsOnlyWithPs) {
  const TaskGraph g = two_proc_graph();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 20'000'000);
  const auto& lvl = ladder.max_level();
  const Seconds horizon = cycles_to_time(s.makespan(), lvl.f) * 50.0;  // huge tail

  const PowerTrace no_ps = simulate(s, g, lvl, horizon, sleep, PsOptions{false, true});
  EXPECT_EQ(no_ps.wakeups, 0u);
  EXPECT_DOUBLE_EQ(no_ps.energy_in_state(ProcState::kSleeping).value(), 0.0);

  const PowerTrace with_ps = simulate(s, g, lvl, horizon, sleep, PsOptions{true, true});
  EXPECT_GT(with_ps.wakeups, 0u);
  EXPECT_LT(with_ps.total_energy().value(), no_ps.total_energy().value());
}

TEST_F(SimFixture, PowerAtAndSampling) {
  const TaskGraph g = two_proc_graph();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 20'000'000);
  const auto& lvl = ladder.max_level();
  const Seconds horizon = cycles_to_time(s.makespan(), lvl.f);
  const PowerTrace trace = simulate(s, g, lvl, horizon, sleep);

  // At t=0 both processors execute (A on one, C on the other).
  EXPECT_NEAR(trace.power_at(Seconds{0.0}).value(), 2.0 * lvl.active.total().value(),
              1e-12);
  const auto samples = trace.sample_power(16);
  ASSERT_EQ(samples.size(), 16u);
  for (const auto& [t, p] : samples) {
    EXPECT_GE(p.value(), 0.0);
    EXPECT_LE(p.value(), 2.0 * lvl.active.total().value() + 1e-12);
  }
}

TEST_F(SimFixture, CsvOutput) {
  const TaskGraph g = two_proc_graph();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 20'000'000);
  const auto& lvl = ladder.max_level();
  const PowerTrace trace =
      simulate(s, g, lvl, cycles_to_time(s.makespan(), lvl.f), sleep);
  std::ostringstream os;
  write_trace_csv(trace, os);
  EXPECT_NE(os.str().find("proc,state,begin_s,end_s,power_w,task"), std::string::npos);
  EXPECT_NE(os.str().find("exec"), std::string::npos);
}

TEST_F(SimFixture, RejectsOversizedScheduleAndMismatchedGraph) {
  const TaskGraph g = two_proc_graph();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 20'000'000);
  const auto& lvl = ladder.max_level();
  EXPECT_THROW((void)simulate(s, g, lvl, Seconds{1e-9}, sleep), std::invalid_argument);

  graph::TaskGraphBuilder b;
  (void)b.add_task(1);
  const TaskGraph other = b.build();
  EXPECT_THROW(
      (void)simulate(s, other, lvl, cycles_to_time(s.makespan(), lvl.f), sleep),
      std::invalid_argument);
}

TEST_F(SimFixture, StateNames) {
  EXPECT_STREQ(to_string(ProcState::kOff), "off");
  EXPECT_STREQ(to_string(ProcState::kPoweredIdle), "idle");
  EXPECT_STREQ(to_string(ProcState::kExecuting), "exec");
  EXPECT_STREQ(to_string(ProcState::kSleeping), "sleep");
}

}  // namespace
}  // namespace lamps::sim
