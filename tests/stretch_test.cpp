// Direct unit tests for the stretch/level-selection helpers shared by all
// strategies (core/stretch.hpp).
#include <gtest/gtest.h>

#include "core/stretch.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;

class StretchFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};

  [[nodiscard]] Problem make_problem(const TaskGraph& g, Seconds deadline) const {
    Problem p;
    p.graph = &g;
    p.model = &model;
    p.ladder = &ladder;
    p.deadline = deadline;
    return p;
  }
};

TEST_F(StretchFixture, MinFeasibleFrequencyIsMakespanOverDeadline) {
  TaskGraphBuilder b;
  (void)b.add_task(6'200'000);
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 1, 100'000'000);
  // 6.2e6 cycles in 4 ms -> 1.55 GHz.
  const Hertz f = min_feasible_frequency(s, g, Seconds{0.004});
  EXPECT_NEAR(f.value(), 6.2e6 / 0.004, 1e-3);
}

TEST_F(StretchFixture, ExplicitDeadlineDominatesWhenTighter) {
  TaskGraphBuilder b;
  const auto a = b.add_task(3'100'000);
  const auto c = b.add_task(3'100'000);
  b.add_edge(a, c);
  b.set_deadline(a, Seconds{0.001});  // first task due at 1 ms
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 1, 100'000'000);
  // Global deadline is lavish, but task a must finish its 3.1e6 cycles in
  // 1 ms -> at least 3.1 GHz.
  const Hertz f = min_feasible_frequency(s, g, Seconds{1.0});
  EXPECT_NEAR(f.value(), 3.1e9, 1e3);
}

TEST_F(StretchFixture, LowestFeasibleLevelRoundsUpToLadder) {
  TaskGraphBuilder b;
  (void)b.add_task(3'100'000);
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 1, 10'000'000);
  // Need >= half of f_max: the chosen level is the slowest with f >= need.
  const Problem prob = make_problem(
      g, Seconds{static_cast<double>(s.makespan()) / (0.5 * model.max_frequency().value())});
  const power::DvsLevel* lvl = lowest_feasible_level(s, prob);
  ASSERT_NE(lvl, nullptr);
  EXPECT_GE(lvl->f_norm, 0.5);
  if (lvl->index > 0) {
    EXPECT_LT(ladder.level(lvl->index - 1).f_norm, 0.5);
  }
}

TEST_F(StretchFixture, LowestFeasibleLevelNullWhenImpossible) {
  TaskGraphBuilder b;
  (void)b.add_task(31'000'000);
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 1, 100'000'000);
  const Problem prob = make_problem(g, Seconds{1e-6});  // ~31x too tight
  EXPECT_EQ(lowest_feasible_level(s, prob), nullptr);
}

TEST_F(StretchFixture, StretchedEnergyMatchesEvaluator) {
  TaskGraphBuilder b;
  (void)b.add_task(10'000'000);
  (void)b.add_task(5'000'000);
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 100'000'000);
  const Problem prob = make_problem(g, Seconds{0.02});
  const auto& lvl = ladder.critical_level();
  const auto via_helper = stretched_energy(s, lvl, prob);
  const auto direct = energy::evaluate_energy(s, lvl, prob.deadline,
                                              power::SleepModel(model), {});
  EXPECT_DOUBLE_EQ(via_helper.total().value(), direct.total().value());
}

TEST_F(StretchFixture, BestLevelWithPsBeatsEveryFixedLevel) {
  // The sweep's result must equal the min over levels of the PS-evaluated
  // energy (it IS that minimum — guard against off-by-one sweep bounds).
  TaskGraphBuilder b;
  (void)b.add_task(50'000'000);
  (void)b.add_task(10'000'000);
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 2, 1'000'000'000);
  const Problem prob = make_problem(g, Seconds{0.1});
  const LevelChoice choice = best_level_with_ps(s, prob);
  ASSERT_NE(choice.level, nullptr);

  const power::SleepModel sleep(model);
  double manual_best = 1e300;
  for (const auto& lvl : ladder.levels()) {
    if (static_cast<double>(s.makespan()) / lvl.f.value() > prob.deadline.value()) continue;
    manual_best = std::min(manual_best,
                           energy::evaluate_energy(s, lvl, prob.deadline, sleep,
                                                   energy::PsOptions{true, true})
                               .total()
                               .value());
  }
  EXPECT_NEAR(choice.breakdown.total().value(), manual_best, manual_best * 1e-12);
}

TEST_F(StretchFixture, BestLevelNullOnImpossibleDeadline) {
  TaskGraphBuilder b;
  (void)b.add_task(31'000'000);
  const TaskGraph g = b.build();
  const sched::Schedule s = sched::list_schedule_edf(g, 1, 100'000'000);
  const Problem prob = make_problem(g, Seconds{1e-6});
  EXPECT_EQ(best_level_with_ps(s, prob).level, nullptr);
}

TEST_F(StretchFixture, DeadlineCyclesAtFmaxRounding) {
  TaskGraphBuilder b;
  (void)b.add_task(1);
  const TaskGraph g = b.build();
  const Problem prob = make_problem(g, Seconds{1.0});
  // One second at f_max, within 1 cycle of f_max itself.
  const double f_max = model.max_frequency().value();
  EXPECT_NEAR(static_cast<double>(prob.deadline_cycles_at_fmax()), f_max, 2.0);
}

}  // namespace
}  // namespace lamps::core
