// Robustness-subsystem tests: identity-sample exactness (the replay must
// reproduce the static evaluator bit for bit), thread-count determinism of
// the Monte-Carlo driver, perturbation-model invariants, and the wake-fault
// energy accounting.
#include <gtest/gtest.h>

#include <sstream>

#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "robust/montecarlo.hpp"
#include "robust/report.hpp"
#include "stg/format.hpp"
#include "stg/suite.hpp"
#include "util/rng.hpp"

namespace lamps::robust {
namespace {

// data/fork_join.stg and data/pipeline.stg, embedded so the tests do not
// depend on the working directory.
constexpr const char* kForkJoinStg =
    "8\n"
    "0 0 0\n"
    "1 5 1 0\n"
    "2 40 1 1\n"
    "3 35 1 1\n"
    "4 30 1 1\n"
    "5 25 1 1\n"
    "6 20 1 1\n"
    "7 15 1 1\n"
    "8 5 6 2 3 4 5 6 7\n"
    "9 0 1 8\n";

constexpr const char* kPipelineStg =
    "8\n"
    "0 0 0\n"
    "1 12 1 0\n"
    "2 30 1 1\n"
    "3 18 1 1\n"
    "4 26 1 2\n"
    "5 22 2 2 3\n"
    "6 14 1 3\n"
    "7 20 3 4 5 6\n"
    "8 10 1 7\n"
    "9 0 1 8\n";

graph::TaskGraph load(const char* text) {
  std::istringstream is(text);
  return graph::scale_weights(stg::read_stg(is), stg::kCoarseGrainCyclesPerUnit);
}

core::Problem make_problem(const graph::TaskGraph& g, const power::PowerModel& model,
                           const power::DvsLadder& ladder, double factor) {
  core::Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                          model.max_frequency().value() * factor};
  return prob;
}

energy::PsOptions ps_for(core::StrategyKind kind, const core::Problem& prob) {
  if (kind == core::StrategyKind::kSnsPs || kind == core::StrategyKind::kLampsPs)
    return energy::PsOptions{true, prob.ps_allow_leading_gaps};
  return energy::PsOptions{};
}

// ---------------------------------------------------------------- rng --

TEST(ChildSeed, DistinctAndStable) {
  EXPECT_EQ(child_seed(1, 0), child_seed(1, 0));
  EXPECT_NE(child_seed(1, 0), child_seed(1, 1));
  EXPECT_NE(child_seed(1, 0), child_seed(2, 0));
  // Consecutive indices must not produce consecutive (correlated) seeds.
  EXPECT_NE(child_seed(7, 1), child_seed(7, 0) + 1);
}

TEST(Perturb, IdentitySampleIsExactlyNominal) {
  const graph::TaskGraph g = load(kPipelineStg);
  const PerturbSample s = draw_sample(PerturbSpec{}, g, 4, Rng(42));
  ASSERT_EQ(s.actual_cycles.size(), g.num_tasks());
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    EXPECT_EQ(s.actual_cycles[v], g.weight(v));
  for (const double l : s.leak_scale) EXPECT_EQ(l, 1.0);
  EXPECT_EQ(s.stalled_tasks, 0u);
}

TEST(Perturb, ValidationRejectsBadParameters) {
  PerturbSpec spec;
  spec.jitter = -0.1;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = PerturbSpec{};
  spec.wake_fault_prob = 1.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  spec = PerturbSpec{};
  spec.wake_fault_scale = 0.5;
  EXPECT_THROW(spec.validate(), std::invalid_argument);
  EXPECT_THROW((void)jitter_kind_from_name("bogus"), std::invalid_argument);
  EXPECT_EQ(jitter_kind_from_name("heavytail"), JitterKind::kHeavyTail);
}

// ------------------------------------------------- zero-perturbation --

// The headline guarantee: with a zero spec, replay reproduces the static
// evaluator's energy breakdown and the planned start/finish times exactly
// (bitwise double equality), for every heuristic on both example graphs.
TEST(Replay, ZeroPerturbationMatchesEvaluatorBitForBit) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  for (const char* text : {kForkJoinStg, kPipelineStg}) {
    const graph::TaskGraph g = load(text);
    const core::Problem prob = make_problem(g, model, ladder, 2.0);
    for (const core::StrategyKind kind : core::kHeuristics) {
      const core::StrategyResult plan = core::run_strategy(kind, prob);
      ASSERT_TRUE(plan.feasible) << core::to_string(kind);
      ASSERT_TRUE(plan.schedule.has_value()) << core::to_string(kind);

      const PerturbSpec spec;  // identity
      const PerturbSample sample = draw_sample(spec, g, plan.schedule->num_procs(), Rng(7));
      const ReplayResult r =
          replay_schedule(*plan.schedule, g, ladder.level(plan.level_index), prob.deadline,
                          sleep, ps_for(kind, prob), spec, sample);

      const std::string tag{core::to_string(kind)};
      EXPECT_EQ(r.breakdown.dynamic.value(), plan.breakdown.dynamic.value()) << tag;
      EXPECT_EQ(r.breakdown.leakage.value(), plan.breakdown.leakage.value()) << tag;
      EXPECT_EQ(r.breakdown.intrinsic.value(), plan.breakdown.intrinsic.value()) << tag;
      EXPECT_EQ(r.breakdown.sleep.value(), plan.breakdown.sleep.value()) << tag;
      EXPECT_EQ(r.breakdown.wakeup.value(), plan.breakdown.wakeup.value()) << tag;
      EXPECT_EQ(r.breakdown.shutdowns, plan.breakdown.shutdowns) << tag;
      EXPECT_EQ(r.breakdown.total().value(), plan.breakdown.total().value()) << tag;
      EXPECT_EQ(r.completion.value(), plan.completion.value()) << tag;
      EXPECT_TRUE(r.met_deadline) << tag;
      EXPECT_EQ(r.tardiness.value(), 0.0) << tag;
      EXPECT_EQ(r.wake_faults, 0u) << tag;
      for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
        const sched::Placement& got = r.schedule.placement(v);
        const sched::Placement& want = plan.schedule->placement(v);
        EXPECT_EQ(got.proc, want.proc) << tag << " task " << v;
        EXPECT_EQ(got.start, want.start) << tag << " task " << v;
        EXPECT_EQ(got.finish, want.finish) << tag << " task " << v;
      }
    }
  }
}

// ------------------------------------------------------- perturbed runs --

PerturbSpec full_spec() {
  PerturbSpec spec;
  spec.jitter = 0.2;
  spec.jitter_kind = JitterKind::kNormal;
  spec.leak_spread = 0.1;
  spec.wake_fault_prob = 0.1;
  spec.wake_fault_scale = 4.0;
  spec.wake_latency = Seconds{100e-6};
  spec.stall_prob = 0.05;
  spec.stall_scale = 0.5;
  return spec;
}

TEST(Replay, PreservesPrecedenceAssignmentAndPlannedStarts) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const graph::TaskGraph g = load(kPipelineStg);
  const core::Problem prob = make_problem(g, model, ladder, 2.0);
  const core::StrategyResult plan =
      core::run_strategy(core::StrategyKind::kLampsPs, prob);
  ASSERT_TRUE(plan.feasible && plan.schedule.has_value());

  PerturbSpec spec = full_spec();
  spec.jitter = 0.5;
  spec.jitter_kind = JitterKind::kHeavyTail;
  const energy::PsOptions ps = ps_for(core::StrategyKind::kLampsPs, prob);
  for (std::uint64_t trial = 0; trial < 32; ++trial) {
    const PerturbSample sample =
        draw_sample(spec, g, plan.schedule->num_procs(), child_rng(99, trial));
    const ReplayResult r = replay_schedule(*plan.schedule, g,
                                           ladder.level(plan.level_index), prob.deadline,
                                           sleep, ps, spec, sample);
    for (graph::TaskId v = 0; v < g.num_tasks(); ++v) {
      const sched::Placement& got = r.schedule.placement(v);
      const sched::Placement& want = plan.schedule->placement(v);
      EXPECT_EQ(got.proc, want.proc);
      EXPECT_GE(got.start, want.start);  // time-triggered: never early
      for (const graph::TaskId u : g.predecessors(v))
        EXPECT_LE(r.schedule.placement(u).finish, got.start);
    }
    // Per-processor execution order matches the plan.
    for (sched::ProcId p = 0; p < r.schedule.num_procs(); ++p) {
      const auto got_row = r.schedule.on_proc(p);
      const auto want_row = plan.schedule->on_proc(p);
      ASSERT_EQ(got_row.size(), want_row.size());
      for (std::size_t i = 0; i < got_row.size(); ++i)
        EXPECT_EQ(got_row[i].task, want_row[i].task);
    }
  }
}

TEST(Replay, WakeFaultMultipliesWakeupEnergy) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const graph::TaskGraph g = load(kForkJoinStg);
  const core::Problem prob = make_problem(g, model, ladder, 2.0);
  const core::StrategyResult plan =
      core::run_strategy(core::StrategyKind::kLampsPs, prob);
  ASSERT_TRUE(plan.feasible && plan.schedule.has_value());
  ASSERT_GT(plan.breakdown.shutdowns, 0u) << "fixture must exercise shutdowns";
  const energy::PsOptions ps = ps_for(core::StrategyKind::kLampsPs, prob);

  // Every wakeup faults at 3 x the nominal energy, with zero extra latency:
  // the schedule and all non-wakeup terms stay exactly nominal, and the
  // wakeup term triples.
  PerturbSpec spec;
  spec.wake_fault_prob = 1.0;
  spec.wake_fault_scale = 3.0;
  const PerturbSample sample = draw_sample(spec, g, plan.schedule->num_procs(), Rng(3));
  const ReplayResult r =
      replay_schedule(*plan.schedule, g, ladder.level(plan.level_index), prob.deadline,
                      sleep, ps, spec, sample);
  EXPECT_EQ(r.breakdown.shutdowns, plan.breakdown.shutdowns);
  EXPECT_EQ(r.wake_faults, plan.breakdown.shutdowns);
  EXPECT_EQ(r.breakdown.dynamic.value(), plan.breakdown.dynamic.value());
  EXPECT_EQ(r.breakdown.leakage.value(), plan.breakdown.leakage.value());
  EXPECT_EQ(r.breakdown.intrinsic.value(), plan.breakdown.intrinsic.value());
  EXPECT_EQ(r.breakdown.sleep.value(), plan.breakdown.sleep.value());
  EXPECT_DOUBLE_EQ(r.breakdown.wakeup.value(), 3.0 * plan.breakdown.wakeup.value());
}

TEST(Replay, TraceCrossCheckUnderJitter) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const graph::TaskGraph g = load(kPipelineStg);
  const core::Problem prob = make_problem(g, model, ladder, 2.0);
  const core::StrategyResult plan =
      core::run_strategy(core::StrategyKind::kSnsPs, prob);
  ASSERT_TRUE(plan.feasible && plan.schedule.has_value());
  const energy::PsOptions ps = ps_for(core::StrategyKind::kSnsPs, prob);

  // Jitter-only sample: nominal leakage, so the nominal-power trace must
  // integrate to the replay's closed-form energy.
  PerturbSpec spec;
  spec.jitter = 0.3;
  const auto& lvl = ladder.level(plan.level_index);
  for (std::uint64_t trial = 0; trial < 8; ++trial) {
    const PerturbSample sample =
        draw_sample(spec, g, plan.schedule->num_procs(), child_rng(5, trial));
    const ReplayResult r = replay_schedule(*plan.schedule, g, lvl, prob.deadline, sleep,
                                           ps, spec, sample);
    const sim::PowerTrace trace = replay_trace(r, g, lvl, prob.deadline, sleep, ps);
    EXPECT_NEAR(trace.total_energy().value(), r.breakdown.total().value(),
                1e-9 * r.breakdown.total().value());
  }
}

// ------------------------------------------------------------ montecarlo --

TEST(MonteCarlo, ByteIdenticalAcrossThreadCounts) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const graph::TaskGraph g = load(kPipelineStg);
  const core::Problem prob = make_problem(g, model, ladder, 2.0);
  const core::StrategyResult plan =
      core::run_strategy(core::StrategyKind::kLampsPs, prob);
  ASSERT_TRUE(plan.feasible && plan.schedule.has_value());
  const energy::PsOptions ps = ps_for(core::StrategyKind::kLampsPs, prob);
  const auto& lvl = ladder.level(plan.level_index);

  McConfig cfg;
  cfg.trials = 256;
  cfg.seed = 2026;
  cfg.perturb = full_spec();

  ThreadPool serial(1);
  ThreadPool wide(0);  // hardware concurrency
  const auto a = run_trials(serial, *plan.schedule, g, lvl, prob.deadline, sleep, ps, cfg);
  const auto b = run_trials(wide, *plan.schedule, g, lvl, prob.deadline, sleep, ps, cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].energy_j, b[t].energy_j) << "trial " << t;
    EXPECT_EQ(a[t].met_deadline, b[t].met_deadline) << "trial " << t;
    EXPECT_EQ(a[t].tardiness_s, b[t].tardiness_s) << "trial " << t;
    EXPECT_EQ(a[t].shutdowns, b[t].shutdowns) << "trial " << t;
    EXPECT_EQ(a[t].wake_faults, b[t].wake_faults) << "trial " << t;
  }
  const RobustnessStats sa = aggregate(a);
  const RobustnessStats sb = aggregate(b);
  EXPECT_EQ(sa.miss_rate, sb.miss_rate);
  EXPECT_EQ(sa.energy.mean, sb.energy.mean);
  EXPECT_EQ(sa.energy_p95, sb.energy_p95);
  EXPECT_EQ(sa.energy_p99, sb.energy_p99);
}

TEST(MonteCarlo, SeedChangesDrawsAndStatsAreOrdered) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const graph::TaskGraph g = load(kForkJoinStg);
  const core::Problem prob = make_problem(g, model, ladder, 2.0);
  const core::StrategyResult plan =
      core::run_strategy(core::StrategyKind::kLampsPs, prob);
  ASSERT_TRUE(plan.feasible && plan.schedule.has_value());
  const energy::PsOptions ps = ps_for(core::StrategyKind::kLampsPs, prob);
  const auto& lvl = ladder.level(plan.level_index);

  McConfig cfg;
  cfg.trials = 128;
  cfg.seed = 1;
  cfg.threads = 2;
  cfg.perturb = full_spec();
  const RobustnessStats s1 =
      run_montecarlo(*plan.schedule, g, lvl, prob.deadline, sleep, ps, cfg);
  cfg.seed = 2;
  const RobustnessStats s2 =
      run_montecarlo(*plan.schedule, g, lvl, prob.deadline, sleep, ps, cfg);
  EXPECT_NE(s1.energy.mean, s2.energy.mean);

  EXPECT_EQ(s1.trials, 128u);
  EXPECT_GE(s1.miss_rate, 0.0);
  EXPECT_LE(s1.miss_rate, 1.0);
  EXPECT_LE(s1.energy.median, s1.energy_p95);
  EXPECT_LE(s1.energy_p95, s1.energy_p99);
  EXPECT_LE(s1.energy_p99, s1.energy.max);
}

TEST(MonteCarlo, TightDeadlinePlusJitterMissesSometimes) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const power::SleepModel sleep(model);
  const graph::TaskGraph g = load(kPipelineStg);
  const core::Problem prob = make_problem(g, model, ladder, 1.1);
  const core::StrategyResult plan = core::run_strategy(core::StrategyKind::kSns, prob);
  ASSERT_TRUE(plan.feasible && plan.schedule.has_value());

  McConfig cfg;
  cfg.trials = 200;
  cfg.seed = 11;
  cfg.threads = 2;
  cfg.perturb.jitter = 0.5;
  cfg.perturb.jitter_kind = JitterKind::kNormal;
  const RobustnessStats s =
      run_montecarlo(*plan.schedule, g, ladder.level(plan.level_index), prob.deadline,
                     sleep, ps_for(core::StrategyKind::kSns, prob), cfg);
  EXPECT_GT(s.miss_rate, 0.0);
  EXPECT_GT(s.tardiness.max, 0.0);

  // Without jitter the plan always meets its deadline.
  cfg.perturb = PerturbSpec{};
  const RobustnessStats exact =
      run_montecarlo(*plan.schedule, g, ladder.level(plan.level_index), prob.deadline,
                     sleep, ps_for(core::StrategyKind::kSns, prob), cfg);
  EXPECT_EQ(exact.miss_rate, 0.0);
  // Every zero-perturbation trial is bit-identical.
  EXPECT_EQ(exact.energy.min, exact.energy.max);
}

// ---------------------------------------------------------------- report --

TEST(Report, EvaluatesAllStrategiesAndMarksBounds) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const graph::TaskGraph g = load(kPipelineStg);
  const core::Problem prob = make_problem(g, model, ladder, 2.0);

  McConfig cfg;
  cfg.trials = 32;
  cfg.seed = 3;
  cfg.threads = 2;
  cfg.perturb.jitter = 0.1;
  const auto rows = evaluate_robustness(prob, core::kAllStrategies, cfg);
  ASSERT_EQ(rows.size(), core::kAllStrategies.size());
  for (const StrategyRobustness& r : rows) {
    EXPECT_TRUE(r.feasible) << core::to_string(r.kind);
    const bool is_bound = r.kind == core::StrategyKind::kLimitSf ||
                          r.kind == core::StrategyKind::kLimitMf;
    EXPECT_EQ(r.replayable, !is_bound) << core::to_string(r.kind);
    if (r.replayable) {
      EXPECT_EQ(r.stats.trials, 32u);
      EXPECT_GT(r.stats.energy.mean, 0.0);
    }
  }

  std::ostringstream os;
  print_robustness_report(os, rows, cfg);
  EXPECT_NE(os.str().find("LAMPS+PS"), std::string::npos);
  EXPECT_NE(os.str().find("(bound)"), std::string::npos);
}

}  // namespace
}  // namespace lamps::robust
