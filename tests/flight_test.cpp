// Unit tests for the live-telemetry additions (src/obs): the request
// flight recorder (seqlock ring wraparound, newest-first reads,
// slow-request promotion, the flightz JSON record), the structured
// JSON-lines logger, and the periodic metrics flusher.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "net/jsonv.hpp"
#include "obs/flight.hpp"
#include "obs/flush.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"

namespace lamps::obs {
namespace {

/// Restores the process-wide log configuration a test touched.
struct LogGuard {
  ~LogGuard() {
    set_log_sink(nullptr);
    set_structured_logging(false);
    set_min_severity(LogSeverity::kInfo);
  }
};

FlightRecord make_record(std::uint64_t id, std::int64_t base_ns = 1'000) {
  FlightRecord r;
  r.request_id = id;
  r.digest = 0xdeadbeefcafef00dULL;
  r.arrival_ns = base_ns;
  r.admit_ns = base_ns + 10'000;
  r.compute_start_ns = base_ns + 50'000;
  r.compute_end_ns = base_ns + 950'000;
  r.finish_ns = base_ns + 960'000;
  r.write_ns = base_ns + 1'000'000;  // 1 ms arrival -> write
  r.response_bytes = 410;
  r.outcome = FlightOutcome::kComputed;
  return r;
}

TEST(FlightRecorderTest, RingKeepsTheNewestRecordsAfterWraparound) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 1; i <= 20; ++i) rec.record(make_record(i));
  EXPECT_EQ(rec.total_recorded(), 20U);
  EXPECT_EQ(rec.capacity(), 8U);

  const std::vector<FlightRecord> last = rec.last(100);
  ASSERT_EQ(last.size(), 8U);  // the ring holds capacity, not total
  for (std::size_t i = 0; i < last.size(); ++i)
    EXPECT_EQ(last[i].request_id, 20 - i);  // newest first
}

TEST(FlightRecorderTest, LastHonorsTheRequestedCount) {
  FlightRecorder rec(8);
  for (std::uint64_t i = 1; i <= 5; ++i) rec.record(make_record(i));
  const std::vector<FlightRecord> last = rec.last(3);
  ASSERT_EQ(last.size(), 3U);
  EXPECT_EQ(last[0].request_id, 5U);
  EXPECT_EQ(last[2].request_id, 3U);
}

TEST(FlightRecorderTest, ConcurrentWritersLoseNothingButDuplicates) {
  // 4 writers x 500 records through a 64-slot ring: every record() call is
  // accounted for as either resident, overwritten, or counted as dropped —
  // and the reader can always take a consistent snapshot mid-storm.
  const std::uint64_t dropped_before =
      Registry::global().counter_value("flight.dropped_records");
  FlightRecorder rec(64);
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w)
    writers.emplace_back([&rec, w] {
      for (std::uint64_t i = 0; i < 500; ++i)
        rec.record(make_record(static_cast<std::uint64_t>(w) * 1'000 + i));
    });
  for (int i = 0; i < 50; ++i) (void)rec.last(64);  // reads during the storm
  for (auto& t : writers) t.join();

  EXPECT_EQ(rec.total_recorded(), 2'000U);
  const std::vector<FlightRecord> last = rec.last(64);
  EXPECT_LE(last.size(), 64U);
  const std::uint64_t dropped =
      Registry::global().counter_value("flight.dropped_records") - dropped_before;
  // Drops are possible (a writer lapping the ring) but bounded by the
  // records that raced; the snapshot plus drops never exceeds the offered
  // load.
  EXPECT_LE(dropped, 2'000U);
}

TEST(FlightRecorderTest, SlowRequestsArePromotedToStructuredWarnRecords) {
  LogGuard guard;
  Counter& slow = counter("serve.slow_requests");
  const std::uint64_t before = slow.value();

  std::ostringstream sink;
  set_log_sink(&sink);
  FlightRecorder rec(4, /*slow_threshold_s=*/1e-6);
  rec.record(make_record(7));  // 1 ms >> 1 us threshold
  set_log_sink(nullptr);

  EXPECT_EQ(slow.value(), before + 1);
  const std::string line = sink.str();
  ASSERT_FALSE(line.empty());
  const lamps::net::JsonValue doc =
      lamps::net::JsonValue::parse(line.substr(0, line.find('\n')));
  EXPECT_EQ(doc.get_string("event", ""), "serve.slow_request");
  EXPECT_EQ(doc.get_string("level", ""), "warn");
  EXPECT_DOUBLE_EQ(doc.get_number("req", 0.0), 7.0);
  EXPECT_NEAR(doc.get_number("total_ms", 0.0), 1.0, 1e-9);
  EXPECT_NEAR(doc.get_number("compute_ms", 0.0), 0.9, 1e-9);
}

TEST(FlightRecorderTest, FastRequestsAreNotPromoted) {
  LogGuard guard;
  Counter& slow = counter("serve.slow_requests");
  const std::uint64_t before = slow.value();

  std::ostringstream sink;
  set_log_sink(&sink);
  FlightRecorder rec(4, /*slow_threshold_s=*/10.0);
  rec.record(make_record(8));
  set_log_sink(nullptr);

  EXPECT_EQ(slow.value(), before);
  EXPECT_TRUE(sink.str().empty());
}

TEST(FlightRecorderTest, WriteJsonIsStrictWithHexDigestAndPhaseBreakdown) {
  std::ostringstream os;
  FlightRecorder::write_json(os, make_record(3));
  const lamps::net::JsonValue doc = lamps::net::JsonValue::parse(os.str());
  EXPECT_DOUBLE_EQ(doc.get_number("req", 0.0), 3.0);
  // 64-bit digests do not survive double-typed JSON numbers, so the wire
  // format is a fixed-width hex string.
  EXPECT_EQ(doc.get_string("digest", ""), "deadbeefcafef00d");
  EXPECT_EQ(doc.get_string("outcome", ""), "computed");
  EXPECT_NEAR(doc.get_number("total_ms", 0.0), 1.0, 1e-9);
  EXPECT_NEAR(doc.get_number("queue_ms", 0.0), 0.04, 1e-9);
  EXPECT_NEAR(doc.get_number("compute_ms", 0.0), 0.9, 1e-9);
  EXPECT_NEAR(doc.get_number("write_ms", 0.0), 0.04, 1e-9);
  EXPECT_DOUBLE_EQ(doc.get_number("bytes", 0.0), 410.0);
}

TEST(StructuredLogTest, LogEventEmitsOneValidJsonRecord) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);
  LogEvent(LogSeverity::kInfo, "test.event")
      .str("text", "quote \" and \\ backslash")
      .u64("n", 42)
      .num("x", 1.5)
      .boolean("flag", true);
  set_log_sink(nullptr);

  const std::string line = sink.str();
  ASSERT_EQ(line.back(), '\n');
  const lamps::net::JsonValue doc =
      lamps::net::JsonValue::parse(line.substr(0, line.size() - 1));
  EXPECT_GE(doc.get_number("ts_ns", -1.0), 0.0);
  EXPECT_EQ(doc.get_string("level", ""), "info");
  EXPECT_EQ(doc.get_string("event", ""), "test.event");
  EXPECT_EQ(doc.get_string("text", ""), "quote \" and \\ backslash");
  EXPECT_DOUBLE_EQ(doc.get_number("n", 0.0), 42.0);
  EXPECT_DOUBLE_EQ(doc.get_number("x", 0.0), 1.5);
  EXPECT_TRUE(doc.get("flag")->as_bool());
}

TEST(StructuredLogTest, EventsBelowTheFilterAreFreeAndSilent) {
  LogGuard guard;
  set_min_severity(LogSeverity::kWarn);
  std::ostringstream sink;
  set_log_sink(&sink);
  LogEvent ev(LogSeverity::kInfo, "suppressed.event");
  EXPECT_FALSE(ev.enabled());
  ev.str("k", "never formatted");
  set_log_sink(nullptr);
  EXPECT_TRUE(sink.str().empty());
}

TEST(StructuredLogTest, PlainLinesWrapAsRecordsWhenStructuredLoggingIsOn) {
  LogGuard guard;
  std::ostringstream sink;
  set_log_sink(&sink);

  emit_plain(LogSeverity::kWarn, "plain [text] line");
  EXPECT_EQ(sink.str(), "[warn] plain [text] line\n");

  sink.str({});
  set_structured_logging(true);
  emit_plain(LogSeverity::kWarn, "plain [text] line");
  const std::string line = sink.str();
  const lamps::net::JsonValue doc =
      lamps::net::JsonValue::parse(line.substr(0, line.find('\n')));
  EXPECT_EQ(doc.get_string("event", ""), "log");
  EXPECT_EQ(doc.get_string("level", ""), "warn");
  EXPECT_EQ(doc.get_string("msg", ""), "plain [text] line");
}

TEST(StructuredLogTest, RequestIdsAreMonotonicAcrossThreads) {
  const std::uint64_t first = next_request_id();
  std::vector<std::uint64_t> ids(64);
  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < 4; ++t)
    threads.emplace_back([&ids, t] {
      for (std::size_t i = 0; i < 16; ++i) ids[t * 16 + i] = next_request_id();
    });
  for (auto& t : threads) t.join();
  std::sort(ids.begin(), ids.end());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_GT(ids[i], first);
    if (i > 0) {
      EXPECT_NE(ids[i], ids[i - 1]);  // no duplicates
    }
  }
}

TEST(MetricsFlusherTest, HookReceivesParseableSamplesWithDeltas) {
  Counter& ticks = counter("flushtest.hook_ticks");
  std::mutex mu;
  std::vector<std::string> lines;

  MetricsFlusher::Options opts;
  opts.interval_s = 0.02;
  opts.hook = [&](const std::string& line) {
    std::scoped_lock lock(mu);
    lines.push_back(line);
  };
  MetricsFlusher flusher(opts);
  flusher.start();
  ticks.inc(5);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  flusher.stop();  // emits the final sample

  ASSERT_GE(flusher.samples(), 1U);
  std::uint64_t delta_sum = 0;
  std::scoped_lock lock(mu);
  ASSERT_EQ(lines.size(), flusher.samples());
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const lamps::net::JsonValue doc = lamps::net::JsonValue::parse(lines[i]);
    EXPECT_DOUBLE_EQ(doc.get_number("seq", -1.0), static_cast<double>(i));
    EXPECT_GE(doc.get_number("ts_ns", -1.0), 0.0);
    ASSERT_NE(doc.get("metrics"), nullptr);
    if (const lamps::net::JsonValue* deltas = doc.get("deltas");
        deltas != nullptr && deltas->get("flushtest.hook_ticks") != nullptr)
      delta_sum += static_cast<std::uint64_t>(
          deltas->get("flushtest.hook_ticks")->as_number());
  }
  // Whatever the sample timing, the per-sample deltas must add up to
  // exactly what was counted while the flusher ran.
  EXPECT_EQ(delta_sum, 5U);
}

TEST(MetricsFlusherTest, AppendsJsonLinesToAFileAndStopIsIdempotent) {
  const std::string path = testing::TempDir() + "flushtest_series.jsonl";
  std::remove(path.c_str());
  Counter& ticks = counter("flushtest.file_ticks");
  {
    MetricsFlusher::Options opts;
    opts.interval_s = 5.0;  // only the final stop() sample fires in time
    opts.path = path;
    MetricsFlusher flusher(opts);
    flusher.start();
    ticks.inc(3);
    flusher.stop();
    flusher.stop();  // idempotent
    EXPECT_EQ(flusher.samples(), 1U);
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(in, line)) {
    const lamps::net::JsonValue doc = lamps::net::JsonValue::parse(line);
    EXPECT_NE(doc.get("metrics"), nullptr);
    ++parsed;
  }
  EXPECT_EQ(parsed, 1U);
  std::remove(path.c_str());
}

TEST(MetricsFlusherTest, UnwritablePathFailsLoudly) {
  MetricsFlusher::Options opts;
  opts.path = "/nonexistent-dir/flush.jsonl";
  MetricsFlusher flusher(opts);
  EXPECT_THROW(flusher.start(), std::runtime_error);
}

}  // namespace
}  // namespace lamps::obs
