// Branch-and-bound exact solver tests: hand-checkable optima, agreement
// with brute reasoning, Graham-bound relation to LS-EDF, and the exact
// energy baseline under LAMPS results.
#include <gtest/gtest.h>

#include "core/exact.hpp"
#include "core/strategy.hpp"
#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "sched/list_scheduler.hpp"
#include "stg/random_gen.hpp"
#include "stg/structured.hpp"

namespace lamps::core {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;

TEST(Exact, IndependentTasksPackLikeBins) {
  // Weights 4,4,3,3,2 on 2 procs: optimum is 8 (4+4 | 3+3+2).
  TaskGraphBuilder b;
  for (const Cycles w : {4u, 4u, 3u, 3u, 2u}) (void)b.add_task(w);
  const TaskGraph g = b.build();
  const ExactMakespanResult r = exact_min_makespan(g, 2);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.makespan, 8u);
}

TEST(Exact, ChainIsCriticalPathBound) {
  TaskGraphBuilder b;
  graph::TaskId prev = b.add_task(5);
  for (int i = 0; i < 5; ++i) {
    const graph::TaskId next = b.add_task(5);
    b.add_edge(prev, next);
    prev = next;
  }
  const TaskGraph g = b.build();
  for (const std::size_t n : {1u, 2u, 4u}) {
    const ExactMakespanResult r = exact_min_makespan(g, n);
    EXPECT_TRUE(r.proven);
    EXPECT_EQ(r.makespan, 30u);
  }
}

TEST(Exact, KnownAnomalousInstanceWhereEdfIsSuboptimal) {
  // Weights chosen so greedy non-delay EDF misorders: optimum 6 on 2
  // procs for {3, 3, 2, 2, 2}, greedy largest-last can give 7.
  TaskGraphBuilder b;
  for (const Cycles w : {2u, 2u, 2u, 3u, 3u}) (void)b.add_task(w);
  const TaskGraph g = b.build();
  const ExactMakespanResult r = exact_min_makespan(g, 2);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.makespan, 6u);
  // FIFO list scheduling on this order: P0 gets 2+2+3=7.
  sched::PriorityOptions fifo;
  fifo.policy = sched::PriorityPolicy::kFifo;
  const sched::Schedule greedy =
      sched::list_schedule(g, 2, sched::make_priority_keys(g, fifo));
  EXPECT_EQ(greedy.makespan(), 7u);
}

TEST(Exact, Fig4GraphOptimumMatchesPaperDiscussion) {
  TaskGraphBuilder b;
  const auto t1 = b.add_task(2), t2 = b.add_task(6), t3 = b.add_task(4);
  (void)b.add_task(4);
  const auto t5 = b.add_task(2);
  b.add_edge(t1, t2);
  b.add_edge(t1, t3);
  b.add_edge(t2, t5);
  b.add_edge(t3, t5);
  const TaskGraph g = b.build();
  // The CPL (10) is achievable on 2 processors (paper Fig 7a).
  EXPECT_EQ(exact_min_makespan(g, 2).makespan, 10u);
  EXPECT_EQ(exact_min_makespan(g, 1).makespan, 18u);
}

TEST(Exact, EmptyGraphAndErrors) {
  TaskGraphBuilder b;
  const TaskGraph g = b.build();
  const ExactMakespanResult r = exact_min_makespan(g, 3);
  EXPECT_TRUE(r.proven);
  EXPECT_EQ(r.makespan, 0u);
  TaskGraphBuilder b2;
  (void)b2.add_task(1);
  const TaskGraph g2 = b2.build();
  EXPECT_THROW((void)exact_min_makespan(g2, 0), std::invalid_argument);
}

TEST(Exact, BudgetExhaustionReportsUnproven) {
  // Independent weights {3,3,2,2,2} on 2 processors: LPT-style list
  // scheduling (the search's seed incumbent) yields 7 while the optimum is
  // 6, and the root lower bound (work bound = 6) cannot close the gap — so
  // a 1-node budget must return the unproven incumbent.
  TaskGraphBuilder b;
  for (const Cycles w : {3u, 3u, 2u, 2u, 2u}) (void)b.add_task(w);
  const TaskGraph g = b.build();
  ExactOptions opts;
  opts.node_budget = 1;
  const ExactMakespanResult r = exact_min_makespan(g, 2, opts);
  EXPECT_FALSE(r.proven);
  EXPECT_EQ(r.makespan, 7u);
  // With the default budget the same instance is solved and proven.
  const ExactMakespanResult full = exact_min_makespan(g, 2);
  EXPECT_TRUE(full.proven);
  EXPECT_EQ(full.makespan, 6u);
}

// Parameterized: on a sample of small random graphs, LS-EDF stays within
// the Graham bound (2 - 1/m) of the exact optimum, and never below it.
class ExactVsListScheduler : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExactVsListScheduler, GrahamBoundHolds) {
  stg::RandomGraphSpec spec;
  spec.num_tasks = 9;
  spec.method = GetParam() % 2 == 0 ? stg::GenMethod::kSamePred : stg::GenMethod::kSameProb;
  spec.avg_degree = 1.5;
  spec.max_weight = 12;
  spec.seed = GetParam();
  const TaskGraph g = stg::generate_random(spec);
  for (const std::size_t m : {2u, 3u}) {
    const ExactMakespanResult opt = exact_min_makespan(g, m);
    ASSERT_TRUE(opt.proven);
    const sched::Schedule ls = sched::list_schedule_edf(g, m, 10 * g.total_work());
    EXPECT_GE(ls.makespan(), opt.makespan);
    EXPECT_LE(static_cast<double>(ls.makespan()),
              static_cast<double>(opt.makespan) * (2.0 - 1.0 / static_cast<double>(m)) +
                  1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallGraphs, ExactVsListScheduler,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ExactEnergy, LampsNeverBeatsExactOptimum) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    stg::RandomGraphSpec spec;
    spec.num_tasks = 10;
    spec.method = stg::GenMethod::kLayrPred;
    spec.num_layers = 3;
    spec.seed = seed;
    const TaskGraph g =
        graph::scale_weights(stg::generate_random(spec), 3'100'000);
    Problem prob;
    prob.graph = &g;
    prob.model = &model;
    prob.ladder = &ladder;
    prob.deadline = Seconds{static_cast<double>(graph::critical_path_length(g)) /
                            model.max_frequency().value() * 2.0};
    const ExactEnergyResult opt = exact_min_energy(prob, 6);
    const StrategyResult lam = lamps_schedule(prob);
    ASSERT_TRUE(opt.feasible && opt.proven && lam.feasible) << seed;
    EXPECT_GE(lam.energy().value(), opt.energy.value() * (1.0 - 1e-12)) << seed;
    // LAMPS should in fact be close: within 10% on these easy instances.
    EXPECT_LE(lam.energy().value(), opt.energy.value() * 1.10) << seed;
  }
}

TEST(ExactEnergy, InfeasibleWhenDeadlineTooTight) {
  const power::PowerModel model;
  const power::DvsLadder ladder(model);
  const TaskGraph g = graph::scale_weights(stg::out_tree(3, 10), 3'100'000);
  Problem prob;
  prob.graph = &g;
  prob.model = &model;
  prob.ladder = &ladder;
  prob.deadline = Seconds{1e-9};
  EXPECT_FALSE(exact_min_energy(prob, 4).feasible);
}

}  // namespace
}  // namespace lamps::core
