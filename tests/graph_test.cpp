// Task-graph substrate tests: builder validation, CSR adjacency, analyses
// (critical path, levels, parallelism), transformations and export.
#include <gtest/gtest.h>

#include <sstream>

#include "graph/analysis.hpp"
#include "graph/io.hpp"
#include "graph/task_graph.hpp"
#include "graph/transform.hpp"

namespace lamps::graph {
namespace {

/// The paper's Fig 4a example: T1(2), T2(6), T3(4), T4(4), T5(2);
/// T1->T2, T1->T3, T3->T5, T2->T5 is NOT in the figure — the figure shows
/// T1 feeding T2/T3, T4 independent, and T5 joining T2/T3.
TaskGraph fig4_graph() {
  TaskGraphBuilder b("fig4");
  const TaskId t1 = b.add_task(2, "T1");
  const TaskId t2 = b.add_task(6, "T2");
  const TaskId t3 = b.add_task(4, "T3");
  const TaskId t4 = b.add_task(4, "T4");
  const TaskId t5 = b.add_task(2, "T5");
  b.add_edge(t1, t2);
  b.add_edge(t1, t3);
  b.add_edge(t2, t5);
  b.add_edge(t3, t5);
  (void)t4;
  return b.build();
}

// ---------------------------------------------------------------- build --

TEST(Builder, BasicConstruction) {
  const TaskGraph g = fig4_graph();
  EXPECT_EQ(g.name(), "fig4");
  EXPECT_EQ(g.num_tasks(), 5u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.total_work(), 18u);
  EXPECT_EQ(g.weight(1), 6u);
  EXPECT_EQ(g.label(4), "T5");
}

TEST(Builder, AdjacencyIsConsistent) {
  const TaskGraph g = fig4_graph();
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.in_degree(4), 2u);
  EXPECT_TRUE(has_edge(g, 0, 1));
  EXPECT_TRUE(has_edge(g, 0, 2));
  EXPECT_FALSE(has_edge(g, 1, 0));
  // predecessors mirror successors
  const auto preds = g.predecessors(4);
  EXPECT_EQ(std::vector<TaskId>(preds.begin(), preds.end()), (std::vector<TaskId>{1, 2}));
}

TEST(Builder, SourcesAndSinks) {
  const TaskGraph g = fig4_graph();
  const auto src = g.sources();
  const auto snk = g.sinks();
  EXPECT_EQ(std::vector<TaskId>(src.begin(), src.end()), (std::vector<TaskId>{0, 3}));
  EXPECT_EQ(std::vector<TaskId>(snk.begin(), snk.end()), (std::vector<TaskId>{3, 4}));
}

TEST(Builder, DetectsCycle) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1), c = b.add_task(1), d = b.add_task(1);
  b.add_edge(a, c);
  b.add_edge(c, d);
  b.add_edge(d, a);
  EXPECT_THROW((void)b.build(), std::invalid_argument);
}

TEST(Builder, RejectsSelfLoop) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  EXPECT_THROW(b.add_edge(a, a), std::invalid_argument);
}

TEST(Builder, RejectsUnknownTasks) {
  TaskGraphBuilder b;
  (void)b.add_task(1);
  EXPECT_THROW(b.add_edge(0, 5), std::out_of_range);
  EXPECT_THROW(b.set_deadline(9, Seconds{1.0}), std::out_of_range);
}

TEST(Builder, CoalescesDuplicateEdges) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1), c = b.add_task(1);
  b.add_edge(a, c);
  b.add_edge(a, c);
  b.add_edge(a, c);
  const TaskGraph g = b.build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, TopologicalOrderRespectsEdgesAndIsDeterministic) {
  const TaskGraph g = fig4_graph();
  const auto topo = g.topological_order();
  std::vector<std::size_t> pos(g.num_tasks());
  for (std::size_t i = 0; i < topo.size(); ++i) pos[topo[i]] = i;
  for (TaskId v = 0; v < g.num_tasks(); ++v)
    for (const TaskId s : g.successors(v)) EXPECT_LT(pos[v], pos[s]);
  // Kahn with a min-heap: smallest available id first.
  EXPECT_EQ(std::vector<TaskId>(topo.begin(), topo.end()),
            (std::vector<TaskId>{0, 1, 2, 3, 4}));
}

TEST(Builder, ExplicitDeadlines) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1), c = b.add_task(1);
  b.set_deadline(c, Seconds{0.25});
  const TaskGraph g = b.build();
  EXPECT_TRUE(g.has_explicit_deadlines());
  EXPECT_FALSE(g.explicit_deadline(a).has_value());
  ASSERT_TRUE(g.explicit_deadline(c).has_value());
  EXPECT_DOUBLE_EQ(g.explicit_deadline(c)->value(), 0.25);
}

TEST(Builder, RejectsNonPositiveDeadline) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  EXPECT_THROW(b.set_deadline(a, Seconds{0.0}), std::invalid_argument);
}

TEST(Builder, EmptyGraph) {
  TaskGraphBuilder b;
  const TaskGraph g = b.build();
  EXPECT_EQ(g.num_tasks(), 0u);
  EXPECT_EQ(g.total_work(), 0u);
  EXPECT_EQ(critical_path_length(g), 0u);
  EXPECT_DOUBLE_EQ(average_parallelism(g), 0.0);
}

TEST(Builder, ZeroWeightTasksAllowed) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(0), c = b.add_task(5);
  b.add_edge(a, c);
  const TaskGraph g = b.build();
  EXPECT_EQ(critical_path_length(g), 5u);
}

// ------------------------------------------------------------- analysis --

TEST(Analysis, Fig4CriticalPath) {
  const TaskGraph g = fig4_graph();
  // T1(2) -> T2(6) -> T5(2) = 10.
  EXPECT_EQ(critical_path_length(g), 10u);
  EXPECT_EQ(critical_path(g), (std::vector<TaskId>{0, 1, 4}));
  EXPECT_NEAR(average_parallelism(g), 18.0 / 10.0, 1e-12);
}

TEST(Analysis, BottomAndTopLevels) {
  const TaskGraph g = fig4_graph();
  const auto bl = bottom_levels(g);
  EXPECT_EQ(bl[0], 10u);  // T1 + T2 + T5
  EXPECT_EQ(bl[1], 8u);   // T2 + T5
  EXPECT_EQ(bl[2], 6u);   // T3 + T5
  EXPECT_EQ(bl[3], 4u);   // T4 alone
  EXPECT_EQ(bl[4], 2u);
  const auto tl = top_levels(g);
  EXPECT_EQ(tl[0], 0u);
  EXPECT_EQ(tl[1], 2u);
  EXPECT_EQ(tl[2], 2u);
  EXPECT_EQ(tl[3], 0u);
  EXPECT_EQ(tl[4], 8u);  // after T2
}

TEST(Analysis, ChainHasParallelismOne) {
  TaskGraphBuilder b;
  TaskId prev = b.add_task(3);
  for (int i = 0; i < 9; ++i) {
    const TaskId next = b.add_task(3);
    b.add_edge(prev, next);
    prev = next;
  }
  const TaskGraph g = b.build();
  EXPECT_EQ(critical_path_length(g), 30u);
  EXPECT_DOUBLE_EQ(average_parallelism(g), 1.0);
  EXPECT_EQ(asap_max_concurrency(g), 1u);
  EXPECT_EQ(critical_path(g).size(), 10u);
}

TEST(Analysis, IndependentTasksHaveFullParallelism) {
  TaskGraphBuilder b;
  for (int i = 0; i < 8; ++i) (void)b.add_task(4);
  const TaskGraph g = b.build();
  EXPECT_EQ(critical_path_length(g), 4u);
  EXPECT_DOUBLE_EQ(average_parallelism(g), 8.0);
  EXPECT_EQ(asap_max_concurrency(g), 8u);
}

TEST(Analysis, AsapConcurrencyFig4) {
  // ASAP: T1,T4 at 0; T2,T3 at 2 (T4 still running until 4): overlap of
  // T2, T3, T4 in [2,4) = 3.
  EXPECT_EQ(asap_max_concurrency(fig4_graph()), 3u);
}

// -------------------------------------------------------------- transform --

TEST(Transform, ScaleWeightsMultipliesWorkAndCpl) {
  const TaskGraph g = fig4_graph();
  const TaskGraph s = scale_weights(g, 1000);
  EXPECT_EQ(s.total_work(), 18'000u);
  EXPECT_EQ(critical_path_length(s), 10'000u);
  EXPECT_EQ(s.num_edges(), g.num_edges());
  EXPECT_EQ(s.label(0), "T1");
}

TEST(Transform, ScaleWeightsOverflowDetected) {
  TaskGraphBuilder b;
  (void)b.add_task(static_cast<Cycles>(1) << 60);
  const TaskGraph g = b.build();
  EXPECT_THROW((void)scale_weights(g, 1 << 10), std::overflow_error);
}

TEST(Transform, RenamedKeepsStructure) {
  const TaskGraph g = renamed(fig4_graph(), "other");
  EXPECT_EQ(g.name(), "other");
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(Transform, PreservesExplicitDeadlines) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(1);
  b.set_deadline(a, Seconds{0.5});
  const TaskGraph g = scale_weights(b.build(), 7);
  ASSERT_TRUE(g.explicit_deadline(0).has_value());
  EXPECT_DOUBLE_EQ(g.explicit_deadline(0)->value(), 0.5);
}

// ---------------------------------------------------------------- export --

TEST(Io, DotContainsNodesAndEdges) {
  const std::string dot = to_dot(fig4_graph());
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("t0 -> t1"), std::string::npos);
  EXPECT_NE(dot.find("T5"), std::string::npos);
}

TEST(Io, JsonContainsTasksEdgesAndEscapes) {
  TaskGraphBuilder b("with \"quote\"");
  const TaskId a = b.add_task(1, "a\"b");
  const TaskId c = b.add_task(2);
  b.add_edge(a, c);
  b.set_deadline(c, Seconds{0.5});
  const std::string json = to_json(b.build());
  EXPECT_NE(json.find("\"with \\\"quote\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"a\\\"b\""), std::string::npos);
  EXPECT_NE(json.find("[0, 1]"), std::string::npos);
  EXPECT_NE(json.find("\"deadline\": 0.5"), std::string::npos);
}

}  // namespace
}  // namespace lamps::graph
