// Heterogeneous-platform extension tests: platform model, HEFT validity,
// class-scaled energy accounting, and the mix search.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/transform.hpp"
#include "hetero/lamps_hetero.hpp"
#include "core/strategy.hpp"
#include "stg/random_gen.hpp"

namespace lamps::hetero {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;

class HeteroFixture : public ::testing::Test {
 protected:
  power::PowerModel model;
  power::DvsLadder ladder{model};
  power::SleepModel sleep{model};

  [[nodiscard]] static TaskGraph sample_graph(std::uint64_t seed, std::size_t n = 50) {
    stg::RandomGraphSpec spec;
    spec.num_tasks = n;
    spec.method = stg::GenMethod::kLayrPred;
    spec.num_layers = 10;
    spec.max_weight = 20;
    spec.seed = seed;
    return graph::scale_weights(stg::generate_random(spec), 3'100'000);
  }
};

// --------------------------------------------------------------- platform --

TEST_F(HeteroFixture, PlatformLayoutAndDurations) {
  const Platform p = big_little(2, 4);
  EXPECT_EQ(p.num_classes(), 2u);
  EXPECT_EQ(p.num_procs(), 6u);
  EXPECT_EQ(p.class_of_proc(0), 0u);
  EXPECT_EQ(p.class_of_proc(1), 0u);
  EXPECT_EQ(p.class_of_proc(2), 1u);
  EXPECT_EQ(p.class_of_proc(5), 1u);
  // Durations: big = reference; little = ceil(w / 0.45).
  EXPECT_EQ(p.duration_on(0, 900), 900u);
  EXPECT_EQ(p.duration_on(1, 900), 2000u);
  EXPECT_EQ(p.duration_on(1, 0), 0u);
}

TEST_F(HeteroFixture, SubsetSelectsCounts) {
  const Platform p = big_little(2, 4);
  const Platform sub = p.subset({1, 2});
  EXPECT_EQ(sub.num_procs(), 3u);
  EXPECT_EQ(sub.num_classes(), 2u);
  const Platform only_little = p.subset({0, 3});
  EXPECT_EQ(only_little.num_procs(), 3u);
  EXPECT_EQ(only_little.num_classes(), 1u);  // empty classes dropped
  EXPECT_THROW((void)p.subset({5, 0}), std::invalid_argument);
  EXPECT_THROW((void)p.subset({1}), std::invalid_argument);
}

TEST_F(HeteroFixture, PlatformValidation) {
  Platform p;
  EXPECT_THROW((void)p.add_class({"bad", 0.0, 1.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)p.add_class({"bad", 1.5, 1.0}, 1), std::invalid_argument);
  EXPECT_THROW((void)p.add_class({"bad", 0.5, 0.0}, 1), std::invalid_argument);
}

// ------------------------------------------------------------------- HEFT --

TEST_F(HeteroFixture, HeftProducesValidSchedules) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const TaskGraph g = sample_graph(seed);
    const Platform p = big_little(2, 3);
    const sched::Schedule s = heft_schedule(g, p);
    EXPECT_EQ(validate_hetero_schedule(s, g, p), "") << seed;
    EXPECT_TRUE(s.complete());
  }
}

TEST_F(HeteroFixture, HeftOnHomogeneousPlatformBeatsCplBound) {
  const TaskGraph g = sample_graph(7);
  Platform p;
  (void)p.add_class({"ref", 1.0, 1.0}, 4);
  const sched::Schedule s = heft_schedule(g, p);
  EXPECT_GE(s.makespan(), graph::critical_path_length(g));
  EXPECT_EQ(validate_hetero_schedule(s, g, p), "");
}

TEST_F(HeteroFixture, HeftPrefersFastCoreForCriticalChain) {
  // A single chain on a big.LITTLE pair: everything belongs on the big core.
  TaskGraphBuilder b;
  graph::TaskId prev = b.add_task(1'000'000);
  for (int i = 0; i < 4; ++i) {
    const graph::TaskId next = b.add_task(1'000'000);
    b.add_edge(prev, next);
    prev = next;
  }
  const TaskGraph g = b.build();
  const Platform p = big_little(1, 1);
  const sched::Schedule s = heft_schedule(g, p);
  for (graph::TaskId v = 0; v < g.num_tasks(); ++v)
    EXPECT_EQ(p.class_of_proc(s.placement(v).proc), 0u) << v;
  EXPECT_EQ(s.makespan(), 5'000'000u);
}

TEST_F(HeteroFixture, ValidateCatchesWrongDuration) {
  TaskGraphBuilder b;
  (void)b.add_task(1000);
  const TaskGraph g = b.build();
  const Platform p = big_little(0, 1);  // little core only: duration 2223
  sched::Schedule s(1, 1);
  s.place(0, 0, 0, 1000);  // reference duration — wrong for a little core
  EXPECT_NE(validate_hetero_schedule(s, g, p), "");
}

// ----------------------------------------------------------------- energy --

TEST_F(HeteroFixture, LittleCoreEnergyIsScaled) {
  TaskGraphBuilder b;
  (void)b.add_task(4'500'000);
  const TaskGraph g = b.build();
  const auto& lvl = ladder.max_level();

  // All-big vs all-little single-task runs over the same horizon.
  Platform big;
  (void)big.add_class({"big", 1.0, 1.0}, 1);
  Platform little;
  (void)little.add_class({"little", 0.45, 0.18}, 1);
  const sched::Schedule sb = heft_schedule(g, big);
  const sched::Schedule sl = heft_schedule(g, little);
  const Seconds horizon = cycles_to_time(sl.makespan(), lvl.f) * 1.01;

  const auto eb = evaluate_hetero_energy(sb, big, lvl, horizon, sleep);
  const auto el = evaluate_hetero_energy(sl, little, lvl, horizon, sleep);
  // The little core runs ~2.2x longer at 0.18x power: net ~0.4x energy on
  // the active part; with idle tails the total must still be far below.
  EXPECT_LT(el.total().value(), eb.total().value() * 0.7);
}

TEST_F(HeteroFixture, UnitScalePlatformMatchesHomogeneousEvaluator) {
  const TaskGraph g = sample_graph(8);
  Platform p;
  (void)p.add_class({"ref", 1.0, 1.0}, 3);
  const sched::Schedule s = heft_schedule(g, p);
  const auto& lvl = ladder.critical_level();
  const Seconds horizon = cycles_to_time(s.makespan(), lvl.f) * 2.0;
  const auto hetero_e = evaluate_hetero_energy(s, p, lvl, horizon, sleep,
                                               energy::PsOptions{true, true});
  const auto homo_e =
      energy::evaluate_energy(s, lvl, horizon, sleep, energy::PsOptions{true, true});
  EXPECT_NEAR(hetero_e.total().value(), homo_e.total().value(),
              homo_e.total().value() * 1e-12);
  EXPECT_EQ(hetero_e.shutdowns, homo_e.shutdowns);
}

// ------------------------------------------------------------- mix search --

TEST_F(HeteroFixture, MixSearchFindsFeasibleSolution) {
  const TaskGraph g = sample_graph(9);
  const Platform p = big_little(2, 2);
  const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                         model.max_frequency().value() * 2.0};
  const HeteroResult r = lamps_hetero(g, p, model, ladder, deadline);
  ASSERT_TRUE(r.feasible);
  ASSERT_EQ(r.counts.size(), 2u);
  EXPECT_LE(r.completion.value(), deadline.value() * (1.0 + 1e-9));
  ASSERT_TRUE(r.schedule.has_value());
  EXPECT_EQ(validate_hetero_schedule(*r.schedule, g, p.subset(r.counts)), "");
  EXPECT_GT(r.schedules_computed, 0u);
}

TEST_F(HeteroFixture, LooseDeadlinePrefersLittleCores) {
  // With an 8x deadline the little cores' 0.18x power wins outright.
  const TaskGraph g = sample_graph(10);
  const Platform p = big_little(2, 2);
  const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                         model.max_frequency().value() * 8.0};
  const HeteroResult r = lamps_hetero(g, p, model, ladder, deadline);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.counts[0], 0u) << "big cores employed on a loose deadline";
  EXPECT_GE(r.counts[1], 1u);
}

TEST_F(HeteroFixture, MixNeverWorseThanAnyPureSubset) {
  // The exhaustive mix enumeration includes every pure configuration.
  const TaskGraph g = sample_graph(11);
  const Platform p = big_little(2, 2);
  const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                         model.max_frequency().value() * 2.0};
  const HeteroResult mixed = lamps_hetero(g, p, model, ladder, deadline);
  const HeteroResult only_big =
      lamps_hetero(g, p.subset({2, 0}), model, ladder, deadline);
  ASSERT_TRUE(mixed.feasible && only_big.feasible);
  EXPECT_LE(mixed.energy().value(), only_big.energy().value() * (1.0 + 1e-12));
}

TEST_F(HeteroFixture, InfeasibleWhenDeadlineBelowCriticalPath) {
  const TaskGraph g = sample_graph(12);
  const Platform p = big_little(2, 2);
  const Seconds deadline{static_cast<double>(graph::critical_path_length(g)) /
                         model.max_frequency().value() * 0.5};
  EXPECT_FALSE(lamps_hetero(g, p, model, ladder, deadline).feasible);
}

TEST_F(HeteroFixture, DegenerateInputs) {
  TaskGraphBuilder b;
  const TaskGraph empty = b.build();
  const Platform p = big_little(1, 1);
  EXPECT_FALSE(lamps_hetero(empty, p, model, ladder, Seconds{1.0}).feasible);
  const TaskGraph g = sample_graph(13, 10);
  Platform none;
  EXPECT_FALSE(lamps_hetero(g, none, model, ladder, Seconds{1.0}).feasible);
}

}  // namespace
}  // namespace lamps::hetero
