// Scheduler tests: schedule container invariants, latest-finish
// propagation, priority policies, LS-EDF behaviour on the paper's worked
// example (Fig 4), and Gantt rendering.
#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "sched/deadlines.hpp"
#include "sched/gantt.hpp"
#include "sched/list_scheduler.hpp"
#include "sched/priorities.hpp"
#include "sched/schedule.hpp"

namespace lamps::sched {
namespace {

using graph::TaskGraph;
using graph::TaskGraphBuilder;
using graph::TaskId;

TaskGraph fig4_graph() {
  TaskGraphBuilder b("fig4");
  const TaskId t1 = b.add_task(2, "T1");
  const TaskId t2 = b.add_task(6, "T2");
  const TaskId t3 = b.add_task(4, "T3");
  b.add_task(4, "T4");
  const TaskId t5 = b.add_task(2, "T5");
  b.add_edge(t1, t2);
  b.add_edge(t1, t3);
  b.add_edge(t2, t5);
  b.add_edge(t3, t5);
  return b.build();
}

// ------------------------------------------------------------- schedule --

TEST(Schedule, PlacementBookkeeping) {
  Schedule s(2, 3);
  s.place(0, 0, 0, 5);
  s.place(1, 1, 0, 2);
  s.place(2, 1, 4, 9);
  EXPECT_EQ(s.makespan(), 9u);
  EXPECT_EQ(s.busy_cycles(0), 5u);
  EXPECT_EQ(s.busy_cycles(1), 7u);
  EXPECT_TRUE(s.complete());
  EXPECT_EQ(s.placement(2).start, 4u);
  EXPECT_EQ(s.proc_available(1), 9u);
  EXPECT_EQ(s.on_proc(1).size(), 2u);
}

TEST(Schedule, RejectsOverlapDoublePlacementAndBadIds) {
  Schedule s(1, 2);
  s.place(0, 0, 0, 5);
  EXPECT_THROW(s.place(1, 0, 4, 6), std::logic_error);   // overlap
  EXPECT_THROW(s.place(0, 0, 5, 6), std::logic_error);   // already placed
  EXPECT_THROW(s.place(1, 3, 5, 6), std::logic_error);   // bad proc
  Schedule s2(1, 2);
  EXPECT_THROW(s2.place(7, 0, 0, 1), std::logic_error);  // bad task
  EXPECT_THROW(s2.place(0, 0, 2, 1), std::logic_error);  // finish < start
  EXPECT_THROW(Schedule(0, 1), std::invalid_argument);
}

TEST(Schedule, GapsIncludeLeadingInternalTrailing) {
  Schedule s(2, 2);
  s.place(0, 0, 3, 5);   // leading gap [0,3)
  s.place(1, 0, 8, 10);  // internal gap [5,8)
  const auto gaps = s.gaps(12);
  // proc 0: [0,3), [5,8), [10,12); proc 1: [0,12).
  ASSERT_EQ(gaps.size(), 4u);
  EXPECT_EQ(gaps[0].begin, 0u);
  EXPECT_EQ(gaps[0].end, 3u);
  EXPECT_EQ(gaps[1].begin, 5u);
  EXPECT_EQ(gaps[1].end, 8u);
  EXPECT_EQ(gaps[2].begin, 10u);
  EXPECT_EQ(gaps[2].end, 12u);
  EXPECT_EQ(gaps[3].proc, 1u);
  EXPECT_EQ(gaps[3].length(), 12u);
  EXPECT_THROW((void)s.gaps(9), std::invalid_argument);
}

TEST(Schedule, ValidateCatchesViolations) {
  const TaskGraph g = fig4_graph();
  Schedule bad(2, 5);
  bad.place(0, 0, 0, 2);
  bad.place(1, 0, 2, 8);
  bad.place(2, 1, 0, 4);  // starts before its predecessor T1 finishes
  bad.place(3, 1, 4, 8);
  bad.place(4, 0, 8, 10);
  EXPECT_NE(validate_schedule(bad, g), "");

  Schedule incomplete(2, 5);
  incomplete.place(0, 0, 0, 2);
  EXPECT_NE(validate_schedule(incomplete, g), "");
}

// ------------------------------------------------------------ deadlines --

TEST(Deadlines, BackwardPropagation) {
  const TaskGraph g = fig4_graph();
  const auto lf = latest_finish_times(g, 15);
  EXPECT_EQ(lf[4], 15);      // sink
  EXPECT_EQ(lf[1], 13);      // before T5
  EXPECT_EQ(lf[2], 13);
  EXPECT_EQ(lf[0], 7);       // min(13-6, 13-4) = 7
  EXPECT_EQ(lf[3], 15);      // independent
}

TEST(Deadlines, CanGoNegativeWhenInfeasible) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(10), c = b.add_task(10);
  b.add_edge(a, c);
  const auto lf = latest_finish_times(b.build(), 5);
  EXPECT_EQ(lf[1], 5);
  EXPECT_EQ(lf[0], -5);
}

TEST(Deadlines, ExplicitDeadlineTightens) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(10), c = b.add_task(10);
  b.add_edge(a, c);
  b.set_deadline(a, Seconds{2.0});
  // At 10 Hz reference, the explicit 2 s deadline = 20 cycles < global 100.
  const auto lf = latest_finish_times(b.build(), 100, Hertz{10.0});
  EXPECT_EQ(lf[0], 20);
  EXPECT_EQ(lf[1], 100);
}

// ------------------------------------------------------------ priorities --

TEST(Priorities, EdfKeysAreLatestFinishTimes) {
  const TaskGraph g = fig4_graph();
  PriorityOptions opts;
  opts.global_deadline_cycles = 15;
  const auto keys = make_priority_keys(g, opts);
  const auto lf = latest_finish_times(g, 15);
  for (TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_EQ(keys[v], lf[v]);
}

TEST(Priorities, BottomLevelOrdersLongestPathFirst) {
  const TaskGraph g = fig4_graph();
  PriorityOptions opts;
  opts.policy = PriorityPolicy::kBottomLevel;
  const auto keys = make_priority_keys(g, opts);
  EXPECT_LT(keys[0], keys[1]);  // T1 (bl 10) before T2 (bl 8)
  EXPECT_LT(keys[1], keys[3]);  // T2 (bl 8) before T4 (bl 4)
}

TEST(Priorities, FifoAndRandomAreValidPermutations) {
  const TaskGraph g = fig4_graph();
  PriorityOptions fifo;
  fifo.policy = PriorityPolicy::kFifo;
  const auto fk = make_priority_keys(g, fifo);
  for (TaskId v = 0; v < g.num_tasks(); ++v) EXPECT_EQ(fk[v], v);

  PriorityOptions rnd;
  rnd.policy = PriorityPolicy::kRandom;
  rnd.seed = 99;
  auto rk = make_priority_keys(g, rnd);
  auto sorted = rk;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < sorted.size(); ++i)
    EXPECT_EQ(sorted[i], static_cast<std::int64_t>(i));
  // Deterministic in the seed.
  EXPECT_EQ(rk, make_priority_keys(g, rnd));
}

TEST(Priorities, ToStringCoversAll) {
  EXPECT_EQ(to_string(PriorityPolicy::kEdf), "edf");
  EXPECT_EQ(to_string(PriorityPolicy::kBottomLevel), "bottom-level");
  EXPECT_EQ(to_string(PriorityPolicy::kFifo), "fifo");
  EXPECT_EQ(to_string(PriorityPolicy::kRandom), "random");
}

// --------------------------------------------------------- list scheduler --

TEST(ListScheduler, Fig4OnThreeProcessorsMatchesPaper) {
  // Paper Fig 4b: with 3 processors EDF produces makespan 10 (T1,T2 on P1;
  // T3 on P2 after T1; T4 on P3; T5 after T2).
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 3, 15);
  EXPECT_EQ(validate_schedule(s, g), "");
  EXPECT_EQ(s.makespan(), 10u);
  EXPECT_EQ(s.placement(4).start, 8u);  // T5 right after T2
}

TEST(ListScheduler, Fig4OnTwoProcessorsMatchesLampsIllustration) {
  // Paper Fig 7a: on 2 processors the same graph still fits in makespan 10:
  // P1: T1 T2 T5, P2: T3 T4.
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 2, 15);
  EXPECT_EQ(validate_schedule(s, g), "");
  EXPECT_EQ(s.makespan(), 10u);
}

TEST(ListScheduler, SingleProcessorSerializesAllWork) {
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 1, 100);
  EXPECT_EQ(validate_schedule(s, g), "");
  EXPECT_EQ(s.makespan(), g.total_work());
}

TEST(ListScheduler, AmpleProcessorsReachCriticalPath) {
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, g.num_tasks(), 100);
  EXPECT_EQ(s.makespan(), graph::critical_path_length(g));
}

TEST(ListScheduler, MakespanNeverBelowCriticalPathOrWorkBound) {
  const TaskGraph g = fig4_graph();
  for (std::size_t n = 1; n <= 5; ++n) {
    const Schedule s = list_schedule_edf(g, n, 100);
    EXPECT_GE(s.makespan(), graph::critical_path_length(g));
    EXPECT_GE(s.makespan() * n, g.total_work());
    EXPECT_EQ(validate_schedule(s, g), "");
  }
}

TEST(ListScheduler, EdfPrefersUrgentTask) {
  // Two independent tasks, one processor: the one with the tighter
  // explicit deadline must run first even though it has the larger id.
  TaskGraphBuilder b;
  (void)b.add_task(5, "late");
  const TaskId urgent = b.add_task(5, "urgent");
  b.set_deadline(urgent, Seconds{6.0});
  const TaskGraph g = b.build();
  // Reference frequency 1 Hz: 6 s = 6 cycles < global 100.
  const Schedule s = list_schedule_edf(g, 1, 100, Hertz{1.0});
  EXPECT_EQ(s.placement(urgent).start, 0u);
  EXPECT_EQ(s.placement(0).start, 5u);
}

TEST(ListScheduler, DeterministicTieBreakBySmallerId) {
  TaskGraphBuilder b;
  for (int i = 0; i < 4; ++i) (void)b.add_task(2);
  const TaskGraph g = b.build();
  const Schedule s = list_schedule_edf(g, 2, 100);
  // Same deadline everywhere: tasks 0,1 first on procs 0,1, then 2,3.
  EXPECT_EQ(s.placement(0).proc, 0u);
  EXPECT_EQ(s.placement(1).proc, 1u);
  EXPECT_EQ(s.placement(2).start, 2u);
  EXPECT_EQ(s.placement(3).start, 2u);
}

TEST(ListScheduler, HandlesZeroWeightTasks) {
  TaskGraphBuilder b;
  const TaskId a = b.add_task(0), c = b.add_task(3), d = b.add_task(0);
  b.add_edge(a, c);
  b.add_edge(c, d);
  const TaskGraph g = b.build();
  const Schedule s = list_schedule_edf(g, 2, 10);
  EXPECT_EQ(validate_schedule(s, g), "");
  EXPECT_EQ(s.makespan(), 3u);
}

TEST(ListScheduler, RejectsBadArguments) {
  const TaskGraph g = fig4_graph();
  EXPECT_THROW((void)list_schedule_edf(g, 0, 10), std::invalid_argument);
  const std::vector<std::int64_t> short_keys(2, 0);
  EXPECT_THROW((void)list_schedule(g, 1, short_keys), std::invalid_argument);
}

TEST(ListScheduler, MoreProcessorsNeverUsedThanTasks) {
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 50, 100);
  EXPECT_EQ(validate_schedule(s, g), "");
  std::size_t used = 0;
  for (ProcId p = 0; p < s.num_procs(); ++p) used += !s.on_proc(p).empty();
  EXPECT_LE(used, g.num_tasks());
}

// ---------------------------------------------------------------- gantt --

TEST(Gantt, AsciiShowsAllProcessorsAndLabels) {
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 3, 15);
  const std::string art = to_ascii_gantt(s, g);
  EXPECT_NE(art.find("P0 |"), std::string::npos);
  EXPECT_NE(art.find("P2 |"), std::string::npos);
  EXPECT_NE(art.find("T1"), std::string::npos);
  EXPECT_NE(art.find("T5"), std::string::npos);
}

TEST(Gantt, SvgIsWellFormedEnough) {
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 2, 15);
  std::ostringstream os;
  write_svg_gantt(s, g, os);
  const std::string svg = os.str();
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("<rect"), std::string::npos);
}

TEST(Gantt, HorizonExtendsAxis) {
  const TaskGraph g = fig4_graph();
  const Schedule s = list_schedule_edf(g, 3, 15);
  GanttOptions opts;
  opts.width = 40;
  opts.horizon = 20;  // twice the makespan: bars occupy the left half only
  const std::string art = to_ascii_gantt(s, g, opts);
  // The last characters of the P0 row must be idle dots.
  const auto line_end = art.find('\n');
  const std::string row0 = art.substr(0, line_end);
  EXPECT_EQ(row0[row0.size() - 2], '.');
}

}  // namespace
}  // namespace lamps::sched
